// Run persistence: checkpoint file round trips (bit-exact doubles, digest
// and version validation, corruption rejection), engine memo-cache
// export/import, model snapshot/restore, the JSONL run store + report
// summaries, and the kill/resume torture tests — a search interrupted at
// every trial boundary and resumed from its checkpoint must produce final
// results (best point, GP trial history, model weights) bitwise equal to
// an uninterrupted run, for bayesft_search and arch_search at 1 and 4
// evaluation threads (docs/checkpointing.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/archsearch.hpp"
#include "core/bayesft.hpp"
#include "core/engine.hpp"
#include "core/persist.hpp"
#include "core/runstore.hpp"
#include "data/toy.hpp"
#include "models/zoo.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
    return (fs::temp_directory_path() / ("bayesft_persist_" + name))
        .string();
}

std::vector<float> weights_of(nn::Module& net) {
    std::vector<float> values;
    for (const nn::Parameter* p : net.parameters()) {
        values.insert(values.end(), p->value.data(),
                      p->value.data() + p->value.size());
    }
    return values;
}

// ---------------------------------------------------------------- Rng ----

TEST(RngStateTest, SaveRestoreContinuesBitIdentically) {
    Rng rng(123);
    for (int i = 0; i < 7; ++i) rng.uniform();
    rng.normal();  // leaves a cached Box-Muller variate behind
    const RngState saved = rng.state();

    std::vector<double> expected;
    for (int i = 0; i < 16; ++i) expected.push_back(rng.normal());

    Rng other(999);  // unrelated seed; state() must fully override it
    other.set_state(saved);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(expected[static_cast<std::size_t>(i)], other.normal());
    }
}

// --------------------------------------------------- checkpoint file ----

SearchCheckpoint sample_checkpoint() {
    SearchCheckpoint cp;
    cp.run_id = "unit test run";
    cp.build = "v1-test-dirty";
    cp.space_digest = 0x1234ABCDULL;
    cp.scenario_digest = 0xFEDC4321ULL;
    cp.context_key = 77;
    cp.context_stamp = 3;
    cp.trials_done = 2;
    Rng rng(5);
    rng.normal();
    cp.run_rng = rng.state();
    cp.bo.rng = Rng(9).state();
    cp.bo.initial_used = 1;
    cp.bo.initial_plan = {{0.125, -0.0}, {0.6, 1e-300}};
    cp.bo.trials = {{{0.1, 0.2}, 0.875}, {{0.3, 0.4}, -1.5e-17}};
    cp.cache = {{{0.1, 0.2}, 0.875}};
    cp.model_bits = {0u, 0x3F800000u, 0x80000000u, 0x7F7FFFFFu, 1u};
    cp.model_rngs = {Rng(1).state(), Rng(2).state()};
    cp.model_digest = 0xD16E57ULL;
    cp.bo.trust_region.length = 0.2;
    cp.bo.trust_region.successes = 1;
    cp.bo.trust_region.failures = 4;
    cp.bo.trust_region.restarts = 2;
    return cp;
}

TEST(CheckpointFileTest, RoundTripIsBitExact) {
    const std::string path = temp_path("roundtrip.ckpt");
    const SearchCheckpoint cp = sample_checkpoint();
    save_checkpoint(cp, path);
    const SearchCheckpoint loaded = load_checkpoint(path);

    EXPECT_EQ(cp.run_id, loaded.run_id);
    EXPECT_EQ(cp.build, loaded.build);
    EXPECT_EQ(cp.space_digest, loaded.space_digest);
    EXPECT_EQ(cp.scenario_digest, loaded.scenario_digest);
    EXPECT_EQ(cp.context_key, loaded.context_key);
    EXPECT_EQ(cp.context_stamp, loaded.context_stamp);
    EXPECT_EQ(cp.trials_done, loaded.trials_done);
    EXPECT_EQ(cp.run_rng, loaded.run_rng);
    EXPECT_EQ(cp.bo.rng, loaded.bo.rng);
    EXPECT_EQ(cp.bo.initial_used, loaded.bo.initial_used);
    ASSERT_EQ(cp.bo.initial_plan, loaded.bo.initial_plan);
    ASSERT_EQ(cp.bo.trials.size(), loaded.bo.trials.size());
    for (std::size_t i = 0; i < cp.bo.trials.size(); ++i) {
        EXPECT_EQ(cp.bo.trials[i].x, loaded.bo.trials[i].x);
        EXPECT_EQ(cp.bo.trials[i].y, loaded.bo.trials[i].y);
    }
    EXPECT_EQ(cp.cache, loaded.cache);
    EXPECT_EQ(cp.model_bits, loaded.model_bits);
    ASSERT_EQ(cp.model_rngs.size(), loaded.model_rngs.size());
    for (std::size_t i = 0; i < cp.model_rngs.size(); ++i) {
        EXPECT_EQ(cp.model_rngs[i], loaded.model_rngs[i]);
    }
    EXPECT_EQ(cp.model_digest, loaded.model_digest);
    EXPECT_EQ(cp.bo.trust_region.length, loaded.bo.trust_region.length);
    EXPECT_EQ(cp.bo.trust_region.successes,
              loaded.bo.trust_region.successes);
    EXPECT_EQ(cp.bo.trust_region.failures, loaded.bo.trust_region.failures);
    EXPECT_EQ(cp.bo.trust_region.restarts, loaded.bo.trust_region.restarts);
    // -0.0 must survive as -0.0 (bit pattern, not value, equality).
    EXPECT_TRUE(std::signbit(loaded.bo.initial_plan[0][1]));
    fs::remove(path);
}

TEST(CheckpointFileTest, LoadsVersion2WithoutTrustRegionRecord) {
    // A v2 file is a v3 file minus the trust_region record with a v2
    // header — exactly what the pre-v3 writer produced.  It must load with
    // the trust region at its "freshly initialized" default (length 0, so
    // BayesOpt::import_state installs the configured initial edge).
    const std::string path = temp_path("v2.ckpt");
    save_checkpoint(sample_checkpoint(), path);
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::string header = "bayesft-checkpoint 3\n";
    ASSERT_EQ(text.rfind(header, 0), 0U);
    text.replace(0, header.size(), "bayesft-checkpoint 2\n");
    const std::size_t tr_start = text.find("trust_region ");
    ASSERT_NE(tr_start, std::string::npos);
    const std::size_t tr_end = text.find('\n', tr_start);
    text.erase(tr_start, tr_end - tr_start + 1);
    {
        std::ofstream out(path);
        out << text;
    }

    const SearchCheckpoint loaded = load_checkpoint(path);
    const SearchCheckpoint cp = sample_checkpoint();
    EXPECT_EQ(cp.trials_done, loaded.trials_done);
    EXPECT_EQ(cp.bo.initial_used, loaded.bo.initial_used);
    EXPECT_EQ(cp.model_bits, loaded.model_bits);
    EXPECT_EQ(loaded.bo.trust_region.length, 0.0);
    EXPECT_EQ(loaded.bo.trust_region.successes, 0U);
    EXPECT_EQ(loaded.bo.trust_region.failures, 0U);
    EXPECT_EQ(loaded.bo.trust_region.restarts, 0U);
    fs::remove(path);
}

TEST(CheckpointFileTest, RejectsVersionsOutsideTheReadableRange) {
    const std::string path = temp_path("v1.ckpt");
    {
        std::ofstream out(path);
        out << "bayesft-checkpoint 1\n";
    }
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);
    {
        std::ofstream out(path);
        out << "bayesft-checkpoint 4\n";
    }
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);
    fs::remove(path);
}

TEST(ScenarioDigestTest, TrustRegionFoldsOnlyWhenEnabled) {
    // Disabled trust regions must leave every pre-existing scenario digest
    // (hence every v2 checkpoint) untouched, whatever the knob values;
    // enabling folds the knobs, so a resume under different trust-region
    // settings is rejected.
    bayesopt::BayesOptConfig base;
    const std::uint64_t plain = mix_bo_config(7, base);

    bayesopt::BayesOptConfig tweaked = base;
    tweaked.trust_region.activate_after = 123;
    tweaked.trust_region.initial_length = 0.7;
    EXPECT_EQ(mix_bo_config(7, tweaked), plain);

    bayesopt::BayesOptConfig enabled = base;
    enabled.trust_region.enabled = true;
    const std::uint64_t on = mix_bo_config(7, enabled);
    EXPECT_NE(on, plain);

    bayesopt::BayesOptConfig enabled_other = enabled;
    enabled_other.trust_region.activate_after += 1;
    EXPECT_NE(mix_bo_config(7, enabled_other), on);
}

TEST(CheckpointFileTest, SaveIsAtomicViaRename) {
    const std::string path = temp_path("atomic.ckpt");
    save_checkpoint(sample_checkpoint(), path);
    EXPECT_TRUE(checkpoint_exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    fs::remove(path);
}

TEST(CheckpointFileTest, LoadRejectsMissingCorruptAndForeignVersions) {
    EXPECT_THROW(load_checkpoint(temp_path("no_such_file.ckpt")),
                 std::runtime_error);

    const std::string path = temp_path("bad.ckpt");
    {
        std::ofstream out(path);
        out << "not a checkpoint at all\n";
    }
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);

    {
        std::ofstream out(path);
        out << "bayesft-checkpoint 999\n";
    }
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);

    // Truncation: drop the end marker (and the model_rngs payload).
    save_checkpoint(sample_checkpoint(), path);
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    {
        std::ofstream out(path);
        out << text.substr(0, text.size() / 2);
    }
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);
    fs::remove(path);
}

TEST(CheckpointFileTest, ValidateRejectsForeignScenario) {
    const SearchCheckpoint cp = sample_checkpoint();
    EXPECT_NO_THROW(validate_checkpoint(cp, cp.space_digest,
                                        cp.scenario_digest, "p"));
    EXPECT_THROW(
        validate_checkpoint(cp, cp.space_digest + 1, cp.scenario_digest,
                            "p"),
        std::runtime_error);
    EXPECT_THROW(
        validate_checkpoint(cp, cp.space_digest, cp.scenario_digest + 1,
                            "p"),
        std::runtime_error);
}

// ------------------------------------------------- model snapshots ----

TEST(ModelSnapshotTest, RoundTripRestoresWeightsAndMaskStreams) {
    models::MlpOptions options;
    options.input_features = 2;
    options.hidden = 8;
    options.classes = 3;
    Rng rng(4);
    models::ModelHandle model = models::make_mlp(options, rng);
    const std::vector<std::uint32_t> bits = snapshot_model(*model.net);
    const std::vector<RngState> rngs = snapshot_model_rngs(*model.net);
    const std::uint64_t digest = model_structure_digest(*model.net);
    ASSERT_FALSE(bits.empty());
    ASSERT_EQ(rngs.size(), model.dropout_sites.size());

    // Perturb everything, then restore.
    for (nn::Parameter* p : model.net->parameters()) {
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            p->value.data()[i] += 1.0F;
        }
    }
    restore_model(*model.net, bits);
    restore_model_rngs(*model.net, rngs);
    EXPECT_EQ(bits, snapshot_model(*model.net));
    EXPECT_EQ(digest, model_structure_digest(*model.net));

    // A structurally different model digests differently and rejects the
    // payload.
    models::MlpOptions other = options;
    other.hidden = 9;
    Rng other_rng(4);
    models::ModelHandle wrong = models::make_mlp(other, other_rng);
    EXPECT_NE(digest, model_structure_digest(*wrong.net));
    EXPECT_THROW(restore_model(*wrong.net, bits), std::runtime_error);
}

// ------------------------------------------------ engine memo cache ----

TEST(EngineCacheTest, ExportImportServesDuplicatesAcrossEngines) {
    EvaluationEngine engine(EngineConfig{1, true});
    EvalContext context;
    context.key = 42;
    std::size_t evaluations = 0;
    const PointEvaluator evaluator = [&](const Alpha& point, Rng&) {
        ++evaluations;
        return point[0] * 10.0;
    };
    const std::vector<Alpha> points = {{0.1}, {0.2}};
    engine.evaluate_points(points, evaluator, context);
    EXPECT_EQ(2u, evaluations);
    const auto entries = engine.export_cache();
    ASSERT_EQ(2u, entries.size());
    EXPECT_LT(entries[0].first, entries[1].first);  // deterministic order

    EvaluationEngine fresh(EngineConfig{1, true});
    fresh.import_cache(context, entries);
    const BatchOutcome outcome =
        fresh.evaluate_points(points, evaluator, context);
    EXPECT_EQ(2u, evaluations);  // both served from the imported cache
    EXPECT_EQ(2u, outcome.cache_hits);
    EXPECT_EQ(1.0, outcome.utilities[0]);
    EXPECT_EQ(2.0, outcome.utilities[1]);
}

// --------------------------------------------------------- run store ----

TEST(RunStoreTest, AppendParseAndSummarize) {
    const std::string root = temp_path("store_dir");
    fs::remove_all(root);
    RunStore store(root);

    auto trial = [&](std::uint64_t seed, std::uint64_t index,
                     double objective) {
        RunRecord r;
        r.kind = "trial";
        r.scenario = "toy";
        r.family = "toy";
        r.seed = seed;
        r.trial = index;
        r.point = "alpha0=0.100";
        r.objective = objective;
        r.build = "stamp";
        return r;
    };
    RunRecord summary;
    summary.kind = "summary";
    summary.scenario = "toy";
    summary.family = "toy";
    summary.seed = 0;
    summary.trials = 3;
    summary.best_trial = 2;
    summary.best_point = "alpha0=0.100";
    summary.best_objective = 0.9;
    summary.seconds = 1.25;
    summary.annotation = "norm=batch \"quoted\"";
    summary.build = "stamp";

    RunRecord summary1 = summary;
    summary1.seed = 1;
    summary1.trials = 2;
    summary1.best_trial = 1;
    summary1.best_objective = 0.8;
    store.append("toy", {trial(0, 0, 0.5), trial(0, 1, 0.7),
                         trial(0, 2, 0.9), summary});
    store.append("toy", {trial(1, 0, 0.6), trial(1, 1, 0.8), summary1});
    // Seed 2 was interrupted and never resumed (no summary): its partial
    // series — even with the highest single objective — must not enter
    // the aggregates.
    store.append("toy", {trial(2, 0, 0.95)});

    const std::vector<RunRecord> records = store.load_all();
    ASSERT_EQ(8u, records.size());
    EXPECT_EQ("trial", records[0].kind);
    EXPECT_EQ(0.5, records[0].objective);  // %.17g round trip is exact
    EXPECT_EQ("summary", records[3].kind);
    EXPECT_EQ("norm=batch \"quoted\"", records[3].annotation);
    EXPECT_EQ(1.25, records[3].seconds);

    const auto summaries = summarize_runs(records, 0.99);
    ASSERT_EQ(1u, summaries.size());
    const ScenarioSummary& s = summaries[0];
    EXPECT_EQ("toy", s.scenario);
    EXPECT_EQ(2u, s.runs);
    EXPECT_EQ(2u, s.seeds);  // seed 2 is incomplete
    EXPECT_EQ(6u, s.trial_records);
    EXPECT_EQ(0.9, s.best_objective);
    EXPECT_EQ(0u, s.best_seed);
    EXPECT_NEAR(0.85, s.mean_best, 1e-12);   // (0.9 + 0.8) / 2
    EXPECT_NEAR(0.05, s.stddev_best, 1e-12);
    // Seed 0 reaches 0.99 * 0.9 at trial 3; seed 1 at trial 2.
    EXPECT_NEAR(2.5, s.mean_trials_to_target, 1e-12);
    fs::remove_all(root);
}

TEST(RunStoreTest, ValidateOutputFileGivesClearErrors) {
    const std::string dir = temp_path("out_dir");
    fs::create_directories(dir);
    EXPECT_THROW(validate_output_file(dir), std::runtime_error);
    EXPECT_THROW(
        validate_output_file(temp_path("missing_parent") + "/x.json"),
        std::runtime_error);

    const std::string ok = temp_path("ok.json");
    fs::remove(ok);
    EXPECT_NO_THROW(validate_output_file(ok));
    EXPECT_FALSE(fs::exists(ok));  // the probe cleans up after itself

    // An existing file stays untouched (append-mode probe).
    {
        std::ofstream out(ok);
        out << "payload";
    }
    EXPECT_NO_THROW(validate_output_file(ok));
    std::ifstream in(ok);
    std::string text;
    std::getline(in, text);
    EXPECT_EQ("payload", text);
    fs::remove_all(dir);
    fs::remove(ok);
}

// ------------------------------------------- kill/resume: bayesft ----

class ResumeTortureFixture : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(21);
        const data::Dataset full = data::make_blobs(200, 3, 4.0, 0.6, rng);
        Rng split_rng(22);
        auto parts = data::split(full, 0.3, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }

    static models::ModelHandle make_model() {
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 10;
        options.hidden_layers = 2;  // two searchable dropout sites
        options.classes = 3;
        Rng rng(31);
        return models::make_mlp(options, rng);
    }

    static BayesFTConfig bayesft_config(std::size_t batch,
                                        std::size_t threads) {
        BayesFTConfig config;
        config.iterations = 5;
        config.epochs_per_iteration = 1;
        config.train.epochs = 1;
        config.train.batch_size = 32;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.bo.initial_random_trials = 2;
        config.bo.candidates = 64;
        config.bo.local_candidates = 16;
        config.warmup_epochs = 1;
        config.final_epochs = 1;
        config.max_dropout_rate = 0.5;
        config.batch = batch;
        config.eval_threads = threads;
        return config;
    }

    static ArchSearchConfig arch_config(std::size_t batch,
                                        std::size_t threads) {
        ArchSearchConfig config;
        config.iterations = 5;
        config.train.epochs = 1;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.bo.initial_random_trials = 2;
        config.bo.candidates = 64;
        config.bo.local_candidates = 16;
        config.final_epochs = 1;
        config.batch = batch;
        config.eval_threads = threads;
        return config;
    }

    static models::ArchFamily tiny_family() {
        models::MlpOptions base;
        base.input_features = 2;
        base.hidden = 12;
        base.classes = 3;
        return models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                       /*max_dropout_rate=*/0.5);
    }

    static void expect_same_trials(const std::vector<bayesopt::Trial>& a,
                                   const std::vector<bayesopt::Trial>& b) {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].x, b[i].x) << "trial " << i;
            EXPECT_EQ(a[i].y, b[i].y) << "trial " << i;
        }
    }

    /// Interrupt after `stop` trials, resume to completion, and demand
    /// bitwise equality with `reference` (results + final weights).
    void check_bayesft_resume(const BayesFTConfig& base,
                              const BayesFTResult& reference,
                              const std::vector<float>& reference_weights,
                              std::size_t stop,
                              const std::string& path) const {
        fs::remove(path);
        BayesFTConfig config = base;
        config.checkpoint.path = path;
        config.checkpoint.stop_after = stop;
        {
            models::ModelHandle model = make_model();
            Rng rng(41);
            const BayesFTResult partial =
                bayesft_search(model, train_, test_, config, rng);
            ASSERT_FALSE(partial.completed) << "stop=" << stop;
            ASSERT_TRUE(checkpoint_exists(path));
        }
        models::ModelHandle model = make_model();
        Rng rng(41);
        config.checkpoint.stop_after = 0;
        const BayesFTResult resumed =
            bayesft_search(model, train_, test_, config, rng);
        EXPECT_TRUE(resumed.completed);
        EXPECT_GE(resumed.resumed_trials, stop);
        EXPECT_EQ(reference.best_alpha, resumed.best_alpha)
            << "stop=" << stop;
        EXPECT_EQ(reference.best_utility, resumed.best_utility)
            << "stop=" << stop;
        expect_same_trials(reference.trials, resumed.trials);
        EXPECT_EQ(reference.trial_points, resumed.trial_points);
        EXPECT_EQ(reference_weights, weights_of(*model.net))
            << "stop=" << stop;
        fs::remove(path);
    }

    void bayesft_torture(std::size_t batch, std::size_t threads,
                         const std::string& tag) const {
        const BayesFTConfig config = bayesft_config(batch, threads);
        models::ModelHandle reference_model = make_model();
        Rng reference_rng(41);
        const BayesFTResult reference = bayesft_search(
            reference_model, train_, test_, config, reference_rng);
        const std::vector<float> reference_weights =
            weights_of(*reference_model.net);
        const std::string path = temp_path("bayesft_" + tag + ".ckpt");

        // A checkpoint-enabled run that is never interrupted must already
        // be bit-identical (writing snapshots must not perturb anything).
        {
            fs::remove(path);
            BayesFTConfig checkpointed = config;
            checkpointed.checkpoint.path = path;
            models::ModelHandle model = make_model();
            Rng rng(41);
            const BayesFTResult straight =
                bayesft_search(model, train_, test_, checkpointed, rng);
            EXPECT_EQ(reference.best_alpha, straight.best_alpha);
            EXPECT_EQ(reference.best_utility, straight.best_utility);
            EXPECT_EQ(reference_weights, weights_of(*model.net));
            fs::remove(path);
        }
        // Interrupt at every trial(-group) boundary.
        for (std::size_t stop = 1; stop < config.iterations; ++stop) {
            check_bayesft_resume(config, reference, reference_weights, stop,
                                 path);
        }
    }

    data::Dataset train_;
    data::Dataset test_;
};

TEST_F(ResumeTortureFixture, BayesftResumeBitIdenticalSerial1Thread) {
    bayesft_torture(/*batch=*/1, /*threads=*/1, "serial");
}

TEST_F(ResumeTortureFixture, BayesftResumeBitIdenticalBatched4Threads) {
    bayesft_torture(/*batch=*/2, /*threads=*/4, "batched");
}

TEST_F(ResumeTortureFixture, BayesftResumeRejectsDifferentSeedOrConfig) {
    const std::string path = temp_path("bayesft_guard.ckpt");
    fs::remove(path);
    BayesFTConfig config = bayesft_config(1, 1);
    config.checkpoint.path = path;
    config.checkpoint.stop_after = 2;
    {
        models::ModelHandle model = make_model();
        Rng rng(41);
        bayesft_search(model, train_, test_, config, rng);
    }
    config.checkpoint.stop_after = 0;
    {
        // Different seed => different entry RNG state => digest mismatch.
        models::ModelHandle model = make_model();
        Rng rng(42);
        EXPECT_THROW(bayesft_search(model, train_, test_, config, rng),
                     std::runtime_error);
    }
    {
        // Different objective configuration is rejected too.
        BayesFTConfig other = config;
        other.objective.sigmas = {0.9};
        models::ModelHandle model = make_model();
        Rng rng(41);
        EXPECT_THROW(bayesft_search(model, train_, test_, other, rng),
                     std::runtime_error);
    }
    {
        // Different architecture: scenario digests match, model digest
        // must not.
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 14;
        options.hidden_layers = 2;
        options.classes = 3;
        Rng model_rng(31);
        models::ModelHandle model = models::make_mlp(options, model_rng);
        Rng rng(41);
        EXPECT_THROW(bayesft_search(model, train_, test_, config, rng),
                     std::runtime_error);
    }
    fs::remove(path);
}

// ---------------------------------------- kill/resume: arch search ----

TEST_F(ResumeTortureFixture, ArchSearchResumeBitIdenticalSerialAndBatched) {
    for (const auto& [batch, threads, tag] :
         {std::tuple<std::size_t, std::size_t, const char*>{1, 1, "s"},
          std::tuple<std::size_t, std::size_t, const char*>{2, 4, "b"}}) {
        const models::ArchFamily family = tiny_family();
        const ArchSearchConfig config = arch_config(batch, threads);
        Rng reference_rng(51);
        const ArchSearchResult reference =
            arch_search(family, train_, test_, config, reference_rng);
        const std::vector<float> reference_weights =
            weights_of(*reference.best_model.net);
        const std::string path =
            temp_path(std::string("arch_") + tag + ".ckpt");

        for (std::size_t stop = 1; stop < config.iterations; ++stop) {
            fs::remove(path);
            ArchSearchConfig interrupted = config;
            interrupted.checkpoint.path = path;
            interrupted.checkpoint.stop_after = stop;
            {
                Rng rng(51);
                const ArchSearchResult partial = arch_search(
                    family, train_, test_, interrupted, rng);
                ASSERT_FALSE(partial.completed);
                ASSERT_FALSE(partial.best_model.net);
                ASSERT_TRUE(checkpoint_exists(path));
            }
            Rng rng(51);
            interrupted.checkpoint.stop_after = 0;
            const ArchSearchResult resumed =
                arch_search(family, train_, test_, interrupted, rng);
            EXPECT_TRUE(resumed.completed);
            EXPECT_EQ(reference.best_point.values,
                      resumed.best_point.values)
                << tag << " stop=" << stop;
            EXPECT_EQ(reference.best_utility, resumed.best_utility);
            expect_same_trials(reference.trials, resumed.trials);
            EXPECT_EQ(reference_weights,
                      weights_of(*resumed.best_model.net))
                << tag << " stop=" << stop;
            fs::remove(path);
        }
    }
}

}  // namespace
}  // namespace bayesft::core
