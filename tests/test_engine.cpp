// EvaluationEngine + experiment registry: serial bit-identity of the q = 1
// path, memoization-cache behaviour, batch diversity, thread invariance of
// batched search, and registry lookup/run.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "bayesopt/bayesopt.hpp"
#include "core/bayesft.hpp"
#include "core/engine.hpp"
#include "core/objective.hpp"
#include "core/registry.hpp"
#include "data/toy.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {
namespace {

class EngineFixture : public ::testing::Test {
protected:
    static models::ModelHandle make_model(Rng& rng) {
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 16;
        options.hidden_layers = 2;
        options.classes = 3;
        return models::make_mlp(options, rng);
    }

    static BayesFTConfig small_config() {
        BayesFTConfig config;
        config.iterations = 4;
        config.epochs_per_iteration = 1;
        config.train.epochs = 1;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.warmup_epochs = 1;
        config.final_epochs = 1;
        return config;
    }

    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(1);
        const data::Dataset full = data::make_blobs(300, 3, 4.0, 0.6, rng);
        Rng split_rng(2);
        auto parts = data::split(full, 0.3, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }

    static std::vector<float> weights_of(nn::Module& net) {
        std::vector<float> values;
        for (const nn::Parameter* p : net.parameters()) {
            values.insert(values.end(), p->value.data(),
                          p->value.data() + p->value.size());
        }
        return values;
    }

    data::Dataset train_;
    data::Dataset test_;
};

/// The pre-engine serial loop, reproduced verbatim: suggest -> install ->
/// train E epochs -> drift utility -> observe.  The engine's q = 1 path
/// must match it bit for bit.  Deliberately built on the raw
/// BoxBounds::uniform + ArdSquaredExponential machinery (the pre-ParamSpace
/// code path), so this comparison also pins the typed-space refactor:
/// bayesft_search now routes through ParamSpace::dropout, whose encoded
/// bounds, kernel values, projection, and RNG streams must reproduce the
/// historical path exactly (weights and utility trace compared below).
BayesFTResult reference_serial_search(models::ModelHandle& model,
                                      const data::Dataset& train_set,
                                      const data::Dataset& validation_set,
                                      const BayesFTConfig& config, Rng& rng) {
    const std::size_t dims = model.dropout_sites.size();
    auto bounds =
        bayesopt::BoxBounds::uniform(dims, 0.0, config.max_dropout_rate);
    auto kernel = std::make_shared<bayesopt::ArdSquaredExponential>(
        dims, config.kernel_inverse_scale);
    bayesopt::BayesOpt bo(bounds, kernel,
                          bayesopt::make_acquisition(config.acquisition),
                          config.bo, rng.split());
    nn::TrainConfig epoch_config = config.train;
    epoch_config.epochs = config.epochs_per_iteration;
    if (config.warmup_epochs > 0) {
        model.set_dropout_rates(std::vector<double>(dims, 0.0));
        nn::TrainConfig warmup = config.train;
        warmup.epochs = config.warmup_epochs;
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             warmup, rng);
    }
    for (std::size_t t = 0; t < config.iterations; ++t) {
        const bayesopt::Point alpha = bo.suggest();
        model.set_dropout_rates(alpha);
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             epoch_config, rng);
        const double utility =
            drift_utility(*model.net, validation_set.images,
                          validation_set.labels, config.objective, rng);
        bo.observe(alpha, utility);
    }
    BayesFTResult result;
    const auto best = bo.best();
    result.best_alpha = best->x;
    result.best_utility = best->y;
    result.trials = bo.trials();
    model.set_dropout_rates(result.best_alpha);
    if (config.final_epochs > 0) {
        nn::TrainConfig final_config = config.train;
        final_config.epochs = config.final_epochs;
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             final_config, rng);
    }
    return result;
}

TEST_F(EngineFixture, Q1BatchedSearchBitIdenticalToSerialLoop) {
    const BayesFTConfig config = small_config();

    Rng ref_model_rng(10);
    models::ModelHandle reference_model = make_model(ref_model_rng);
    Rng ref_rng(11);
    const BayesFTResult reference = reference_serial_search(
        reference_model, train_, test_, config, ref_rng);

    Rng engine_model_rng(10);
    models::ModelHandle engine_model = make_model(engine_model_rng);
    Rng engine_rng(11);
    BayesFTConfig engine_config = config;
    engine_config.batch = 1;
    const BayesFTResult batched =
        bayesft_search(engine_model, train_, test_, engine_config,
                       engine_rng);

    ASSERT_EQ(batched.trials.size(), reference.trials.size());
    for (std::size_t t = 0; t < reference.trials.size(); ++t) {
        EXPECT_EQ(batched.trials[t].x, reference.trials[t].x) << "trial " << t;
        EXPECT_EQ(batched.trials[t].y, reference.trials[t].y) << "trial " << t;
    }
    EXPECT_EQ(batched.best_alpha, reference.best_alpha);
    EXPECT_EQ(batched.best_utility, reference.best_utility);
    // Final weights must agree bit for bit as well.
    EXPECT_EQ(weights_of(*engine_model.net), weights_of(*reference_model.net));
}

TEST_F(EngineFixture, BatchedSearchInvariantToEngineThreadCount) {
    BayesFTConfig config = small_config();
    config.iterations = 6;
    config.batch = 3;

    std::vector<BayesFTResult> results;
    std::vector<std::vector<float>> weights;
    for (const std::size_t threads : {1UL, 2UL, 5UL}) {
        Rng model_rng(20);
        models::ModelHandle model = make_model(model_rng);
        Rng rng(21);
        BayesFTConfig run = config;
        run.eval_threads = threads;
        results.push_back(bayesft_search(model, train_, test_, run, rng));
        weights.push_back(weights_of(*model.net));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        ASSERT_EQ(results[i].trials.size(), results[0].trials.size());
        for (std::size_t t = 0; t < results[0].trials.size(); ++t) {
            EXPECT_EQ(results[i].trials[t].x, results[0].trials[t].x);
            EXPECT_EQ(results[i].trials[t].y, results[0].trials[t].y);
        }
        EXPECT_EQ(results[i].best_alpha, results[0].best_alpha);
        EXPECT_EQ(weights[i], weights[0]);
    }
}

TEST_F(EngineFixture, DuplicateCandidatesInBatchAreCacheHits) {
    Rng model_rng(30);
    models::ModelHandle model = make_model(model_rng);
    ObjectiveConfig objective;
    objective.sigmas = {0.4};
    objective.mc_samples = 2;
    const CandidateEvaluator evaluator =
        [&](models::ModelHandle& m, const Alpha&, Rng& r) {
            return drift_utility(*m.net, test_.images, test_.labels,
                                 objective, r);
        };

    EvaluationEngine engine;
    EvalContext context;
    Rng rng(31);
    const Alpha a{0.1, 0.2};
    const Alpha b{0.3, 0.05};
    const BatchOutcome first = engine.evaluate_batch(
        model, {a, b, a, a}, evaluator, rng, context, /*adopt_winner=*/false);
    EXPECT_EQ(first.cache_hits, 2U);  // two duplicates of `a`
    EXPECT_EQ(first.utilities[0], first.utilities[2]);
    EXPECT_EQ(first.utilities[0], first.utilities[3]);

    // Same context and stamp (weights unchanged): everything is memoized.
    const BatchOutcome second = engine.evaluate_batch(
        model, {a, b}, evaluator, rng, context, /*adopt_winner=*/false);
    EXPECT_EQ(second.cache_hits, 2U);
    EXPECT_EQ(second.utilities[0], first.utilities[0]);
    EXPECT_EQ(second.utilities[1], first.utilities[1]);
    EXPECT_EQ(engine.cache_hits(), 4U);

    // Bumping the stamp (weights changed) invalidates the memo.
    ++context.stamp;
    const BatchOutcome third = engine.evaluate_batch(
        model, {a, b}, evaluator, rng, context, /*adopt_winner=*/false);
    EXPECT_EQ(third.cache_hits, 0U);
}

TEST_F(EngineFixture, AdoptWinnerInstallsBestCandidate) {
    Rng model_rng(40);
    models::ModelHandle model = make_model(model_rng);
    // Utility is a deterministic function of alpha: highest at alpha[0].
    const CandidateEvaluator evaluator =
        [](models::ModelHandle& m, const Alpha&, Rng&) {
            return m.dropout_rates()[0];
        };
    EvaluationEngine engine;
    EvalContext context;
    Rng rng(41);
    const std::vector<Alpha> alphas{{0.1, 0.3}, {0.4, 0.1}, {0.2, 0.2}};
    const BatchOutcome outcome = engine.evaluate_batch(
        model, alphas, evaluator, rng, context, /*adopt_winner=*/true);
    EXPECT_EQ(outcome.best_index, 1U);
    EXPECT_EQ(model.dropout_rates(), alphas[1]);
}

TEST_F(EngineFixture, ModelHandleCloneRelocatesSites) {
    Rng rng(50);
    models::ModelHandle model = make_model(rng);
    model.set_dropout_rates({0.25, 0.4});
    const models::ModelHandle replica = model.clone();
    ASSERT_EQ(replica.dropout_sites.size(), model.dropout_sites.size());
    EXPECT_EQ(replica.dropout_rates(), model.dropout_rates());
    for (std::size_t i = 0; i < replica.dropout_sites.size(); ++i) {
        EXPECT_NE(replica.dropout_sites[i], model.dropout_sites[i]);
    }
    // Replica sites are independent of the original's.
    models::ModelHandle mutable_replica = model.clone();
    mutable_replica.set_dropout_rates({0.0, 0.0});
    EXPECT_EQ(model.dropout_rates(), (std::vector<double>{0.25, 0.4}));
}

TEST_F(EngineFixture, ClonedResnetAndStnRelocateSitesToo) {
    // The composite architectures exercise collect_children on Residual
    // and SpatialTransformer.
    Rng rng(51);
    models::ModelHandle resnet = models::make_resnet18_s(4, rng);
    const models::ModelHandle resnet_copy = resnet.clone();
    EXPECT_EQ(resnet_copy.dropout_sites.size(), resnet.dropout_sites.size());

    models::ModelHandle stn = models::make_stn_classifier(5, rng);
    const models::ModelHandle stn_copy = stn.clone();
    EXPECT_EQ(stn_copy.dropout_sites.size(), stn.dropout_sites.size());
}

TEST_F(EngineFixture, BatchedSearchReportsEngineStatistics) {
    BayesFTConfig config = small_config();
    config.iterations = 6;
    config.batch = 2;
    Rng model_rng(60);
    models::ModelHandle model = make_model(model_rng);
    Rng rng(61);
    const BayesFTResult result =
        bayesft_search(model, train_, test_, config, rng);
    EXPECT_EQ(result.trials.size(), 6U);
    EXPECT_EQ(model.dropout_rates(), result.best_alpha);
}

TEST(Registry, ListsAndFindsBuiltinExperiments) {
    const ExperimentRegistry& registry = ExperimentRegistry::instance();
    const std::vector<std::string> names = registry.names();
    EXPECT_GE(names.size(), 17U);
    const std::set<std::string> name_set(names.begin(), names.end());
    for (const char* expected :
         {"fig2a_dropout", "fig2b_normalization", "fig2c_depth",
          "fig2d_activation", "fig3a_mlp_mnist", "fig3b_lenet_mnist",
          "fig3c_alexnet_cifar", "fig3d_resnet_cifar", "fig3e_vgg_cifar",
          "fig3f_preact18", "fig3g_preact50", "fig3h_preact152",
          "fig3i_gtsrb", "fig3j_detection", "ablation_bo_vs_random",
          "ablation_mc_samples", "toy_mlp_blobs"}) {
        EXPECT_TRUE(name_set.count(expected)) << expected;
    }
    EXPECT_NE(registry.find("fig3a_mlp_mnist"), nullptr);
    EXPECT_EQ(registry.find("no_such_experiment"), nullptr);
    EXPECT_THROW(registry.run("no_such_experiment", {}),
                 std::invalid_argument);
}

TEST(Registry, RunsToyExperimentQuick) {
    set_log_level(LogLevel::Error);
    RunOptions options;
    options.quick = true;
    const RegistryResult result =
        ExperimentRegistry::instance().run("toy_mlp_blobs", options);
    EXPECT_EQ(result.experiment, "toy_mlp_blobs");
    EXPECT_EQ(result.x_label, "sigma");
    ASSERT_EQ(result.curves.size(), 2U);
    EXPECT_EQ(result.curves[0].label, "ERM");
    EXPECT_EQ(result.curves[1].label, "BayesFT");
    for (const NamedCurve& curve : result.curves) {
        ASSERT_EQ(curve.values.size(), result.xs.size());
        for (double v : curve.values) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
    EXPECT_FALSE(result.bayesft_alpha.empty());
    const ResultTable table = result.to_table("toy", 100.0);
    EXPECT_EQ(table.columns().size(), 3U);
    EXPECT_EQ(table.row_count(), result.xs.size());
}

TEST(Registry, BatchOptionReachesBayesFTSearch) {
    set_log_level(LogLevel::Error);
    RunOptions options;
    options.quick = true;
    options.batch = 2;
    const RegistryResult result =
        ExperimentRegistry::instance().run("toy_mlp_blobs", options);
    ASSERT_EQ(result.curves.size(), 2U);
    EXPECT_FALSE(result.bayesft_alpha.empty());
}

}  // namespace
}  // namespace bayesft::core
