// Fault injection: drift model statistics, RAII snapshot/restore semantics,
// and Monte-Carlo robustness evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "data/toy.hpp"
#include "fault/drift.hpp"
#include "fault/evaluator.hpp"
#include "fault/injector.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/trainer.hpp"

namespace bayesft::fault {
namespace {

std::vector<float> constant_weights(std::size_t n, float value) {
    return std::vector<float>(n, value);
}

TEST(LogNormalDrift, ZeroSigmaIsIdentity) {
    LogNormalDrift drift(0.0);
    Rng rng(1);
    auto w = constant_weights(100, 2.0F);
    drift.apply(w, rng);
    for (float v : w) EXPECT_FLOAT_EQ(v, 2.0F);
}

TEST(LogNormalDrift, PreservesSignAndMedian) {
    // theta' = theta * exp(lambda) never changes sign, and the multiplier's
    // median is 1 (Eq. 1).
    LogNormalDrift drift(0.8);
    Rng rng(2);
    auto w = constant_weights(100000, -1.0F);
    drift.apply(w, rng);
    std::size_t above = 0;
    for (float v : w) {
        EXPECT_LT(v, 0.0F);
        if (v < -1.0F) ++above;  // |w| grew
    }
    EXPECT_NEAR(static_cast<double>(above) / w.size(), 0.5, 0.01);
}

TEST(LogNormalDrift, MeanMultiplierMatchesTheory) {
    const double sigma = 0.6;
    LogNormalDrift drift(sigma);
    Rng rng(3);
    auto w = constant_weights(200000, 1.0F);
    drift.apply(w, rng);
    double mean = 0.0;
    for (float v : w) mean += v;
    mean /= static_cast<double>(w.size());
    EXPECT_NEAR(mean, std::exp(sigma * sigma / 2.0), 0.02);
}

TEST(LogNormalDrift, RejectsNegativeSigma) {
    EXPECT_THROW(LogNormalDrift(-0.1), std::invalid_argument);
}

TEST(GaussianAdditiveDrift, ShiftsByNoise) {
    GaussianAdditiveDrift drift(0.5);
    Rng rng(4);
    auto w = constant_weights(100000, 3.0F);
    drift.apply(w, rng);
    double mean = 0.0, var = 0.0;
    for (float v : w) mean += v;
    mean /= static_cast<double>(w.size());
    for (float v : w) var += (v - mean) * (v - mean);
    var /= static_cast<double>(w.size());
    EXPECT_NEAR(mean, 3.0, 0.01);
    EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(UniformScaleDrift, StaysWithinBand) {
    UniformScaleDrift drift(0.2);
    Rng rng(5);
    auto w = constant_weights(10000, 1.0F);
    drift.apply(w, rng);
    for (float v : w) {
        EXPECT_GE(v, 0.8F - 1e-6F);
        EXPECT_LE(v, 1.2F + 1e-6F);
    }
}

TEST(StuckAtZeroDrift, ZeroesExpectedFraction) {
    StuckAtZeroDrift drift(0.25);
    Rng rng(6);
    auto w = constant_weights(100000, 1.0F);
    drift.apply(w, rng);
    std::size_t zeros = 0;
    for (float v : w) {
        if (v == 0.0F) ++zeros;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / w.size(), 0.25, 0.01);
    EXPECT_THROW(StuckAtZeroDrift(1.5), std::invalid_argument);
}

TEST(SignFlipDrift, FlipsExpectedFraction) {
    SignFlipDrift drift(0.1);
    Rng rng(7);
    auto w = constant_weights(100000, 1.0F);
    drift.apply(w, rng);
    std::size_t flipped = 0;
    for (float v : w) {
        if (v < 0.0F) ++flipped;
    }
    EXPECT_NEAR(static_cast<double>(flipped) / w.size(), 0.1, 0.01);
}

TEST(ComposedDrift, AppliesStagesInSequence) {
    std::vector<std::unique_ptr<DriftModel>> stages;
    stages.push_back(std::make_unique<UniformScaleDrift>(0.0));  // identity
    stages.push_back(std::make_unique<StuckAtZeroDrift>(1.0));   // zero all
    ComposedDrift composed(std::move(stages));
    Rng rng(8);
    auto w = constant_weights(10, 5.0F);
    composed.apply(w, rng);
    for (float v : w) EXPECT_FLOAT_EQ(v, 0.0F);
    EXPECT_NE(composed.describe().find("StuckAtZero"), std::string::npos);
}

TEST(WeightSnapshot, RestoresOnDestruction) {
    Rng rng(9);
    nn::Sequential model;
    model.emplace<nn::Linear>(4, 4, rng);
    const Tensor before = model.parameters()[0]->value;
    {
        WeightSnapshot snapshot(model);
        LogNormalDrift drift(1.0);
        inject(model, drift, rng);
        EXPECT_FALSE(model.parameters()[0]->value.allclose(before, 1e-6F));
    }
    EXPECT_TRUE(model.parameters()[0]->value.equals(before));
}

TEST(WeightSnapshot, ManualRestoreIsIdempotent) {
    Rng rng(10);
    nn::Sequential model;
    model.emplace<nn::Linear>(3, 3, rng);
    WeightSnapshot snapshot(model);
    inject(model, LogNormalDrift(0.7), rng);
    snapshot.restore();
    const Tensor after_first = model.parameters()[0]->value;
    snapshot.restore();
    EXPECT_TRUE(model.parameters()[0]->value.equals(after_first));
    EXPECT_GT(snapshot.scalar_count(), 0U);
}

TEST(WeightSnapshot, SkipsNonDriftableParameters) {
    Rng rng(11);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 2, rng);
    model.parameters()[0]->driftable = false;
    model.parameters()[1]->driftable = false;
    WeightSnapshot snapshot(model);
    EXPECT_EQ(snapshot.scalar_count(), 0U);
    const Tensor before = model.parameters()[0]->value;
    inject(model, LogNormalDrift(1.0), rng);
    EXPECT_TRUE(model.parameters()[0]->value.equals(before));
}

class EvaluatorFixture : public ::testing::Test {
protected:
    void SetUp() override {
        Rng rng(12);
        blobs_ = data::make_blobs(300, 3, 4.0, 0.4, rng);
        model_ = std::make_unique<nn::Sequential>();
        model_->emplace<nn::Linear>(2, 16, rng);
        model_->emplace<nn::ReLU>();
        model_->emplace<nn::Linear>(16, 3, rng);
        nn::TrainConfig config;
        config.epochs = 15;
        nn::train_classifier(*model_, blobs_.images, blobs_.labels, config,
                             rng);
    }
    data::Dataset blobs_;
    std::unique_ptr<nn::Sequential> model_;
};

TEST_F(EvaluatorFixture, ZeroDriftEqualsCleanAccuracy) {
    Rng rng(13);
    const double clean =
        nn::evaluate_accuracy(*model_, blobs_.images, blobs_.labels);
    const auto report = evaluate_under_drift(
        *model_, blobs_.images, blobs_.labels, LogNormalDrift(0.0), 3, rng);
    EXPECT_DOUBLE_EQ(report.mean_accuracy, clean);
    EXPECT_DOUBLE_EQ(report.std_accuracy, 0.0);
}

TEST_F(EvaluatorFixture, WeightsRestoredAfterEvaluation) {
    Rng rng(14);
    const Tensor before = model_->parameters()[0]->value;
    evaluate_under_drift(*model_, blobs_.images, blobs_.labels,
                         LogNormalDrift(1.0), 5, rng);
    EXPECT_TRUE(model_->parameters()[0]->value.equals(before));
}

TEST_F(EvaluatorFixture, AccuracyDegradesWithSigma) {
    Rng rng(15);
    const auto curve = sigma_sweep(*model_, blobs_.images, blobs_.labels,
                                   {0.0, 2.0}, 8, rng);
    EXPECT_GT(curve[0], 0.9);          // trained model is accurate
    EXPECT_LT(curve[1], curve[0]);     // heavy drift hurts
}

TEST_F(EvaluatorFixture, ReportStatisticsConsistent) {
    Rng rng(16);
    const auto report = evaluate_under_drift(
        *model_, blobs_.images, blobs_.labels, LogNormalDrift(0.8), 10, rng);
    EXPECT_EQ(report.samples.size(), 10U);
    EXPECT_LE(report.min_accuracy, report.mean_accuracy);
    EXPECT_GE(report.max_accuracy, report.mean_accuracy);
    double mean = 0.0;
    for (double s : report.samples) mean += s;
    EXPECT_NEAR(report.mean_accuracy, mean / 10.0, 1e-12);
}

TEST_F(EvaluatorFixture, RejectsZeroSamples) {
    Rng rng(17);
    EXPECT_THROW(evaluate_under_drift(*model_, blobs_.images, blobs_.labels,
                                      LogNormalDrift(0.5), 0, rng),
                 std::invalid_argument);
}

TEST_F(EvaluatorFixture, CustomMetricVariant) {
    Rng rng(18);
    int calls = 0;
    const auto report = evaluate_metric_under_drift(
        *model_, LogNormalDrift(0.5), 4, rng, [&](nn::Module&) {
            ++calls;
            return 0.5;
        });
    EXPECT_EQ(calls, 4);
    EXPECT_DOUBLE_EQ(report.mean_accuracy, 0.5);
}

}  // namespace
}  // namespace bayesft::fault
