// The pluggable fault-model zoo: per-model semantics (stuck-at, bit-flip,
// variation, quantization), the FaultModel stateless/determinism contract,
// thread-count invariance of Monte-Carlo evaluation for every model, and a
// registry smoke test over the "faults" experiment family.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/objective.hpp"
#include "core/registry.hpp"
#include "data/toy.hpp"
#include "fault/drift.hpp"
#include "fault/evaluator.hpp"
#include "fault/model.hpp"
#include "fault/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/trainer.hpp"

namespace bayesft::fault {
namespace {

std::vector<float> ramp_weights(std::size_t n) {
    std::vector<float> w(n);
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.01F * static_cast<float>(i + 1) *
               (i % 2 == 0 ? 1.0F : -1.0F);
    }
    return w;
}

std::unique_ptr<FaultModel> make_composed_deploy() {
    std::vector<std::unique_ptr<FaultModel>> stages;
    stages.push_back(std::make_unique<QuantizationFault>(8));
    stages.push_back(std::make_unique<GaussianVariationFault>(0.2));
    stages.push_back(std::make_unique<LogNormalDrift>(0.3));
    return std::make_unique<ComposedFault>(std::move(stages));
}

/// One representative of every member of the zoo (legacy drift models
/// included — they share the contract).
std::vector<std::unique_ptr<FaultModel>> zoo() {
    std::vector<std::unique_ptr<FaultModel>> models;
    models.push_back(std::make_unique<LogNormalDrift>(0.4));
    models.push_back(std::make_unique<GaussianAdditiveDrift>(0.1));
    models.push_back(std::make_unique<UniformScaleDrift>(0.3));
    models.push_back(std::make_unique<StuckAtZeroDrift>(0.1));
    models.push_back(std::make_unique<SignFlipDrift>(0.05));
    models.push_back(std::make_unique<StuckAtFault>(0.1, 0.25));
    models.push_back(std::make_unique<BitFlipFault>(1e-2, 8));
    models.push_back(std::make_unique<GaussianVariationFault>(0.3));
    models.push_back(std::make_unique<QuantizationFault>(6));
    models.push_back(make_composed_deploy());
    return models;
}

// ------------------------------------------------ interface contract ----

TEST(FaultModelContract, EveryModelIsStateless) {
    for (const auto& model : zoo()) {
        EXPECT_TRUE(verify_stateless(*model)) << model->describe();
    }
}

/// A deliberately broken model: a hidden mutable counter makes the second
/// perturb call differ — exactly the bug class verify_stateless exists to
/// catch (and the debug-build assert in the evaluator would trip on).
class HiddenStateFault final : public FaultModel {
public:
    void perturb(std::span<float> weights, Rng&) const override {
        const float offset = static_cast<float>(++calls_);
        for (float& w : weights) w += offset;
    }
    std::unique_ptr<FaultModel> clone() const override {
        return std::make_unique<HiddenStateFault>();
    }
    std::string describe() const override { return "HiddenState"; }
    std::vector<double> params() const override { return {}; }

private:
    mutable int calls_ = 0;
};

TEST(FaultModelContract, VerifierCatchesHiddenState) {
    const HiddenStateFault broken;
    EXPECT_FALSE(verify_stateless(broken));
}

TEST(FaultModelContract, CloneMatchesOriginal) {
    for (const auto& model : zoo()) {
        const std::unique_ptr<FaultModel> copy = model->clone();
        ASSERT_NE(copy, nullptr) << model->describe();
        EXPECT_EQ(copy->describe(), model->describe());
        EXPECT_EQ(copy->params(), model->params());

        // Clone and original produce identical perturbations from
        // identical streams.
        auto a = ramp_weights(128);
        auto b = a;
        const Rng base(77);
        Rng ra = base.fork(3);
        Rng rb = base.fork(3);
        model->perturb(a, ra);
        copy->perturb(b, rb);
        EXPECT_EQ(a, b) << model->describe();
    }
}

// ----------------------------------------------------- StuckAtFault ----

TEST(StuckAtFault, FractionZeroIsIdentity) {
    const StuckAtFault fault(0.0, 0.5);
    auto w = ramp_weights(256);
    const auto before = w;
    Rng rng(1);
    fault.perturb(w, rng);
    EXPECT_EQ(w, before);
}

TEST(StuckAtFault, AllSa0GivesZeros) {
    const StuckAtFault fault(1.0, 0.0);
    auto w = ramp_weights(64);
    Rng rng(2);
    fault.perturb(w, rng);
    for (float v : w) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(StuckAtFault, AllSa1SticksAtFullScaleKeepingSign) {
    const StuckAtFault fault(1.0, 1.0);
    auto w = ramp_weights(64);
    float maxabs = 0.0F;
    for (float v : w) maxabs = std::max(maxabs, std::fabs(v));
    const auto before = w;
    Rng rng(3);
    fault.perturb(w, rng);
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_FLOAT_EQ(std::fabs(w[i]), maxabs);
        EXPECT_EQ(std::signbit(w[i]), std::signbit(before[i]));
    }
}

TEST(StuckAtFault, FaultsExpectedFraction) {
    const StuckAtFault fault(0.25, 0.0);
    std::vector<float> w(100000, 1.0F);
    Rng rng(4);
    fault.perturb(w, rng);
    std::size_t zeros = 0;
    for (float v : w) {
        if (v == 0.0F) ++zeros;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / w.size(), 0.25, 0.01);
}

TEST(StuckAtFault, RejectsBadParameters) {
    EXPECT_THROW(StuckAtFault(1.5), std::invalid_argument);
    EXPECT_THROW(StuckAtFault(0.1, -0.2), std::invalid_argument);
    EXPECT_THROW(StuckAtFault(0.1, 0.5, -1.0), std::invalid_argument);
}

// ----------------------------------------------------- BitFlipFault ----

TEST(BitFlipFault, ZeroProbabilityIsIdentity) {
    const BitFlipFault fault(0.0, 8);
    auto w = ramp_weights(256);
    const auto before = w;
    Rng rng(5);
    fault.perturb(w, rng);
    EXPECT_EQ(w, before);
}

TEST(BitFlipFault, OutputStaysOnQuantizationGrid) {
    const int bits = 8;
    const BitFlipFault fault(0.05, bits);
    auto w = ramp_weights(512);
    float maxabs = 0.0F;
    for (float v : w) maxabs = std::max(maxabs, std::fabs(v));
    const float scale =
        maxabs / static_cast<float>((1 << (bits - 1)) - 1);
    Rng rng(6);
    fault.perturb(w, rng);
    for (float v : w) {
        const float q = v / scale;
        EXPECT_NEAR(q, std::round(q), 1e-3F);
        // two's-complement range of the quantized view
        EXPECT_GE(q, -128.5F);
        EXPECT_LE(q, 127.5F);
    }
}

TEST(BitFlipFault, FlipRateMatchesProbability) {
    const BitFlipFault fault(0.1, 8);
    std::vector<float> w(20001, 0.5F);
    w[0] = 1.0F;  // pin the scale at max|w| = 1
    Rng rng(7);
    fault.perturb(w, rng);
    // The unflipped weights land on the quantized baseline round(0.5/s)*s;
    // any bit flip moves to a different grid point (dequantization is
    // injective in q), so "changed" counts exactly the flipped words.
    const float scale = 1.0F / 127.0F;
    const float baseline =
        scale * static_cast<float>(std::llround(0.5F / scale));
    std::size_t changed = 0;
    for (std::size_t i = 1; i < w.size(); ++i) {
        if (w[i] != baseline) ++changed;
    }
    // P(any of 8 bits flips) = 1 - 0.9^8 ~ 0.57
    EXPECT_NEAR(static_cast<double>(changed) /
                    static_cast<double>(w.size() - 1),
                0.57, 0.03);
}

TEST(BitFlipFault, RejectsBadParameters) {
    EXPECT_THROW(BitFlipFault(-0.1, 8), std::invalid_argument);
    EXPECT_THROW(BitFlipFault(0.1, 1), std::invalid_argument);
    EXPECT_THROW(BitFlipFault(0.1, 17), std::invalid_argument);
}

// ------------------------------------------- GaussianVariationFault ----

TEST(GaussianVariationFault, ZeroSigmaIsIdentity) {
    const GaussianVariationFault fault(0.0);
    auto w = ramp_weights(128);
    const auto before = w;
    Rng rng(8);
    fault.perturb(w, rng);
    EXPECT_EQ(w, before);
}

TEST(GaussianVariationFault, MultiplierHasUnitMean) {
    // Unlike drift (median-one), variation is mean-one: mu = -sigma^2/2.
    const double sigma = 0.5;
    const GaussianVariationFault fault(sigma);
    std::vector<float> w(200000, 1.0F);
    Rng rng(9);
    fault.perturb(w, rng);
    double mean = 0.0;
    for (float v : w) {
        EXPECT_GT(v, 0.0F);  // multiplicative: sign preserved
        mean += v;
    }
    mean /= static_cast<double>(w.size());
    EXPECT_NEAR(mean, 1.0, 0.01);
}

// ---------------------------------------------------- QuantizationFault ----

TEST(QuantizationFault, RoundTripBound) {
    const int bits = 6;
    const QuantizationFault fault(bits);
    auto w = ramp_weights(512);
    const auto before = w;
    float maxabs = 0.0F;
    for (float v : w) maxabs = std::max(maxabs, std::fabs(v));
    const float scale =
        maxabs / static_cast<float>((1 << (bits - 1)) - 1);
    Rng rng(10);
    fault.perturb(w, rng);
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_LE(std::fabs(w[i] - before[i]), scale / 2.0F + 1e-6F);
    }
}

TEST(QuantizationFault, DeterministicAndRngFree) {
    const QuantizationFault fault(4);
    auto a = ramp_weights(128);
    auto b = a;
    Rng ra(11);
    Rng rb(999);  // different stream: must not matter
    fault.perturb(a, ra);
    fault.perturb(b, rb);
    EXPECT_EQ(a, b);

    // Idempotent: quantizing a quantized buffer changes nothing (maxabs is
    // preserved exactly, so the grid is identical).
    auto c = a;
    fault.perturb(c, ra);
    EXPECT_EQ(c, a);
}

TEST(QuantizationFault, AllZeroSpanStaysZero) {
    const QuantizationFault fault(8);
    std::vector<float> w(32, 0.0F);
    Rng rng(12);
    fault.perturb(w, rng);
    for (float v : w) EXPECT_FLOAT_EQ(v, 0.0F);
}

// ----------------------------------------------------- ComposedFault ----

TEST(ComposedFault, OrderMatters) {
    // zero-then-noise leaves pure noise; noise-then-zero leaves zeros.
    auto make_chain = [](bool zero_first) {
        std::vector<std::unique_ptr<FaultModel>> stages;
        if (zero_first) {
            stages.push_back(std::make_unique<StuckAtFault>(1.0, 0.0));
            stages.push_back(std::make_unique<GaussianAdditiveDrift>(0.5));
        } else {
            stages.push_back(std::make_unique<GaussianAdditiveDrift>(0.5));
            stages.push_back(std::make_unique<StuckAtFault>(1.0, 0.0));
        }
        return ComposedFault(std::move(stages));
    };
    const ComposedFault zero_then_noise = make_chain(true);
    const ComposedFault noise_then_zero = make_chain(false);

    const Rng base(13);
    auto a = ramp_weights(64);
    auto b = a;
    Rng ra = base.fork(0);
    Rng rb = base.fork(0);
    zero_then_noise.perturb(a, ra);
    noise_then_zero.perturb(b, rb);

    for (float v : b) EXPECT_FLOAT_EQ(v, 0.0F);
    bool any_nonzero = false;
    for (float v : a) any_nonzero = any_nonzero || v != 0.0F;
    EXPECT_TRUE(any_nonzero);
    EXPECT_NE(a, b);
}

TEST(ComposedFault, DescribeAndParamsConcatenateStages) {
    const std::unique_ptr<FaultModel> deploy = make_composed_deploy();
    const std::string text = deploy->describe();
    EXPECT_NE(text.find("Quantization"), std::string::npos);
    EXPECT_NE(text.find("GaussianVariation"), std::string::npos);
    EXPECT_NE(text.find("->"), std::string::npos);
    // {bits} + {sigma} + {sigma}
    EXPECT_EQ(deploy->params().size(), 3U);
}

TEST(ComposedFault, EmptyChainIsIdentityAndNullStageThrows) {
    // Pre-zoo ComposedDrift accepted an empty stage list as the identity;
    // the compat alias keeps that contract.
    const ComposedFault empty(std::vector<std::unique_ptr<FaultModel>>{});
    auto w = ramp_weights(32);
    const auto before = w;
    Rng rng(14);
    empty.perturb(w, rng);
    EXPECT_EQ(w, before);
    EXPECT_EQ(empty.params().size(), 0U);

    std::vector<std::unique_ptr<FaultModel>> stages;
    stages.push_back(nullptr);
    EXPECT_THROW(ComposedFault(std::move(stages)), std::invalid_argument);
}

// ------------------------------------- thread-count-invariant MC eval ----

class FaultEvalFixture : public ::testing::Test {
protected:
    void SetUp() override {
        Rng rng(21);
        blobs_ = data::make_blobs(256, 3, 4.0, 0.4, rng);
        model_ = std::make_unique<nn::Sequential>();
        model_->emplace<nn::Linear>(2, 24, rng);
        model_->emplace<nn::ReLU>();
        model_->emplace<nn::Linear>(24, 3, rng);
        nn::TrainConfig config;
        config.epochs = 8;
        nn::train_classifier(*model_, blobs_.images, blobs_.labels, config,
                             rng);
    }
    data::Dataset blobs_;
    std::unique_ptr<nn::Sequential> model_;
};

TEST_F(FaultEvalFixture, EveryModelIsThreadCountInvariant) {
    for (const auto& fault : zoo()) {
        Rng serial_rng(31);
        const auto serial = evaluate_under_faults(
            *model_, blobs_.images, blobs_.labels, *fault, 8, serial_rng,
            1);
        Rng parallel_rng(31);
        const auto parallel = evaluate_under_faults(
            *model_, blobs_.images, blobs_.labels, *fault, 8, parallel_rng,
            4);
        EXPECT_EQ(serial.samples, parallel.samples) << fault->describe();
        EXPECT_DOUBLE_EQ(serial.mean_accuracy, parallel.mean_accuracy)
            << fault->describe();
    }
}

TEST_F(FaultEvalFixture, WeightsRestoredAfterEveryModel) {
    const Tensor before = model_->parameters()[0]->value;
    for (const auto& fault : zoo()) {
        Rng rng(32);
        evaluate_under_faults(*model_, blobs_.images, blobs_.labels, *fault,
                              3, rng);
        EXPECT_TRUE(model_->parameters()[0]->value.equals(before))
            << fault->describe();
    }
}

TEST_F(FaultEvalFixture, FaultUtilityMarginalizesOverConfiguredModels) {
    core::ObjectiveConfig benign;
    benign.faults.push_back(std::make_shared<QuantizationFault>(8));
    benign.mc_samples = 2;
    core::ObjectiveConfig harsh;
    harsh.faults.push_back(std::make_shared<StuckAtFault>(0.6, 0.5));
    harsh.mc_samples = 2;

    Rng rng_a(33);
    Rng rng_b(33);
    const double benign_utility = core::fault_utility(
        *model_, blobs_.images, blobs_.labels, benign, rng_a);
    const double harsh_utility = core::fault_utility(
        *model_, blobs_.images, blobs_.labels, harsh, rng_b);
    EXPECT_GT(benign_utility, harsh_utility);
}

TEST(ObjectiveDigest, SeparatesFaultConfigurations) {
    core::ObjectiveConfig drift_only;  // sigma-grid default
    core::ObjectiveConfig stuckat;
    stuckat.faults.push_back(std::make_shared<StuckAtFault>(0.1, 0.25));
    core::ObjectiveConfig stuckat_other;
    stuckat_other.faults.push_back(
        std::make_shared<StuckAtFault>(0.2, 0.25));

    const std::uint64_t a = core::objective_digest(drift_only);
    const std::uint64_t b = core::objective_digest(stuckat);
    const std::uint64_t c = core::objective_digest(stuckat_other);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_EQ(b, core::objective_digest(stuckat));  // stable
}

// -------------------------------------------------- registry smoke ----

TEST(FaultRegistry, EveryFaultsScenarioRunsQuick) {
    const core::ExperimentRegistry& registry =
        core::ExperimentRegistry::instance();
    core::RunOptions options;
    options.quick = true;
    std::size_t found = 0;
    for (const core::ExperimentSpec& spec : registry.list()) {
        if (spec.family != "faults") continue;
        ++found;
        const core::RegistryResult result = registry.run(spec.name, options);
        EXPECT_EQ(result.experiment, spec.name);
        EXPECT_FALSE(result.xs.empty()) << spec.name;
        ASSERT_FALSE(result.curves.empty()) << spec.name;
        for (const core::NamedCurve& curve : result.curves) {
            EXPECT_EQ(curve.values.size(), result.xs.size())
                << spec.name << " curve " << curve.label;
            for (double v : curve.values) {
                EXPECT_GE(v, 0.0);
                EXPECT_LE(v, 1.0);
            }
        }
    }
    EXPECT_EQ(found, 10U);  // the registered fault-family scenarios
}

}  // namespace
}  // namespace bayesft::fault
