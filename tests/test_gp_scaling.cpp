// Scalable-surrogate pins (docs/optimizer-scaling.md): the incremental
// GP operations (rank-1 Cholesky append, target update, truncation) and
// the pooled posterior path are bit-identical to the canonical full
// fit() / per-point posterior(); the trust-region regime adapts and
// restarts as specified; and a 1000-trial synthetic search produces
// byte-identical trial logs across thread counts (child processes under
// BAYESFT_NUM_THREADS) and across a mid-run kill/resume (export_state /
// import_state into a fresh optimizer).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/bayesopt.hpp"
#include "bayesopt/gp.hpp"
#include "bayesopt/kernel.hpp"
#include "utils/parallel.hpp"
#include "utils/rng.hpp"

namespace bayesft::bayesopt {
namespace {

std::shared_ptr<const Kernel> test_kernel() {
    return std::make_shared<ArdSquaredExponential>(3, 4.0);
}

void make_data(std::size_t n, std::vector<Point>& xs,
               std::vector<double>& ys, std::uint64_t seed = 5) {
    Rng rng(seed);
    xs.clear();
    ys.clear();
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal());
    }
}

// ------------------------------------------------------------------ //
// Incremental ops vs the canonical fit(), pinned bitwise.             //
// ------------------------------------------------------------------ //

TEST(GpIncremental, ObserveMatchesFullFitBitwise) {
    // Growing the GP one observation at a time must land on exactly the
    // posterior a from-scratch fit of the same data produces — alpha,
    // mean, and variance bits included.
    std::vector<Point> xs;
    std::vector<double> ys;
    make_data(24, xs, ys);
    const Point probe = {0.3, 0.6, 0.9};

    GaussianProcess grown(test_kernel(), 1e-4);
    grown.fit({xs[0], xs[1]}, {ys[0], ys[1]});
    for (std::size_t n = 2; n < xs.size(); ++n) {
        ASSERT_TRUE(grown.observe(xs[n], ys[n])) << "append at n=" << n;
        GaussianProcess direct(test_kernel(), 1e-4);
        direct.fit(std::vector<Point>(xs.begin(), xs.begin() + n + 1),
                   std::vector<double>(ys.begin(), ys.begin() + n + 1));
        const Posterior a = grown.posterior(probe);
        const Posterior b = direct.posterior(probe);
        ASSERT_EQ(a.mean, b.mean) << "n=" << n;
        ASSERT_EQ(a.variance, b.variance) << "n=" << n;
        ASSERT_EQ(grown.log_marginal_likelihood(),
                  direct.log_marginal_likelihood())
            << "n=" << n;
    }
}

TEST(GpIncremental, UpdateTargetMatchesFullFitBitwise) {
    std::vector<Point> xs;
    std::vector<double> ys;
    make_data(12, xs, ys);
    GaussianProcess incremental(test_kernel(), 1e-4);
    incremental.fit(xs, ys);
    incremental.update_target(7, 2.5);

    std::vector<double> updated = ys;
    updated[7] = 2.5;
    GaussianProcess direct(test_kernel(), 1e-4);
    direct.fit(xs, updated);

    const Point probe = {0.1, 0.2, 0.3};
    EXPECT_EQ(incremental.posterior(probe).mean,
              direct.posterior(probe).mean);
    EXPECT_EQ(incremental.posterior(probe).variance,
              direct.posterior(probe).variance);
}

TEST(GpIncremental, TruncateMatchesFitOnPrefixBitwise) {
    std::vector<Point> xs;
    std::vector<double> ys;
    make_data(16, xs, ys);
    GaussianProcess truncated(test_kernel(), 1e-4);
    truncated.fit(xs, ys);
    ASSERT_EQ(truncated.jitter(), 0.0);
    truncated.truncate(9);

    GaussianProcess direct(test_kernel(), 1e-4);
    direct.fit(std::vector<Point>(xs.begin(), xs.begin() + 9),
               std::vector<double>(ys.begin(), ys.begin() + 9));
    const Point probe = {0.8, 0.4, 0.2};
    EXPECT_EQ(truncated.observation_count(), 9U);
    EXPECT_EQ(truncated.posterior(probe).mean, direct.posterior(probe).mean);
    EXPECT_EQ(truncated.posterior(probe).variance,
              direct.posterior(probe).variance);
}

TEST(GpIncremental, ObserveRejectsWhenFactorCarriesJitter) {
    // Two identical points make the unjittered Gram singular, so fit()
    // needs jitter — and the incremental path must refuse rather than
    // silently diverge from the canonical factorization.
    const std::vector<Point> xs = {{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}};
    GaussianProcess gp(test_kernel(), 0.0);
    gp.fit(xs, {1.0, 1.0});
    ASSERT_GT(gp.jitter(), 0.0);
    EXPECT_FALSE(gp.observe({0.1, 0.2, 0.3}, 0.5));
    EXPECT_EQ(gp.observation_count(), 2U);
    EXPECT_THROW(gp.truncate(1), std::logic_error);
}

TEST(GpBatched, PosteriorBatchMatchesPerPointBitwise) {
    std::vector<Point> xs;
    std::vector<double> ys;
    make_data(40, xs, ys);
    GaussianProcess gp(test_kernel(), 1e-4);
    gp.fit(xs, ys);

    std::vector<Point> queries;
    Rng rng(9);
    for (std::size_t i = 0; i < 33; ++i) {
        queries.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    }
    const std::vector<Posterior> batched = gp.posterior_batch(queries);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const Posterior one = gp.posterior(queries[i]);
        EXPECT_EQ(batched[i].mean, one.mean) << "query " << i;
        EXPECT_EQ(batched[i].variance, one.variance) << "query " << i;
    }
}

// ------------------------------------------------------------------ //
// Batch fantasies: rollback restores the surrogate bit-for-bit.       //
// ------------------------------------------------------------------ //

BayesOptConfig small_config() {
    BayesOptConfig config;
    config.initial_random_trials = 4;
    config.candidates = 16;
    config.local_candidates = 8;
    config.noise_variance = 1e-4;
    return config;
}

TEST(BatchFantasies, RollbackRestoresSurrogateBitwise) {
    BayesOpt bo(BoxBounds::uniform(3, 0.0, 1.0), test_kernel(),
                std::make_unique<PosteriorMean>(), small_config(), Rng(3));
    Rng obj(4);
    for (std::size_t i = 0; i < 10; ++i) {
        Point x = bo.suggest();
        const double y = std::sin(3.0 * x[0]) - 0.5 * x[1] + 0.25 * x[2];
        bo.observe(std::move(x), y);
    }
    const Point probe = {0.4, 0.4, 0.4};
    const Posterior before = bo.surrogate().posterior(probe);
    const std::size_t count_before = bo.surrogate().observation_count();

    const std::vector<Point> batch = bo.suggest_batch(4);
    EXPECT_EQ(batch.size(), 4U);

    const Posterior after = bo.surrogate().posterior(probe);
    EXPECT_EQ(bo.surrogate().observation_count(), count_before);
    EXPECT_EQ(bo.trials().size(), 10U);
    EXPECT_EQ(before.mean, after.mean);
    EXPECT_EQ(before.variance, after.variance);
}

// ------------------------------------------------------------------ //
// Trust-region adaptation.                                            //
// ------------------------------------------------------------------ //

BayesOptConfig tr_config(std::size_t activate_after) {
    BayesOptConfig config = small_config();
    config.trust_region.enabled = true;
    config.trust_region.activate_after = activate_after;
    config.trust_region.initial_length = 0.4;
    config.trust_region.min_length = 0.05;
    config.trust_region.max_length = 1.0;
    config.trust_region.success_tolerance = 2;
    config.trust_region.failure_tolerance = 3;
    return config;
}

TEST(TrustRegion, MalformedConfigRejected) {
    BayesOptConfig config = tr_config(1);
    config.trust_region.min_length = 0.8;  // > initial_length
    EXPECT_THROW(BayesOpt(BoxBounds::uniform(3, 0.0, 1.0), test_kernel(),
                          std::make_unique<PosteriorMean>(), config, Rng(1)),
                 std::invalid_argument);
}

TEST(TrustRegion, ExpandsOnSuccessesShrinksOnFailuresAndRestarts) {
    // Drive the counters directly through observe(): improvements double
    // the edge at success_tolerance = 2, non-improvements halve it at
    // failure_tolerance = 3, and collapsing below min_length restarts.
    BayesOpt bo(BoxBounds::uniform(3, 0.0, 1.0), test_kernel(),
                std::make_unique<PosteriorMean>(), tr_config(0), Rng(7));
    Rng point_rng(8);
    auto fresh_point = [&] {
        return Point{point_rng.uniform(), point_rng.uniform(),
                     point_rng.uniform()};
    };
    ASSERT_DOUBLE_EQ(bo.trust_region().length, 0.4);

    // Two consecutive improvements: 0.4 -> 0.8.
    bo.observe(fresh_point(), 1.0);
    bo.observe(fresh_point(), 2.0);
    EXPECT_DOUBLE_EQ(bo.trust_region().length, 0.8);
    EXPECT_EQ(bo.trust_region().successes, 0U);

    // Two more: 0.8 -> 1.6 capped at max_length 1.0.
    bo.observe(fresh_point(), 3.0);
    bo.observe(fresh_point(), 4.0);
    EXPECT_DOUBLE_EQ(bo.trust_region().length, 1.0);

    // Nine non-improvements: three halvings, 1.0 -> 0.125.
    for (int i = 0; i < 9; ++i) bo.observe(fresh_point(), -1.0);
    EXPECT_DOUBLE_EQ(bo.trust_region().length, 0.125);
    EXPECT_EQ(bo.trust_region().restarts, 0U);

    // Three more: 0.125 -> 0.0625 < min_length 0.05? No — 0.0625 >= 0.05,
    // so one more round is needed for the restart.
    for (int i = 0; i < 3; ++i) bo.observe(fresh_point(), -1.0);
    EXPECT_DOUBLE_EQ(bo.trust_region().length, 0.0625);
    for (int i = 0; i < 3; ++i) bo.observe(fresh_point(), -1.0);
    EXPECT_DOUBLE_EQ(bo.trust_region().length, 0.4);
    EXPECT_EQ(bo.trust_region().restarts, 1U);

    // A failed trial never counts as an improvement, whatever its stored y.
    bo.observe(fresh_point(), 100.0, TrialStatus::kFailedNaN);
    EXPECT_EQ(bo.trust_region().failures, 1U);
}

TEST(TrustRegion, InactiveBeforeThresholdMatchesDisabledBitwise) {
    // With activation past the horizon, an enabled trust region must not
    // perturb a single proposal or RNG draw: the streams stay identical
    // to the plain optimizer (the "existing digests stay valid" half of
    // the contract).
    BayesOpt plain(BoxBounds::uniform(3, 0.0, 1.0), test_kernel(),
                   std::make_unique<PosteriorMean>(), small_config(),
                   Rng(11));
    BayesOpt gated(BoxBounds::uniform(3, 0.0, 1.0), test_kernel(),
                   std::make_unique<PosteriorMean>(), tr_config(1000000),
                   Rng(11));
    for (std::size_t i = 0; i < 12; ++i) {
        const Point a = plain.suggest();
        const Point b = gated.suggest();
        ASSERT_EQ(a, b) << "trial " << i;
        const double y = std::cos(4.0 * a[0]) + a[1] * a[2];
        plain.observe(a, y);
        gated.observe(b, y);
    }
}

// ------------------------------------------------------------------ //
// Thousand-trial determinism: threads and kill/resume.                //
// ------------------------------------------------------------------ //

constexpr std::size_t kLongRunTrials = 1000;

/// Cheap deterministic objective for the long synthetic searches.
double synthetic_objective(const Point& x) {
    return std::sin(5.0 * x[0]) + 0.5 * std::cos(9.0 * x[1]) -
           0.25 * (x[2] - 0.3) * (x[2] - 0.3);
}

/// Small pools + a trust region keep a 1000-trial search at test speed
/// while still exercising every new code path (incremental observe,
/// pooled scoring, local model, radius adaptation).
BayesOptConfig long_run_config() {
    BayesOptConfig config;
    config.initial_random_trials = 8;
    config.candidates = 8;
    config.local_candidates = 4;
    // Generous noise keeps the n=1000 Gram unjittered, so the run stays on
    // the O(n^2) incremental path instead of n full refits.
    config.noise_variance = 1e-2;
    config.trust_region.enabled = true;
    config.trust_region.activate_after = 400;
    config.trust_region.max_local_trials = 96;
    return config;
}

BayesOpt make_long_run_bo() {
    return BayesOpt(BoxBounds::uniform(3, 0.0, 1.0), test_kernel(),
                    std::make_unique<PosteriorMean>(), long_run_config(),
                    Rng(17));
}

std::string hex_bits(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(double));
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buffer;
}

/// One trial-log line: index plus the raw IEEE-754 bits of every
/// coordinate and the objective, so "byte-identical" is literal.
std::string trial_line(std::size_t index, const Trial& t) {
    std::ostringstream os;
    os << index;
    for (double v : t.x) os << ' ' << hex_bits(v);
    os << ' ' << hex_bits(t.y);
    return os.str();
}

std::vector<std::string> run_trials(BayesOpt& bo, std::size_t count) {
    std::vector<std::string> lines;
    lines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Point x = bo.suggest();
        const double y = synthetic_objective(x);
        bo.observe(std::move(x), y);
        lines.push_back(trial_line(bo.trials().size() - 1,
                                   bo.trials().back()));
    }
    return lines;
}

TEST(ThousandTrials, KillResumeLogIsByteIdentical) {
    // Uninterrupted reference run.
    BayesOpt reference = make_long_run_bo();
    const std::vector<std::string> full =
        run_trials(reference, kLongRunTrials);
    ASSERT_EQ(full.size(), kLongRunTrials);

    // Kill at trial 500 (export the canonical state, drop the optimizer),
    // resume into a freshly constructed instance, finish the budget.
    const std::size_t kill_at = 500;
    std::vector<std::string> stitched;
    BayesOptState snapshot;
    {
        BayesOpt first = make_long_run_bo();
        stitched = run_trials(first, kill_at);
        snapshot = first.export_state();
    }
    BayesOpt resumed = make_long_run_bo();
    resumed.import_state(snapshot);
    const std::vector<std::string> tail =
        run_trials(resumed, kLongRunTrials - kill_at);
    stitched.insert(stitched.end(), tail.begin(), tail.end());

    ASSERT_EQ(stitched.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        ASSERT_EQ(stitched[i], full[i]) << "trial " << i;
    }
    // The resumed optimizer also carries the adapted trust region.
    EXPECT_EQ(resumed.trust_region().length,
              reference.trust_region().length);
    EXPECT_EQ(resumed.trust_region().restarts,
              reference.trust_region().restarts);
}

#ifdef __linux__
/// Child mode: when BAYESFT_GP_SCALING_OUT names a file, run the long
/// search in *this* process (whose pool width came from
/// BAYESFT_NUM_THREADS at startup) and write the trial log there.  The
/// parent test below launches two of these at different thread counts.
TEST(ThousandTrialsChild, WriteTrialLog) {
    const char* out = std::getenv("BAYESFT_GP_SCALING_OUT");
    if (out == nullptr) {
        GTEST_SKIP() << "parent-driven child mode only";
    }
    BayesOpt bo = make_long_run_bo();
    const std::vector<std::string> lines = run_trials(bo, kLongRunTrials);
    std::ofstream file(out);
    ASSERT_TRUE(file) << out;
    for (const std::string& line : lines) file << line << '\n';
}

TEST(ThousandTrials, LogIsByteIdenticalAcrossThreadCounts) {
    // The pool width is fixed per process (BAYESFT_NUM_THREADS is read
    // once), so genuine 1-vs-4-thread coverage needs child processes:
    // re-run this binary filtered down to the child test above.
    const std::string self =
        std::filesystem::read_symlink("/proc/self/exe").string();
    const std::string dir = ::testing::TempDir();
    auto run_child = [&](std::size_t threads, const std::string& log) {
        const std::string command =
            "BAYESFT_NUM_THREADS=" + std::to_string(threads) +
            " BAYESFT_GP_SCALING_OUT='" + log + "' '" + self +
            "' --gtest_filter=ThousandTrialsChild.WriteTrialLog "
            ">/dev/null 2>&1";
        return std::system(command.c_str());
    };
    const std::string log1 = dir + "gp_scaling_t1.log";
    const std::string log4 = dir + "gp_scaling_t4.log";
    ASSERT_EQ(run_child(1, log1), 0);
    ASSERT_EQ(run_child(4, log4), 0);

    std::ifstream a(log1, std::ios::binary);
    std::ifstream b(log4, std::ios::binary);
    ASSERT_TRUE(a && b);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, bytes_b)
        << "trial logs diverge between 1 and 4 threads";
    // Sanity: the log covers the whole budget.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(bytes_a.begin(), bytes_a.end(), '\n')),
              kLongRunTrials);
}
#endif  // __linux__

}  // namespace
}  // namespace bayesft::bayesopt
