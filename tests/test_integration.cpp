// Cross-module integration: the full paper pipeline on small synthetic
// image tasks — train models from the zoo on generated datasets, inject
// drift, and verify the qualitative claims the figures rest on.

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/bayesft.hpp"
#include "data/digits.hpp"
#include "fault/evaluator.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"
#include "utils/logging.hpp"

namespace bayesft {
namespace {

class IntegrationFixture : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(42);
        data::DigitConfig config;
        config.samples = 600;
        config.image_size = 16;
        const data::Dataset full = data::synthetic_digits(config, rng);
        Rng split_rng(43);
        auto parts = data::split(full, 0.25, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }
    data::Dataset train_;
    data::Dataset test_;
};

TEST_F(IntegrationFixture, MlpLearnsSyntheticDigits) {
    Rng rng(1);
    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 64;
    models::ModelHandle model = models::make_mlp(options, rng);
    nn::TrainConfig config;
    config.epochs = 8;
    core::train_erm(model, train_, config, rng);
    EXPECT_GT(nn::evaluate_accuracy(*model.net, test_.images, test_.labels),
              0.9);
}

TEST_F(IntegrationFixture, LeNetLearnsSyntheticDigits) {
    Rng rng(2);
    models::ModelHandle model = models::make_lenet5(1, 16, 10, rng);
    nn::TrainConfig config;
    config.epochs = 12;
    config.learning_rate = 0.03;
    core::train_erm(model, train_, config, rng);
    EXPECT_GT(nn::evaluate_accuracy(*model.net, test_.images, test_.labels),
              0.85);
}

TEST_F(IntegrationFixture, DriftDegradesErmMonotonically) {
    // The foundational observation behind Fig. 1/Fig. 3: accuracy is a
    // decreasing function of sigma (up to MC noise, so we compare ends).
    Rng rng(3);
    models::MlpOptions options;
    options.input_features = 256;
    models::ModelHandle model = models::make_mlp(options, rng);
    nn::TrainConfig config;
    config.epochs = 8;
    core::train_erm(model, train_, config, rng);
    const auto curve = fault::sigma_sweep(
        *model.net, test_.images, test_.labels, {0.0, 0.6, 1.8}, 4, rng);
    EXPECT_GT(curve[0], 0.9);
    EXPECT_GT(curve[0], curve[2]);
    EXPECT_GE(curve[1] + 0.05, curve[2]);  // allow MC slack in the middle
}

TEST_F(IntegrationFixture, FixedDropoutImprovesDriftRobustness) {
    // Fig. 2(a) claim in miniature: the same MLP trained with dropout holds
    // up better under drift than without.
    Rng rng_plain(4);
    Rng rng_drop(5);
    models::MlpOptions options;
    options.input_features = 256;
    models::ModelHandle plain = models::make_mlp(options, rng_plain);
    models::ModelHandle dropped = models::make_mlp(options, rng_drop);
    dropped.set_dropout_rates({0.25, 0.25});

    nn::TrainConfig config;
    config.epochs = 10;
    Rng train_rng_a(6);
    nn::train_classifier(*plain.net, train_.images, train_.labels, config,
                         train_rng_a);
    Rng train_rng_b(7);
    nn::train_classifier(*dropped.net, train_.images, train_.labels, config,
                         train_rng_b);

    Rng eval_rng(8);
    const fault::LogNormalDrift drift(0.9);
    const double plain_acc =
        fault::evaluate_under_drift(*plain.net, test_.images, test_.labels,
                                    drift, 6, eval_rng)
            .mean_accuracy;
    const double dropped_acc =
        fault::evaluate_under_drift(*dropped.net, test_.images, test_.labels,
                                    drift, 6, eval_rng)
            .mean_accuracy;
    EXPECT_GT(dropped_acc, plain_acc);
}

TEST_F(IntegrationFixture, BayesFTSearchRunsOnImageTask) {
    Rng rng(9);
    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 48;
    models::ModelHandle model = models::make_mlp(options, rng);
    core::BayesFTConfig config;
    config.iterations = 4;
    config.epochs_per_iteration = 2;
    config.objective.sigmas = {0.6};
    config.objective.mc_samples = 2;
    config.final_epochs = 1;
    const auto result =
        core::bayesft_search(model, train_, test_, config, rng);
    EXPECT_EQ(result.trials.size(), 4U);
    // Search must leave a usable classifier behind.
    EXPECT_GT(nn::evaluate_accuracy(*model.net, test_.images, test_.labels),
              0.8);
    // And the drift utility of the best trial should be meaningful.
    EXPECT_GT(result.best_utility, 0.3);
}

TEST_F(IntegrationFixture, SnapshotDisciplineSurvivesFullPipeline) {
    // After any number of drift evaluations the clean weights are intact:
    // accuracy without drift is bit-identical before and after.
    Rng rng(10);
    models::ModelHandle model = models::make_lenet5(1, 16, 10, rng);
    nn::TrainConfig config;
    config.epochs = 3;
    core::train_erm(model, train_, config, rng);
    const double before =
        nn::evaluate_accuracy(*model.net, test_.images, test_.labels);
    fault::sigma_sweep(*model.net, test_.images, test_.labels,
                       {0.3, 0.9, 1.5}, 3, rng);
    const double after =
        nn::evaluate_accuracy(*model.net, test_.images, test_.labels);
    EXPECT_DOUBLE_EQ(before, after);
}

}  // namespace
}  // namespace bayesft
