// Utils: result tables (the bench output format), formatting, logging
// levels, and the stopwatch.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "utils/logging.hpp"
#include "utils/stopwatch.hpp"
#include "utils/table.hpp"

namespace bayesft {
namespace {

TEST(FormatDouble, FixedDecimals) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(2.0, 0), "2");
    EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(ResultTable, RequiresColumns) {
    EXPECT_THROW(ResultTable("t", {}), std::invalid_argument);
}

TEST(ResultTable, RowWidthValidated) {
    ResultTable table("t", {"a", "b"});
    EXPECT_NO_THROW(table.add_row({1.0, 2.0}));
    EXPECT_THROW(table.add_row({1.0}), std::invalid_argument);
    EXPECT_THROW(table.add_text_row({"x", "y", "z"}), std::invalid_argument);
    EXPECT_EQ(table.row_count(), 1U);
}

TEST(ResultTable, CellAccessAndPrecision) {
    ResultTable table("t", {"a"});
    table.set_precision(3);
    table.add_row({1.23456});
    EXPECT_EQ(table.cell(0, 0), "1.235");
    EXPECT_THROW(table.cell(1, 0), std::out_of_range);
    EXPECT_THROW(table.set_precision(-1), std::invalid_argument);
}

TEST(ResultTable, TextRenderingContainsEverything) {
    ResultTable table("My Title", {"sigma", "acc"});
    table.add_row({0.5, 97.25});
    const std::string text = table.to_text();
    EXPECT_NE(text.find("My Title"), std::string::npos);
    EXPECT_NE(text.find("sigma"), std::string::npos);
    EXPECT_NE(text.find("97.25"), std::string::npos);
}

TEST(ResultTable, CsvEscapesSpecialCells) {
    ResultTable table("t", {"name", "value"});
    table.add_text_row({"has,comma", "has\"quote"});
    const std::string csv = table.to_csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(ResultTable, CsvRoundTripStructure) {
    ResultTable table("t", {"a", "b"});
    table.add_row({1.0, 2.0});
    table.add_row({3.0, 4.0});
    const std::string csv = table.to_csv();
    std::size_t lines = 0;
    for (char ch : csv) {
        if (ch == '\n') ++lines;
    }
    EXPECT_EQ(lines, 3U);  // header + 2 rows
}

TEST(ResultTable, SaveCsvWritesFile) {
    ResultTable table("t", {"a"});
    table.add_row({42.0});
    const std::string path = "/tmp/bayesft_table_test.csv";
    table.save_csv(path);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "a");
    std::remove(path.c_str());
    EXPECT_THROW(table.save_csv("/nonexistent-dir/x.csv"),
                 std::runtime_error);
}

TEST(ResultTable, StreamOperatorMatchesToText) {
    ResultTable table("t", {"a"});
    table.add_row({1.0});
    std::ostringstream os;
    os << table;
    EXPECT_EQ(os.str(), table.to_text());
}

TEST(Logging, LevelFiltering) {
    const LogLevel saved = log_level();
    set_log_level(LogLevel::Error);
    EXPECT_EQ(log_level(), LogLevel::Error);
    // Below-threshold messages must not crash and are silently dropped.
    log_debug() << "dropped " << 42;
    log_info() << "dropped too";
    set_log_level(saved);
}

TEST(Logging, OffSilencesEverything) {
    const LogLevel saved = log_level();
    set_log_level(LogLevel::Off);
    log_error() << "also dropped";
    set_log_level(saved);
    SUCCEED();
}

TEST(Stopwatch, MeasuresElapsedTime) {
    Stopwatch watch;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
    EXPECT_GT(watch.seconds(), 0.0);
    EXPECT_NEAR(watch.millis(), watch.seconds() * 1e3,
                watch.seconds() * 1e3 * 0.5);
    const double before = watch.seconds();
    watch.reset();
    EXPECT_LT(watch.seconds(), before + 1.0);
}

}  // namespace
}  // namespace bayesft
