// Tests for the deterministic RNG substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "utils/rng.hpp"

namespace bayesft {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(11);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
    Rng rng(13);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, LogNormalMedianNearOne) {
    // Median of exp(N(0, sigma^2)) is exactly 1: half the factors shrink,
    // half grow — the core property of the paper's Eq. 1 drift.
    Rng rng(17);
    const int n = 100000;
    int above = 0;
    for (int i = 0; i < n; ++i) {
        if (rng.log_normal(0.0, 0.7) > 1.0) ++above;
    }
    EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.01);
}

TEST(Rng, LogNormalMeanMatchesTheory) {
    // E[exp(N(0, s^2))] = exp(s^2 / 2).
    Rng rng(19);
    const double sigma = 0.5;
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.log_normal(0.0, sigma);
    EXPECT_NEAR(sum / n, std::exp(sigma * sigma / 2.0), 0.01);
}

TEST(Rng, UniformIntInRange) {
    Rng rng(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(std::uint64_t{10});
        EXPECT_LT(v, 10U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10U);  // all values hit
}

TEST(Rng, UniformIntSignedRange) {
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntZeroThrows) {
    Rng rng(1);
    EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(31);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
    Rng rng(37);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100U);
    EXPECT_EQ(*seen.begin(), 0U);
    EXPECT_EQ(*seen.rbegin(), 99U);
}

TEST(Rng, PermutationActuallyShuffles) {
    Rng rng(41);
    const auto perm = rng.permutation(50);
    std::size_t fixed = 0;
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] == i) ++fixed;
    }
    EXPECT_LT(fixed, 10U);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(43);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, WorksWithStdShuffle) {
    Rng rng(47);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::shuffle(v.begin(), v.end(), rng);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace bayesft
