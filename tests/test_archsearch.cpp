// Mixed-space architecture search: end-to-end arch_search behaviour
// (feasible winners, trial bookkeeping, batch/thread invariance, winner
// re-materialization), the engine's self-contained point-evaluation path
// (derived RNG streams, cross-call memoization), and the satellite
// coverage for the parameterized builders: Module::clone() +
// collect_children on the residual and STN families, plus a gradient
// check on one mixed-built model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "core/archsearch.hpp"
#include "core/engine.hpp"
#include "core/param_space.hpp"
#include "data/toy.hpp"
#include "gradcheck.hpp"
#include "models/zoo.hpp"
#include "nn/dropout.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {
namespace {

class ArchSearchFixture : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(1);
        const data::Dataset full = data::make_blobs(240, 3, 4.0, 0.6, rng);
        Rng split_rng(2);
        auto parts = data::split(full, 0.3, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }

    static models::ArchFamily tiny_family() {
        models::MlpOptions base;
        base.input_features = 2;
        base.hidden = 12;
        base.classes = 3;
        return models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                       /*max_dropout_rate=*/0.5);
    }

    static ArchSearchConfig tiny_config() {
        ArchSearchConfig config;
        config.iterations = 5;
        config.train.epochs = 1;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.bo.initial_random_trials = 2;
        config.bo.candidates = 64;
        config.bo.local_candidates = 16;
        config.final_epochs = 1;
        return config;
    }

    static std::vector<float> weights_of(nn::Module& net) {
        std::vector<float> values;
        for (const nn::Parameter* p : net.parameters()) {
            values.insert(values.end(), p->value.data(),
                          p->value.data() + p->value.size());
        }
        return values;
    }

    data::Dataset train_;
    data::Dataset test_;
};

TEST_F(ArchSearchFixture, SearchReturnsFeasibleWinnerAndFullHistory) {
    const models::ArchFamily family = tiny_family();
    Rng rng(3);
    const ArchSearchResult result =
        arch_search(family, train_, test_, tiny_config(), rng);

    ASSERT_EQ(result.trials.size(), 5U);
    ASSERT_EQ(result.trial_points.size(), 5U);
    EXPECT_NO_THROW(family.space.validate_point(result.best_point));
    EXPECT_TRUE(std::isfinite(result.best_utility));
    double best_seen = result.trials.front().y;
    for (const auto& trial : result.trials) {
        best_seen = std::max(best_seen, trial.y);
    }
    EXPECT_EQ(result.best_utility, best_seen);

    // The winner model realizes the winning point's architecture.
    ASSERT_NE(result.best_model.net, nullptr);
    const auto depth = static_cast<std::size_t>(
        family.space.integer(result.best_point, "hidden_layers"));
    EXPECT_EQ(result.best_model.dropout_sites.size(), depth);
    const Tensor logits =
        result.best_model.net->forward(Tensor::randn({4, 2}, rng));
    EXPECT_EQ(logits.dim(1), 3U);

    EXPECT_THROW(
        arch_search(family, train_, test_, ArchSearchConfig{.iterations = 0},
                    rng),
        std::invalid_argument);
}

TEST_F(ArchSearchFixture, ResultInvariantToEvalThreadCount) {
    const models::ArchFamily family = tiny_family();
    ArchSearchConfig config = tiny_config();
    config.batch = 3;

    config.eval_threads = 1;
    Rng rng_a(7);
    const ArchSearchResult a =
        arch_search(family, train_, test_, config, rng_a);

    config.eval_threads = 4;
    Rng rng_b(7);
    const ArchSearchResult b =
        arch_search(family, train_, test_, config, rng_b);

    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (std::size_t t = 0; t < a.trials.size(); ++t) {
        EXPECT_EQ(a.trials[t].x, b.trials[t].x) << "trial " << t;
        EXPECT_EQ(a.trials[t].y, b.trials[t].y) << "trial " << t;
    }
    EXPECT_EQ(a.best_point, b.best_point);
    EXPECT_EQ(weights_of(*a.best_model.net), weights_of(*b.best_model.net));
}

TEST_F(ArchSearchFixture, WinnerRematerializesTheEvaluatedCandidate) {
    // With final_epochs == 0 the returned model must be exactly the
    // candidate the GP scored: rebuilding on the derived stream and
    // re-scoring reproduces best_utility bit for bit.
    const models::ArchFamily family = tiny_family();
    ArchSearchConfig config = tiny_config();
    config.final_epochs = 0;
    Rng rng(9);
    const ArchSearchResult result =
        arch_search(family, train_, test_, config, rng);

    // Score the returned weights under the winning trial's stream suffix:
    // rebuild from scratch the same way arch_search did and compare.
    const auto best = std::max_element(
        result.trials.begin(), result.trials.end(),
        [](const auto& a, const auto& b) { return a.y < b.y; });
    EXPECT_EQ(result.best_utility, best->y);
    EXPECT_EQ(family.space.decode(best->x), result.best_point);
}

TEST(EvaluatePoints, DerivedStreamsMakeDuplicatesAndRepeatsFree) {
    EvaluationEngine engine(EngineConfig{2, /*cache=*/true});
    EvalContext context;
    context.key = 1234;

    std::size_t evaluations = 0;
    const PointEvaluator evaluator = [&](const Alpha& point, Rng& rng) {
        ++evaluations;  // only counted for live evaluations
        return point[0] + 0.001 * rng.uniform();
    };

    const Alpha a{0.1, 2.0};
    const Alpha b{0.4, 3.0};
    // Within-batch duplicate: 3 candidates, 2 live evaluations.
    const BatchOutcome first =
        engine.evaluate_points({a, b, a}, evaluator, context);
    EXPECT_EQ(evaluations, 2U);
    EXPECT_EQ(first.cache_hits, 1U);
    EXPECT_EQ(first.utilities[0], first.utilities[2]);
    EXPECT_EQ(first.best_index, 1U);  // b has the larger utility

    // Cross-call repeat at the same (context, stamp): served from the memo
    // cache without touching the evaluator.
    const BatchOutcome second =
        engine.evaluate_points({b, a}, evaluator, context);
    EXPECT_EQ(evaluations, 2U);
    EXPECT_EQ(second.cache_hits, 2U);
    EXPECT_EQ(second.utilities[0], first.utilities[1]);
    EXPECT_EQ(second.utilities[1], first.utilities[0]);

    // A context change invalidates the cache and changes the streams.
    EvalContext other = context;
    other.key = 999;
    const BatchOutcome third =
        engine.evaluate_points({a}, evaluator, other);
    EXPECT_EQ(evaluations, 3U);
    EXPECT_NE(third.utilities[0], first.utilities[0]);

    EXPECT_THROW(engine.evaluate_points({}, evaluator, context),
                 std::invalid_argument);
    EXPECT_THROW(engine.evaluate_points({a}, nullptr, context),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Satellite: clone() + collect_children on models produced by the new
// parameterized builders (residual and STN paths), and a gradcheck on one
// mixed-built model.
// ---------------------------------------------------------------------

void expect_clone_relocates_sites(models::ModelHandle& original,
                                  const Tensor& input) {
    models::ModelHandle replica = original.clone();
    ASSERT_NE(replica.net, nullptr);
    ASSERT_EQ(replica.dropout_sites.size(), original.dropout_sites.size());

    // Same weights, distinct storage.
    std::vector<nn::Parameter*> op = original.net->parameters();
    std::vector<nn::Parameter*> rp = replica.net->parameters();
    ASSERT_EQ(op.size(), rp.size());
    for (std::size_t i = 0; i < op.size(); ++i) {
        ASSERT_EQ(op[i]->value.size(), rp[i]->value.size());
        EXPECT_NE(op[i], rp[i]);
        for (std::size_t j = 0; j < op[i]->value.size(); ++j) {
            EXPECT_EQ(op[i]->value[j], rp[i]->value[j]);
        }
    }

    // The replica's sites live inside the replica's collect_children
    // traversal and track rates independently of the original.
    const std::vector<nn::Dropout*> reachable =
        nn::collect_dropout_layers(*replica.net);
    for (nn::Dropout* site : replica.dropout_sites) {
        EXPECT_NE(std::find(reachable.begin(), reachable.end(), site),
                  reachable.end());
    }
    original.set_dropout_rates(
        std::vector<double>(original.dropout_sites.size(), 0.31));
    replica.set_dropout_rates(
        std::vector<double>(replica.dropout_sites.size(), 0.07));
    for (const nn::Dropout* site : original.dropout_sites) {
        EXPECT_DOUBLE_EQ(site->rate(), 0.31);
    }
    for (const nn::Dropout* site : replica.dropout_sites) {
        EXPECT_DOUBLE_EQ(site->rate(), 0.07);
    }

    // Both run forward in eval mode and agree on the original weights.
    original.net->set_training(false);
    replica.net->set_training(false);
    const Tensor out_original = original.net->forward(input);
    const Tensor out_replica = replica.net->forward(input);
    ASSERT_EQ(out_original.shape(), out_replica.shape());
    for (std::size_t i = 0; i < out_original.size(); ++i) {
        EXPECT_EQ(out_original[i], out_replica[i]);
    }
}

TEST(ArchFamilyBuilders, PreactFamilyCloneRelocatesSites) {
    const models::ArchFamily family = models::preact_arch_family(10, 0.5);
    const ParamPoint point = family.space.decode(
        family.space.encode([&] {
            ParamPoint p;
            p.values = {2.0, 1.0, 0.2};  // blocks=2, norm=group, dropout=0.2
            return p;
        }()));
    Rng rng(21);
    models::ModelHandle model = family.build(family.space, point, rng);
    EXPECT_EQ(family.space.category(point, "norm"), "group");
    for (const nn::Dropout* site : model.dropout_sites) {
        EXPECT_DOUBLE_EQ(site->rate(), 0.2);
    }
    Rng input_rng(22);
    expect_clone_relocates_sites(model,
                                 Tensor::randn({2, 3, 16, 16}, input_rng));
}

TEST(ArchFamilyBuilders, StnFamilyCloneRelocatesSites) {
    const models::ArchFamily family = models::stn_arch_family(8, 0.5);
    ParamPoint point;
    point.values = {48.0, 1.0, 0.1, 0.2, 0.3};  // width=48, pool=avg
    family.space.validate_point(point);
    Rng rng(23);
    models::ModelHandle model = family.build(family.space, point, rng);
    ASSERT_EQ(model.dropout_sites.size(), 3U);
    EXPECT_DOUBLE_EQ(model.dropout_sites[0]->rate(), 0.1);
    EXPECT_DOUBLE_EQ(model.dropout_sites[2]->rate(), 0.3);
    Rng input_rng(24);
    expect_clone_relocates_sites(model,
                                 Tensor::randn({2, 3, 16, 16}, input_rng));
}

TEST(ArchFamilyBuilders, BuilderIsAPureFunctionOfPointAndRng) {
    const models::ArchFamily family = models::preact_arch_family(10, 0.5);
    ParamPoint point;
    point.values = {1.0, 0.0, 0.05};
    Rng rng_a(25);
    Rng rng_b(25);
    models::ModelHandle a = family.build(family.space, point, rng_a);
    models::ModelHandle b = family.build(family.space, point, rng_b);
    std::vector<nn::Parameter*> pa = a.net->parameters();
    std::vector<nn::Parameter*> pb = b.net->parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        for (std::size_t j = 0; j < pa[i]->value.size(); ++j) {
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
        }
    }
}

TEST(ArchFamilyBuilders, GradcheckOnMixedBuiltModel) {
    // A point exercising the non-default categorical paths: layer norm +
    // GELU at depth 2, dropout rates 0 so the forward is deterministic.
    models::MlpOptions base;
    base.input_features = 6;
    base.hidden = 8;
    base.classes = 3;
    const models::ArchFamily family =
        models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                /*max_dropout_rate=*/0.5);
    ParamPoint point;
    point.values = {2.0, 2.0, 2.0, 0.0, 0.0};  // norm=layer, act=gelu
    family.space.validate_point(point);
    Rng rng(27);
    models::ModelHandle model = family.build(family.space, point, rng);
    EXPECT_EQ(family.space.category(point, "activation"), "gelu");

    Rng check_rng(28);
    const Tensor input = Tensor::randn({3, 6}, check_rng, 0.8F);
    const testing::GradCheckResult result =
        testing::gradcheck(*model.net, input, check_rng);
    EXPECT_LT(result.mismatch_fraction(), 0.02) << result.detail;
}

}  // namespace
}  // namespace bayesft::core
