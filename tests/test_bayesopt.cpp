// Bayesian optimization: kernel properties, GP posterior correctness,
// acquisition behaviour, and end-to-end optimization of known functions.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/bayesopt.hpp"
#include "bayesopt/gp.hpp"
#include "bayesopt/kernel.hpp"
#include "linalg/matrix.hpp"

namespace bayesft::bayesopt {
namespace {

TEST(Kernel, SquaredExponentialSelfCovarianceIsAmplitude) {
    ArdSquaredExponential k(2, 1.0, 3.0);
    EXPECT_DOUBLE_EQ(k({0.5, 0.5}, {0.5, 0.5}), 3.0);
}

TEST(Kernel, SquaredExponentialSymmetryAndDecay) {
    ArdSquaredExponential k(2, 2.0);
    const Point a{0.1, 0.9};
    const Point b{0.8, 0.2};
    EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
    EXPECT_LT(k(a, b), k(a, a));
    EXPECT_GT(k(a, b), 0.0);
}

TEST(Kernel, ArdScalesWeightDimensionsDifferently) {
    // Large inverse scale in dim 0 makes distance in dim 0 matter more.
    ArdSquaredExponential k(std::vector<double>{10.0, 0.1});
    const double move_dim0 = k({0.0, 0.0}, {0.5, 0.0});
    const double move_dim1 = k({0.0, 0.0}, {0.0, 0.5});
    EXPECT_LT(move_dim0, move_dim1);
}

TEST(Kernel, ExactFormOfPaperEquation9) {
    // kappa(a, b) = k0 exp(-sum k_i (a_i - b_i)^2).
    ArdSquaredExponential k(std::vector<double>{2.0, 3.0}, 1.5);
    const Point a{0.1, 0.4};
    const Point b{0.3, 0.0};
    const double expected =
        1.5 * std::exp(-(2.0 * 0.04 + 3.0 * 0.16));
    EXPECT_NEAR(k(a, b), expected, 1e-12);
}

TEST(Kernel, GramMatrixIsPsd) {
    Rng rng(1);
    ArdSquaredExponential k(3, 1.0);
    std::vector<Point> xs;
    for (int i = 0; i < 12; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    }
    linalg::Matrix gram = k.gram(xs);
    gram.add_diagonal(1e-9);
    EXPECT_NO_THROW(linalg::cholesky(gram));  // PSD + jitter factorizes
}

TEST(Kernel, RejectsBadParameters) {
    EXPECT_THROW(ArdSquaredExponential(2, 0.0), std::invalid_argument);
    EXPECT_THROW(ArdSquaredExponential(2, 1.0, -1.0), std::invalid_argument);
    EXPECT_THROW(ArdSquaredExponential(std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(Matern52(0.0), std::invalid_argument);
}

TEST(Kernel, Matern52BasicProperties) {
    Matern52 k(0.5, 2.0);
    EXPECT_DOUBLE_EQ(k({0.3}, {0.3}), 2.0);
    EXPECT_LT(k({0.0}, {1.0}), k({0.0}, {0.1}));
}

TEST(Gp, InterpolatesTrainingPointsWithLowNoise) {
    auto kernel = std::make_shared<ArdSquaredExponential>(1, 5.0);
    GaussianProcess gp(kernel, 1e-8);
    gp.fit({{0.1}, {0.5}, {0.9}}, {1.0, -2.0, 3.0});
    EXPECT_NEAR(gp.posterior({0.1}).mean, 1.0, 1e-3);
    EXPECT_NEAR(gp.posterior({0.5}).mean, -2.0, 1e-3);
    EXPECT_NEAR(gp.posterior({0.9}).mean, 3.0, 1e-3);
}

TEST(Gp, VarianceSmallAtDataLargeFarAway) {
    auto kernel = std::make_shared<ArdSquaredExponential>(1, 20.0);
    GaussianProcess gp(kernel, 1e-8);
    gp.fit({{0.5}}, {0.0});
    EXPECT_LT(gp.posterior({0.5}).variance, 1e-6);
    // Far from data the posterior reverts to the prior variance k(x, x) = 1.
    EXPECT_NEAR(gp.posterior({5.0}).variance, 1.0, 1e-3);
}

TEST(Gp, SinglePointClosedForm) {
    // With one observation (x0, y0): mu(x) = ybar + k(x,x0)/(k0+noise) *
    // (y0 - ybar), and centering makes ybar = y0, so mu(x) == y0 everywhere.
    auto kernel = std::make_shared<ArdSquaredExponential>(1, 1.0);
    GaussianProcess gp(kernel, 0.01);
    gp.fit({{0.3}}, {2.5});
    EXPECT_NEAR(gp.posterior({0.3}).mean, 2.5, 1e-9);
    EXPECT_NEAR(gp.posterior({0.9}).mean, 2.5, 1e-9);
}

TEST(Gp, PosteriorMeanSmoothlyBlends) {
    auto kernel = std::make_shared<ArdSquaredExponential>(1, 10.0);
    GaussianProcess gp(kernel, 1e-6);
    gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
    const double mid = gp.posterior({0.5}).mean;
    EXPECT_GT(mid, 0.2);
    EXPECT_LT(mid, 0.8);
}

TEST(Gp, LogMarginalLikelihoodPrefersBetterFit) {
    // Data drawn from a smooth function: a kernel with a sane length scale
    // should have higher marginal likelihood than a wildly mismatched one.
    std::vector<Point> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 10; ++i) {
        const double x = i / 10.0;
        xs.push_back({x});
        ys.push_back(std::sin(3.0 * x));
    }
    GaussianProcess good(std::make_shared<ArdSquaredExponential>(1, 3.0),
                         1e-4);
    GaussianProcess bad(std::make_shared<ArdSquaredExponential>(1, 1e4),
                        1e-4);
    good.fit(xs, ys);
    bad.fit(xs, ys);
    EXPECT_GT(good.log_marginal_likelihood(), bad.log_marginal_likelihood());
}

TEST(Gp, ErrorsOnMisuse) {
    auto kernel = std::make_shared<ArdSquaredExponential>(1, 1.0);
    GaussianProcess gp(kernel, 1e-6);
    EXPECT_THROW(gp.posterior({0.5}), std::logic_error);
    EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
    EXPECT_THROW(gp.fit({{0.1}}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(gp.fit({{0.1}, {0.1, 0.2}}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Acquisition, PosteriorMeanIgnoresVariance) {
    PosteriorMean acq;
    EXPECT_DOUBLE_EQ(acq.score({1.5, 100.0}, 0.0), 1.5);
}

TEST(Acquisition, ExpectedImprovementZeroWhenCertainBelowIncumbent) {
    ExpectedImprovement acq(0.0);
    EXPECT_DOUBLE_EQ(acq.score({0.5, 0.0}, 1.0), 0.0);
    EXPECT_GT(acq.score({0.5, 1.0}, 1.0), 0.0);  // uncertainty adds hope
}

TEST(Acquisition, ExpectedImprovementIncreasesWithMean) {
    ExpectedImprovement acq;
    EXPECT_GT(acq.score({2.0, 1.0}, 1.0), acq.score({1.5, 1.0}, 1.0));
}

TEST(Acquisition, UcbTradesOffMeanAndVariance) {
    UpperConfidenceBound acq(2.0);
    EXPECT_DOUBLE_EQ(acq.score({1.0, 4.0}, 0.0), 1.0 + 2.0 * 2.0);
}

TEST(Acquisition, FactoryAndValidation) {
    EXPECT_NE(make_acquisition("posterior_mean"), nullptr);
    EXPECT_NE(make_acquisition("ei"), nullptr);
    EXPECT_NE(make_acquisition("ucb"), nullptr);
    EXPECT_THROW(make_acquisition("thompson"), std::invalid_argument);
    EXPECT_THROW(ExpectedImprovement(-1.0), std::invalid_argument);
}

TEST(BoxBounds, ValidationAndSampling) {
    BoxBounds bounds = BoxBounds::uniform(3, 0.0, 1.0);
    Rng rng(2);
    const Point p = bounds.sample(rng);
    EXPECT_EQ(p.size(), 3U);
    for (double v : p) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
    Point q{-1.0, 0.5, 2.0};
    bounds.clamp(q);
    EXPECT_DOUBLE_EQ(q[0], 0.0);
    EXPECT_DOUBLE_EQ(q[2], 1.0);

    BoxBounds bad;
    bad.lower = {0.0};
    bad.upper = {0.0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

double quadratic_peak(const Point& p) {
    // Max 1.0 at (0.7, 0.3).
    const double dx = p[0] - 0.7;
    const double dy = p[1] - 0.3;
    return 1.0 - (dx * dx + dy * dy);
}

TEST(BayesOpt, FindsQuadraticMaximum) {
    BayesOptConfig config;
    config.initial_random_trials = 5;
    BayesOpt bo(BoxBounds::uniform(2, 0.0, 1.0),
                std::make_shared<ArdSquaredExponential>(2, 4.0),
                std::make_unique<UpperConfidenceBound>(1.5), config, Rng(3));
    for (int i = 0; i < 30; ++i) {
        const Point x = bo.suggest();
        bo.observe(x, quadratic_peak(x));
    }
    const auto best = bo.best();
    ASSERT_TRUE(best.has_value());
    EXPECT_GT(best->y, 0.97);
    EXPECT_NEAR(best->x[0], 0.7, 0.15);
    EXPECT_NEAR(best->x[1], 0.3, 0.15);
}

TEST(BayesOpt, BeatsRandomSearchOnBudget) {
    // Average over a few seeds: after the same number of evaluations the
    // GP-guided search should reach a higher incumbent than uniform random.
    double bo_total = 0.0, random_total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        BayesOptConfig config;
        config.initial_random_trials = 4;
        BayesOpt bo(BoxBounds::uniform(2, 0.0, 1.0),
                    std::make_shared<ArdSquaredExponential>(2, 4.0),
                    std::make_unique<ExpectedImprovement>(), config,
                    Rng(seed * 7 + 1));
        Rng random_rng(seed * 13 + 5);
        const BoxBounds bounds = BoxBounds::uniform(2, 0.0, 1.0);
        double random_best = -1e9;
        for (int i = 0; i < 20; ++i) {
            const Point x = bo.suggest();
            bo.observe(x, quadratic_peak(x));
            random_best =
                std::max(random_best, quadratic_peak(bounds.sample(random_rng)));
        }
        bo_total += bo.best()->y;
        random_total += random_best;
    }
    EXPECT_GE(bo_total, random_total);
}

TEST(BayesOpt, ObserveValidatesInput) {
    BayesOptConfig config;
    BayesOpt bo(BoxBounds::uniform(2, 0.0, 1.0),
                std::make_shared<ArdSquaredExponential>(2, 1.0),
                std::make_unique<PosteriorMean>(), config, Rng(4));
    // Structural errors still throw (wrong dimension is a caller bug) ...
    EXPECT_THROW(bo.observe({0.5}, 1.0), std::invalid_argument);
    EXPECT_FALSE(bo.best().has_value());
    // ... but a non-finite objective is an evaluation failure, not a bug:
    // the trial is quarantined at the fail penalty instead of aborting the
    // search (docs/robustness.md).
    bo.observe({0.5, 0.5}, std::numeric_limits<double>::quiet_NaN());
    ASSERT_EQ(bo.trials().size(), 1U);
    EXPECT_EQ(bo.trials()[0].status, TrialStatus::kFailedNaN);
    EXPECT_EQ(bo.trials()[0].y, config.fail_penalty);
    ASSERT_TRUE(bo.best().has_value());
    EXPECT_EQ(bo.best()->status, TrialStatus::kFailedNaN);
    // A later successful trial displaces the quarantined incumbent even at
    // a lower objective than the penalty would suggest.
    bo.observe({0.25, 0.25}, -1.0);
    EXPECT_EQ(bo.best()->status, TrialStatus::kOk);
    EXPECT_EQ(bo.best()->y, -1.0);
}

TEST(BayesOpt, SuggestBatchOfOneMatchesSuggest) {
    // Two identical optimizers: suggest_batch(1) must replay suggest()
    // exactly (no fantasy observations, same RNG draws).
    const auto make = [] {
        BayesOptConfig config;
        config.initial_random_trials = 3;
        return BayesOpt(BoxBounds::uniform(2, 0.0, 1.0),
                        std::make_shared<ArdSquaredExponential>(2, 4.0),
                        std::make_unique<UpperConfidenceBound>(1.5), config,
                        Rng(17));
    };
    BayesOpt serial = make();
    BayesOpt batched = make();
    for (int i = 0; i < 8; ++i) {
        const Point a = serial.suggest();
        const std::vector<Point> b = batched.suggest_batch(1);
        ASSERT_EQ(b.size(), 1U);
        EXPECT_EQ(a, b[0]) << "iteration " << i;
        const double y = quadratic_peak(a);
        serial.observe(a, y);
        batched.observe_batch({b[0]}, {y});
    }
    ASSERT_EQ(serial.trials().size(), batched.trials().size());
    for (std::size_t t = 0; t < serial.trials().size(); ++t) {
        EXPECT_EQ(serial.trials()[t].x, batched.trials()[t].x);
        EXPECT_EQ(serial.trials()[t].y, batched.trials()[t].y);
    }
}

TEST(BayesOpt, SuggestBatchIsDiverseAndRollsBackFantasies) {
    BayesOptConfig config;
    config.initial_random_trials = 4;
    BayesOpt bo(BoxBounds::uniform(2, 0.0, 1.0),
                std::make_shared<ArdSquaredExponential>(2, 4.0),
                std::make_unique<PosteriorMean>(), config, Rng(19));
    for (int i = 0; i < 6; ++i) {
        const Point x = bo.suggest();
        bo.observe(x, quadratic_peak(x));
    }
    const std::size_t trials_before = bo.trials().size();
    const std::size_t gp_rows_before = bo.surrogate().observation_count();

    const std::vector<Point> batch = bo.suggest_batch(4);
    ASSERT_EQ(batch.size(), 4U);
    // Diversity: no two candidates within the separation tolerance.  (The
    // implementation may fall back to the unfiltered argmax when the whole
    // candidate pool crowds the pending picks; with 512 uniform pool
    // samples over [0,1]^2 and this fixed seed that path is unreachable,
    // so a failure here means the diversity guard actually regressed.)
    const double min_separation =
        config.batch_separation_fraction * std::sqrt(2.0) * 0.5;
    for (std::size_t a = 0; a < batch.size(); ++a) {
        for (double v : batch[a]) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
        for (std::size_t b = a + 1; b < batch.size(); ++b) {
            double dist = 0.0;
            for (std::size_t d = 0; d < 2; ++d) {
                const double delta = batch[a][d] - batch[b][d];
                dist += delta * delta;
            }
            EXPECT_GT(std::sqrt(dist), min_separation)
                << "candidates " << a << " and " << b << " too close";
        }
    }
    // The constant-liar fantasies must not leak into the real history.
    EXPECT_EQ(bo.trials().size(), trials_before);
    EXPECT_EQ(bo.surrogate().observation_count(), gp_rows_before);
    EXPECT_THROW(bo.suggest_batch(0), std::invalid_argument);
}

TEST(BayesOpt, ObserveBatchValidatesInput) {
    BayesOptConfig config;
    BayesOpt bo(BoxBounds::uniform(2, 0.0, 1.0),
                std::make_shared<ArdSquaredExponential>(2, 1.0),
                std::make_unique<PosteriorMean>(), config, Rng(23));
    EXPECT_THROW(bo.observe_batch({}, {}), std::invalid_argument);
    EXPECT_THROW(bo.observe_batch({{0.5, 0.5}}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(bo.observe_batch({{0.5}}, {1.0}), std::invalid_argument);
    // Non-finite objectives no longer throw: the trial is quarantined with
    // a failure status and the penalty value (see observe()'s contract).
    bo.observe_batch({{0.5, 0.5}},
                     {std::numeric_limits<double>::infinity()});
    ASSERT_EQ(bo.trials().size(), 1U);
    EXPECT_EQ(bo.trials()[0].status, TrialStatus::kFailedNaN);
    bo.observe_batch({{0.2, 0.2}, {0.8, 0.8}}, {0.0, 1.0});
    EXPECT_EQ(bo.trials().size(), 3U);
    EXPECT_TRUE(bo.surrogate().fitted());
    // A caller-supplied status wins over the finiteness check.
    bo.observe_batch({{0.6, 0.6}}, {0.25}, {TrialStatus::kFailedTimeout});
    ASSERT_EQ(bo.trials().size(), 4U);
    EXPECT_EQ(bo.trials()[3].status, TrialStatus::kFailedTimeout);
    EXPECT_EQ(bo.trials()[3].y, config.fail_penalty);
}

TEST(BayesOpt, DuplicateObservationsMergeIntoOneGpRow) {
    // Observing the same point many times used to hand the GP a singular
    // Gram matrix (rescued only by escalating Cholesky jitter).  The
    // duplicate guard merges repeats into one averaged observation.
    BayesOptConfig config;
    BayesOpt bo(BoxBounds::uniform(2, 0.0, 1.0),
                std::make_shared<ArdSquaredExponential>(2, 4.0),
                std::make_unique<PosteriorMean>(), config, Rng(29));
    for (int i = 0; i < 30; ++i) {
        bo.observe({0.5, 0.5}, i % 2 == 0 ? 0.0 : 1.0);
    }
    EXPECT_EQ(bo.trials().size(), 30U);                   // history intact
    EXPECT_EQ(bo.surrogate().observation_count(), 1U);    // one GP row
    const Posterior post = bo.surrogate().posterior({0.5, 0.5});
    EXPECT_TRUE(std::isfinite(post.mean));
    EXPECT_NEAR(post.mean, 0.5, 0.05);  // averaged repeats

    // Near-duplicates (within tolerance) merge too; distinct points do not.
    bo.observe({0.5 + 1e-9, 0.5}, 1.0);
    EXPECT_EQ(bo.surrogate().observation_count(), 1U);
    bo.observe({0.9, 0.1}, 0.3);
    EXPECT_EQ(bo.surrogate().observation_count(), 2U);
}

TEST(Kernel, MixedArdMatchesArdSeWithoutCategoricals) {
    // The bit-compatibility contract: with no categorical blocks the mixed
    // kernel computes term-for-term what ArdSquaredExponential computes.
    MixedArdSquaredExponential mixed({4.0, 4.0, 4.0}, {}, 1.0);
    ArdSquaredExponential ard(3, 4.0);
    Rng rng(41);
    for (int i = 0; i < 30; ++i) {
        const Point a{rng.uniform(), rng.uniform(), rng.uniform()};
        const Point b{rng.uniform(), rng.uniform(), rng.uniform()};
        EXPECT_EQ(mixed(a, b), ard(a, b));
    }
}

TEST(Kernel, MixedArdHammingTermAndValidation) {
    // Layout: one numeric coord + one 3-way one-hot block.
    MixedArdSquaredExponential k({2.0, 1.0, 1.0, 1.0},
                                 {{1, 3}}, 0.7);
    const Point same_cat{0.1, 1.0, 0.0, 0.0};
    const Point same_cat2{0.3, 1.0, 0.0, 0.0};
    const Point other_cat{0.1, 0.0, 1.0, 0.0};
    // Numeric-only distance.
    EXPECT_NEAR(k(same_cat, same_cat2), std::exp(-2.0 * 0.04), 1e-12);
    // Categorical-only distance: exp(-lambda), one-hot coords excluded
    // from the ARD sum.
    EXPECT_NEAR(k(same_cat, other_cat), std::exp(-0.7), 1e-12);
    EXPECT_DOUBLE_EQ(k(same_cat, same_cat), 1.0);

    EXPECT_THROW(MixedArdSquaredExponential({}, {}, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(MixedArdSquaredExponential({1.0, 1.0}, {{0, 2}}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(MixedArdSquaredExponential({1.0, 1.0}, {{1, 2}}, 1.0),
                 std::invalid_argument);  // block past the end
    EXPECT_THROW(
        MixedArdSquaredExponential({1.0, 1.0, 1.0}, {{0, 2}, {1, 2}}, 1.0),
        std::invalid_argument);  // overlapping blocks
    EXPECT_THROW(MixedArdSquaredExponential({0.0, 1.0}, {}, 1.0),
                 std::invalid_argument);  // non-positive numeric scale
}

TEST(BayesOpt, DuplicateMergeUsesSpanNormalizedDistance) {
    // A wide dimension next to a narrow one: raw Euclidean distance would
    // either merge distinct narrow-dim points or fail to merge identical
    // wide-dim points, depending on the span.  Span-normalized distance
    // treats both dims on the same [0, 1] scale.
    BoxBounds bounds;
    bounds.lower = {0.0, 0.0};
    bounds.upper = {0.6, 1000.0};
    BayesOptConfig config;
    BayesOpt bo(bounds, std::make_shared<ArdSquaredExponential>(2, 4.0),
                std::make_unique<PosteriorMean>(), config, Rng(43));

    // A 5e-4 raw offset in the wide dim is 5e-7 of its span — a duplicate
    // under the normalized tolerance (raw Euclidean 1e-6 would have kept
    // it distinct and risked a near-singular Gram matrix) — while the same
    // 5e-4 raw offset in the narrow dim is 8.3e-4 of its span and stays a
    // genuinely distinct point.
    bo.observe({0.3, 500.0}, 0.0);
    bo.observe({0.3, 500.0005}, 1.0);  // 5e-7 of span: merges
    EXPECT_EQ(bo.surrogate().observation_count(), 1U);
    bo.observe({0.3005, 500.0}, 1.0);  // 8.3e-4 of narrow span: distinct
    EXPECT_EQ(bo.surrogate().observation_count(), 2U);
}

TEST(BayesOpt, BatchSeparationIsSpanNormalized) {
    // With one dominant wide dimension, the diversity guard must still
    // separate candidates in the narrow dims: normalized separation uses
    // the fraction of each dim's span, not raw units.
    BoxBounds bounds;
    bounds.lower = {0.0, 0.0};
    bounds.upper = {0.6, 1000.0};
    BayesOptConfig config;
    config.initial_random_trials = 3;
    BayesOpt bo(bounds, std::make_shared<ArdSquaredExponential>(2, 4.0),
                std::make_unique<PosteriorMean>(), config, Rng(47));
    Rng objective_rng(48);
    for (int i = 0; i < 5; ++i) {
        const Point x = bo.suggest();
        bo.observe(x, objective_rng.uniform());
    }
    const std::vector<Point> batch = bo.suggest_batch(3);
    const double min_separation =
        config.batch_separation_fraction * std::sqrt(2.0);
    for (std::size_t a = 0; a < batch.size(); ++a) {
        for (std::size_t b = a + 1; b < batch.size(); ++b) {
            double sum = 0.0;
            for (std::size_t d = 0; d < 2; ++d) {
                const double span = bounds.upper[d] - bounds.lower[d];
                const double delta = (batch[a][d] - batch[b][d]) / span;
                sum += delta * delta;
            }
            EXPECT_GT(std::sqrt(sum), min_separation)
                << "candidates " << a << " and " << b
                << " too close in normalized distance";
        }
    }
}

TEST(BayesOpt, SuggestStaysInBounds) {
    BayesOptConfig config;
    config.initial_random_trials = 2;
    BayesOpt bo(BoxBounds::uniform(3, 0.2, 0.8),
                std::make_shared<ArdSquaredExponential>(3, 1.0),
                std::make_unique<PosteriorMean>(), config, Rng(5));
    for (int i = 0; i < 10; ++i) {
        const Point x = bo.suggest();
        for (double v : x) {
            EXPECT_GE(v, 0.2);
            EXPECT_LE(v, 0.8);
        }
        bo.observe(x, static_cast<double>(i % 3));
    }
    EXPECT_EQ(bo.trials().size(), 10U);
    EXPECT_TRUE(bo.surrogate().fitted());
}

}  // namespace
}  // namespace bayesft::bayesopt
