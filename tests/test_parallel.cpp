// Tests for the shared parallel-compute runtime: parallel_for index
// coverage under adversarial grain sizes, blocked-GEMM correctness against a
// naive oracle on rectangular shapes, Module::clone replication, and
// thread-count invariance of Monte-Carlo drift evaluation.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "data/toy.hpp"
#include "fault/drift.hpp"
#include "fault/evaluator.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"
#include "utils/parallel.hpp"
#include "utils/rng.hpp"

namespace bayesft {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    const std::size_t begin = 3, end = 1237;
    for (const std::size_t grain : {0UL, 1UL, 2UL, 3UL, 7UL, 16UL, 100UL,
                                    1233UL, 1234UL, 100000UL}) {
        std::vector<std::atomic<int>> hits(end);
        for (auto& h : hits) h.store(0);
        parallel_for(begin, end, grain,
                     [&](std::size_t lo, std::size_t hi) {
                         ASSERT_LE(lo, hi);
                         for (std::size_t i = lo; i < hi; ++i) {
                             hits[i].fetch_add(1);
                         }
                     });
        for (std::size_t i = 0; i < begin; ++i) {
            EXPECT_EQ(hits[i].load(), 0) << "grain " << grain << " idx " << i;
        }
        for (std::size_t i = begin; i < end; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " idx " << i;
        }
    }
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
    bool called = false;
    parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
    parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
    EXPECT_THROW(
        parallel_for(0, 64, 4,
                     [&](std::size_t, std::size_t hi) {
                         if (hi > 32) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunSerially) {
    std::atomic<int> inner_total{0};
    parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            parallel_for(0, 10, 1, [&](std::size_t l, std::size_t h) {
                inner_total.fetch_add(static_cast<int>(h - l));
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 80);
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(a(i, kk)) * b(kk, j);
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

TEST(BlockedGemm, MatchesNaiveOnRectangularShapes) {
    // Shapes straddling every micro-tile boundary: single rows/columns,
    // just-under / exactly / just-over tile multiples, and skinny panels.
    const std::size_t shapes[][3] = {
        {1, 1, 1},   {1, 5, 1},    {2, 3, 4},    {3, 17, 9},
        {7, 7, 7},   {8, 16, 32},  {9, 33, 31},  {15, 64, 17},
        {16, 16, 16}, {17, 15, 33}, {33, 100, 65}, {40, 257, 48},
        {5, 300, 129}, {128, 9, 128},
    };
    Rng rng(42);
    for (const auto& s : shapes) {
        const Tensor a = Tensor::randn({s[0], s[1]}, rng);
        const Tensor b = Tensor::randn({s[1], s[2]}, rng);
        const Tensor expect = naive_matmul(a, b);
        EXPECT_TRUE(matmul(a, b).allclose(expect, 1e-3F))
            << s[0] << "x" << s[1] << "x" << s[2];
        // The transposed variants route through the same kernel.
        EXPECT_TRUE(matmul_tn(transpose(a), b).allclose(expect, 1e-3F));
        EXPECT_TRUE(matmul_nt(a, transpose(b)).allclose(expect, 1e-3F));
    }
}

TEST(RngFork, PureAndDistinctPerStream) {
    Rng rng(7);
    const Rng fork0 = rng.fork(0);
    Rng replay_a = rng.fork(0);
    Rng replay_b = fork0;
    EXPECT_EQ(replay_a(), replay_b());  // fork is a pure function
    Rng other = rng.fork(1);
    Rng base_copy = rng.fork(0);
    EXPECT_NE(other(), base_copy());  // distinct streams diverge
    // fork must not advance the parent.
    Rng fresh(7);
    EXPECT_EQ(rng(), fresh());
}

std::unique_ptr<nn::Sequential> make_cnn(Rng& rng) {
    auto model = std::make_unique<nn::Sequential>();
    model->emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng);
    model->emplace<nn::BatchNorm>(4);
    model->emplace<nn::ReLU>();
    model->emplace<nn::MaxPool2d>(2);
    model->emplace<nn::Flatten>();
    model->emplace<nn::Linear>(4 * 4 * 4, 3, rng);
    model->set_training(false);
    return model;
}

TEST(ModuleClone, ReplicaMatchesOriginalForward) {
    Rng rng(11);
    auto model = make_cnn(rng);
    const Tensor input = Tensor::randn({5, 2, 8, 8}, rng);
    auto replica = model->clone();
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->parameter_count(), model->parameter_count());
    EXPECT_FALSE(replica->training());
    EXPECT_TRUE(replica->forward(input).equals(model->forward(input)));
}

TEST(ModuleClone, UnreplicableChildPoisonsContainer) {
    class Opaque : public nn::Module {
    public:
        Tensor forward(const Tensor& input) override { return input; }
        Tensor backward(const Tensor& g) override { return g; }
        std::string name() const override { return "Opaque"; }
    };
    nn::Sequential model;
    model.emplace<nn::Identity>();
    model.add(std::make_unique<Opaque>());
    EXPECT_EQ(model.clone(), nullptr);
}

TEST(DriftEvaluation, ReportInvariantUnderThreadCount) {
    Rng rng(12);
    auto blobs = data::make_blobs(96, 3, 4.0, 0.4, rng);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 16, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(16, 3, rng);
    model.set_training(false);
    const fault::LogNormalDrift drift(0.6);

    std::vector<double> reference;
    for (const std::size_t threads : {1UL, 2UL, 3UL, 4UL, 7UL}) {
        Rng eval_rng(2024);
        const auto report = fault::evaluate_under_drift(
            model, blobs.images, blobs.labels, drift, 9, eval_rng, threads);
        ASSERT_EQ(report.samples.size(), 9U);
        if (reference.empty()) {
            reference = report.samples;
        } else {
            EXPECT_EQ(report.samples, reference)
                << "divergent at " << threads << " threads";
        }
    }
}

TEST(DriftEvaluation, ConvModelInvariantUnderThreadCount) {
    Rng rng(13);
    auto model = make_cnn(rng);
    const Tensor images = Tensor::randn({24, 2, 8, 8}, rng);
    std::vector<int> labels(24);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = static_cast<int>(rng.uniform_int(std::uint64_t{3}));
    }
    const fault::LogNormalDrift drift(0.5);
    Rng rng_serial(5), rng_parallel(5);
    const auto serial = fault::evaluate_under_drift(
        *model, images, labels, drift, 6, rng_serial, 1);
    const auto parallel = fault::evaluate_under_drift(
        *model, images, labels, drift, 6, rng_parallel, 4);
    EXPECT_EQ(serial.samples, parallel.samples);
    // The parent generator must advance identically on both paths.
    EXPECT_EQ(rng_serial(), rng_parallel());
}

TEST(DriftEvaluation, ParallelPathRestoresWeights) {
    Rng rng(14);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 4, rng);
    model.set_training(false);
    const Tensor before = model.parameters()[0]->value;
    auto blobs = data::make_blobs(32, 2, 4.0, 0.4, rng);
    fault::evaluate_under_drift(model, blobs.images, blobs.labels,
                                fault::LogNormalDrift(1.0), 5, rng, 4);
    EXPECT_TRUE(model.parameters()[0]->value.equals(before));
}

}  // namespace
}  // namespace bayesft
