// Loss functions: known values, finite-difference gradient checks, and
// numerical-stability edge cases.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogK) {
    const Tensor logits = Tensor::zeros({2, 4});
    const LossResult r = cross_entropy(logits, {0, 3});
    EXPECT_NEAR(r.value, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero) {
    Tensor logits({1, 3}, std::vector<float>{20.0F, 0.0F, 0.0F});
    const LossResult r = cross_entropy(logits, {0});
    EXPECT_LT(r.value, 1e-6);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
    Rng rng(1);
    const Tensor logits = Tensor::randn({5, 7}, rng);
    const LossResult r = cross_entropy(logits, {0, 1, 2, 3, 4});
    for (std::size_t i = 0; i < 5; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 7; ++j) row += r.grad(i, j);
        EXPECT_NEAR(row, 0.0, 1e-6);  // softmax-minus-onehot sums to zero
    }
}

TEST(CrossEntropy, GradientMatchesFiniteDifferences) {
    Rng rng(2);
    Tensor logits = Tensor::randn({3, 4}, rng);
    const std::vector<int> labels{1, 0, 3};
    const LossResult analytic = cross_entropy(logits, labels);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        const float saved = logits[i];
        logits[i] = saved + eps;
        const double plus = cross_entropy(logits, labels).value;
        logits[i] = saved - eps;
        const double minus = cross_entropy(logits, labels).value;
        logits[i] = saved;
        EXPECT_NEAR(analytic.grad[i], (plus - minus) / (2.0 * eps), 1e-3);
    }
}

TEST(CrossEntropy, RejectsBadLabels) {
    const Tensor logits = Tensor::zeros({2, 3});
    EXPECT_THROW(cross_entropy(logits, {0, 3}), std::invalid_argument);
    EXPECT_THROW(cross_entropy(logits, {0, -1}), std::invalid_argument);
    EXPECT_THROW(cross_entropy(logits, {0}), std::invalid_argument);
}

TEST(BceWithLogits, KnownValue) {
    // z = 0, t = 0.5: loss = log 2 regardless of target symmetry.
    const Tensor logits = Tensor::zeros({1, 1});
    const Tensor targets = Tensor::full({1, 1}, 0.5F);
    const LossResult r = bce_with_logits(logits, targets);
    EXPECT_NEAR(r.value, std::log(2.0), 1e-6);
}

TEST(BceWithLogits, StableForExtremeLogits) {
    Tensor logits({1, 2}, std::vector<float>{500.0F, -500.0F});
    Tensor targets({1, 2}, std::vector<float>{1.0F, 0.0F});
    const LossResult r = bce_with_logits(logits, targets);
    EXPECT_TRUE(std::isfinite(r.value));
    EXPECT_NEAR(r.value, 0.0, 1e-6);
}

TEST(BceWithLogits, GradientMatchesFiniteDifferences) {
    Rng rng(3);
    Tensor logits = Tensor::randn({2, 3}, rng);
    const Tensor targets = Tensor::uniform({2, 3}, rng, 0.0F, 1.0F);
    const LossResult analytic = bce_with_logits(logits, targets);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        const float saved = logits[i];
        logits[i] = saved + eps;
        const double plus = bce_with_logits(logits, targets).value;
        logits[i] = saved - eps;
        const double minus = bce_with_logits(logits, targets).value;
        logits[i] = saved;
        EXPECT_NEAR(analytic.grad[i], (plus - minus) / (2.0 * eps), 1e-3);
    }
}

TEST(BceWithLogits, ShapeMismatchThrows) {
    EXPECT_THROW(bce_with_logits(Tensor::zeros({1, 2}), Tensor::zeros({2, 1})),
                 std::invalid_argument);
}

TEST(Mse, KnownValue) {
    Tensor pred({2}, std::vector<float>{1.0F, 3.0F});
    Tensor target({2}, std::vector<float>{0.0F, 0.0F});
    const LossResult r = mse(pred, target);
    EXPECT_NEAR(r.value, (1.0 + 9.0) / 2.0, 1e-6);
}

TEST(Mse, WeightsScaleContributions) {
    Tensor pred({2}, std::vector<float>{1.0F, 1.0F});
    Tensor target = Tensor::zeros({2});
    Tensor weights({2}, std::vector<float>{0.0F, 2.0F});
    const LossResult r = mse(pred, target, weights);
    EXPECT_NEAR(r.value, 1.0, 1e-6);  // (0*1 + 2*1)/2
    EXPECT_FLOAT_EQ(r.grad[0], 0.0F);
    EXPECT_GT(r.grad[1], 0.0F);
}

TEST(Mse, GradientMatchesFiniteDifferences) {
    Rng rng(4);
    Tensor pred = Tensor::randn({3, 2}, rng);
    const Tensor target = Tensor::randn({3, 2}, rng);
    const Tensor weights = Tensor::uniform({3, 2}, rng, 0.0F, 2.0F);
    const LossResult analytic = mse(pred, target, weights);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < pred.size(); ++i) {
        const float saved = pred[i];
        pred[i] = saved + eps;
        const double plus = mse(pred, target, weights).value;
        pred[i] = saved - eps;
        const double minus = mse(pred, target, weights).value;
        pred[i] = saved;
        EXPECT_NEAR(analytic.grad[i], (plus - minus) / (2.0 * eps), 1e-3);
    }
}

TEST(Mse, EmptyOrMismatchedThrow) {
    EXPECT_THROW(mse(Tensor(), Tensor()), std::invalid_argument);
    EXPECT_THROW(mse(Tensor::zeros({2}), Tensor::zeros({3})),
                 std::invalid_argument);
    EXPECT_THROW(mse(Tensor::zeros({2}), Tensor::zeros({2}),
                     Tensor::zeros({3})),
                 std::invalid_argument);
}

}  // namespace
}  // namespace bayesft::nn
