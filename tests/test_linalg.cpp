// Tests for the double-precision linear algebra behind the GP surrogate.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "utils/rng.hpp"

namespace bayesft::linalg {
namespace {

/// Random symmetric positive-definite matrix A = B B^T + n I.
Matrix random_spd(std::size_t n, Rng& rng) {
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
    }
    Matrix a = b * b.transposed();
    a.add_diagonal(static_cast<double>(n));
    return a;
}

TEST(Matrix, IdentityAndIndexing) {
    const Matrix eye = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
    EXPECT_EQ(eye.rows(), 3U);
}

TEST(Matrix, MultiplyKnownValues) {
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {5, 6, 7, 8});
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
    Matrix a(2, 3);
    Matrix b(2, 2);
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
    Matrix a(2, 3, {1, 0, 2, 0, 1, 3});
    const Vector y = a * Vector{1, 2, 3};
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], 11.0);
}

TEST(Matrix, TransposedSwapsIndices) {
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3U);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AddDiagonalRequiresSquare) {
    Matrix a(2, 3);
    EXPECT_THROW(a.add_diagonal(1.0), std::invalid_argument);
}

TEST(VectorOps, DotAndNorm) {
    EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
    EXPECT_THROW(dot({1}, {1, 2}), std::invalid_argument);
}

TEST(Cholesky, ReconstructsMatrix) {
    Rng rng(1);
    const Matrix a = random_spd(8, rng);
    const Matrix l = cholesky(a);
    const Matrix rebuilt = l * l.transposed();
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-9);
        }
    }
}

TEST(Cholesky, FactorIsLowerTriangular) {
    Rng rng(2);
    const Matrix l = cholesky(random_spd(6, rng));
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = i + 1; j < 6; ++j) {
            EXPECT_DOUBLE_EQ(l(i, j), 0.0);
        }
    }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
    Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3 and -1
    EXPECT_THROW(cholesky(a), std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
    EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, JitterRecoversNearSingular) {
    // Rank-deficient Gram matrix (duplicated points) — exactly the situation
    // BO creates when it proposes the same alpha twice.
    Matrix a(2, 2, {1, 1, 1, 1});
    EXPECT_THROW(cholesky(a), std::runtime_error);
    EXPECT_NO_THROW(cholesky_with_jitter(a));
}

TEST(Solve, LowerTriangularSolve) {
    Matrix l(2, 2, {2, 0, 1, 3});
    const Vector y = solve_lower(l, {4, 10});
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], (10.0 - 2.0) / 3.0);
}

TEST(Solve, CholeskySolveInvertsSystem) {
    Rng rng(3);
    const Matrix a = random_spd(10, rng);
    Vector b(10);
    for (double& v : b) v = rng.normal();
    const Matrix l = cholesky(a);
    const Vector x = cholesky_solve(l, b);
    const Vector reconstructed = a * x;
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_NEAR(reconstructed[i], b[i], 1e-8);
    }
}

TEST(Solve, DimensionMismatchThrows) {
    Matrix l(2, 2, {1, 0, 0, 1});
    EXPECT_THROW(solve_lower(l, {1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(solve_lower_transposed(l, {1, 2, 3}), std::invalid_argument);
}

TEST(LogDet, MatchesDirectComputation) {
    // diag(4, 9): det = 36, log det = log 36.
    Matrix a(2, 2, {4, 0, 0, 9});
    const Matrix l = cholesky(a);
    EXPECT_NEAR(log_det_from_cholesky(l), std::log(36.0), 1e-12);
}

TEST(LogDet, RandomSpdAgainstGaussianElimination) {
    Rng rng(4);
    const Matrix a = random_spd(5, rng);
    // LU-free check: product of Cholesky pivots squared equals det(A).
    const Matrix l = cholesky(a);
    double direct = 1.0;
    for (std::size_t i = 0; i < 5; ++i) direct *= l(i, i) * l(i, i);
    EXPECT_NEAR(log_det_from_cholesky(l), std::log(direct), 1e-9);
}

}  // namespace
}  // namespace bayesft::linalg
