// Tests for the double-precision linear algebra behind the GP surrogate.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "utils/rng.hpp"

namespace bayesft::linalg {
namespace {

/// Random symmetric positive-definite matrix A = B B^T + n I.
Matrix random_spd(std::size_t n, Rng& rng) {
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
    }
    Matrix a = b * b.transposed();
    a.add_diagonal(static_cast<double>(n));
    return a;
}

TEST(Matrix, IdentityAndIndexing) {
    const Matrix eye = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
    EXPECT_EQ(eye.rows(), 3U);
}

TEST(Matrix, MultiplyKnownValues) {
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {5, 6, 7, 8});
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
    Matrix a(2, 3);
    Matrix b(2, 2);
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
    Matrix a(2, 3, {1, 0, 2, 0, 1, 3});
    const Vector y = a * Vector{1, 2, 3};
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], 11.0);
}

TEST(Matrix, TransposedSwapsIndices) {
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3U);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AddDiagonalRequiresSquare) {
    Matrix a(2, 3);
    EXPECT_THROW(a.add_diagonal(1.0), std::invalid_argument);
}

TEST(VectorOps, DotAndNorm) {
    EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
    EXPECT_THROW(dot({1}, {1, 2}), std::invalid_argument);
}

TEST(Cholesky, ReconstructsMatrix) {
    Rng rng(1);
    const Matrix a = random_spd(8, rng);
    const Matrix l = cholesky(a);
    const Matrix rebuilt = l * l.transposed();
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-9);
        }
    }
}

TEST(Cholesky, FactorIsLowerTriangular) {
    Rng rng(2);
    const Matrix l = cholesky(random_spd(6, rng));
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = i + 1; j < 6; ++j) {
            EXPECT_DOUBLE_EQ(l(i, j), 0.0);
        }
    }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
    Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3 and -1
    EXPECT_THROW(cholesky(a), std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
    EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, JitterRecoversNearSingular) {
    // Rank-deficient Gram matrix (duplicated points) — exactly the situation
    // BO creates when it proposes the same alpha twice.
    Matrix a(2, 2, {1, 1, 1, 1});
    EXPECT_THROW(cholesky(a), std::runtime_error);
    EXPECT_NO_THROW(cholesky_with_jitter(a));
}

TEST(Solve, LowerTriangularSolve) {
    Matrix l(2, 2, {2, 0, 1, 3});
    const Vector y = solve_lower(l, {4, 10});
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], (10.0 - 2.0) / 3.0);
}

TEST(Solve, CholeskySolveInvertsSystem) {
    Rng rng(3);
    const Matrix a = random_spd(10, rng);
    Vector b(10);
    for (double& v : b) v = rng.normal();
    const Matrix l = cholesky(a);
    const Vector x = cholesky_solve(l, b);
    const Vector reconstructed = a * x;
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_NEAR(reconstructed[i], b[i], 1e-8);
    }
}

TEST(Solve, DimensionMismatchThrows) {
    Matrix l(2, 2, {1, 0, 0, 1});
    EXPECT_THROW(solve_lower(l, {1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(solve_lower_transposed(l, {1, 2, 3}), std::invalid_argument);
}

TEST(Cholesky, ParallelPathMatchesSerialBitwise) {
    // n = 224 crosses the column-parallel threshold (192); the factor must
    // be bit-identical to the serial recurrence computed by hand here.
    Rng rng(11);
    const std::size_t n = 224;
    const Matrix a = random_spd(n, rng);
    const Matrix l = cholesky(a);
    Matrix ref(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k) sum -= ref(i, k) * ref(j, k);
            ref(i, j) = (i == j) ? std::sqrt(sum) : sum / ref(j, j);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            EXPECT_EQ(l(i, j), ref(i, j)) << "element " << i << "," << j;
        }
    }
}

TEST(CholeskyAppend, MatchesFromScratchBitwise) {
    // Growing the factor one row at a time must land on exactly the bits a
    // from-scratch factorization of each leading block produces — the
    // incremental-GP contract (docs/optimizer-scaling.md).
    Rng rng(12);
    const std::size_t n = 24;
    const Matrix a = random_spd(n, rng);
    Matrix grown = cholesky(Matrix(1, 1, {a(0, 0)}));
    for (std::size_t m = 1; m < n; ++m) {
        Vector k(m);
        for (std::size_t j = 0; j < m; ++j) k[j] = a(m, j);
        ASSERT_TRUE(cholesky_append_row(grown, k, a(m, m)));
        Matrix block(m + 1, m + 1);
        for (std::size_t i = 0; i <= m; ++i) {
            for (std::size_t j = 0; j <= m; ++j) block(i, j) = a(i, j);
        }
        const Matrix direct = cholesky(block);
        for (std::size_t i = 0; i <= m; ++i) {
            for (std::size_t j = 0; j <= i; ++j) {
                ASSERT_EQ(grown(i, j), direct(i, j))
                    << "block " << m << " element " << i << "," << j;
            }
        }
    }
}

TEST(CholeskyAppend, RejectsNonPositiveDefiniteRow) {
    // Appending a duplicate of an existing point makes the grown matrix
    // singular: the append must refuse (false) and leave the factor
    // untouched, mirroring cholesky()'s throw on the full matrix.
    // [[1, 1], [1, 1]] — the same singular matrix the Cholesky jitter test
    // pins as rejected from scratch; the pivot is exactly 0 in doubles.
    Matrix l = cholesky(Matrix(1, 1, {1.0}));
    const Matrix before = l;
    EXPECT_FALSE(cholesky_append_row(l, Vector{1.0}, 1.0));
    EXPECT_EQ(l(0, 0), before(0, 0));
    EXPECT_EQ(l.rows(), 1U);
}

TEST(CholeskyTruncate, IsExactDowndate) {
    // Rows finalize top-down, so truncating the factor equals factorizing
    // the leading block — bit-for-bit (the fantasy-rollback contract).
    Rng rng(13);
    const Matrix a = random_spd(12, rng);
    Matrix l = cholesky(a);
    cholesky_truncate(l, 7);
    Matrix block(7, 7);
    for (std::size_t i = 0; i < 7; ++i) {
        for (std::size_t j = 0; j < 7; ++j) block(i, j) = a(i, j);
    }
    const Matrix direct = cholesky(block);
    ASSERT_EQ(l.rows(), 7U);
    for (std::size_t i = 0; i < 7; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            EXPECT_EQ(l(i, j), direct(i, j));
        }
    }
}

TEST(SolveMulti, MatchesPerRowSolvesBitwise) {
    // Each RHS row of the multi-solve must carry the identical bits the
    // one-vector solve_lower produces (the pooled-posterior contract).
    Rng rng(14);
    const std::size_t n = 9, m = 5;
    const Matrix l = cholesky(random_spd(n, rng));
    Matrix rhs(m, n);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t i = 0; i < n; ++i) rhs(r, i) = rng.normal();
    }
    const Matrix original = rhs;
    solve_lower_multi_inplace(l, rhs);
    for (std::size_t r = 0; r < m; ++r) {
        Vector b(n);
        for (std::size_t i = 0; i < n; ++i) b[i] = original(r, i);
        const Vector x = solve_lower(l, b);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(rhs(r, i), x[i]) << "row " << r << " col " << i;
        }
    }
}

TEST(SolveMulti, RejectsMismatchedShapes) {
    const Matrix l = cholesky(Matrix(2, 2, {4, 0, 0, 9}));
    Matrix rhs(3, 3);
    EXPECT_THROW(solve_lower_multi_inplace(l, rhs), std::invalid_argument);
}

TEST(LogDet, MatchesDirectComputation) {
    // diag(4, 9): det = 36, log det = log 36.
    Matrix a(2, 2, {4, 0, 0, 9});
    const Matrix l = cholesky(a);
    EXPECT_NEAR(log_det_from_cholesky(l), std::log(36.0), 1e-12);
}

TEST(LogDet, RandomSpdAgainstGaussianElimination) {
    Rng rng(4);
    const Matrix a = random_spd(5, rng);
    // LU-free check: product of Cholesky pivots squared equals det(A).
    const Matrix l = cholesky(a);
    double direct = 1.0;
    for (std::size_t i = 0; i < 5; ++i) direct *= l(i, i) * l(i, i);
    EXPECT_NEAR(log_det_from_cholesky(l), std::log(direct), 1e-9);
}

}  // namespace
}  // namespace bayesft::linalg
