// Model zoo: forward/backward shape correctness for every architecture,
// dropout-site bookkeeping, and trainability smoke checks.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace bayesft::models {
namespace {

struct ZooCase {
    std::string name;
    std::function<ModelHandle(Rng&)> make;
    std::vector<std::size_t> input_shape;
    std::size_t outputs;
};

class ZooShapes : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooShapes, ForwardBackwardRoundTrip) {
    const ZooCase& zoo_case = GetParam();
    Rng rng(7);
    ModelHandle model = zoo_case.make(rng);
    ASSERT_NE(model.net, nullptr);
    EXPECT_FALSE(model.dropout_sites.empty()) << zoo_case.name;
    EXPECT_GT(model.net->parameter_count(), 0U);

    const Tensor input = Tensor::randn(zoo_case.input_shape, rng, 0.5F);
    const Tensor logits = model.net->forward(input);
    ASSERT_EQ(logits.rank(), 2U);
    EXPECT_EQ(logits.dim(0), zoo_case.input_shape[0]);
    EXPECT_EQ(logits.dim(1), zoo_case.outputs);
    for (std::size_t i = 0; i < logits.size(); ++i) {
        EXPECT_TRUE(std::isfinite(logits[i])) << zoo_case.name;
    }

    // One full backward pass with a real loss gradient.
    std::vector<int> labels(zoo_case.input_shape[0], 0);
    const nn::LossResult loss = nn::cross_entropy(logits, labels);
    const Tensor grad_input = model.net->backward(loss.grad);
    EXPECT_EQ(grad_input.shape(), input.shape());
    for (std::size_t i = 0; i < grad_input.size(); ++i) {
        EXPECT_TRUE(std::isfinite(grad_input[i])) << zoo_case.name;
    }
}

std::vector<ZooCase> zoo_cases() {
    std::vector<ZooCase> cases;
    cases.push_back({"Mlp3Layer",
                     [](Rng& rng) {
                         MlpOptions options;
                         options.input_features = 256;
                         return make_mlp(options, rng);
                     },
                     {4, 1, 16, 16},
                     10});
    cases.push_back({"MlpWithBatchNorm",
                     [](Rng& rng) {
                         MlpOptions options;
                         options.input_features = 64;
                         options.norm = NormKind::kBatch;
                         return make_mlp(options, rng);
                     },
                     {4, 64},
                     10});
    cases.push_back({"MlpGelu",
                     [](Rng& rng) {
                         MlpOptions options;
                         options.input_features = 64;
                         options.activation = "gelu";
                         return make_mlp(options, rng);
                     },
                     {4, 64},
                     10});
    cases.push_back({"LeNet5",
                     [](Rng& rng) { return make_lenet5(1, 16, 10, rng); },
                     {4, 1, 16, 16},
                     10});
    cases.push_back({"AlexNetS",
                     [](Rng& rng) { return make_alexnet_s(10, rng); },
                     {2, 3, 16, 16},
                     10});
    cases.push_back({"Vgg11S",
                     [](Rng& rng) { return make_vgg11_s(10, rng); },
                     {2, 3, 16, 16},
                     10});
    cases.push_back({"ResNet18S",
                     [](Rng& rng) { return make_resnet18_s(10, rng); },
                     {2, 3, 16, 16},
                     10});
    cases.push_back({"ResNet18SNoNorm",
                     [](Rng& rng) {
                         return make_resnet18_s(10, rng, NormKind::kNone);
                     },
                     {2, 3, 16, 16},
                     10});
    cases.push_back({"PreActS1",
                     [](Rng& rng) {
                         return make_preact_resnet_s(1, 10, rng);
                     },
                     {2, 3, 16, 16},
                     10});
    cases.push_back({"PreActS2",
                     [](Rng& rng) {
                         return make_preact_resnet_s(2, 10, rng);
                     },
                     {2, 3, 16, 16},
                     10});
    cases.push_back({"StnClassifier",
                     [](Rng& rng) { return make_stn_classifier(43, rng); },
                     {2, 3, 16, 16},
                     43});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooShapes,
                         ::testing::ValuesIn(zoo_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(ModelHandle, SetDropoutRatesInstallsAndValidates) {
    Rng rng(1);
    MlpOptions options;
    options.input_features = 16;
    options.hidden_layers = 3;
    ModelHandle model = make_mlp(options, rng);
    ASSERT_EQ(model.dropout_sites.size(), 3U);
    model.set_dropout_rates({0.1, 0.2, 0.3});
    EXPECT_EQ(model.dropout_rates(), (std::vector<double>{0.1, 0.2, 0.3}));
    EXPECT_THROW(model.set_dropout_rates({0.1}), std::invalid_argument);
    EXPECT_THROW(model.set_dropout_rates({0.1, 0.2, 1.5}),
                 std::invalid_argument);
}

TEST(Mlp, HiddenLayerCountControlsDepth) {
    Rng rng(2);
    MlpOptions shallow;
    shallow.input_features = 16;
    shallow.hidden_layers = 1;
    MlpOptions deep = shallow;
    deep.hidden_layers = 5;
    const auto shallow_params = make_mlp(shallow, rng).net->parameter_count();
    const auto deep_params = make_mlp(deep, rng).net->parameter_count();
    EXPECT_GT(deep_params, shallow_params);
    EXPECT_EQ(make_mlp(deep, rng).dropout_sites.size(), 5U);
}

TEST(Mlp, AlphaDropoutVariantHasNoSearchSites) {
    Rng rng(3);
    MlpOptions options;
    options.input_features = 16;
    options.dropout = DropoutKind::kAlpha;
    options.initial_dropout_rate = 0.2;
    const ModelHandle model = make_mlp(options, rng);
    EXPECT_TRUE(model.dropout_sites.empty());
}

TEST(Mlp, NoDropoutVariant) {
    Rng rng(4);
    MlpOptions options;
    options.input_features = 16;
    options.dropout = DropoutKind::kNone;
    EXPECT_TRUE(make_mlp(options, rng).dropout_sites.empty());
}

TEST(PreAct, DeeperVariantsHaveMoreParameters) {
    Rng rng(5);
    const auto p1 = make_preact_resnet_s(1, 10, rng).net->parameter_count();
    const auto p2 = make_preact_resnet_s(2, 10, rng).net->parameter_count();
    const auto p4 = make_preact_resnet_s(4, 10, rng).net->parameter_count();
    EXPECT_LT(p1, p2);
    EXPECT_LT(p2, p4);
}

TEST(PreAct, DropoutSitesScaleWithDepth) {
    Rng rng(6);
    const auto s1 = make_preact_resnet_s(1, 10, rng).dropout_sites.size();
    const auto s2 = make_preact_resnet_s(2, 10, rng).dropout_sites.size();
    EXPECT_EQ(s2 - s1, 3U);  // one extra block (and site) per stage
}

TEST(Stn, IdentityInitializationPreservesInputEarly) {
    // At initialization the STN head outputs the identity transform, so the
    // transformer stage must be a no-op (weights were zeroed, bias set).
    Rng rng(7);
    ModelHandle model = make_stn_classifier(43, rng);
    model.net->set_training(false);
    const Tensor input = Tensor::randn({1, 3, 16, 16}, rng);
    // Can't peek inside Sequential easily; instead check determinism and
    // finiteness of the full forward (identity warp keeps values bounded).
    const Tensor out = model.net->forward(input);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(std::isfinite(out[i]));
    }
}

TEST(Zoo, DropoutRatesDefaultToZero) {
    Rng rng(8);
    const ModelHandle model = make_alexnet_s(10, rng);
    for (double rate : model.dropout_rates()) {
        EXPECT_DOUBLE_EQ(rate, 0.0);
    }
}

TEST(Zoo, InvalidConfigurationsThrow) {
    Rng rng(9);
    MlpOptions zero_layers;
    zero_layers.hidden_layers = 0;
    EXPECT_THROW(make_mlp(zero_layers, rng), std::invalid_argument);
    EXPECT_THROW(make_lenet5(1, 6, 10, rng), std::invalid_argument);
    EXPECT_THROW(make_preact_resnet_s(0, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bayesft::models
