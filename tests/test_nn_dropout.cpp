// Dropout behaviour: mask statistics, inverted scaling, eval passthrough,
// runtime rate adjustment (the BayesFT search knob), and alpha dropout's
// moment preservation.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.hpp"

namespace bayesft::nn {
namespace {

TEST(Dropout, RejectsBadRates) {
    EXPECT_THROW(Dropout(-0.1), std::invalid_argument);
    EXPECT_THROW(Dropout(1.0), std::invalid_argument);
    EXPECT_NO_THROW(Dropout(0.0));
    EXPECT_NO_THROW(Dropout(0.99));
}

TEST(Dropout, EvalModeIsIdentity) {
    Dropout drop(0.7, 1);
    drop.set_training(false);
    const Tensor input = Tensor::full({4, 4}, 2.0F);
    EXPECT_TRUE(drop.forward(input).equals(input));
    EXPECT_TRUE(drop.backward(input).equals(input));
}

TEST(Dropout, ZeroRateIsIdentityEvenTraining) {
    Dropout drop(0.0, 1);
    drop.set_training(true);
    const Tensor input = Tensor::full({4, 4}, 2.0F);
    EXPECT_TRUE(drop.forward(input).equals(input));
}

TEST(Dropout, DropFractionMatchesRate) {
    Dropout drop(0.4, 7);
    drop.set_training(true);
    const Tensor input = Tensor::ones({100, 100});
    const Tensor out = drop.forward(input);
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] == 0.0F) ++zeros;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.4, 0.02);
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
    Dropout drop(0.5, 9);
    drop.set_training(true);
    const Tensor input = Tensor::ones({200, 200});
    const Tensor out = drop.forward(input);
    EXPECT_NEAR(out.mean(), 1.0F, 0.02F);  // E[out] == input
}

TEST(Dropout, SurvivorsAreScaled) {
    Dropout drop(0.75, 11);
    drop.set_training(true);
    const Tensor out = drop.forward(Tensor::ones({64, 64}));
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(out[i] == 0.0F || std::abs(out[i] - 4.0F) < 1e-5F);
    }
}

TEST(Dropout, BackwardUsesSameMask) {
    Dropout drop(0.5, 13);
    drop.set_training(true);
    const Tensor input = Tensor::ones({32, 32});
    const Tensor out = drop.forward(input);
    const Tensor grad = drop.backward(Tensor::ones({32, 32}));
    // Gradient is zero exactly where the activation was dropped.
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i] == 0.0F, grad[i] == 0.0F);
    }
}

TEST(Dropout, SetRateTakesEffect) {
    Dropout drop(0.1, 17);
    drop.set_training(true);
    drop.set_rate(0.9);
    EXPECT_DOUBLE_EQ(drop.rate(), 0.9);
    const Tensor out = drop.forward(Tensor::ones({100, 100}));
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] == 0.0F) ++zeros;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.9, 0.02);
    EXPECT_THROW(drop.set_rate(1.0), std::invalid_argument);
}

TEST(AlphaDropout, EvalModeIsIdentity) {
    AlphaDropout drop(0.5, 19);
    drop.set_training(false);
    const Tensor input = Tensor::full({8, 8}, -1.3F);
    EXPECT_TRUE(drop.forward(input).equals(input));
}

TEST(AlphaDropout, PreservesMomentsOfStandardInput) {
    // For a standard-normal input, alpha dropout keeps mean ~0 and var ~1
    // (this is its defining property from Klambauer et al.).
    // NOTE: data and mask must use unrelated seeds — with a shared seed the
    // Bernoulli stream correlates with the Box-Muller stream.
    AlphaDropout drop(0.3, 1234);
    drop.set_training(true);
    Rng rng(777);
    const Tensor input = Tensor::randn({300, 300}, rng);
    const Tensor out = drop.forward(input);
    const double mean = out.mean();
    double var = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        var += (out[i] - mean) * (out[i] - mean);
    }
    var /= static_cast<double>(out.size());
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(AlphaDropout, BackwardZeroOnDropped) {
    AlphaDropout drop(0.5, 29);
    drop.set_training(true);
    const Tensor input = Tensor::full({64, 64}, 0.7F);
    drop.forward(input);
    const Tensor grad = drop.backward(Tensor::ones({64, 64}));
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        if (grad[i] == 0.0F) ++zeros;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / grad.size(), 0.5, 0.05);
}

TEST(AlphaDropout, SetRateValidates) {
    AlphaDropout drop(0.2);
    drop.set_rate(0.6);
    EXPECT_DOUBLE_EQ(drop.rate(), 0.6);
    EXPECT_THROW(drop.set_rate(-0.2), std::invalid_argument);
}

TEST(Dropout, DeterministicForFixedSeed) {
    Dropout a(0.5, 31);
    Dropout b(0.5, 31);
    a.set_training(true);
    b.set_training(true);
    const Tensor input = Tensor::ones({16, 16});
    EXPECT_TRUE(a.forward(input).equals(b.forward(input)));
}

}  // namespace
}  // namespace bayesft::nn
