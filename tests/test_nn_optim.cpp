// Optimizers: convergence on quadratic objectives, momentum behaviour,
// Adam bias correction, weight decay, and the training loop.

#include <gtest/gtest.h>

#include <cmath>

#include "data/toy.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace bayesft::nn {
namespace {

/// A single free parameter as a trivial module, for optimizer unit tests.
class ScalarParam : public Module {
public:
    explicit ScalarParam(float init)
        : param_("x", Tensor({1}, {init})) {}
    Tensor forward(const Tensor&) override { return param_.value; }
    Tensor backward(const Tensor& g) override {
        param_.grad.add_(g);
        return g;
    }
    void collect_parameters(std::vector<Parameter*>& out) override {
        out.push_back(&param_);
    }
    std::string name() const override { return "ScalarParam"; }
    float value() const { return param_.value[0]; }
    Parameter& param() { return param_; }

private:
    Parameter param_;
};

TEST(Sgd, ConvergesOnQuadratic) {
    // minimize f(x) = (x - 3)^2, grad = 2 (x - 3).
    ScalarParam p(0.0F);
    Sgd opt(p.parameters(), 0.1, 0.0);
    for (int i = 0; i < 100; ++i) {
        opt.zero_grad();
        p.param().grad[0] = 2.0F * (p.value() - 3.0F);
        opt.step();
    }
    EXPECT_NEAR(p.value(), 3.0F, 1e-4F);
}

TEST(Sgd, MomentumAcceleratesDescent) {
    auto run = [](double momentum) {
        ScalarParam p(10.0F);
        Sgd opt(p.parameters(), 0.01, momentum);
        for (int i = 0; i < 30; ++i) {
            opt.zero_grad();
            p.param().grad[0] = 2.0F * p.value();
            opt.step();
        }
        return std::abs(p.value());
    };
    EXPECT_LT(run(0.9), run(0.0));  // momentum closes the gap faster
}

TEST(Sgd, WeightDecayShrinksWeights) {
    ScalarParam p(1.0F);
    Sgd opt(p.parameters(), 0.1, 0.0, 0.5);
    for (int i = 0; i < 50; ++i) {
        opt.zero_grad();  // zero loss gradient: only decay acts
        opt.step();
    }
    EXPECT_LT(std::abs(p.value()), 0.1F);
}

TEST(Sgd, RejectsBadLearningRate) {
    ScalarParam p(0.0F);
    EXPECT_THROW(Sgd(p.parameters(), 0.0), std::invalid_argument);
    Sgd opt(p.parameters(), 0.1);
    EXPECT_THROW(opt.set_learning_rate(-1.0), std::invalid_argument);
}

TEST(Adam, ConvergesOnQuadratic) {
    ScalarParam p(-5.0F);
    Adam opt(p.parameters(), 0.1);
    for (int i = 0; i < 300; ++i) {
        opt.zero_grad();
        p.param().grad[0] = 2.0F * (p.value() - 1.0F);
        opt.step();
    }
    EXPECT_NEAR(p.value(), 1.0F, 1e-2F);
}

TEST(Adam, FirstStepIsLearningRateSized) {
    // With bias correction the very first Adam step is ~lr * sign(grad).
    ScalarParam p(0.0F);
    Adam opt(p.parameters(), 0.1);
    opt.zero_grad();
    p.param().grad[0] = 42.0F;
    opt.step();
    EXPECT_NEAR(p.value(), -0.1F, 1e-3F);
}

TEST(Optimizer, ZeroGradClears) {
    ScalarParam p(0.0F);
    Sgd opt(p.parameters(), 0.1);
    p.param().grad[0] = 5.0F;
    opt.zero_grad();
    EXPECT_FLOAT_EQ(p.param().grad[0], 0.0F);
}

TEST(Optimizer, NullParameterRejected) {
    EXPECT_THROW(Sgd({nullptr}, 0.1), std::invalid_argument);
}

TEST(Trainer, GatherBatchExtractsRows) {
    Tensor images({3, 2}, std::vector<float>{0, 1, 10, 11, 20, 21});
    const std::vector<int> labels{0, 1, 2};
    const std::vector<std::size_t> order{2, 0, 1};
    const Batch b = gather_batch(images, labels, order, 0, 2);
    EXPECT_EQ(b.labels, (std::vector<int>{2, 0}));
    EXPECT_FLOAT_EQ(b.images(0, 0), 20.0F);
    EXPECT_FLOAT_EQ(b.images(1, 1), 1.0F);
    EXPECT_THROW(gather_batch(images, labels, order, 2, 2),
                 std::invalid_argument);
}

TEST(Trainer, LearnsLinearlySeparableBlobs) {
    Rng rng(11);
    const data::Dataset blobs = data::make_blobs(400, 3, 4.0, 0.5, rng);
    Sequential model;
    model.emplace<Linear>(2, 16, rng);
    model.emplace<ReLU>();
    model.emplace<Linear>(16, 3, rng);
    TrainConfig config;
    config.epochs = 20;
    config.learning_rate = 0.05;
    const auto history = train_classifier(model, blobs.images, blobs.labels,
                                          config, rng);
    EXPECT_EQ(history.size(), 20U);
    EXPECT_GT(history.back().train_accuracy, 0.95);
    EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
    EXPECT_GT(evaluate_accuracy(model, blobs.images, blobs.labels), 0.95);
}

TEST(Trainer, PredictLogitsMatchesBatchedEval) {
    Rng rng(12);
    const data::Dataset blobs = data::make_blobs(50, 2, 3.0, 0.5, rng);
    Sequential model;
    model.emplace<Linear>(2, 2, rng);
    const Tensor all = predict_logits(model, blobs.images, 7);  // odd batch
    const Tensor full = predict_logits(model, blobs.images, 50);
    EXPECT_TRUE(all.allclose(full, 1e-5F));
}

TEST(Trainer, EmptyDatasetThrows) {
    Rng rng(13);
    Sequential model;
    model.emplace<Linear>(2, 2, rng);
    TrainConfig config;
    EXPECT_THROW(
        train_classifier(model, Tensor({0, 2}), {}, config, rng),
        std::invalid_argument);
}

TEST(Trainer, EvalRestoresTrainingFlag) {
    Rng rng(14);
    Sequential model;
    model.emplace<Linear>(2, 2, rng);
    model.set_training(true);
    const data::Dataset blobs = data::make_blobs(10, 2, 3.0, 0.5, rng);
    evaluate_accuracy(model, blobs.images, blobs.labels);
    EXPECT_TRUE(model.training());
}

}  // namespace
}  // namespace bayesft::nn
