// The SIMD dispatch layer's bit-exactness contract (simd/kernels.hpp):
// for identical inputs — including the Rng state — every kernel must
// produce bit-identical results on every tier this build + CPU can run.
// Pinned here for every fault model in the zoo, every activation kind
// (forward and backward), the deterministic quantization kernels, and
// GEMM across odd/remainder shapes; plus the panel-split invariance that
// makes the parallel GEMM driver thread-count independent, and fault
// injection under 1 and 4 evaluation threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "fault/drift.hpp"
#include "fault/evaluator.hpp"
#include "fault/model.hpp"
#include "fault/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "simd/kernels.hpp"
#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace bayesft::simd {
namespace {

/// Every tier this build + CPU can actually execute (kScalar always).
std::vector<Tier> available_tiers() {
    std::vector<Tier> tiers;
    for (const Tier t :
         {Tier::kScalar, Tier::kAvx2, Tier::kAvx512, Tier::kNeon}) {
        if (tier_available(t)) tiers.push_back(t);
    }
    return tiers;
}

/// Deterministic weight-like data with sign changes, zeros, and a wide
/// magnitude range (exercises saturation and sign paths).
std::vector<float> test_weights(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<float> w(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float u = rng.uniform(-1.0, 1.0) < 0.0 ? -1.0F : 1.0F;
        w[i] = u * static_cast<float>(rng.uniform(0.0, 2.0));
        if (i % 17 == 0) w[i] = 0.0F;  // exact zeros stay on the grid
    }
    return w;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Sizes chosen to straddle every vector width: sub-lane, exactly one
/// 16-lane round, one-past, and large with a ragged tail.
const std::size_t kSpanSizes[] = {1, 5, 16, 17, 31, 33, 64, 257, 1000};

std::vector<std::unique_ptr<fault::FaultModel>> fault_zoo() {
    using namespace fault;
    std::vector<std::unique_ptr<FaultModel>> models;
    models.push_back(std::make_unique<LogNormalDrift>(0.4));
    models.push_back(std::make_unique<GaussianAdditiveDrift>(0.15));
    models.push_back(std::make_unique<UniformScaleDrift>(0.3));
    models.push_back(std::make_unique<StuckAtZeroDrift>(0.2));
    models.push_back(std::make_unique<SignFlipDrift>(0.2));
    models.push_back(std::make_unique<StuckAtFault>(0.15, 0.3));
    models.push_back(std::make_unique<StuckAtFault>(0.5, 0.5, 0.75));
    models.push_back(std::make_unique<BitFlipFault>(0.05, 8));
    models.push_back(std::make_unique<BitFlipFault>(0.02, 12));
    models.push_back(std::make_unique<GaussianVariationFault>(0.25));
    models.push_back(std::make_unique<QuantizationFault>(6));
    models.push_back(fault::dac12_deploy(0.3));
    return models;
}

// ----------------------------------------------------------- dispatch ----

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
    EXPECT_TRUE(tier_available(Tier::kScalar));
    ASSERT_NE(kernels_for(Tier::kScalar), nullptr);
    EXPECT_STREQ(kernels_for(Tier::kScalar)->name, "scalar");
}

TEST(SimdDispatch, TierOverrideSwitchesAndRestores) {
    const Tier before = active_tier();
    {
        TierOverride scalar(Tier::kScalar);
        EXPECT_EQ(active_tier(), Tier::kScalar);
        EXPECT_STREQ(kernels().name, "scalar");
    }
    EXPECT_EQ(active_tier(), before);
}

TEST(SimdDispatch, EveryAvailableTierHasCompleteTable) {
    for (const Tier t : available_tiers()) {
        const KernelTable* kt = kernels_for(t);
        ASSERT_NE(kt, nullptr) << tier_name(t);
        EXPECT_NE(kt->lognormal_mul, nullptr);
        EXPECT_NE(kt->gemm_f32, nullptr);
        EXPECT_NE(kt->qgemm_nt, nullptr);
        EXPECT_STREQ(kt->name, tier_name(t));
    }
}

// ------------------------------------------- fault-model equivalence ----

/// Every fault model, every span size: identical seed -> bit-identical
/// perturbed weights AND an identical post-call Rng position on every
/// tier (the draw-stream layout is part of the determinism contract).
TEST(SimdBitExact, EveryFaultModelMatchesScalarOnEveryTier) {
    const auto tiers = available_tiers();
    for (const auto& model : fault_zoo()) {
        for (const std::size_t n : kSpanSizes) {
            const std::vector<float> base = test_weights(n, 0xF00D + n);

            std::vector<float> scalar_out = base;
            Rng scalar_rng(42);
            {
                TierOverride scalar(Tier::kScalar);
                model->perturb(scalar_out, scalar_rng);
            }
            const std::uint64_t scalar_next = scalar_rng();

            for (const Tier t : tiers) {
                std::vector<float> out = base;
                Rng rng(42);
                {
                    TierOverride override_tier(t);
                    model->perturb(out, rng);
                }
                EXPECT_TRUE(bits_equal(scalar_out, out))
                    << model->describe() << " n=" << n << " tier "
                    << tier_name(t);
                EXPECT_EQ(rng(), scalar_next)
                    << model->describe() << " n=" << n
                    << " draws a different stream length on "
                    << tier_name(t);
            }
        }
    }
}

// --------------------------------------------- activation equivalence ----

TEST(SimdBitExact, EveryActivationMatchesScalarOnEveryTier) {
    struct Case {
        Act kind;
        float param;
    };
    const Case cases[] = {
        {Act::kRelu, 0.0F},    {Act::kLeakyRelu, 0.01F},
        {Act::kElu, 1.0F},     {Act::kElu, 0.5F},
        {Act::kGelu, 0.0F},    {Act::kSigmoid, 0.0F},
        {Act::kTanh, 0.0F},
    };
    const auto tiers = available_tiers();
    for (const Case& c : cases) {
        for (const std::size_t n : kSpanSizes) {
            // Inputs span both signs, zeros, and the saturating range.
            std::vector<float> x = test_weights(n, 0xAC7 + n);
            for (std::size_t i = 0; i < n; ++i) x[i] *= 4.0F;
            const std::vector<float> g0 = test_weights(n, 0x9AD + n);

            std::vector<float> fwd_ref(n), bwd_ref = g0;
            {
                TierOverride scalar(Tier::kScalar);
                kernels().act_fwd(c.kind, x.data(), fwd_ref.data(), n,
                                  c.param);
                kernels().act_bwd(c.kind, x.data(), bwd_ref.data(), n,
                                  c.param);
            }
            for (const Tier t : tiers) {
                std::vector<float> fwd(n), bwd = g0;
                const KernelTable* kt = kernels_for(t);
                kt->act_fwd(c.kind, x.data(), fwd.data(), n, c.param);
                kt->act_bwd(c.kind, x.data(), bwd.data(), n, c.param);
                EXPECT_TRUE(bits_equal(fwd_ref, fwd))
                    << "act_fwd kind=" << static_cast<int>(c.kind)
                    << " n=" << n << " tier " << tier_name(t);
                EXPECT_TRUE(bits_equal(bwd_ref, bwd))
                    << "act_bwd kind=" << static_cast<int>(c.kind)
                    << " n=" << n << " tier " << tier_name(t);
            }

            // In-place forward (y == x) must agree with out-of-place.
            std::vector<float> inplace = x;
            kernels().act_fwd(c.kind, inplace.data(), inplace.data(), n,
                              c.param);
            std::vector<float> outofplace(n);
            kernels().act_fwd(c.kind, x.data(), outofplace.data(), n,
                              c.param);
            EXPECT_TRUE(bits_equal(inplace, outofplace));
        }
    }
}

// --------------------------------------------------- GEMM equivalence ----

/// Shapes straddling every microkernel boundary: sub-tile, exact tiles,
/// row/column remainders, k spanning multiple kGemmKc panels, and the
/// k == 0 case (accumulate=false must still zero-fill C).
TEST(SimdBitExact, GemmMatchesScalarOnOddShapes) {
    struct Shape {
        std::size_t m, k, n;
    };
    const Shape shapes[] = {{1, 1, 1},   {3, 5, 7},    {8, 16, 32},
                            {13, 1, 19}, {6, 0, 4},    {17, 31, 33},
                            {33, 64, 65}, {2, 259, 9}, {5, 300, 40}};
    const auto tiers = available_tiers();
    for (const Shape& s : shapes) {
        const std::vector<float> a = test_weights(s.m * s.k, 0xA + s.m);
        const std::vector<float> b = test_weights(s.k * s.n, 0xB + s.n);
        const std::vector<float> c0 = test_weights(s.m * s.n, 0xC + s.k);

        for (const bool accumulate : {false, true}) {
            std::vector<float> ref = c0;
            kernels_for(Tier::kScalar)
                ->gemm_f32(a.data(), s.k, b.data(), s.n, ref.data(), s.n,
                           s.m, s.k, s.n, accumulate);
            for (const Tier t : tiers) {
                std::vector<float> c = c0;
                kernels_for(t)->gemm_f32(a.data(), s.k, b.data(), s.n,
                                         c.data(), s.n, s.m, s.k, s.n,
                                         accumulate);
                EXPECT_TRUE(bits_equal(ref, c))
                    << "gemm " << s.m << "x" << s.k << "x" << s.n
                    << " accumulate=" << accumulate << " tier "
                    << tier_name(t);
            }
            if (s.k == 0 && !accumulate) {
                // Overwrite semantics with an empty k: C becomes all-zero.
                for (const float v : ref) EXPECT_EQ(v, 0.0F);
            }
        }
    }
}

/// The parallel GEMM driver splits C into row/column panels; the split
/// must not change a single bit.  Emulate a 4-thread row partition by
/// hand and compare against the one-shot call — this is exactly the
/// invariance that makes any pool width produce identical results.
TEST(SimdBitExact, GemmPanelSplitIsBitInvariant) {
    const std::size_t m = 37, k = 53, n = 29;
    const std::vector<float> a = test_weights(m * k, 1);
    const std::vector<float> b = test_weights(k * n, 2);

    for (const Tier t : available_tiers()) {
        const KernelTable* kt = kernels_for(t);
        std::vector<float> whole(m * n);
        kt->gemm_f32(a.data(), k, b.data(), n, whole.data(), n, m, k, n,
                     false);

        std::vector<float> split(m * n);
        const std::size_t bounds[] = {0, 9, 18, 27, m};  // 4 uneven panels
        for (int p = 0; p < 4; ++p) {
            const std::size_t lo = bounds[p], hi = bounds[p + 1];
            kt->gemm_f32(a.data() + lo * k, k, b.data(), n,
                         split.data() + lo * n, n, hi - lo, k, n, false);
        }
        EXPECT_TRUE(bits_equal(whole, split)) << tier_name(t);
    }
}

// ------------------------------------------------ quantization kernels ----

TEST(SimdBitExact, QuantizeAndCodesAgreeAcrossTiers) {
    const auto tiers = available_tiers();
    for (const int bits : {4, 8, 12}) {
        for (const std::size_t n : kSpanSizes) {
            const std::vector<float> base = test_weights(n, 0x0DD + n);
            const float qmax =
                static_cast<float>((std::int64_t{1} << (bits - 1)) - 1);
            const float scale =
                kernels_for(Tier::kScalar)->max_abs(base.data(), n) / qmax;
            if (scale == 0.0F) continue;

            std::vector<float> ref = base;
            std::vector<std::int16_t> ref_codes(n);
            {
                const KernelTable* sc = kernels_for(Tier::kScalar);
                sc->quantize(ref.data(), n, bits, scale);
                sc->quantize_codes(base.data(), ref_codes.data(), n, bits,
                                   scale);
            }
            // codes * scale IS the dequantized view (same grid).
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(static_cast<float>(ref_codes[i]) * scale, ref[i])
                    << "bits=" << bits << " i=" << i;
                EXPECT_LE(std::abs(static_cast<float>(ref_codes[i])), qmax);
            }

            for (const Tier t : tiers) {
                std::vector<float> w = base;
                std::vector<std::int16_t> codes(n);
                const KernelTable* kt = kernels_for(t);
                EXPECT_EQ(kt->max_abs(base.data(), n),
                          kernels_for(Tier::kScalar)->max_abs(base.data(), n))
                    << tier_name(t);
                kt->quantize(w.data(), n, bits, scale);
                kt->quantize_codes(base.data(), codes.data(), n, bits,
                                   scale);
                EXPECT_TRUE(bits_equal(ref, w))
                    << "quantize bits=" << bits << " n=" << n << " tier "
                    << tier_name(t);
                EXPECT_EQ(ref_codes, codes)
                    << "quantize_codes bits=" << bits << " n=" << n
                    << " tier " << tier_name(t);
            }
        }
    }
}

TEST(SimdBitExact, QgemmNtMatchesInt64ReferenceOnEveryTier) {
    const std::size_t m = 7, k = 45, n = 11;
    Rng rng(77);
    std::vector<std::int16_t> a(m * k), b(n * k);
    for (auto& v : a) {
        v = static_cast<std::int16_t>(rng.uniform(-2047.0, 2047.0));
    }
    for (auto& v : b) {
        v = static_cast<std::int16_t>(rng.uniform(-2047.0, 2047.0));
    }
    const float scale = 3.0517578e-05F;

    std::vector<float> ref(m * n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<std::int64_t>(a[i * k + kk]) *
                       static_cast<std::int64_t>(b[j * k + kk]);
            }
            ref[i * n + j] = static_cast<float>(acc) * scale;
        }
    }
    for (const Tier t : available_tiers()) {
        std::vector<float> c(m * n, -1.0F);  // must be overwritten
        kernels_for(t)->qgemm_nt(a.data(), b.data(), c.data(), m, k, n,
                                 scale);
        EXPECT_TRUE(bits_equal(ref, c)) << tier_name(t);
    }
}

// ------------------------------------------------- thread invariance ----

/// Full-stack check: Monte-Carlo fault evaluation of a real model under 1
/// and 4 evaluation threads must agree with each other and across tiers —
/// the injection loops run inside worker threads, so this exercises the
/// kernels under the pool.
TEST(SimdBitExact, InjectionUnderOneAndFourThreadsEveryTier) {
    Rng init(3);
    nn::Sequential model;
    model.emplace<nn::Linear>(12, 16, init);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(16, 4, init);

    Rng data_rng(9);
    const Tensor images = Tensor::randn({24, 12}, data_rng);
    std::vector<int> labels(24);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = static_cast<int>(i % 4);
    }
    const fault::LogNormalDrift drift(0.5);

    std::vector<double> reference;
    for (const Tier t : available_tiers()) {
        TierOverride override_tier(t);
        for (const std::size_t threads : {1UL, 4UL}) {
            Rng eval_rng(123);
            const auto report = fault::evaluate_under_drift(
                model, images, labels, drift, 8, eval_rng, threads);
            if (reference.empty()) {
                reference = report.samples;
                continue;
            }
            EXPECT_EQ(report.samples, reference)
                << tier_name(t) << " threads=" << threads;
        }
    }
}

}  // namespace
}  // namespace bayesft::simd
