// The BayesFT core: drift utility, Algorithm 1 search, and all four
// baselines, on fast low-dimensional tasks.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/bayesft.hpp"
#include "core/experiment.hpp"
#include "core/objective.hpp"
#include "data/toy.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {
namespace {

/// Shared quick task: 3-class blobs, small MLP over 2 features.
class CoreFixture : public ::testing::Test {
protected:
    static models::ModelHandle make_model(std::size_t outputs, Rng& rng) {
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 24;
        options.hidden_layers = 2;
        options.classes = outputs;
        return models::make_mlp(options, rng);
    }

    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(1);
        const data::Dataset full = data::make_blobs(600, 3, 4.0, 0.6, rng);
        Rng split_rng(2);
        auto parts = data::split(full, 0.3, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }
    data::Dataset train_;
    data::Dataset test_;
};

TEST_F(CoreFixture, DriftUtilityIsHighForTrainedRobustModel) {
    Rng rng(3);
    models::ModelHandle model = make_model(3, rng);
    nn::TrainConfig config;
    config.epochs = 10;
    train_erm(model, train_, config, rng);

    ObjectiveConfig objective;
    objective.sigmas = {0.0};
    objective.mc_samples = 2;
    const double clean_utility = drift_utility(
        *model.net, test_.images, test_.labels, objective, rng);
    EXPECT_GT(clean_utility, 0.9);

    objective.sigmas = {2.5};
    const double drifted_utility = drift_utility(
        *model.net, test_.images, test_.labels, objective, rng);
    EXPECT_LT(drifted_utility, clean_utility);
}

TEST_F(CoreFixture, DriftUtilityValidatesConfig) {
    Rng rng(4);
    models::ModelHandle model = make_model(3, rng);
    ObjectiveConfig objective;
    objective.sigmas = {};
    EXPECT_THROW(drift_utility(*model.net, test_.images, test_.labels,
                               objective, rng),
                 std::invalid_argument);
}

TEST_F(CoreFixture, NegLossMetricIsFiniteAndOrdersLikeAccuracy) {
    Rng rng(5);
    models::ModelHandle model = make_model(3, rng);
    nn::TrainConfig config;
    config.epochs = 10;
    train_erm(model, train_, config, rng);
    ObjectiveConfig objective;
    objective.metric = ObjectiveMetric::kNegLoss;
    objective.sigmas = {0.2};
    objective.mc_samples = 2;
    const double utility = drift_utility(*model.net, test_.images,
                                         test_.labels, objective, rng);
    EXPECT_TRUE(std::isfinite(utility));
    EXPECT_LT(utility, 0.0);  // -loss is negative
}

TEST_F(CoreFixture, BayesFTSearchProducesValidAlphaAndTrains) {
    Rng rng(6);
    models::ModelHandle model = make_model(3, rng);
    BayesFTConfig config;
    config.iterations = 5;
    config.epochs_per_iteration = 2;
    config.train.epochs = 2;
    config.objective.sigmas = {0.5};
    config.objective.mc_samples = 2;
    config.final_epochs = 1;
    const BayesFTResult result =
        bayesft_search(model, train_, test_, config, rng);

    EXPECT_EQ(result.trials.size(), 5U);
    EXPECT_EQ(result.best_alpha.size(), model.dropout_sites.size());
    for (double a : result.best_alpha) {
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, config.max_dropout_rate);
    }
    // Best alpha must be installed on the returned model.
    EXPECT_EQ(model.dropout_rates(), result.best_alpha);
    // Network trains to usable clean accuracy despite the dropout search.
    EXPECT_GT(nn::evaluate_accuracy(*model.net, test_.images, test_.labels),
              0.8);
}

TEST_F(CoreFixture, BayesFTImprovesDriftRobustnessOverErm) {
    // The headline claim on a toy scale: under heavy drift, the searched
    // architecture retains more accuracy than plain ERM.  Averaged over
    // seeds for statistical stability.
    double erm_total = 0.0;
    double bayesft_total = 0.0;
    const std::vector<double> eval_sigma{1.0};
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        Rng erm_rng(100 + seed);
        models::ModelHandle erm_model = make_model(3, erm_rng);
        nn::TrainConfig train_config;
        train_config.epochs = 12;
        train_erm(erm_model, train_, train_config, erm_rng);

        Rng bft_rng(200 + seed);
        models::ModelHandle bft_model = make_model(3, bft_rng);
        BayesFTConfig config;
        config.iterations = 6;
        config.epochs_per_iteration = 2;
        config.objective.sigmas = {0.6, 1.0};
        config.objective.mc_samples = 3;
        config.final_epochs = 2;
        bayesft_search(bft_model, train_, test_, config, bft_rng);

        ObjectiveConfig eval;
        eval.sigmas = eval_sigma;
        eval.mc_samples = 6;
        Rng eval_rng(300 + seed);
        erm_total += drift_utility(*erm_model.net, test_.images,
                                   test_.labels, eval, eval_rng);
        bayesft_total += drift_utility(*bft_model.net, test_.images,
                                       test_.labels, eval, eval_rng);
    }
    EXPECT_GT(bayesft_total, erm_total);
}

TEST_F(CoreFixture, RandomSearchAlsoRunsButUsesNoSurrogate) {
    Rng rng(7);
    models::ModelHandle model = make_model(3, rng);
    BayesFTConfig config;
    config.iterations = 3;
    config.epochs_per_iteration = 1;
    config.objective.sigmas = {0.5};
    config.objective.mc_samples = 1;
    config.final_epochs = 0;
    const BayesFTResult result =
        random_search(model, train_, test_, config, rng);
    EXPECT_EQ(result.trials.size(), 3U);
}

TEST_F(CoreFixture, SearchRejectsModelsWithoutSites) {
    Rng rng(8);
    models::MlpOptions options;
    options.input_features = 2;
    options.dropout = models::DropoutKind::kNone;
    models::ModelHandle model = models::make_mlp(options, rng);
    BayesFTConfig config;
    EXPECT_THROW(bayesft_search(model, train_, test_, config, rng),
                 std::invalid_argument);
}

TEST_F(CoreFixture, ReRamVAdaptsToOneDevicePattern) {
    Rng rng(9);
    models::ModelHandle model = make_model(3, rng);
    ReRamVConfig config;
    config.pretrain.epochs = 10;
    config.adapt_epochs = 3;
    config.device_sigma = 0.4;
    train_reram_v(model, train_, config, rng);
    // After diagnose-and-retrain the model works on clean evaluation.
    EXPECT_GT(nn::evaluate_accuracy(*model.net, test_.images, test_.labels),
              0.8);
}

TEST_F(CoreFixture, AwpTrainsToUsableAccuracy) {
    Rng rng(10);
    models::ModelHandle model = make_model(3, rng);
    AwpConfig config;
    config.train.epochs = 12;
    config.gamma = 0.01;
    train_awp(model, train_, config, rng);
    EXPECT_GT(nn::evaluate_accuracy(*model.net, test_.images, test_.labels),
              0.8);
    EXPECT_THROW(
        [&] {
            AwpConfig bad;
            bad.gamma = -1.0;
            train_awp(model, train_, bad, rng);
        }(),
        std::invalid_argument);
}

TEST_F(CoreFixture, FtnaTrainsAndDecodesAboveChance) {
    Rng rng(11);
    const std::size_t code_bits = 12;
    models::ModelHandle model = make_model(code_bits, rng);
    FtnaClassifier ftna(std::move(model), 3, code_bits, rng);
    nn::TrainConfig config;
    config.epochs = 15;
    ftna.train(train_, config, rng);
    const double acc = ftna.evaluate_accuracy(test_.images, test_.labels);
    EXPECT_GT(acc, 0.85);  // well above the 1/3 chance level
}

TEST_F(CoreFixture, FtnaCodebookIsDistinctPerClass) {
    Rng rng(12);
    models::ModelHandle model = make_model(8, rng);
    FtnaClassifier ftna(std::move(model), 4, 8, rng);
    const auto& codebook = ftna.codebook();
    ASSERT_EQ(codebook.size(), 4U);
    for (std::size_t a = 0; a < 4; ++a) {
        EXPECT_EQ(codebook[a].size(), 8U);
        for (std::size_t b = a + 1; b < 4; ++b) {
            EXPECT_NE(codebook[a], codebook[b]);
        }
    }
    EXPECT_THROW(FtnaClassifier(make_model(2, rng), 1, 8, rng),
                 std::invalid_argument);
}

TEST_F(CoreFixture, ExperimentHarnessProducesAllCurves) {
    ExperimentConfig config;
    config.sigmas = {0.0, 0.8};
    config.eval_samples = 2;
    config.train.epochs = 4;
    config.bayesft.iterations = 3;
    config.bayesft.epochs_per_iteration = 1;
    config.bayesft.objective.sigmas = {0.5};
    config.bayesft.objective.mc_samples = 1;
    config.bayesft.final_epochs = 1;
    config.ftna_code_bits = 8;

    const ExperimentResult result = run_classification_experiment(
        [](std::size_t outputs, Rng& rng) { return make_model(outputs, rng); },
        train_, test_, 3, config);

    ASSERT_EQ(result.curves.size(), 5U);
    EXPECT_EQ(result.curves[0].method, "ERM");
    EXPECT_EQ(result.curves[4].method, "BayesFT");
    for (const auto& curve : result.curves) {
        ASSERT_EQ(curve.accuracy.size(), 2U);
        for (double acc : curve.accuracy) {
            EXPECT_GE(acc, 0.0);
            EXPECT_LE(acc, 1.0);
        }
    }
    EXPECT_FALSE(result.bayesft_alpha.empty());

    const ResultTable table = result.to_table("test");
    EXPECT_EQ(table.columns().size(), 6U);  // sigma + 5 methods
    EXPECT_EQ(table.row_count(), 2U);
}

TEST_F(CoreFixture, ExperimentMethodSubsetRespected) {
    ExperimentConfig config;
    config.sigmas = {0.0};
    config.eval_samples = 1;
    config.train.epochs = 2;
    config.methods.ftna = false;
    config.methods.reram_v = false;
    config.methods.awp = false;
    config.methods.bayesft = false;
    const ExperimentResult result = run_classification_experiment(
        [](std::size_t outputs, Rng& rng) { return make_model(outputs, rng); },
        train_, test_, 3, config);
    ASSERT_EQ(result.curves.size(), 1U);
    EXPECT_EQ(result.curves[0].method, "ERM");
}

}  // namespace
}  // namespace bayesft::core
