// Synthetic dataset generators: shapes, value ranges, class balance,
// separability, and split semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/digits.hpp"
#include "data/objects.hpp"
#include "data/pedestrians.hpp"
#include "data/toy.hpp"
#include "data/traffic_signs.hpp"

namespace bayesft::data {
namespace {

TEST(Split, PartitionsWithoutOverlapOrLoss) {
    Rng rng(1);
    Dataset full;
    full.images = Tensor({100, 2});
    for (std::size_t i = 0; i < 100; ++i) {
        full.images(i, 0) = static_cast<float>(i);  // unique marker
        full.labels.push_back(static_cast<int>(i % 4));
    }
    full.num_classes = 4;
    const TrainTestSplit s = split(full, 0.3, rng);
    EXPECT_EQ(s.test.size(), 30U);
    EXPECT_EQ(s.train.size(), 70U);
    std::set<float> markers;
    for (std::size_t i = 0; i < 70; ++i) markers.insert(s.train.images(i, 0));
    for (std::size_t i = 0; i < 30; ++i) markers.insert(s.test.images(i, 0));
    EXPECT_EQ(markers.size(), 100U);  // disjoint and exhaustive
}

TEST(Split, RejectsDegenerateFractions) {
    Rng rng(2);
    Dataset full;
    full.images = Tensor({10, 1});
    full.labels.assign(10, 0);
    full.num_classes = 1;
    EXPECT_THROW(split(full, 0.0, rng), std::invalid_argument);
    EXPECT_THROW(split(full, 1.0, rng), std::invalid_argument);
}

TEST(TakeRows, ExtractsAndValidates) {
    Dataset full;
    full.images = Tensor({3, 2}, std::vector<float>{0, 1, 2, 3, 4, 5});
    full.labels = {7, 8, 9};
    full.num_classes = 10;
    const Dataset sub = take_rows(full, {2, 0});
    EXPECT_EQ(sub.labels, (std::vector<int>{9, 7}));
    EXPECT_FLOAT_EQ(sub.images(0, 0), 4.0F);
    EXPECT_THROW(take_rows(full, {5}), std::out_of_range);
}

TEST(ClassHistogram, CountsAndValidates) {
    Dataset d;
    d.images = Tensor({4, 1});
    d.labels = {0, 1, 1, 2};
    d.num_classes = 3;
    EXPECT_EQ(class_histogram(d), (std::vector<std::size_t>{1, 2, 1}));
    d.labels[0] = 5;
    EXPECT_THROW(class_histogram(d), std::out_of_range);
}

TEST(Moons, ShapeBalanceAndSpread) {
    Rng rng(3);
    const Dataset moons = make_moons(200, 0.05, rng);
    EXPECT_EQ(moons.size(), 200U);
    EXPECT_EQ(moons.num_classes, 2U);
    const auto hist = class_histogram(moons);
    EXPECT_EQ(hist[0], 100U);
    EXPECT_EQ(hist[1], 100U);
    // Points fall inside the canonical moons bounding box (with noise slack).
    EXPECT_GT(moons.images.min(), -2.0F);
    EXPECT_LT(moons.images.max(), 3.0F);
}

TEST(Blobs, ClassesAreWellSeparatedForSmallStddev) {
    Rng rng(4);
    const Dataset blobs = make_blobs(300, 3, 5.0, 0.1, rng);
    // Per-class centroids should be far apart relative to spread.
    std::vector<double> cx(3, 0.0), cy(3, 0.0), count(3, 0.0);
    for (std::size_t i = 0; i < blobs.size(); ++i) {
        const auto c = static_cast<std::size_t>(blobs.labels[i]);
        cx[c] += blobs.images(i, 0);
        cy[c] += blobs.images(i, 1);
        count[c] += 1.0;
    }
    for (std::size_t c = 0; c < 3; ++c) {
        cx[c] /= count[c];
        cy[c] /= count[c];
    }
    const double d01 = std::hypot(cx[0] - cx[1], cy[0] - cy[1]);
    EXPECT_GT(d01, 4.0);
}

TEST(Circles, RadiiSeparateClasses) {
    Rng rng(5);
    const Dataset circles = make_circles(200, 0.02, rng);
    for (std::size_t i = 0; i < circles.size(); ++i) {
        const double r = std::hypot(circles.images(i, 0),
                                    circles.images(i, 1));
        if (circles.labels[i] == 0) {
            EXPECT_NEAR(r, 1.0, 0.15);
        } else {
            EXPECT_NEAR(r, 0.5, 0.15);
        }
    }
}

TEST(Digits, DatasetShapeAndRange) {
    Rng rng(6);
    DigitConfig config;
    config.samples = 100;
    config.image_size = 16;
    const Dataset digits = synthetic_digits(config, rng);
    EXPECT_EQ(digits.images.shape(),
              (std::vector<std::size_t>{100, 1, 16, 16}));
    EXPECT_EQ(digits.num_classes, 10U);
    EXPECT_GE(digits.images.min(), 0.0F);
    EXPECT_LE(digits.images.max(), 1.0F);
    const auto hist = class_histogram(digits);
    for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(hist[c], 10U);
}

TEST(Digits, GlyphsAreDistinctAcrossClasses) {
    // Canonical renders of different digits must differ substantially more
    // than two jittered renders of the same digit.
    const Tensor zero = render_digit(0, 16, 0, 0, 0, 1.0);
    const Tensor one = render_digit(1, 16, 0, 0, 0, 1.0);
    const Tensor zero_again = render_digit(0, 16, 0.02, 0.02, 0.05, 1.0);
    Tensor inter = zero;
    inter.sub_(one);
    Tensor intra = zero;
    intra.sub_(zero_again);
    EXPECT_GT(inter.squared_norm(), 2.0F * intra.squared_norm());
}

TEST(Digits, RenderValidatesArguments) {
    EXPECT_THROW(render_digit(10, 16, 0, 0, 0, 1.0), std::invalid_argument);
    EXPECT_THROW(render_digit(-1, 16, 0, 0, 0, 1.0), std::invalid_argument);
    EXPECT_THROW(render_digit(3, 4, 0, 0, 0, 1.0), std::invalid_argument);
}

TEST(Digits, HasInk) {
    const Tensor img = render_digit(8, 16, 0, 0, 0, 1.0);
    EXPECT_GT(img.sum(), 5.0F);   // some ink
    EXPECT_LT(img.mean(), 0.8F);  // mostly background
}

TEST(Objects, DatasetShapeBalanceRange) {
    Rng rng(7);
    ObjectConfig config;
    config.samples = 50;
    config.image_size = 16;
    const Dataset objects = synthetic_objects(config, rng);
    EXPECT_EQ(objects.images.shape(),
              (std::vector<std::size_t>{50, 3, 16, 16}));
    EXPECT_EQ(objects.num_classes, 10U);
    EXPECT_GE(objects.images.min(), 0.0F);
    EXPECT_LE(objects.images.max(), 1.0F);
    const auto hist = class_histogram(objects);
    for (auto count : hist) EXPECT_EQ(count, 5U);
}

TEST(Objects, StripeClassesDiffer) {
    Rng rng(8);
    const Tensor h = render_object(ObjectClass::kHorizontalStripes, 16, rng,
                                   0.0);
    const Tensor v = render_object(ObjectClass::kVerticalStripes, 16, rng,
                                   0.0);
    Tensor diff = h;
    diff.sub_(v);
    EXPECT_GT(diff.squared_norm(), 1.0F);
}

TEST(TrafficSigns, DatasetCovers43Classes) {
    Rng rng(9);
    TrafficSignConfig config;
    config.samples = 86;
    const Dataset signs = synthetic_traffic_signs(config, rng);
    EXPECT_EQ(signs.num_classes, 43U);
    const auto hist = class_histogram(signs);
    for (auto count : hist) EXPECT_EQ(count, 2U);
    EXPECT_GE(signs.images.min(), 0.0F);
    EXPECT_LE(signs.images.max(), 1.0F);
}

TEST(TrafficSigns, ClassesAreVisuallyDistinct) {
    // Different class id => different canonical render.
    const Tensor a = render_traffic_sign(0, 16, 0, 0, 0, 1.0);
    const Tensor b = render_traffic_sign(1, 16, 0, 0, 0, 1.0);
    const Tensor c = render_traffic_sign(5, 16, 0, 0, 0, 1.0);  // color change
    Tensor shape_diff = a;
    shape_diff.sub_(b);
    Tensor color_diff = a;
    color_diff.sub_(c);
    EXPECT_GT(shape_diff.squared_norm(), 0.5F);
    EXPECT_GT(color_diff.squared_norm(), 0.5F);
}

TEST(TrafficSigns, ValidatesArguments) {
    EXPECT_THROW(render_traffic_sign(-1, 16, 0, 0, 0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(render_traffic_sign(60, 16, 0, 0, 0, 1.0),
                 std::invalid_argument);
    Rng rng(10);
    TrafficSignConfig config;
    config.num_classes = 100;
    EXPECT_THROW(synthetic_traffic_signs(config, rng), std::invalid_argument);
}

TEST(Pedestrians, ScenesHaveBoxesInBounds) {
    Rng rng(11);
    PedestrianConfig config;
    config.samples = 30;
    config.image_size = 32;
    const DetectionDataset scenes = synthetic_pedestrians(config, rng);
    EXPECT_EQ(scenes.size(), 30U);
    EXPECT_EQ(scenes.images.shape(),
              (std::vector<std::size_t>{30, 3, 32, 32}));
    std::size_t total_boxes = 0;
    for (const auto& boxes : scenes.boxes) {
        EXPECT_GE(boxes.size(), 1U);
        EXPECT_LE(boxes.size(), 3U);
        total_boxes += boxes.size();
        for (const auto& box : boxes) {
            EXPECT_TRUE(box.valid());
            EXPECT_GE(box.x1, 0.0);
            EXPECT_GE(box.y1, 0.0);
            EXPECT_LE(box.x2, 32.0);
            EXPECT_LE(box.y2, 32.0);
            // Pedestrians are taller than wide.
            EXPECT_GT(box.height(), box.width());
        }
    }
    EXPECT_GT(total_boxes, 30U);  // some scenes have > 1 pedestrian
}

TEST(Pedestrians, GroundTruthBoxesDoNotOverlapHeavily) {
    Rng rng(12);
    PedestrianConfig config;
    config.samples = 50;
    const DetectionDataset scenes = synthetic_pedestrians(config, rng);
    for (const auto& boxes : scenes.boxes) {
        for (std::size_t i = 0; i < boxes.size(); ++i) {
            for (std::size_t j = i + 1; j < boxes.size(); ++j) {
                EXPECT_LE(detect::iou(boxes[i], boxes[j]), 0.3);
            }
        }
    }
}

TEST(Pedestrians, FiguresAreDarkerThanBackground) {
    Rng rng(13);
    PedestrianConfig config;
    config.samples = 5;
    config.noise = 0.0;
    const DetectionDataset scenes = synthetic_pedestrians(config, rng);
    // Mean luminance inside the first box should be below the scene mean.
    const auto& box = scenes.boxes[0][0];
    double inside = 0.0;
    std::size_t count = 0;
    for (std::size_t y = static_cast<std::size_t>(box.y1);
         y < static_cast<std::size_t>(box.y2); ++y) {
        for (std::size_t x = static_cast<std::size_t>(box.x1);
             x < static_cast<std::size_t>(box.x2); ++x) {
            inside += scenes.images(0, 1, y, x);
            ++count;
        }
    }
    inside /= static_cast<double>(count);
    double scene_mean = 0.0;
    for (std::size_t i = 0; i < 3 * 32 * 32; ++i) {
        scene_mean += scenes.images[i];
    }
    scene_mean /= (3.0 * 32 * 32);
    EXPECT_LT(inside, scene_mean);
}

TEST(Pedestrians, ConfigValidation) {
    Rng rng(14);
    PedestrianConfig config;
    config.min_pedestrians = 3;
    config.max_pedestrians = 1;
    EXPECT_THROW(synthetic_pedestrians(config, rng), std::invalid_argument);
}

TEST(Generators, DeterministicForFixedSeed) {
    DigitConfig config;
    config.samples = 20;
    Rng rng_a(99);
    Rng rng_b(99);
    const Dataset a = synthetic_digits(config, rng_a);
    const Dataset b = synthetic_digits(config, rng_b);
    EXPECT_TRUE(a.images.equals(b.images));
    EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace bayesft::data
