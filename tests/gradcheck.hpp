#pragma once
// Finite-difference gradient checking used by the layer tests: every layer's
// analytic backward is validated against central differences on a random
// linear functional of the output, for both the input gradient and every
// parameter gradient.

#include <cmath>
#include <string>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace bayesft::testing {

struct GradCheckResult {
    bool ok = true;
    std::string detail;  // first offending entry, if any
    std::size_t mismatches = 0;
    std::size_t total = 0;

    /// Fraction of checked entries that disagreed.  Piecewise-smooth layers
    /// (bilinear samplers, max pools) legitimately produce a few finite-
    /// difference outliers at derivative kinks.
    double mismatch_fraction() const {
        return total == 0 ? 0.0
                          : static_cast<double>(mismatches) /
                                static_cast<double>(total);
    }
};

/// Scalar functional L(out) = sum_i c_i * out_i for fixed random c.
inline double functional(const Tensor& out, const Tensor& coeffs) {
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        acc += static_cast<double>(out[i]) * coeffs[i];
    }
    return acc;
}

/// Checks d L / d input and d L / d params of `module` at `input`.
/// `eps` balances truncation against float rounding; tolerance is
/// max(abs_tol, rel_tol * |numeric|).
inline GradCheckResult gradcheck(nn::Module& module, const Tensor& input,
                                 Rng& rng, float eps = 5e-3F,
                                 float abs_tol = 2e-2F,
                                 float rel_tol = 5e-2F) {
    GradCheckResult result;
    module.set_training(true);

    Tensor probe = module.forward(input);
    const Tensor coeffs = Tensor::randn(probe.shape(), rng);

    // Analytic gradients.
    for (nn::Parameter* p : module.parameters()) p->grad.fill(0.0F);
    Tensor out = module.forward(input);
    const Tensor grad_input = module.backward(coeffs);

    auto check_entry = [&](float analytic, double numeric,
                           const std::string& where) {
        ++result.total;
        const double tol =
            std::max(static_cast<double>(abs_tol),
                     static_cast<double>(rel_tol) * std::abs(numeric));
        if (std::abs(static_cast<double>(analytic) - numeric) > tol) {
            result.ok = false;
            ++result.mismatches;
            if (result.detail.empty()) {
                result.detail = where + ": analytic " +
                                std::to_string(analytic) + " vs numeric " +
                                std::to_string(numeric);
            }
        }
    };

    // Input gradient via central differences.
    Tensor x = input;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float saved = x[i];
        x[i] = saved + eps;
        const double plus = functional(module.forward(x), coeffs);
        x[i] = saved - eps;
        const double minus = functional(module.forward(x), coeffs);
        x[i] = saved;
        check_entry(grad_input[i], (plus - minus) / (2.0 * eps),
                    "input[" + std::to_string(i) + "]");
    }

    // Parameter gradients.
    for (nn::Parameter* p : module.parameters()) {
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            const float saved = p->value[i];
            p->value[i] = saved + eps;
            const double plus = functional(module.forward(input), coeffs);
            p->value[i] = saved - eps;
            const double minus = functional(module.forward(input), coeffs);
            p->value[i] = saved;
            check_entry(p->grad[i], (plus - minus) / (2.0 * eps),
                        p->name + "[" + std::to_string(i) + "]");
        }
    }
    (void)out;
    return result;
}

}  // namespace bayesft::testing
