// Spatial transformer: identity warp, translation semantics, and gradient
// checks of the bilinear sampler w.r.t. both input and theta.

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/stn.hpp"

namespace bayesft::nn {
namespace {

Tensor identity_theta(std::size_t n) {
    Tensor theta({n, 6});
    for (std::size_t i = 0; i < n; ++i) {
        theta(i, 0) = 1.0F;
        theta(i, 4) = 1.0F;
    }
    return theta;
}

TEST(GridSample, IdentityThetaReproducesInput) {
    Rng rng(1);
    const Tensor input = Tensor::randn({2, 3, 5, 5}, rng);
    const Tensor out = affine_grid_sample(input, identity_theta(2));
    EXPECT_TRUE(out.allclose(input, 1e-5F));
}

TEST(GridSample, ScalingZoomsIn) {
    // theta diag(0.5, 0.5) samples the central half of the image; for an
    // image constant in the center but different at the border, the output
    // should be the central value everywhere.
    Tensor input = Tensor::full({1, 1, 8, 8}, 5.0F);
    for (std::size_t i = 0; i < 8; ++i) {
        input(0, 0, 0, i) = -1.0F;  // contaminate the border row
        input(0, 0, 7, i) = -1.0F;
    }
    Tensor theta({1, 6}, std::vector<float>{0.5F, 0, 0, 0, 0.5F, 0});
    const Tensor out = affine_grid_sample(input, theta);
    for (std::size_t y = 0; y < 8; ++y) {
        for (std::size_t x = 0; x < 8; ++x) {
            EXPECT_FLOAT_EQ(out(0, 0, y, x), 5.0F);
        }
    }
}

TEST(GridSample, TranslationShiftsContent) {
    // theta with tx = 2/(W-1)*k shifts sampling by k pixels.
    Tensor input = Tensor::zeros({1, 1, 5, 5});
    input(0, 0, 2, 2) = 1.0F;
    // Shift sampling one pixel right: output(x) = input(x + 1).
    Tensor theta({1, 6},
                 std::vector<float>{1.0F, 0, 2.0F / 4.0F, 0, 1.0F, 0});
    const Tensor out = affine_grid_sample(input, theta);
    EXPECT_FLOAT_EQ(out(0, 0, 2, 1), 1.0F);
    EXPECT_FLOAT_EQ(out(0, 0, 2, 2), 0.0F);
}

TEST(GridSample, OutOfBoundsReadsZero) {
    const Tensor input = Tensor::ones({1, 1, 4, 4});
    // Large translation pushes every sample off the image.
    Tensor theta({1, 6}, std::vector<float>{1.0F, 0, 10.0F, 0, 1.0F, 0});
    const Tensor out = affine_grid_sample(input, theta);
    EXPECT_FLOAT_EQ(out.sum(), 0.0F);
}

TEST(GridSample, BackwardMatchesFiniteDifferencesInTheta) {
    Rng rng(2);
    const Tensor input = Tensor::randn({1, 2, 6, 6}, rng);
    Tensor theta({1, 6},
                 std::vector<float>{0.9F, 0.05F, 0.1F, -0.04F, 1.1F, -0.2F});
    const Tensor coeffs = Tensor::randn({1, 2, 6, 6}, rng);

    const auto grads = affine_grid_sample_backward(
        input, theta, coeffs);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < 6; ++i) {
        const float saved = theta[i];
        theta[i] = saved + eps;
        const double plus =
            bayesft::testing::functional(affine_grid_sample(input, theta),
                                         coeffs);
        theta[i] = saved - eps;
        const double minus =
            bayesft::testing::functional(affine_grid_sample(input, theta),
                                         coeffs);
        theta[i] = saved;
        EXPECT_NEAR(grads.grad_theta[i], (plus - minus) / (2.0 * eps), 0.05)
            << "theta[" << i << "]";
    }
}

TEST(GridSample, BackwardMatchesFiniteDifferencesInInput) {
    Rng rng(3);
    Tensor input = Tensor::randn({1, 1, 5, 5}, rng);
    Tensor theta({1, 6},
                 std::vector<float>{0.8F, 0.1F, 0.05F, -0.1F, 0.9F, 0.1F});
    const Tensor coeffs = Tensor::randn({1, 1, 5, 5}, rng);
    const auto grads = affine_grid_sample_backward(input, theta, coeffs);
    const float eps = 1e-2F;
    for (std::size_t i = 0; i < input.size(); ++i) {
        const float saved = input[i];
        input[i] = saved + eps;
        const double plus = bayesft::testing::functional(
            affine_grid_sample(input, theta), coeffs);
        input[i] = saved - eps;
        const double minus = bayesft::testing::functional(
            affine_grid_sample(input, theta), coeffs);
        input[i] = saved;
        EXPECT_NEAR(grads.grad_input[i], (plus - minus) / (2.0 * eps), 0.02)
            << "input[" << i << "]";
    }
}

TEST(SpatialTransformer, BackwardMatchesManualComposition) {
    // The sampler and Linear backward passes are finite-difference-verified
    // individually (above / in test_nn_layers).  The composite module's
    // gradients must equal the hand-stitched chain rule through those same
    // pieces — this validates the SpatialTransformer wiring exactly,
    // without finite-difference noise at bilinear kinks.
    Rng rng(4);
    auto make_loc = [](Rng& r) {
        auto loc = std::make_unique<Sequential>();
        loc->emplace<Flatten>();
        auto* head = loc->emplace<Linear>(2 * 4 * 4, 6, r);
        head->weight().value.mul_scalar_(0.01F);
        head->bias().value =
            Tensor({6}, {0.93F, 0.04F, 0.07F, -0.03F, 1.06F, 0.05F});
        return loc;
    };
    Rng rng_a(42);
    Rng rng_b(42);  // identical weights in both copies
    auto loc_manual = make_loc(rng_a);
    SpatialTransformer stn(make_loc(rng_b));

    const Tensor input = Tensor::randn({2, 2, 4, 4}, rng);
    const Tensor coeffs = Tensor::randn({2, 2, 4, 4}, rng);

    // Composite path.
    const Tensor out_stn = stn.forward(input);
    const Tensor dx_stn = stn.backward(coeffs);

    // Manual path through the same components.
    const Tensor theta = loc_manual->forward(input);
    const Tensor out_manual = affine_grid_sample(input, theta);
    const auto sampler_grads =
        affine_grid_sample_backward(input, theta, coeffs);
    const Tensor dx_loc = loc_manual->backward(sampler_grads.grad_theta);
    Tensor dx_manual = sampler_grads.grad_input;
    dx_manual.add_(dx_loc);

    EXPECT_TRUE(out_stn.allclose(out_manual, 1e-6F));
    EXPECT_TRUE(dx_stn.allclose(dx_manual, 1e-5F));
    // Parameter gradients of the two localization nets must agree too.
    const auto params_stn = stn.parameters();
    const auto params_manual = loc_manual->parameters();
    ASSERT_EQ(params_stn.size(), params_manual.size());
    for (std::size_t i = 0; i < params_stn.size(); ++i) {
        EXPECT_TRUE(
            params_stn[i]->grad.allclose(params_manual[i]->grad, 1e-4F))
            << params_stn[i]->name;
    }
}

TEST(SpatialTransformer, CollectsLocalizationParameters) {
    Rng rng(5);
    auto loc = std::make_unique<Sequential>();
    loc->emplace<Flatten>();
    loc->emplace<Linear>(1 * 4 * 4, 6, rng);
    SpatialTransformer stn(std::move(loc));
    EXPECT_EQ(stn.parameters().size(), 2U);
    stn.set_training(false);
    EXPECT_FALSE(stn.localization_net().training());
}

TEST(SpatialTransformer, RejectsNullLocNet) {
    EXPECT_THROW(SpatialTransformer(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace bayesft::nn
