// Layer correctness: shapes, known values, and — the core property — exact
// agreement between every layer's analytic backward pass and central finite
// differences (parameterized over the whole layer family).

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/norm.hpp"
#include "nn/residual.hpp"
#include "tensor/ops.hpp"

namespace bayesft::nn {
namespace {

using bayesft::testing::gradcheck;

// ---------------------------------------------------------------------
// Parameterized gradient checks across the layer family.
// ---------------------------------------------------------------------

struct LayerCase {
    std::string name;
    std::function<std::unique_ptr<Module>(Rng&)> make;
    std::vector<std::size_t> input_shape;
};

class LayerGradCheck : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerGradCheck, AnalyticBackwardMatchesFiniteDifferences) {
    const LayerCase& layer_case = GetParam();
    Rng rng(99);
    auto module = layer_case.make(rng);
    const Tensor input = Tensor::randn(layer_case.input_shape, rng);
    const auto result = gradcheck(*module, input, rng);
    EXPECT_TRUE(result.ok) << layer_case.name << ": " << result.detail;
}

std::vector<LayerCase> layer_cases() {
    std::vector<LayerCase> cases;
    cases.push_back({"Linear",
                     [](Rng& rng) {
                         return std::make_unique<Linear>(6, 4, rng);
                     },
                     {3, 6}});
    cases.push_back({"Conv2dNoPad",
                     [](Rng& rng) {
                         return std::make_unique<Conv2d>(2, 3, 3, 1, 0, rng);
                     },
                     {2, 2, 5, 5}});
    cases.push_back({"Conv2dPadded",
                     [](Rng& rng) {
                         return std::make_unique<Conv2d>(2, 3, 3, 1, 1, rng);
                     },
                     {2, 2, 4, 4}});
    cases.push_back({"Conv2dStrided",
                     [](Rng& rng) {
                         return std::make_unique<Conv2d>(1, 2, 3, 2, 1, rng);
                     },
                     {2, 1, 6, 6}});
    cases.push_back({"Conv2d1x1",
                     [](Rng& rng) {
                         return std::make_unique<Conv2d>(3, 2, 1, 1, 0, rng);
                     },
                     {2, 3, 4, 4}});
    cases.push_back({"MaxPool2d",
                     [](Rng&) { return std::make_unique<MaxPool2d>(2); },
                     {2, 2, 4, 4}});
    cases.push_back({"AvgPool2d",
                     [](Rng&) { return std::make_unique<AvgPool2d>(2); },
                     {2, 2, 4, 4}});
    cases.push_back({"GlobalAvgPool",
                     [](Rng&) { return std::make_unique<GlobalAvgPool>(); },
                     {2, 3, 4, 4}});
    cases.push_back({"Flatten",
                     [](Rng&) { return std::make_unique<Flatten>(); },
                     {2, 2, 3, 3}});
    cases.push_back({"ReLU",
                     [](Rng&) { return std::make_unique<ReLU>(); },
                     {4, 7}});
    cases.push_back({"LeakyReLU",
                     [](Rng&) { return std::make_unique<LeakyReLU>(0.1F); },
                     {4, 7}});
    cases.push_back({"ELU",
                     [](Rng&) { return std::make_unique<ELU>(); },
                     {4, 7}});
    cases.push_back({"GELU",
                     [](Rng&) { return std::make_unique<GELU>(); },
                     {4, 7}});
    cases.push_back({"Sigmoid",
                     [](Rng&) { return std::make_unique<Sigmoid>(); },
                     {4, 7}});
    cases.push_back({"Tanh",
                     [](Rng&) { return std::make_unique<Tanh>(); },
                     {4, 7}});
    cases.push_back({"BatchNorm2d",
                     [](Rng&) { return std::make_unique<BatchNorm>(3); },
                     {4, 3, 3, 3}});
    cases.push_back({"BatchNorm1d",
                     [](Rng&) { return std::make_unique<BatchNorm>(5); },
                     {6, 5}});
    cases.push_back({"LayerNorm",
                     [](Rng&) { return std::make_unique<LayerNorm>(4); },
                     {3, 4, 2, 2}});
    cases.push_back({"InstanceNorm",
                     [](Rng&) { return std::make_unique<InstanceNorm>(3); },
                     {2, 3, 4, 4}});
    cases.push_back({"GroupNorm",
                     [](Rng&) { return std::make_unique<GroupNorm>(2, 4); },
                     {2, 4, 3, 3}});
    cases.push_back(
        {"ResidualIdentity",
         [](Rng& rng) {
             auto main = std::make_unique<Sequential>();
             main->emplace<Linear>(5, 5, rng);
             main->emplace<Tanh>();
             return std::make_unique<Residual>(std::move(main));
         },
         {3, 5}});
    cases.push_back(
        {"ResidualProjection",
         [](Rng& rng) {
             auto main = std::make_unique<Sequential>();
             main->emplace<Linear>(5, 4, rng);
             auto shortcut = std::make_unique<Sequential>();
             shortcut->emplace<Linear>(5, 4, rng);
             return std::make_unique<Residual>(std::move(main),
                                               std::move(shortcut));
         },
         {3, 5}});
    cases.push_back(
        {"SmallMlpStack",
         [](Rng& rng) {
             auto seq = std::make_unique<Sequential>();
             seq->emplace<Linear>(6, 8, rng);
             seq->emplace<GELU>();
             seq->emplace<Linear>(8, 3, rng);
             return seq;
         },
         {2, 6}});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerGradCheck,
                         ::testing::ValuesIn(layer_cases()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------
// Targeted behaviour tests.
// ---------------------------------------------------------------------

TEST(Linear, OutputShapeAndBias) {
    Rng rng(1);
    Linear layer(3, 2, rng);
    layer.bias().value = Tensor({2}, {1.0F, -1.0F});
    layer.weight().value.fill(0.0F);
    const Tensor out = layer.forward(Tensor::zeros({4, 3}));
    EXPECT_EQ(out.shape(), (std::vector<std::size_t>{4, 2}));
    EXPECT_FLOAT_EQ(out(0, 0), 1.0F);
    EXPECT_FLOAT_EQ(out(3, 1), -1.0F);
}

TEST(Linear, RejectsWrongInputWidth) {
    Rng rng(1);
    Linear layer(3, 2, rng);
    EXPECT_THROW(layer.forward(Tensor::zeros({4, 5})), std::invalid_argument);
}

TEST(Conv2d, MatchesDirectConvolution) {
    Rng rng(2);
    Conv2d conv(1, 1, 3, 1, 0, rng);
    conv.weight().value.fill(1.0F);  // box filter
    conv.bias().value.fill(0.0F);
    Tensor input = Tensor::ones({1, 1, 4, 4});
    const Tensor out = conv.forward(input);
    EXPECT_EQ(out.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_FLOAT_EQ(out[i], 9.0F);  // 3x3 window of ones
    }
}

TEST(Conv2d, ChannelMismatchThrows) {
    Rng rng(3);
    Conv2d conv(3, 4, 3, 1, 1, rng);
    EXPECT_THROW(conv.forward(Tensor::zeros({1, 2, 8, 8})),
                 std::invalid_argument);
}

TEST(MaxPool2d, SelectsMaximaAndRoutesGradient) {
    MaxPool2d pool(2);
    Tensor input({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    const Tensor out = pool.forward(input);
    EXPECT_FLOAT_EQ(out[0], 5.0F);
    const Tensor grad = pool.backward(Tensor::ones({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(grad[0], 0.0F);
    EXPECT_FLOAT_EQ(grad[1], 1.0F);  // gradient flows only to the argmax
}

TEST(GlobalAvgPool, AveragesSpatially) {
    GlobalAvgPool pool;
    Tensor input({1, 2, 2, 2},
                 std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
    const Tensor out = pool.forward(input);
    EXPECT_FLOAT_EQ(out(0, 0), 2.5F);
    EXPECT_FLOAT_EQ(out(0, 1), 25.0F);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
    BatchNorm bn(2);
    Rng rng(4);
    const Tensor input = Tensor::randn({64, 2}, rng, 3.0F);
    bn.set_training(true);
    const Tensor out = bn.forward(input);
    // Each channel should be ~zero-mean unit-variance.
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0, var = 0.0;
        for (std::size_t i = 0; i < 64; ++i) mean += out(i, c);
        mean /= 64.0;
        for (std::size_t i = 0; i < 64; ++i) {
            var += (out(i, c) - mean) * (out(i, c) - mean);
        }
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(BatchNorm, EvalUsesRunningStatistics) {
    BatchNorm bn(1);
    Rng rng(5);
    bn.set_training(true);
    for (int i = 0; i < 50; ++i) {
        Tensor batch = Tensor::randn({32, 1}, rng, 2.0F);
        batch.add_scalar_(10.0F);
        bn.forward(batch);
    }
    EXPECT_NEAR(bn.running_mean()[0], 10.0F, 0.5F);
    EXPECT_NEAR(bn.running_var()[0], 4.0F, 1.0F);
    bn.set_training(false);
    // A constant eval input equal to the running mean maps to ~beta (0).
    const Tensor out = bn.forward(Tensor::full({4, 1}, 10.0F));
    EXPECT_NEAR(out[0], 0.0F, 0.3F);
}

TEST(GroupNorm, RequiresDivisibleChannels) {
    EXPECT_THROW(GroupNorm(3, 4), std::invalid_argument);
    EXPECT_NO_THROW(GroupNorm(2, 4));
}

TEST(GroupNorm, NormalizesPerSample) {
    GroupNorm gn(1, 3);  // LayerNorm behaviour
    Rng rng(6);
    Tensor input = Tensor::randn({2, 3, 4, 4}, rng, 5.0F);
    input.add_scalar_(7.0F);
    const Tensor out = gn.forward(input);
    // Each sample slab should be ~zero-mean.
    for (std::size_t nidx = 0; nidx < 2; ++nidx) {
        double mean = 0.0;
        for (std::size_t i = 0; i < 3 * 16; ++i) {
            mean += out[nidx * 3 * 16 + i];
        }
        EXPECT_NEAR(mean / (3 * 16), 0.0, 1e-4);
    }
}

TEST(Sequential, ForwardComposesChildren) {
    Rng rng(7);
    Sequential seq;
    auto* l1 = seq.emplace<Linear>(4, 8, rng);
    seq.emplace<ReLU>();
    auto* l2 = seq.emplace<Linear>(8, 2, rng);
    EXPECT_EQ(seq.child_count(), 3U);
    EXPECT_NE(l1, nullptr);
    EXPECT_NE(l2, nullptr);
    const Tensor out = seq.forward(Tensor::zeros({5, 4}));
    EXPECT_EQ(out.shape(), (std::vector<std::size_t>{5, 2}));
}

TEST(Sequential, CollectsAllParameters) {
    Rng rng(8);
    Sequential seq;
    seq.emplace<Linear>(4, 8, rng);
    seq.emplace<Linear>(8, 2, rng);
    EXPECT_EQ(seq.parameters().size(), 4U);  // 2 layers x (W, b)
    EXPECT_EQ(seq.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(Sequential, TrainingFlagPropagates) {
    Rng rng(9);
    Sequential seq;
    seq.emplace<Linear>(2, 2, rng);
    seq.set_training(false);
    EXPECT_FALSE(seq.training());
    EXPECT_FALSE(seq.child(0).training());
}

TEST(Residual, AddsBranches) {
    auto main = std::make_unique<Identity>();
    Residual res(std::move(main));
    Tensor input({1, 3}, std::vector<float>{1, 2, 3});
    const Tensor out = res.forward(input);
    EXPECT_FLOAT_EQ(out[0], 2.0F);  // identity + identity
}

TEST(Residual, MismatchedBranchesThrow) {
    Rng rng(10);
    auto main = std::make_unique<Sequential>();
    main->emplace<Linear>(3, 4, rng);
    Residual res(std::move(main));  // identity shortcut keeps width 3
    EXPECT_THROW(res.forward(Tensor::zeros({1, 3})), std::invalid_argument);
}

TEST(Activations, FactoryKnowsAllNames) {
    for (const char* name :
         {"relu", "leaky_relu", "elu", "gelu", "sigmoid", "tanh"}) {
        EXPECT_NE(make_activation(name), nullptr) << name;
    }
    EXPECT_THROW(make_activation("swishh"), std::invalid_argument);
}

TEST(Activations, GeluKnownValues) {
    GELU gelu;
    const Tensor out = gelu.forward(Tensor({3}, {0.0F, 100.0F, -100.0F}));
    EXPECT_NEAR(out[0], 0.0F, 1e-6);
    EXPECT_NEAR(out[1], 100.0F, 1e-3);
    EXPECT_NEAR(out[2], 0.0F, 1e-3);
}

}  // namespace
}  // namespace bayesft::nn
