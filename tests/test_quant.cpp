// The fixed-point inference path (nn/quant.hpp): the int8/int12 forward of
// Linear and Conv2d must be bit-identical to an integer reference built on
// QuantizationFault's quantized view — same grid, same rounding, same
// saturation — plus the mode plumbing around it (tree walker, scoped
// restore, clone inheritance, objective digest compatibility, registry
// scenarios, CLI name parsing).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/objective.hpp"
#include "core/registry.hpp"
#include "fault/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/quant.hpp"
#include "simd/kernels.hpp"
#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {
namespace {

float qmax_of(int bits) {
    return static_cast<float>((std::int64_t{1} << (bits - 1)) - 1);
}

/// Quantized codes of a float span on the QuantizationFault grid.
std::vector<std::int16_t> codes_of(const std::vector<float>& v, int bits,
                                   float* scale_out) {
    const auto& kt = simd::kernels();
    const float scale = kt.max_abs(v.data(), v.size()) / qmax_of(bits);
    *scale_out = scale;
    std::vector<std::int16_t> codes(v.size());
    if (scale != 0.0F) {
        kt.quantize_codes(v.data(), codes.data(), v.size(), bits, scale);
    }
    return codes;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ----------------------------------------------------- mode name round ----

TEST(InferenceMode, NamesBitsAndParsingRoundTrip) {
    for (const InferenceMode m : {InferenceMode::kFloat32,
                                  InferenceMode::kInt8,
                                  InferenceMode::kInt12}) {
        EXPECT_EQ(parse_inference_mode(inference_mode_name(m)), m);
    }
    EXPECT_EQ(inference_bits(InferenceMode::kFloat32), 0);
    EXPECT_EQ(inference_bits(InferenceMode::kInt8), 8);
    EXPECT_EQ(inference_bits(InferenceMode::kInt12), 12);
    EXPECT_THROW(parse_inference_mode("int7"), std::invalid_argument);
    EXPECT_THROW(parse_inference_mode(""), std::invalid_argument);
}

// ------------------------------------- quantized view == fault's view ----

/// The load-bearing identity: dequantized weight codes (codes * scale) are
/// bit-identical to the weights QuantizationFault produces.  This is what
/// makes "run the int-b forward" the same experiment as "evaluate the
/// b-bit quantized deployment".
TEST(QuantView, DequantizedCodesMatchQuantizationFaultBitExactly) {
    Rng rng(11);
    for (const int bits : {8, 12}) {
        std::vector<float> w(257);
        for (auto& v : w) v = static_cast<float>(rng.uniform(-1.5, 1.5));
        w[0] = 0.0F;

        std::vector<float> faulted = w;
        Rng fault_rng(0);
        fault::QuantizationFault(bits).perturb(faulted, fault_rng);

        float scale = 0.0F;
        const auto codes = codes_of(w, bits, &scale);
        std::vector<float> dequant(w.size());
        for (std::size_t i = 0; i < w.size(); ++i) {
            dequant[i] = static_cast<float>(codes[i]) * scale;
        }
        EXPECT_TRUE(bits_equal(faulted, dequant)) << "bits=" << bits;
    }
}

// -------------------------------------------------------- Linear path ----

TEST(QuantLinear, FixedPointForwardMatchesIntegerReference) {
    Rng rng(21);
    Linear layer(7, 5, rng);
    Rng data_rng(22);
    const Tensor input = Tensor::randn({3, 7}, data_rng);

    for (const InferenceMode mode :
         {InferenceMode::kInt8, InferenceMode::kInt12}) {
        const int bits = inference_bits(mode);
        const std::vector<float> w(
            layer.weight().value.data(),
            layer.weight().value.data() + layer.weight().value.size());
        const std::vector<float> x(input.data(),
                                   input.data() + input.size());

        float s_w = 0.0F, s_x = 0.0F;
        const auto wc = codes_of(w, bits, &s_w);
        const auto xc = codes_of(x, bits, &s_x);
        const float scale = s_w * s_x;

        // Reference mirrors the layer exactly: one float rounding per
        // output from the int64 dot product, then the bias add.
        std::vector<float> ref(3 * 5);
        for (std::size_t i = 0; i < 3; ++i) {
            for (std::size_t j = 0; j < 5; ++j) {
                std::int64_t acc = 0;
                for (std::size_t kk = 0; kk < 7; ++kk) {
                    acc += static_cast<std::int64_t>(xc[i * 7 + kk]) *
                           static_cast<std::int64_t>(wc[j * 7 + kk]);
                }
                float v = static_cast<float>(acc) * scale;
                v += layer.bias().value.data()[j];
                ref[i * 5 + j] = v;
            }
        }

        layer.set_inference_mode(mode);
        const Tensor out = layer.forward(input);
        ASSERT_EQ(out.size(), ref.size());
        const std::vector<float> got(out.data(), out.data() + out.size());
        EXPECT_TRUE(bits_equal(ref, got)) << inference_mode_name(mode);
    }
    layer.set_inference_mode(InferenceMode::kFloat32);
}

TEST(QuantLinear, Int12TracksFloatCloserThanInt8) {
    Rng rng(31);
    Linear layer(16, 8, rng);
    Rng data_rng(32);
    const Tensor input = Tensor::randn({10, 16}, data_rng);

    const Tensor f32 = layer.forward(input);
    layer.set_inference_mode(InferenceMode::kInt8);
    const Tensor i8 = layer.forward(input);
    layer.set_inference_mode(InferenceMode::kInt12);
    const Tensor i12 = layer.forward(input);

    double err8 = 0.0, err12 = 0.0;
    for (std::size_t i = 0; i < f32.size(); ++i) {
        err8 = std::max(err8,
                        std::abs(double(i8.data()[i]) - f32.data()[i]));
        err12 = std::max(err12,
                         std::abs(double(i12.data()[i]) - f32.data()[i]));
    }
    EXPECT_GT(err8, 0.0);  // quantization really happened
    EXPECT_LE(err12, err8);
}

TEST(QuantLinear, AllZeroWeightsFallBackToBias) {
    Rng rng(41);
    Linear layer(4, 3, rng);
    std::fill_n(layer.weight().value.data(), layer.weight().value.size(),
                0.0F);
    layer.bias().value.data()[0] = 0.5F;
    layer.bias().value.data()[1] = -0.25F;
    layer.bias().value.data()[2] = 2.0F;

    layer.set_inference_mode(InferenceMode::kInt8);
    Rng data_rng(42);
    const Tensor out = layer.forward(Tensor::randn({2, 4}, data_rng));
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(out.data()[i * 3 + 0], 0.5F);
        EXPECT_EQ(out.data()[i * 3 + 1], -0.25F);
        EXPECT_EQ(out.data()[i * 3 + 2], 2.0F);
    }
}

// -------------------------------------------------------- Conv2d path ----

TEST(QuantConv, FixedPointForwardMatchesIntegerReference) {
    Rng rng(51);
    const std::size_t C = 2, OC = 3, K = 3, H = 5, W = 5, N = 2;
    Conv2d conv(C, OC, K, /*stride=*/1, /*pad=*/1, rng);
    Rng data_rng(52);
    const Tensor input = Tensor::randn({N, C, H, W}, data_rng);

    const int bits = 8;
    const std::vector<float> w(
        conv.weight().value.data(),
        conv.weight().value.data() + conv.weight().value.size());
    const std::vector<float> x(input.data(), input.data() + input.size());
    float s_w = 0.0F, s_x = 0.0F;
    const auto wc = codes_of(w, bits, &s_w);
    const auto xc = codes_of(x, bits, &s_x);
    const float scale = s_w * s_x;

    // Direct convolution over the integer codes (padding reads code 0).
    std::vector<float> ref(N * OC * H * W);
    for (std::size_t s = 0; s < N; ++s) {
        for (std::size_t oc = 0; oc < OC; ++oc) {
            for (std::size_t oy = 0; oy < H; ++oy) {
                for (std::size_t ox = 0; ox < W; ++ox) {
                    std::int64_t acc = 0;
                    for (std::size_t c = 0; c < C; ++c) {
                        for (std::size_t ky = 0; ky < K; ++ky) {
                            for (std::size_t kx = 0; kx < K; ++kx) {
                                const std::ptrdiff_t iy =
                                    std::ptrdiff_t(oy + ky) - 1;
                                const std::ptrdiff_t ix =
                                    std::ptrdiff_t(ox + kx) - 1;
                                if (iy < 0 || iy >= std::ptrdiff_t(H) ||
                                    ix < 0 || ix >= std::ptrdiff_t(W)) {
                                    continue;
                                }
                                const std::size_t xi =
                                    ((s * C + c) * H + iy) * W + ix;
                                const std::size_t wi =
                                    ((oc * C + c) * K + ky) * K + kx;
                                acc += std::int64_t(xc[xi]) *
                                       std::int64_t(wc[wi]);
                            }
                        }
                    }
                    float v = static_cast<float>(acc) * scale;
                    v += conv.bias().value.data()[oc];
                    ref[((s * OC + oc) * H + oy) * W + ox] = v;
                }
            }
        }
    }

    conv.set_inference_mode(InferenceMode::kInt8);
    const Tensor out = conv.forward(input);
    ASSERT_EQ(out.size(), ref.size());
    const std::vector<float> got(out.data(), out.data() + out.size());
    EXPECT_TRUE(bits_equal(ref, got));
}

// --------------------------------------------------- mode plumbing ----

std::unique_ptr<Sequential> small_mlp(Rng& rng) {
    auto net = std::make_unique<Sequential>();
    net->emplace<Linear>(6, 8, rng);
    net->emplace<ReLU>();
    net->emplace<Linear>(8, 3, rng);
    return net;
}

TEST(QuantMode, WalkerSetsEveryCapableLayer) {
    Rng rng(61);
    auto net = small_mlp(rng);
    EXPECT_EQ(set_inference_mode(*net, InferenceMode::kInt8), 2U);

    std::vector<Module*> children;
    net->collect_children(children);
    std::size_t capable = 0;
    for (Module* m : children) {
        if (auto* fp = dynamic_cast<FixedPointCapable*>(m)) {
            ++capable;
            EXPECT_EQ(fp->inference_mode(), InferenceMode::kInt8);
        }
    }
    EXPECT_EQ(capable, 2U);
    set_inference_mode(*net, InferenceMode::kFloat32);
}

TEST(QuantMode, ScopedModeRestoresPreviousPerLayerModes) {
    Rng rng(62);
    auto net = small_mlp(rng);
    std::vector<Module*> children;
    net->collect_children(children);
    auto* first = dynamic_cast<FixedPointCapable*>(children.front());
    ASSERT_NE(first, nullptr);
    first->set_inference_mode(InferenceMode::kInt12);  // heterogeneous

    {
        ScopedInferenceMode scoped(*net, InferenceMode::kInt8);
        for (Module* m : children) {
            if (auto* fp = dynamic_cast<FixedPointCapable*>(m)) {
                EXPECT_EQ(fp->inference_mode(), InferenceMode::kInt8);
            }
        }
    }
    EXPECT_EQ(first->inference_mode(), InferenceMode::kInt12);
    auto* last = dynamic_cast<FixedPointCapable*>(children.back());
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->inference_mode(), InferenceMode::kFloat32);
}

TEST(QuantMode, CloneCarriesInferenceMode) {
    Rng rng(63);
    Linear layer(5, 4, rng);
    layer.set_inference_mode(InferenceMode::kInt12);
    const auto copy = layer.clone();
    auto* fp = dynamic_cast<FixedPointCapable*>(copy.get());
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->inference_mode(), InferenceMode::kInt12);

    Conv2d conv(1, 2, 3, 1, 1, rng);
    conv.set_inference_mode(InferenceMode::kInt8);
    const auto conv_copy = conv.clone();
    auto* conv_fp = dynamic_cast<FixedPointCapable*>(conv_copy.get());
    ASSERT_NE(conv_fp, nullptr);
    EXPECT_EQ(conv_fp->inference_mode(), InferenceMode::kInt8);
}

TEST(QuantMode, SequentialForwardUsesFixedPointLayers) {
    // End to end: the quantized net's output differs from float32 but by
    // no more than the quantization grid would suggest.
    Rng rng(64);
    auto net = small_mlp(rng);
    Rng data_rng(65);
    const Tensor input = Tensor::randn({4, 6}, data_rng);
    const Tensor f32 = net->forward(input);
    ScopedInferenceMode scoped(*net, InferenceMode::kInt8);
    const Tensor i8 = net->forward(input);
    ASSERT_EQ(i8.size(), f32.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < f32.size(); ++i) {
        const double d = std::abs(double(i8.data()[i]) - f32.data()[i]);
        EXPECT_LT(d, 0.15) << "int8 output drifted implausibly far";
        any_diff = any_diff || d > 0.0;
    }
    EXPECT_TRUE(any_diff);
}

// ----------------------------------------- objective digest + registry ----

TEST(QuantObjective, DigestUnchangedForFloat32AndForksForFixedPoint) {
    core::ObjectiveConfig base;
    const std::uint64_t d_default = core::objective_digest(base);

    core::ObjectiveConfig f32 = base;
    f32.inference = InferenceMode::kFloat32;
    EXPECT_EQ(core::objective_digest(f32), d_default)
        << "float32 must not perturb pre-existing digests";

    core::ObjectiveConfig i8 = base;
    i8.inference = InferenceMode::kInt8;
    core::ObjectiveConfig i12 = base;
    i12.inference = InferenceMode::kInt12;
    EXPECT_NE(core::objective_digest(i8), d_default);
    EXPECT_NE(core::objective_digest(i12), d_default);
    EXPECT_NE(core::objective_digest(i8), core::objective_digest(i12));
}

TEST(QuantRegistry, FixedPointScenariosAreRegistered) {
    const auto& registry = core::ExperimentRegistry::instance();
    for (const char* name :
         {"faults_int8_inference", "faults_dac12_deploy"}) {
        const auto* spec = registry.find(name);
        ASSERT_NE(spec, nullptr) << name;
        EXPECT_EQ(spec->family, "faults");
        EXPECT_FALSE(spec->description.empty());
    }
}

TEST(QuantFault, Dac12DeployIsComposedQuantizeVariationDrift) {
    const auto model = fault::dac12_deploy(0.4);
    ASSERT_NE(model, nullptr);
    const std::string desc = model->describe();
    EXPECT_NE(desc.find("Quantization(bits=12)"), std::string::npos) << desc;
    EXPECT_NE(desc.find("GaussianVariation"), std::string::npos) << desc;
    // Drift sigma is the composed chain's last stage parameter.
    EXPECT_NE(desc.find("0.4"), std::string::npos) << desc;
}

}  // namespace
}  // namespace bayesft::nn
