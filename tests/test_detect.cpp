// Detection substrate: IoU, NMS, average precision, target encoding, and a
// short end-to-end detector training run.

#include <gtest/gtest.h>

#include "data/pedestrians.hpp"
#include "detect/box.hpp"
#include "detect/detector.hpp"
#include "detect/render.hpp"

namespace bayesft::detect {
namespace {

TEST(Box, AreaAndValidity) {
    const Box box{1.0, 2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(box.area(), 12.0);
    EXPECT_TRUE(box.valid());
    const Box degenerate{3.0, 3.0, 3.0, 5.0};
    EXPECT_FALSE(degenerate.valid());
    EXPECT_DOUBLE_EQ(degenerate.area(), 0.0);
}

TEST(Iou, KnownValues) {
    const Box a{0, 0, 2, 2};
    EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
    const Box disjoint{3, 3, 5, 5};
    EXPECT_DOUBLE_EQ(iou(a, disjoint), 0.0);
    // Half-overlapping unit squares: inter 2, union 6.
    const Box shifted{1, 0, 3, 2};
    EXPECT_DOUBLE_EQ(iou(a, shifted), 2.0 / 6.0);
}

TEST(Iou, TouchingBoxesHaveZeroIou) {
    const Box a{0, 0, 2, 2};
    const Box touching{2, 0, 4, 2};
    EXPECT_DOUBLE_EQ(iou(a, touching), 0.0);
}

TEST(Nms, SuppressesOverlappingLowerScores) {
    std::vector<Detection> dets{
        {{0, 0, 10, 10}, 0.9},
        {{1, 1, 11, 11}, 0.8},   // heavy overlap with the first
        {{20, 20, 30, 30}, 0.7},  // disjoint
    };
    const auto kept = nms(dets, 0.5);
    ASSERT_EQ(kept.size(), 2U);
    EXPECT_DOUBLE_EQ(kept[0].score, 0.9);
    EXPECT_DOUBLE_EQ(kept[1].score, 0.7);
}

TEST(Nms, KeepsAllWhenDisjointAndSorts) {
    std::vector<Detection> dets{
        {{0, 0, 2, 2}, 0.3},
        {{10, 10, 12, 12}, 0.9},
    };
    const auto kept = nms(dets, 0.5);
    ASSERT_EQ(kept.size(), 2U);
    EXPECT_DOUBLE_EQ(kept[0].score, 0.9);  // sorted descending
    EXPECT_THROW(nms(dets, 1.5), std::invalid_argument);
}

TEST(AveragePrecision, PerfectDetectionsScoreOne) {
    const std::vector<std::vector<Box>> gt{{{0, 0, 10, 10}},
                                           {{5, 5, 15, 15}}};
    const std::vector<std::vector<Detection>> dets{
        {{{0, 0, 10, 10}, 0.9}},
        {{{5, 5, 15, 15}, 0.8}},
    };
    EXPECT_DOUBLE_EQ(average_precision(dets, gt, 0.5), 1.0);
}

TEST(AveragePrecision, MissedObjectsLowerRecall) {
    const std::vector<std::vector<Box>> gt{
        {{0, 0, 10, 10}, {20, 20, 30, 30}}};
    const std::vector<std::vector<Detection>> dets{
        {{{0, 0, 10, 10}, 0.9}}};  // finds one of two
    EXPECT_DOUBLE_EQ(average_precision(dets, gt, 0.5), 0.5);
}

TEST(AveragePrecision, FalsePositivesLowerPrecision) {
    const std::vector<std::vector<Box>> gt{{{0, 0, 10, 10}}};
    const std::vector<std::vector<Detection>> dets{{
        {{0, 0, 10, 10}, 0.9},     // true positive first
        {{50, 50, 60, 60}, 0.8},   // false positive after
    }};
    // AP = 1.0: the TP is ranked first so the PR curve reaches recall 1 at
    // precision 1 before the FP appears.
    EXPECT_DOUBLE_EQ(average_precision(dets, gt, 0.5), 1.0);

    const std::vector<std::vector<Detection>> reversed{{
        {{50, 50, 60, 60}, 0.95},  // false positive ranked first
        {{0, 0, 10, 10}, 0.9},
    }};
    EXPECT_DOUBLE_EQ(average_precision(reversed, gt, 0.5), 0.5);
}

TEST(AveragePrecision, DuplicateDetectionsCountOnce) {
    const std::vector<std::vector<Box>> gt{{{0, 0, 10, 10}}};
    const std::vector<std::vector<Detection>> dets{{
        {{0, 0, 10, 10}, 0.9},
        {{0, 0, 10, 10}, 0.8},  // duplicate match: second is FP
    }};
    EXPECT_DOUBLE_EQ(average_precision(dets, gt, 0.5), 1.0);
}

TEST(AveragePrecision, EmptyCasesAreSafe) {
    EXPECT_DOUBLE_EQ(average_precision({}, {}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(average_precision({{}}, {{{0, 0, 1, 1}}}, 0.5), 0.0);
    EXPECT_THROW(average_precision({{}}, {}, 0.5), std::invalid_argument);
}

TEST(GridDetector, ValidatesConfig) {
    Rng rng(1);
    GridDetectorConfig config;
    config.image_size = 30;  // not grid * 8
    EXPECT_THROW(GridDetector(config, rng), std::invalid_argument);
}

TEST(GridDetector, NetworkOutputShapeAndRange) {
    Rng rng(2);
    GridDetectorConfig config;
    GridDetector detector(config, rng);
    const Tensor out =
        detector.network().forward(Tensor::zeros({2, 3, 32, 32}));
    EXPECT_EQ(out.shape(), (std::vector<std::size_t>{2, 5, 4, 4}));
    EXPECT_GE(out.min(), 0.0F);  // sigmoid head
    EXPECT_LE(out.max(), 1.0F);
    EXPECT_EQ(detector.dropout_sites().size(), 3U);
}

TEST(GridDetector, EncodeTargetsPlacesObjectInCorrectCell) {
    Rng rng(3);
    GridDetectorConfig config;  // 32 px, 4x4 grid, 8 px cells
    GridDetector detector(config, rng);
    // Box centered at (12, 20) -> cell (gx=1, gy=2).
    const std::vector<std::vector<Box>> boxes{{{8, 16, 16, 24}}};
    const auto targets = detector.encode_targets(boxes);
    EXPECT_FLOAT_EQ(targets.values(0, 0, 2, 1), 1.0F);   // confidence
    EXPECT_FLOAT_EQ(targets.values(0, 1, 2, 1), 0.5F);   // cx offset
    EXPECT_FLOAT_EQ(targets.values(0, 2, 2, 1), 0.5F);   // cy offset
    EXPECT_FLOAT_EQ(targets.values(0, 3, 2, 1), 0.25F);  // w / image
    EXPECT_FLOAT_EQ(targets.weights(0, 0, 2, 1), 1.0F);
    EXPECT_FLOAT_EQ(targets.weights(0, 1, 2, 1),
                    static_cast<float>(config.lambda_coord));
    // Empty cell: only the down-weighted confidence matters.
    EXPECT_FLOAT_EQ(targets.weights(0, 0, 0, 0),
                    static_cast<float>(config.lambda_noobj));
    EXPECT_FLOAT_EQ(targets.weights(0, 1, 0, 0), 0.0F);
}

TEST(GridDetector, LearnsToDetectSyntheticPedestrians) {
    Rng rng(4);
    data::PedestrianConfig data_config;
    data_config.samples = 60;
    const auto scenes = data::synthetic_pedestrians(data_config, rng);

    GridDetectorConfig config;
    GridDetector detector(config, rng);
    DetectorTrainConfig train_config;
    train_config.epochs = 40;
    const double final_loss =
        detector.train(scenes.images, scenes.boxes, train_config, rng);
    EXPECT_LT(final_loss, 0.05);
    const double map = detector.evaluate_map(scenes.images, scenes.boxes);
    EXPECT_GT(map, 0.5);  // training-set mAP after a short run
}

TEST(Render, AsciiHasExpectedDimensions) {
    const Tensor image = Tensor::full({3, 8, 8}, 0.5F);
    const std::string art = render_ascii(image, {}, {});
    std::size_t lines = 0;
    for (char c : art) {
        if (c == '\n') ++lines;
    }
    EXPECT_EQ(lines, 8U);
    EXPECT_EQ(art.size(), 8U * 9U);  // 8 chars + newline per row
}

TEST(Render, BoxesAppearInAscii) {
    const Tensor image = Tensor::zeros({3, 8, 8});
    const std::vector<Detection> dets{{{1, 1, 5, 5}, 0.9}};
    const std::vector<Box> gt{{2, 2, 6, 6}};
    const std::string art = render_ascii(image, dets, gt);
    EXPECT_NE(art.find('#'), std::string::npos);  // detection edges
    EXPECT_NE(art.find('+'), std::string::npos);  // ground-truth edges
}

TEST(Render, RejectsNonRgbImages) {
    EXPECT_THROW(render_ascii(Tensor::zeros({1, 8, 8}), {}, {}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace bayesft::detect
