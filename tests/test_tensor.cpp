// Tests for the Tensor value type.

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace bayesft {
namespace {

TEST(Tensor, DefaultIsEmpty) {
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0U);
    EXPECT_EQ(t.rank(), 0U);
}

TEST(Tensor, ShapeAndSize) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3U);
    EXPECT_EQ(t.size(), 24U);
    EXPECT_EQ(t.dim(0), 2U);
    EXPECT_EQ(t.dim(2), 4U);
    EXPECT_THROW(t.dim(3), std::out_of_range);
}

TEST(Tensor, FillConstruction) {
    Tensor t({2, 2}, 3.5F);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 3.5F);
}

TEST(Tensor, ValueConstructionChecksCount) {
    EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
    EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
                 std::invalid_argument);
}

TEST(Tensor, RowMajorIndexing) {
    Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
    EXPECT_FLOAT_EQ(t(0, 0), 0.0F);
    EXPECT_FLOAT_EQ(t(0, 2), 2.0F);
    EXPECT_FLOAT_EQ(t(1, 0), 3.0F);
    EXPECT_FLOAT_EQ(t(1, 2), 5.0F);
}

TEST(Tensor, FourDimIndexing) {
    Tensor t({2, 3, 4, 5});
    t(1, 2, 3, 4) = 9.0F;
    // Flat index: ((1*3 + 2)*4 + 3)*5 + 4 = 119.
    EXPECT_FLOAT_EQ(t[119], 9.0F);
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
    const Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.dim(0), 3U);
    EXPECT_FLOAT_EQ(r(2, 1), 5.0F);
}

TEST(Tensor, ReshapeInfersDimension) {
    Tensor t({4, 6});
    const Tensor r = t.reshaped({2, 0});
    EXPECT_EQ(r.dim(1), 12U);
    EXPECT_THROW(t.reshaped({0, 0}), std::invalid_argument);
    EXPECT_THROW(t.reshaped({5, 0}), std::invalid_argument);
    EXPECT_THROW(t.reshaped({23}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
    Tensor a({3}, std::vector<float>{1, 2, 3});
    Tensor b({3}, std::vector<float>{4, 5, 6});
    EXPECT_TRUE((a + b).equals(Tensor({3}, std::vector<float>{5, 7, 9})));
    EXPECT_TRUE((b - a).equals(Tensor({3}, std::vector<float>{3, 3, 3})));
    EXPECT_TRUE((a * b).equals(Tensor({3}, std::vector<float>{4, 10, 18})));
    EXPECT_TRUE((a * 2.0F).equals(Tensor({3}, std::vector<float>{2, 4, 6})));
}

TEST(Tensor, ShapeMismatchThrows) {
    Tensor a({3});
    Tensor b({4});
    EXPECT_THROW(a.add_(b), std::invalid_argument);
    EXPECT_THROW(a.mul_(b), std::invalid_argument);
    EXPECT_THROW(a.axpy_(1.0F, b), std::invalid_argument);
}

TEST(Tensor, AxpyAccumulates) {
    Tensor a({2}, std::vector<float>{1, 1});
    Tensor b({2}, std::vector<float>{2, 3});
    a.axpy_(0.5F, b);
    EXPECT_FLOAT_EQ(a[0], 2.0F);
    EXPECT_FLOAT_EQ(a[1], 2.5F);
}

TEST(Tensor, ClampBoundsValues) {
    Tensor a({4}, std::vector<float>{-2, 0.5F, 3, 10});
    a.clamp_(0.0F, 1.0F);
    EXPECT_FLOAT_EQ(a[0], 0.0F);
    EXPECT_FLOAT_EQ(a[1], 0.5F);
    EXPECT_FLOAT_EQ(a[3], 1.0F);
}

TEST(Tensor, Reductions) {
    Tensor a({4}, std::vector<float>{1, -2, 3, 6});
    EXPECT_FLOAT_EQ(a.sum(), 8.0F);
    EXPECT_FLOAT_EQ(a.mean(), 2.0F);
    EXPECT_FLOAT_EQ(a.min(), -2.0F);
    EXPECT_FLOAT_EQ(a.max(), 6.0F);
    EXPECT_FLOAT_EQ(a.squared_norm(), 1 + 4 + 9 + 36);
}

TEST(Tensor, EmptyReductionsThrow) {
    Tensor t;
    EXPECT_THROW(t.mean(), std::domain_error);
    EXPECT_THROW(t.min(), std::domain_error);
    EXPECT_THROW(t.max(), std::domain_error);
}

TEST(Tensor, AllcloseTolerance) {
    Tensor a({2}, std::vector<float>{1.0F, 2.0F});
    Tensor b({2}, std::vector<float>{1.0F + 1e-6F, 2.0F});
    EXPECT_TRUE(a.allclose(b));
    Tensor c({2}, std::vector<float>{1.1F, 2.0F});
    EXPECT_FALSE(a.allclose(c));
    Tensor d({1, 2});
    EXPECT_FALSE(a.allclose(d));  // shape mismatch
}

TEST(Tensor, RandnStats) {
    Rng rng(5);
    const Tensor t = Tensor::randn({10000}, rng, 2.0F);
    EXPECT_NEAR(t.mean(), 0.0F, 0.1F);
    const float var = t.squared_norm() / static_cast<float>(t.size());
    EXPECT_NEAR(var, 4.0F, 0.2F);
}

TEST(Tensor, UniformFactoryRange) {
    Rng rng(6);
    const Tensor t = Tensor::uniform({1000}, rng, -1.0F, 1.0F);
    EXPECT_GE(t.min(), -1.0F);
    EXPECT_LT(t.max(), 1.0F);
}

TEST(Tensor, AtBoundsChecked) {
    Tensor t({3});
    EXPECT_NO_THROW(t.at(2));
    EXPECT_THROW(t.at(3), std::out_of_range);
}

TEST(Tensor, ToStringMentionsShape) {
    Tensor t({2, 2});
    EXPECT_NE(t.to_string().find("[2, 2]"), std::string::npos);
}

}  // namespace
}  // namespace bayesft
