// The evaluation server torture suite (src/serve/*, docs/serving.md).
// Three fronts, per the robustness-as-a-service contract:
//
//   * the wire protocol never crashes, never desyncs, and answers every
//     violation with a structured `error` line — fuzzed with malformed
//     tables, a fixed-RNG random-bytes corpus, and overlong lines;
//   * a served response is byte-identical to a direct in-process
//     evaluate_points call — under concurrent clients, cache eviction
//     pressure, backpressure, and chaos injection;
//   * the server fails fast on bad endpoints (socket path, runs dir)
//     and persists exactly the trials it evaluated, appending, never
//     truncating.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/runstore.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/targets.hpp"
#include "utils/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define BAYESFT_TEST_POSIX 1
#endif

namespace bayesft::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
    return (fs::temp_directory_path() / ("bayesft_serve_" + name)).string();
}

// ------------------------------------------------------------------ //
// Test targets: analytic evaluators so one request costs microseconds //
// (or a deliberate sleep, for the backpressure test).                 //
// ------------------------------------------------------------------ //

ServeTarget cheap_target() {
    ServeTarget target;
    target.name = "cheap";
    target.bounds = bayesopt::BoxBounds::uniform(2, 0.0, 1.0);
    target.digest = serve_target_digest(target.name, target.bounds.dims());
    target.evaluate = [](const core::ObjectiveConfig& objective,
                         const core::Alpha& p, Rng& rng) {
        const double noise =
            objective.sigmas.empty() ? 0.0 : objective.sigmas.front();
        return std::sin(5.0 * p[0]) + 0.25 * p[1] +
               0.01 * noise * rng.uniform();
    };
    core::ObjectiveConfig base;
    base.sigmas = {0.05};
    base.mc_samples = 1;
    target.variants.push_back(
        {"base", fault_variant_digest(target.digest, "base", base), base});
    core::ObjectiveConfig noisy;
    noisy.sigmas = {0.5};
    noisy.mc_samples = 1;
    target.variants.push_back(
        {"noisy", fault_variant_digest(target.digest, "noisy", noisy),
         noisy});
    return target;
}

ServeTarget slow_target(int millis) {
    ServeTarget target = cheap_target();
    target.name = "slow";
    target.digest = serve_target_digest(target.name, target.bounds.dims());
    target.variants.clear();
    core::ObjectiveConfig base;
    base.sigmas = {0.05};
    base.mc_samples = 1;
    target.variants.push_back(
        {"base", fault_variant_digest(target.digest, "base", base), base});
    target.evaluate = [millis](const core::ObjectiveConfig&,
                               const core::Alpha& p, Rng&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(millis));
        return p[0] + p[1];
    };
    return target;
}

std::vector<core::Alpha> points_for(const bayesopt::BoxBounds& bounds,
                                    std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<core::Alpha> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) points.push_back(bounds.sample(rng));
    return points;
}

std::vector<std::uint64_t> iota_trials(std::size_t n,
                                       std::uint64_t first = 0) {
    std::vector<std::uint64_t> trials(n);
    for (std::size_t i = 0; i < n; ++i) trials[i] = first + i;
    return trials;
}

EvalRequest make_request(const ServeTarget& target,
                         const FaultVariant& variant,
                         const core::Alpha& point,
                         nn::InferenceMode mode = nn::InferenceMode::kFloat32) {
    EvalRequest request;
    request.target = target.digest;
    request.fault = variant.digest;
    request.inference = mode;
    request.point = point;
    return request;
}

/// The malformed-request table both the parser unit test and the live
/// fuzz test chew through.  None may parse; each must explain itself.
std::vector<std::string> malformed_lines() {
    const std::string hex0 = "0000000000000000";
    return {
        "",
        " ",
        "bogus",
        "evaluate " + hex0,
        "ping extra",
        "stats ",
        " stats",
        "shutdown now",
        "eval",
        "eval " + hex0,
        "eval " + hex0 + " " + hex0,
        "eval " + hex0 + " " + hex0 + " float32",
        "eval " + hex0 + " " + hex0 + " float32 1",
        "eval " + hex0 + "  " + hex0 + " float32 1 " + hex0,  // double space
        "eval 0x123 " + hex0 + " float32 1 " + hex0,
        "eval " + hex0 + "0 " + hex0 + " float32 1 " + hex0,  // 17 digits
        "eval zzzz " + hex0 + " float32 1 " + hex0,
        "eval " + hex0 + " " + hex0 + " float64 1 " + hex0,
        "eval " + hex0 + " " + hex0 + " float32 0",
        "eval " + hex0 + " " + hex0 + " float32 -1 " + hex0,
        "eval " + hex0 + " " + hex0 + " float32 257 " + hex0,
        "eval " + hex0 + " " + hex0 + " float32 abc " + hex0,
        "eval " + hex0 + " " + hex0 + " float32 2 " + hex0,  // short 1 coord
        "eval " + hex0 + " " + hex0 + " float32 1 " + hex0 + " " + hex0,
        "eval " + hex0 + " " + hex0 + " float32 1 " + hex0 + " ",
        // Non-finite coordinates: NaN and +inf bit patterns.
        "eval " + hex0 + " " + hex0 + " float32 1 7ff8000000000000",
        "eval " + hex0 + " " + hex0 + " float32 1 7ff0000000000000",
        std::string("ping\x01"),
        std::string("eval\tstats"),
    };
}

// ------------------------------------------------------------------ //
// Protocol unit tests (no sockets needed).                            //
// ------------------------------------------------------------------ //

TEST(ServeProtocol, EvalRoundTripIsBitExact) {
    const ServeTarget target = cheap_target();
    const std::vector<double> tricky = {
        0.0,
        -0.0,
        1.0 / 3.0,
        -1.0 / 3.0,
        5e-324,  // smallest denormal
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::min(),
    };
    for (const nn::InferenceMode mode :
         {nn::InferenceMode::kFloat32, nn::InferenceMode::kInt8,
          nn::InferenceMode::kInt12}) {
        for (std::size_t i = 0; i + 1 < tricky.size(); ++i) {
            EvalRequest request = make_request(
                target, target.variants[0], {tricky[i], tricky[i + 1]}, mode);
            const std::string line = format_eval_request(request);
            Request parsed;
            std::string error;
            ASSERT_TRUE(parse_request(line, parsed, error)) << line;
            ASSERT_EQ(parsed.kind, Request::Kind::kEval);
            EXPECT_EQ(parsed.eval.target, request.target);
            EXPECT_EQ(parsed.eval.fault, request.fault);
            EXPECT_EQ(parsed.eval.inference, mode);
            ASSERT_EQ(parsed.eval.point.size(), request.point.size());
            // Bitwise, not value-wise: -0.0 == 0.0 would pass a value
            // compare and still corrupt the candidate seed.
            EXPECT_EQ(std::memcmp(parsed.eval.point.data(),
                                  request.point.data(),
                                  request.point.size() * sizeof(double)),
                      0)
                << line;
        }
    }
    // The trivial verbs parse too, with an optional trailing CR.
    Request parsed;
    std::string error;
    EXPECT_TRUE(parse_request("ping", parsed, error));
    EXPECT_EQ(parsed.kind, Request::Kind::kPing);
    EXPECT_TRUE(parse_request("stats", parsed, error));
    EXPECT_EQ(parsed.kind, Request::Kind::kStats);
    EXPECT_TRUE(parse_request("shutdown", parsed, error));
    EXPECT_EQ(parsed.kind, Request::Kind::kShutdown);
}

TEST(ServeProtocol, MalformedLinesAreRejectedWithReasons) {
    for (const std::string& line : malformed_lines()) {
        Request parsed;
        std::string error;
        EXPECT_FALSE(parse_request(line, parsed, error))
            << "parsed: " << line;
        EXPECT_FALSE(error.empty()) << "no reason for: " << line;
        // The reason must be safe to echo: one printable line.
        const std::string response = error_response(error);
        EXPECT_EQ(response.rfind("error ", 0), 0U);
        for (const char c : response) {
            EXPECT_TRUE(c >= 0x20 && c < 0x7f)
                << "unprintable byte in: " << response;
        }
    }
}

TEST(ServeProtocol, StatsJsonRoundTrips) {
    ServeStats stats;
    stats.connections = 3;
    stats.requests = 101;
    stats.protocol_errors = 7;
    stats.accepted = 80;
    stats.busy = 5;
    stats.completed = 85;
    stats.failed = 2;
    stats.batches = 40;
    stats.cache_hits = 11;
    stats.cache_evictions = 6;
    stats.cache_size = 4;
    ServeStats parsed;
    ASSERT_TRUE(parse_stats(stats_json(stats), parsed));
    EXPECT_EQ(parsed.connections, stats.connections);
    EXPECT_EQ(parsed.requests, stats.requests);
    EXPECT_EQ(parsed.protocol_errors, stats.protocol_errors);
    EXPECT_EQ(parsed.accepted, stats.accepted);
    EXPECT_EQ(parsed.busy, stats.busy);
    EXPECT_EQ(parsed.completed, stats.completed);
    EXPECT_EQ(parsed.failed, stats.failed);
    EXPECT_EQ(parsed.batches, stats.batches);
    EXPECT_EQ(parsed.cache_hits, stats.cache_hits);
    EXPECT_EQ(parsed.cache_evictions, stats.cache_evictions);
    EXPECT_EQ(parsed.cache_size, stats.cache_size);
    ServeStats rejected;
    EXPECT_FALSE(parse_stats("", rejected));
    EXPECT_FALSE(parse_stats("pong", rejected));
    EXPECT_FALSE(parse_stats("{\"requests\":1}", rejected));
}

#ifdef BAYESFT_TEST_POSIX

// ------------------------------------------------------------------ //
// Live-server fixture.                                                //
// ------------------------------------------------------------------ //

struct TestServer {
    std::string socket;
    ServeConfig config;
    std::unique_ptr<EvalServer> server;

    explicit TestServer(const std::string& name,
                        std::vector<ServeTarget> targets,
                        const std::function<void(ServeConfig&)>& tweak = {}) {
        set_log_level(LogLevel::Error);
        socket = temp_path(name + ".sock");
        fs::remove(socket);
        config.socket_path = socket;
        config.chaos = {};  // never inherit ambient chaos by accident
        if (tweak) tweak(config);
        server = std::make_unique<EvalServer>(config, std::move(targets));
        server->start();
    }

    ~TestServer() {
        if (server) server->stop();
        fs::remove(socket);
    }

    ServeClient connect() const { return ServeClient::connect_unix(socket); }
};

std::vector<std::string> eval_all(ServeClient& client,
                                  const ServeTarget& target,
                                  const FaultVariant& variant,
                                  const std::vector<core::Alpha>& points,
                                  nn::InferenceMode mode =
                                      nn::InferenceMode::kFloat32) {
    std::vector<std::string> responses;
    responses.reserve(points.size());
    for (const core::Alpha& point : points) {
        responses.push_back(
            client.eval(make_request(target, variant, point, mode)));
    }
    return responses;
}

// ------------------------------------------------------------------ //
// Determinism: served bytes == in-process bytes.                      //
// ------------------------------------------------------------------ //

TEST(ServeDeterminism, ServedBytesMatchInProcessReference) {
    const ServeTarget target = cheap_target();
    TestServer fixture("determinism", {target});
    const std::vector<core::Alpha> points =
        points_for(target.bounds, 8, 11);
    const std::vector<std::string> reference = reference_responses(
        target, target.variants[0], nn::InferenceMode::kFloat32, points,
        iota_trials(points.size()));

    ServeClient client = fixture.connect();
    EXPECT_EQ(eval_all(client, target, target.variants[0], points),
              reference);

    // A fresh connection restarts the per-connection trial index, so the
    // same points reproduce the same bytes — placement-invariance at the
    // connection level.
    ServeClient again = fixture.connect();
    EXPECT_EQ(eval_all(again, target, target.variants[0], points),
              reference);

    // The requested inference mode is folded into the bucket: int8
    // responses match the int8 reference and differ from float32 bytes.
    const std::vector<std::string> int8_reference = reference_responses(
        target, target.variants[0], nn::InferenceMode::kInt8, points,
        iota_trials(points.size()));
    ServeClient int8_client = fixture.connect();
    const std::vector<std::string> int8_served =
        eval_all(int8_client, target, target.variants[0], points,
                 nn::InferenceMode::kInt8);
    EXPECT_EQ(int8_served, int8_reference);
    EXPECT_NE(int8_served, reference);
}

TEST(ServeDeterminism, ConcurrentClientsByteIdenticalToSerial) {
    const ServeTarget target = cheap_target();
    TestServer fixture("concurrent", {target});
    // Each client owns 3 private points plus 3 points shared by everyone:
    // the shared tail hits the cross-client cache under full concurrency,
    // and a hit must replay the same bytes the engine would produce.
    const std::vector<core::Alpha> shared = points_for(target.bounds, 3, 7);
    for (const std::size_t clients : {1UL, 4UL, 8UL}) {
        std::vector<std::vector<std::string>> responses(clients);
        std::vector<std::vector<core::Alpha>> point_sets(clients);
        for (std::size_t k = 0; k < clients; ++k) {
            point_sets[k] = points_for(target.bounds, 3, 100 + k);
            point_sets[k].insert(point_sets[k].end(), shared.begin(),
                                 shared.end());
        }
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (std::size_t k = 0; k < clients; ++k) {
            threads.emplace_back([&, k] {
                ServeClient client = fixture.connect();
                responses[k] = eval_all(client, target, target.variants[0],
                                        point_sets[k]);
            });
        }
        for (std::thread& thread : threads) thread.join();
        for (std::size_t k = 0; k < clients; ++k) {
            EXPECT_EQ(responses[k],
                      reference_responses(
                          target, target.variants[0],
                          nn::InferenceMode::kFloat32, point_sets[k],
                          iota_trials(point_sets[k].size())))
                << "clients=" << clients << " client " << k;
        }
    }
}

TEST(ServeDeterminism, EvictionPressureDoesNotChangeBytes) {
    const ServeTarget target = cheap_target();
    TestServer fixture("eviction", {target}, [](ServeConfig& config) {
        config.cache_entries = 2;  // 6 points thrash a 2-entry LRU
    });
    const std::vector<core::Alpha> base = points_for(target.bounds, 6, 31);
    std::vector<core::Alpha> repeated;
    for (int round = 0; round < 3; ++round) {
        repeated.insert(repeated.end(), base.begin(), base.end());
    }
    ServeClient client = fixture.connect();
    EXPECT_EQ(eval_all(client, target, target.variants[0], repeated),
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, repeated,
                                  iota_trials(repeated.size())));
    const ServeStats stats = fixture.server->stats();
    EXPECT_GT(stats.cache_evictions, 0U);
    EXPECT_LE(stats.cache_size, 2U);
}

// ------------------------------------------------------------------ //
// Cache: LRU bound, cross-client hits.                                //
// ------------------------------------------------------------------ //

TEST(ServeCache, LruBoundHoldsAndHitsServeAcrossClients) {
    const ServeTarget target = cheap_target();
    TestServer fixture("cache", {target}, [](ServeConfig& config) {
        config.cache_entries = 4;
    });
    const std::vector<core::Alpha> points = points_for(target.bounds, 6, 51);
    ServeClient first = fixture.connect();
    eval_all(first, target, target.variants[0], points);
    ServeStats stats = fixture.server->stats();
    EXPECT_LE(stats.cache_size, 4U);
    EXPECT_GE(stats.cache_evictions, 2U);

    // A second client re-requests the two most recent points: both must be
    // LRU hits — no new engine batch — and byte-identical to the engine's
    // answer at this connection's trial indices.
    const std::vector<core::Alpha> tail(points.end() - 2, points.end());
    const std::uint64_t hits_before = stats.cache_hits;
    const std::uint64_t batches_before = stats.batches;
    ServeClient second = fixture.connect();
    EXPECT_EQ(eval_all(second, target, target.variants[0], tail),
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, tail,
                                  iota_trials(tail.size())));
    stats = fixture.server->stats();
    EXPECT_EQ(stats.cache_hits, hits_before + 2);
    EXPECT_EQ(stats.batches, batches_before);
}

// ------------------------------------------------------------------ //
// Backpressure: a full queue answers `busy`, never drops.             //
// ------------------------------------------------------------------ //

TEST(ServeBackpressure, FullQueueAnswersBusyAndNeverDrops) {
    const ServeTarget target = slow_target(10);
    TestServer fixture("backpressure", {target}, [](ServeConfig& config) {
        config.queue_depth = 2;
        config.max_batch = 1;
        config.cache_entries = 0;  // no cache: every accept hits the engine
        config.threads = 1;
    });
    const std::vector<core::Alpha> points = points_for(target.bounds, 40, 3);
    ServeClient client = fixture.connect();
    // Pipeline everything before reading: the dispatcher is 10ms/job, so
    // the 2-deep queue overflows almost immediately.
    for (const core::Alpha& point : points) {
        client.send_line(
            format_eval_request(make_request(target, target.variants[0],
                                             point)));
    }
    std::vector<std::string> responses;
    for (std::size_t i = 0; i < points.size(); ++i) {
        responses.push_back(client.read_line(20.0));
    }
    // Exactly one response per request, in request order: nothing dropped,
    // nothing reordered, nothing crashed.
    ASSERT_EQ(responses.size(), points.size());
    std::size_t busy = 0;
    std::vector<core::Alpha> served_points;
    std::vector<std::uint64_t> served_trials;
    std::vector<std::string> served_lines;
    for (std::size_t i = 0; i < responses.size(); ++i) {
        if (responses[i] == kBusyResponse) {
            ++busy;
            continue;
        }
        served_points.push_back(points[i]);
        // The trial index counts every valid eval request — including the
        // busy-rejected ones — so response bytes are predictable from the
        // request position alone.
        served_trials.push_back(i);
        served_lines.push_back(responses[i]);
    }
    EXPECT_GT(busy, 0U);
    ASSERT_GT(served_lines.size(), 0U);
    EXPECT_EQ(served_lines,
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, served_points,
                                  served_trials));
    const ServeStats stats = fixture.server->stats();
    EXPECT_EQ(stats.busy, busy);
    EXPECT_EQ(stats.busy + stats.accepted, points.size());
}

// ------------------------------------------------------------------ //
// Chaos under load: failures propagate, the server survives.          //
// ------------------------------------------------------------------ //

TEST(ServeChaos, InjectedFailuresPropagateAndServerStaysUp) {
    // Chaos arrives through the same environment door every driver uses.
    ::setenv("BAYESFT_CHAOS", "crash:0.3,nan:0.1", 1);
    ServeConfig ambient;  // default chaos = ChaosSpec::from_env()
    EXPECT_DOUBLE_EQ(ambient.chaos.crash, 0.3);
    EXPECT_DOUBLE_EQ(ambient.chaos.nan, 0.1);
    ::unsetenv("BAYESFT_CHAOS");

    const ServeTarget target = cheap_target();
    TestServer fixture("chaos", {target}, [&](ServeConfig& config) {
        config.chaos = ambient.chaos;
        config.resilience.max_retries = 0;  // no retries: failures surface
        config.cache_entries = 0;
    });
    const std::vector<core::Alpha> points = points_for(target.bounds, 40, 9);
    const std::vector<std::string> clean = reference_responses(
        target, target.variants[0], nn::InferenceMode::kFloat32, points,
        iota_trials(points.size()));

    ServeClient client = fixture.connect();
    const std::vector<std::string> responses =
        eval_all(client, target, target.variants[0], points);
    std::size_t ok = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < responses.size(); ++i) {
        core::RunRecord record;
        ASSERT_TRUE(core::RunStore::parse_line(responses[i], record))
            << responses[i];
        if (record.status == "ok") {
            ++ok;
            // A job chaos spared is byte-identical to the clean run: the
            // injection stream is per-candidate, not per-batch.
            EXPECT_EQ(responses[i], clean[i]) << "trial " << i;
        } else {
            ++failed;
            EXPECT_EQ(record.status.rfind("failed_", 0), 0U)
                << record.status;
            EXPECT_TRUE(std::isnan(record.objective)) << "trial " << i;
        }
    }
    EXPECT_GT(ok, 0U);
    EXPECT_GT(failed, 0U);
    EXPECT_EQ(fixture.server->stats().failed, failed);

    // The server survived its own chaos: still running, still answering.
    EXPECT_TRUE(fixture.server->running());
    EXPECT_EQ(client.request("ping"), "pong");
}

// ------------------------------------------------------------------ //
// Fuzz: malformed requests, random bytes, overlong lines.             //
// ------------------------------------------------------------------ //

TEST(ServeFuzz, MalformedRequestsGetErrorsAndConnectionSurvives) {
    const ServeTarget target = cheap_target();
    TestServer fixture("fuzz_malformed", {target});
    ServeClient client = fixture.connect();
    for (const std::string& line : malformed_lines()) {
        const std::string response = client.request(line);
        EXPECT_EQ(response.rfind("error ", 0), 0U)
            << "for request: " << line << " got: " << response;
    }
    // Well-formed lines addressing nothing: structured errors too.
    EvalRequest unknown = make_request(target, target.variants[0],
                                       {0.5, 0.5});
    unknown.target = 0xdeadbeefULL;
    EXPECT_EQ(client.eval(unknown).rfind("error ", 0), 0U);
    EvalRequest bad_variant = make_request(target, target.variants[0],
                                           {0.5, 0.5});
    bad_variant.fault = 0xdeadbeefULL;
    EXPECT_EQ(client.eval(bad_variant).rfind("error ", 0), 0U);
    EvalRequest bad_dims =
        make_request(target, target.variants[0], {0.5, 0.5, 0.5});
    EXPECT_EQ(client.eval(bad_dims).rfind("error ", 0), 0U);

    // None of that desynced the stream or advanced the trial counter: the
    // next real evaluation is trial 0, byte-identical to the reference.
    const std::vector<core::Alpha> points = points_for(target.bounds, 2, 77);
    EXPECT_EQ(eval_all(client, target, target.variants[0], points),
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, points,
                                  iota_trials(points.size())));
    EXPECT_GT(fixture.server->stats().protocol_errors, 0U);
}

TEST(ServeFuzz, RandomBytesCorpusNeverCrashesOrDesyncs) {
    const ServeTarget target = cheap_target();
    TestServer fixture("fuzz_random", {target});
    ServeClient client = fixture.connect();
    // Fixed-RNG corpus: 200 lines of raw bytes (anything but '\n', which
    // terminates a line).  Every line must come back as one structured
    // error — the stream never desyncs, the server never dies.
    Rng rng(2026);
    std::size_t lines = 0;
    for (int i = 0; i < 200; ++i) {
        std::string garbage;
        const std::size_t length = 1 + rng.uniform_int(80);
        for (std::size_t j = 0; j < length; ++j) {
            char byte = static_cast<char>(rng.uniform_int(256));
            if (byte == '\n') byte = ' ';
            garbage += byte;
        }
        garbage += '\n';
        client.send_raw(garbage);
        ++lines;
        if (i % 20 == 0) {
            // Drain periodically so neither side's socket buffer fills.
            for (; lines > 0; --lines) {
                const std::string response = client.read_line(10.0);
                EXPECT_EQ(response.rfind("error ", 0), 0U) << response;
            }
        }
    }
    for (; lines > 0; --lines) {
        EXPECT_EQ(client.read_line(10.0).rfind("error ", 0), 0U);
    }
    EXPECT_TRUE(fixture.server->running());
    EXPECT_EQ(client.request("ping"), "pong");
    const std::vector<core::Alpha> points = points_for(target.bounds, 2, 13);
    EXPECT_EQ(eval_all(client, target, target.variants[0], points),
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, points,
                                  iota_trials(points.size())));
}

TEST(ServeFuzz, OverlongLineErrorsOnceAndStreamResyncs) {
    const ServeTarget target = cheap_target();
    TestServer fixture("fuzz_overlong", {target});
    ServeClient client = fixture.connect();
    // One line past the 64KiB bound: a single error response, the excess
    // discarded to the next newline, and the connection keeps working.
    std::string overlong(kMaxRequestBytes + 4096, 'a');
    overlong += '\n';
    client.send_raw(overlong);
    EXPECT_EQ(client.read_line(10.0).rfind("error ", 0), 0U);
    // The oversized line never reached the parser, so it never counted as
    // an eval: the next evaluation is still trial 0.
    const std::vector<core::Alpha> points = points_for(target.bounds, 1, 19);
    EXPECT_EQ(eval_all(client, target, target.variants[0], points),
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, points,
                                  iota_trials(points.size())));
}

// ------------------------------------------------------------------ //
// Fail-fast probes: --socket and --runs-dir.                          //
// ------------------------------------------------------------------ //

TEST(ServeFailFast, SocketPathValidationRejectsBadTargets) {
    set_log_level(LogLevel::Error);
    EXPECT_THROW(EvalServer::validate_socket_path(""), std::runtime_error);

    // sun_path is ~108 bytes: a longer path must be rejected up front,
    // not silently truncated by bind().
    EXPECT_THROW(
        EvalServer::validate_socket_path(temp_path(std::string(200, 'x'))),
        std::runtime_error);

    const std::string dir = temp_path("socket_dir");
    fs::create_directories(dir);
    EXPECT_THROW(EvalServer::validate_socket_path(dir), std::runtime_error);
    fs::remove_all(dir);

    // An existing regular file is never replaced — and never truncated.
    const std::string file = temp_path("socket_file");
    {
        std::ofstream out(file);
        out << "precious\n";
    }
    EXPECT_THROW(EvalServer::validate_socket_path(file), std::runtime_error);
    {
        std::ifstream in(file);
        std::string content;
        std::getline(in, content);
        EXPECT_EQ(content, "precious");
    }
    fs::remove(file);

    // A stale socket file (nothing listening) is cleaned up and accepted.
    const std::string stale = temp_path("stale.sock");
    fs::remove(stale);
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, stale.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr),
                  0);
        ::close(fd);  // bound but never listening: a stale corpse
    }
    ASSERT_TRUE(fs::exists(stale));
    EXPECT_NO_THROW(EvalServer::validate_socket_path(stale));
    EXPECT_FALSE(fs::exists(stale));

    // A live socket another server answers on is refused — and probing it
    // must not disturb the running server.
    const ServeTarget target = cheap_target();
    TestServer fixture("live_probe", {target});
    EXPECT_THROW(EvalServer::validate_socket_path(fixture.socket),
                 std::runtime_error);
    ServeClient client = fixture.connect();
    EXPECT_EQ(client.request("ping"), "pong");
}

TEST(ServeFailFast, RunsDirRejectsFilesAndAppendsNeverTruncate) {
    set_log_level(LogLevel::Error);
    const ServeTarget target = cheap_target();

    // --runs-dir pointing at a regular file: start() throws before the
    // server binds anything.
    const std::string file = temp_path("runs_file");
    {
        std::ofstream out(file);
        out << "not a directory\n";
    }
    {
        ServeConfig config;
        config.socket_path = temp_path("runs_reject.sock");
        config.chaos = {};
        config.runs_dir = file;
        EvalServer server(config, {target});
        EXPECT_THROW(server.start(), std::runtime_error);
    }
    fs::remove(file);
    fs::remove(temp_path("runs_reject.sock"));

    // A pre-existing scenario file survives: the store appends behind the
    // sentinel line, never over it.
    const std::string dir = temp_path("runs_append");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string sentinel =
        "{\"kind\":\"note\",\"text\":\"do not truncate\"}";
    {
        std::ofstream out(dir + "/cheap.jsonl");
        out << sentinel << "\n";
    }
    std::string response;
    {
        TestServer fixture("runs_append", {target},
                           [&](ServeConfig& config) {
                               config.runs_dir = dir;
                           });
        ServeClient client = fixture.connect();
        response = client.eval(
            make_request(target, target.variants[0], {0.25, 0.75}));
        fixture.server->stop();  // join the dispatcher: appends complete
    }
    std::ifstream in(dir + "/cheap.jsonl");
    std::vector<std::string> stored;
    for (std::string line; std::getline(in, line);) stored.push_back(line);
    ASSERT_EQ(stored.size(), 2U);
    EXPECT_EQ(stored[0], sentinel);
    EXPECT_EQ(stored[1], response);
    fs::remove_all(dir);
}

// ------------------------------------------------------------------ //
// Persistence: stored lines are the served lines.                     //
// ------------------------------------------------------------------ //

TEST(ServePersistence, StoreHoldsEachEvaluationOnceHitsAreNotDuplicated) {
    const ServeTarget target = cheap_target();
    const std::string dir = temp_path("persist_runs");
    fs::remove_all(dir);
    std::vector<std::string> responses;
    {
        TestServer fixture("persist", {target}, [&](ServeConfig& config) {
            config.runs_dir = dir;
        });
        ServeClient client = fixture.connect();
        std::vector<core::Alpha> points = points_for(target.bounds, 3, 41);
        points.push_back(points[0]);  // the repeat is an LRU hit
        responses = eval_all(client, target, target.variants[0], points);
        EXPECT_EQ(fixture.server->stats().cache_hits, 1U);
        fixture.server->stop();
    }
    std::ifstream in(dir + "/cheap.jsonl");
    std::vector<std::string> stored;
    for (std::string line; std::getline(in, line);) stored.push_back(line);
    // Three engine evaluations stored, in dispatch order; the cache hit
    // was served (responses[3]) but not re-persisted — a hit replays a
    // stored result under a fresh trial index (docs/serving.md).
    ASSERT_EQ(stored.size(), 3U);
    EXPECT_EQ(stored[0], responses[0]);
    EXPECT_EQ(stored[1], responses[1]);
    EXPECT_EQ(stored[2], responses[2]);
    core::RunRecord hit;
    ASSERT_TRUE(core::RunStore::parse_line(responses[3], hit));
    EXPECT_EQ(hit.trial, 3U);
    fs::remove_all(dir);
}

// ------------------------------------------------------------------ //
// Transport and service verbs.                                        //
// ------------------------------------------------------------------ //

TEST(ServeTransport, TcpEndpointServesIdenticalBytes) {
    set_log_level(LogLevel::Error);
    const ServeTarget target = cheap_target();
    ServeConfig config;
    config.tcp_port = -1;  // bind an ephemeral port, no Unix socket
    config.chaos = {};
    EvalServer server(config, {target});
    server.start();
    ASSERT_GT(server.tcp_port(), 0);
    ServeClient client = ServeClient::connect_tcp(server.tcp_port());
    EXPECT_EQ(client.request("ping"), "pong");
    const std::vector<core::Alpha> points = points_for(target.bounds, 3, 61);
    EXPECT_EQ(eval_all(client, target, target.variants[0], points),
              reference_responses(target, target.variants[0],
                                  nn::InferenceMode::kFloat32, points,
                                  iota_trials(points.size())));
    server.stop();
}

TEST(ServeTransport, PingStatsAndShutdownVerbs) {
    const ServeTarget target = cheap_target();
    TestServer fixture("verbs", {target});
    ServeClient client = fixture.connect();
    EXPECT_EQ(client.request("ping"), "pong");

    ServeStats stats;
    ASSERT_TRUE(parse_stats(client.request("stats"), stats));
    EXPECT_GE(stats.requests, 2U);  // the ping and this stats call
    EXPECT_EQ(stats.completed, 0U);

    const std::vector<core::Alpha> points = points_for(target.bounds, 2, 29);
    eval_all(client, target, target.variants[0], points);
    ASSERT_TRUE(parse_stats(client.request("stats"), stats));
    EXPECT_EQ(stats.completed, 2U);
    EXPECT_EQ(stats.accepted + stats.cache_hits, 2U);
    EXPECT_EQ(stats.connections, 1U);

    // `shutdown` answers ok, then the server drains and leaves running().
    EXPECT_EQ(client.request("shutdown"), "ok");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (fixture.server->running() &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_FALSE(fixture.server->running());
}

#endif  // BAYESFT_TEST_POSIX

}  // namespace
}  // namespace bayesft::serve
