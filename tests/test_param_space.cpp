// Typed mixed search space: builder validation, typed accessors, the
// encode/decode contract (round-trip, projection idempotence), encoded
// bounds and kernel construction, digests, and the bit-compatibility of the
// dropout-only space with the historical BoxBounds + ARD-SE path.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/bayesopt.hpp"
#include "bayesopt/kernel.hpp"
#include "core/param_space.hpp"

namespace bayesft::core {
namespace {

ParamSpace mixed_space() {
    ParamSpace space;
    space.add_continuous("rate", 0.0, 0.6);
    space.add_integer("depth", 1, 4);
    space.add_categorical("norm", {"none", "batch", "layer"});
    return space;
}

TEST(ParamSpace, BuilderValidation) {
    ParamSpace space;
    EXPECT_THROW(space.add_continuous("", 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(space.add_continuous("x", 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(space.add_integer("x", 3, 3), std::invalid_argument);
    EXPECT_THROW(space.add_categorical("x", {"only"}),
                 std::invalid_argument);
    EXPECT_THROW(space.add_categorical("x", {"a", "a"}),
                 std::invalid_argument);
    space.add_continuous("x", 0.0, 1.0);
    EXPECT_THROW(space.add_integer("x", 0, 3), std::invalid_argument);
    EXPECT_THROW(space.index_of("missing"), std::invalid_argument);
}

TEST(ParamSpace, EncodedDimsExpandCategoricalsToOneHot) {
    const ParamSpace space = mixed_space();
    EXPECT_EQ(space.size(), 3U);
    EXPECT_EQ(space.encoded_dims(), 1U + 1U + 3U);
    const auto blocks = space.categorical_blocks();
    ASSERT_EQ(blocks.size(), 1U);
    EXPECT_EQ(blocks[0].offset, 2U);
    EXPECT_EQ(blocks[0].cardinality, 3U);
}

TEST(ParamSpace, TypedAccessorsValidateKind) {
    const ParamSpace space = mixed_space();
    ParamPoint p{{0.25, 3.0, 1.0}};
    EXPECT_DOUBLE_EQ(space.real(p, "rate"), 0.25);
    EXPECT_EQ(space.integer(p, "depth"), 3);
    EXPECT_EQ(space.category(p, "norm"), "batch");
    EXPECT_THROW(space.real(p, "depth"), std::invalid_argument);
    EXPECT_THROW(space.integer(p, "norm"), std::invalid_argument);
    EXPECT_THROW(space.category(p, "rate"), std::invalid_argument);
}

TEST(ParamSpace, ValidatePointRejectsMalformedPoints) {
    const ParamSpace space = mixed_space();
    EXPECT_NO_THROW(space.validate_point(ParamPoint{{0.3, 2.0, 0.0}}));
    EXPECT_THROW(space.validate_point(ParamPoint{{0.3, 2.0}}),
                 std::invalid_argument);  // size
    EXPECT_THROW(space.validate_point(ParamPoint{{0.7, 2.0, 0.0}}),
                 std::invalid_argument);  // continuous out of bounds
    EXPECT_THROW(space.validate_point(ParamPoint{{0.3, 2.5, 0.0}}),
                 std::invalid_argument);  // fractional integer
    EXPECT_THROW(space.validate_point(ParamPoint{{0.3, 5.0, 0.0}}),
                 std::invalid_argument);  // integer out of bounds
    EXPECT_THROW(space.validate_point(ParamPoint{{0.3, 2.0, 3.0}}),
                 std::invalid_argument);  // choice index out of range
}

TEST(ParamSpace, EncodeDecodeRoundTripsFeasiblePoints) {
    const ParamSpace space = mixed_space();
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const ParamPoint p = space.sample(rng);
        space.validate_point(p);
        const std::vector<double> encoded = space.encode(p);
        ASSERT_EQ(encoded.size(), space.encoded_dims());
        EXPECT_EQ(space.decode(encoded), p);
    }
}

TEST(ParamSpace, DecodeSnapsInfeasibleEncodings) {
    const ParamSpace space = mixed_space();
    // Continuous out of box -> clamped; integer fractional -> rounded;
    // categorical soft scores -> argmax.
    const ParamPoint p = space.decode({0.9, 2.6, 0.1, 0.7, 0.3});
    EXPECT_DOUBLE_EQ(space.real(p, "rate"), 0.6);
    EXPECT_EQ(space.integer(p, "depth"), 3);
    EXPECT_EQ(space.category(p, "norm"), "batch");
    EXPECT_THROW(space.decode({0.1, 0.2}), std::invalid_argument);
}

TEST(ParamSpace, ProjectIsIdempotentAndMatchesEncodeDecode) {
    const ParamSpace space = mixed_space();
    std::vector<double> encoded{-0.5, 3.4, 0.2, 0.9, 0.9};
    std::vector<double> expected = space.encode(space.decode(encoded));
    space.project(encoded);
    EXPECT_EQ(encoded, expected);
    std::vector<double> again = encoded;
    space.project(again);
    EXPECT_EQ(again, encoded);  // idempotent

    // The callable form outlives the space it was built from.
    bayesopt::Projection projection;
    {
        const ParamSpace scoped = mixed_space();
        projection = scoped.projection();
    }
    bayesopt::Point p{-0.5, 3.4, 0.2, 0.9, 0.9};
    projection(p);
    EXPECT_EQ(p, expected);
}

TEST(ParamSpace, EncodedBoundsCoverNativeAndOneHotRanges) {
    const ParamSpace space = mixed_space();
    const bayesopt::BoxBounds bounds = space.encoded_bounds();
    ASSERT_EQ(bounds.dims(), 5U);
    EXPECT_DOUBLE_EQ(bounds.lower[0], 0.0);
    EXPECT_DOUBLE_EQ(bounds.upper[0], 0.6);
    EXPECT_DOUBLE_EQ(bounds.lower[1], 1.0);
    EXPECT_DOUBLE_EQ(bounds.upper[1], 4.0);
    for (std::size_t i = 2; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(bounds.lower[i], 0.0);
        EXPECT_DOUBLE_EQ(bounds.upper[i], 1.0);
    }
}

TEST(ParamSpace, SampleIsAlwaysFeasible) {
    const ParamSpace space = mixed_space();
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_NO_THROW(space.validate_point(space.sample(rng)));
    }
}

TEST(ParamSpace, DigestSeparatesSpacesAndPoints) {
    const ParamSpace a = mixed_space();
    ParamSpace b = mixed_space();
    EXPECT_EQ(a.digest(), mixed_space().digest());
    b.add_continuous("extra", 0.0, 1.0);
    EXPECT_NE(a.digest(), b.digest());

    ParamSpace renamed;
    renamed.add_continuous("other", 0.0, 0.6);
    renamed.add_integer("depth", 1, 4);
    renamed.add_categorical("norm", {"none", "batch", "layer"});
    EXPECT_NE(a.digest(), renamed.digest());

    const ParamPoint p{{0.25, 3.0, 1.0}};
    const ParamPoint q{{0.25, 3.0, 2.0}};
    EXPECT_EQ(a.digest(p), a.digest(p));
    EXPECT_NE(a.digest(p), a.digest(q));
}

TEST(ParamSpace, DescribeRendersTypedValues) {
    const ParamSpace space = mixed_space();
    const std::string text =
        space.describe(ParamPoint{{0.125, 3.0, 2.0}});
    EXPECT_EQ(text, "rate=0.125 depth=3 norm=layer");
}

TEST(ParamSpace, DropoutSpaceMatchesHistoricalBoxAndKernel) {
    // The dropout-only space must reproduce the pre-ParamSpace search
    // machinery exactly: same box, same kernel values, no-op projection.
    const ParamSpace space = ParamSpace::dropout(3, 0.6);
    EXPECT_EQ(space.size(), 3U);
    EXPECT_EQ(space.encoded_dims(), 3U);

    const bayesopt::BoxBounds bounds = space.encoded_bounds();
    const bayesopt::BoxBounds reference =
        bayesopt::BoxBounds::uniform(3, 0.0, 0.6);
    EXPECT_EQ(bounds.lower, reference.lower);
    EXPECT_EQ(bounds.upper, reference.upper);

    const auto kernel = space.kernel(4.0, 1.0);
    const bayesopt::ArdSquaredExponential ard(3, 4.0);
    Rng rng(13);
    for (int i = 0; i < 20; ++i) {
        bayesopt::Point a = bounds.sample(rng);
        bayesopt::Point b = bounds.sample(rng);
        EXPECT_EQ((*kernel)(a, b), ard(a, b));  // bitwise, not approximate
        bayesopt::Point projected = a;
        space.project(projected);
        EXPECT_EQ(projected, a);  // in-box continuous points are untouched
    }

    // Typed sampling draws the identical stream BoxBounds::sample draws.
    Rng typed_rng(17);
    Rng box_rng(17);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(space.encode(space.sample(typed_rng)),
                  reference.sample(box_rng));
    }

    EXPECT_THROW(ParamSpace::dropout(0, 0.5), std::invalid_argument);
    EXPECT_THROW(ParamSpace::dropout(2, 1.0), std::invalid_argument);
}

TEST(ParamSpace, KernelTreatsCategoricalsByHamming) {
    const ParamSpace space = mixed_space();
    const auto kernel = space.kernel(4.0, 1.5);
    const ParamPoint base{{0.3, 2.0, 0.0}};
    const ParamPoint other_cat{{0.3, 2.0, 2.0}};
    const std::vector<double> a = space.encode(base);
    const std::vector<double> b = space.encode(other_cat);
    // Same numeric coordinates, one categorical mismatch: exp(-lambda).
    EXPECT_NEAR((*kernel)(a, b), std::exp(-1.5), 1e-12);
    EXPECT_DOUBLE_EQ((*kernel)(a, a), 1.0);

    // Integer dims are span-normalized: the full range costs
    // inverse_scale, not inverse_scale * span^2.
    const std::vector<double> near = space.encode(ParamPoint{{0.3, 1.0, 0.0}});
    const std::vector<double> far = space.encode(ParamPoint{{0.3, 4.0, 0.0}});
    EXPECT_NEAR((*kernel)(near, far), std::exp(-4.0), 1e-12);
}

TEST(ParamSpace, BayesOptProposesOnlyFeasiblePoints) {
    // End-to-end: a BayesOpt wired from a mixed space proposes snapped
    // points (integral depth, pure one-hot norm) through both the initial
    // design and the surrogate phase.
    const ParamSpace space = mixed_space();
    bayesopt::BayesOptConfig config;
    config.initial_random_trials = 3;
    config.candidates = 64;
    config.local_candidates = 16;
    bayesopt::BayesOpt bo(space.encoded_bounds(), space.kernel(4.0, 1.0),
                          std::make_unique<bayesopt::ExpectedImprovement>(),
                          config, Rng(19), space.projection());
    Rng objective_rng(23);
    for (int i = 0; i < 10; ++i) {
        const bayesopt::Point x = bo.suggest();
        // decode(x) must be lossless: x is already feasible.
        EXPECT_EQ(space.encode(space.decode(x)), x) << "iteration " << i;
        bo.observe(x, objective_rng.uniform());
    }
    const std::vector<bayesopt::Point> batch = bo.suggest_batch(3);
    for (const bayesopt::Point& x : batch) {
        EXPECT_EQ(space.encode(space.decode(x)), x);
    }
}

}  // namespace
}  // namespace bayesft::core
