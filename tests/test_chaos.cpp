// Chaos torture suite for the fault-tolerant trial execution paths
// (docs/robustness.md): determinism of the seeded chaos hook itself,
// bit-identical recovery of in-process and crash-isolated evaluation under
// injected crashes / hangs / NaNs, timeout quarantine, the spawn watchdog,
// full bayesft_search / arch_search determinism under chaos at 1 and 4
// threads, quarantine of always-failing candidates, and graceful GP
// degradation when a refit is impossible.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "core/archsearch.hpp"
#include "core/bayesft.hpp"
#include "core/engine.hpp"
#include "data/toy.hpp"
#include "fault/chaos.hpp"
#include "models/zoo.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {
namespace {

using fault::ChaosAction;
using fault::ChaosSpec;
using fault::chaos_decide;
using fault::chaos_spawn_failure;

#if defined(__unix__) || defined(__APPLE__)
#define BAYESFT_TEST_POSIX 1

/// Scoped BAYESFT_CHAOS / BAYESFT_CHAOS_SEED: the full-search entry points
/// read the chaos spec from the environment when they build their engine,
/// so these tests inject through the same door the CI chaos-smoke job uses.
class ChaosEnv {
public:
    explicit ChaosEnv(const std::string& spec, const std::string& seed = "") {
        ::setenv("BAYESFT_CHAOS", spec.c_str(), 1);
        if (!seed.empty()) {
            ::setenv("BAYESFT_CHAOS_SEED", seed.c_str(), 1);
        }
    }
    ~ChaosEnv() {
        ::unsetenv("BAYESFT_CHAOS");
        ::unsetenv("BAYESFT_CHAOS_SEED");
    }
    ChaosEnv(const ChaosEnv&) = delete;
    ChaosEnv& operator=(const ChaosEnv&) = delete;
};
#endif

TEST(ChaosSpecTest, DecisionsArePureSeededAndAttemptIndexed) {
    const ChaosSpec off;
    EXPECT_FALSE(off.any());
    for (std::uint64_t c = 0; c < 32; ++c) {
        EXPECT_EQ(chaos_decide(off, c, 0), ChaosAction::kNone);
        EXPECT_FALSE(chaos_spawn_failure(off, c, 0));
    }

    ChaosSpec certain;
    certain.crash = 1.0;
    for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
        EXPECT_EQ(chaos_decide(certain, 12345, attempt), ChaosAction::kCrash);
    }

    // The cumulative bands partition [0, 1): probabilities summing to one
    // leave no room for kNone, whatever the draw.
    ChaosSpec full;
    full.crash = 0.25;
    full.hang = 0.25;
    full.nan = 0.5;
    for (std::uint64_t c = 0; c < 256; ++c) {
        EXPECT_NE(chaos_decide(full, c, 0), ChaosAction::kNone);
    }

    // Pure: identical inputs always decide identically.
    ChaosSpec half;
    half.crash = 0.5;
    half.seed = 9;
    for (std::uint64_t c = 0; c < 64; ++c) {
        EXPECT_EQ(chaos_decide(half, c, 3), chaos_decide(half, c, 3));
    }

    // The seed selects the stream and the attempt index rolls fresh dice:
    // both must change at least one decision across a modest sample.
    ChaosSpec other = half;
    other.seed = 10;
    bool seed_differs = false;
    bool attempt_differs = false;
    for (std::uint64_t c = 0; c < 256; ++c) {
        seed_differs |= chaos_decide(half, c, 0) != chaos_decide(other, c, 0);
        attempt_differs |=
            chaos_decide(half, c, 0) != chaos_decide(half, c, 1);
    }
    EXPECT_TRUE(seed_differs);
    EXPECT_TRUE(attempt_differs);

    // Spawn failures draw on an independent stream: a spawn-only spec never
    // perturbs the evaluation decision.
    ChaosSpec spawn_only;
    spawn_only.spawn = 1.0;
    EXPECT_TRUE(spawn_only.any());
    for (std::uint64_t c = 0; c < 64; ++c) {
        EXPECT_EQ(chaos_decide(spawn_only, c, 0), ChaosAction::kNone);
        EXPECT_TRUE(chaos_spawn_failure(spawn_only, c, 0));
    }
}

#ifdef BAYESFT_TEST_POSIX
TEST(ChaosSpecTest, FromEnvParsesSpecAndSeed) {
    {
        ChaosEnv env("crash:0.25,hang:0.5,nan:0.125,spawn:0.75", "42");
        const ChaosSpec spec = ChaosSpec::from_env();
        EXPECT_DOUBLE_EQ(spec.crash, 0.25);
        EXPECT_DOUBLE_EQ(spec.hang, 0.5);
        EXPECT_DOUBLE_EQ(spec.nan, 0.125);
        EXPECT_DOUBLE_EQ(spec.spawn, 0.75);
        EXPECT_EQ(spec.seed, 42U);
    }
    {
        // Unknown keys and malformed probabilities are ignored; values are
        // clamped into [0, 1].
        ChaosEnv env("bogus,crash:2.5,nan:notanumber,hang:0.1");
        const ChaosSpec spec = ChaosSpec::from_env();
        EXPECT_DOUBLE_EQ(spec.crash, 1.0);
        EXPECT_DOUBLE_EQ(spec.nan, 0.0);
        EXPECT_DOUBLE_EQ(spec.hang, 0.1);
        EXPECT_EQ(spec.seed, 0U);
    }
    const ChaosSpec spec = ChaosSpec::from_env();
    EXPECT_FALSE(spec.any());
}
#endif

// ---------------------------------------------------------------------------
// Engine-level torture: a cheap pure evaluator stands in for train-and-score
// so the fault paths (not the network) dominate the runtime.

std::vector<Alpha> engine_points() {
    std::vector<Alpha> points = {{0.10, 0.90}, {0.25, 0.40}, {0.50, 0.50},
                                 {0.75, 0.20}, {0.90, 0.10}, {0.33, 0.66}};
    points.push_back(points[2]);  // within-batch duplicate
    return points;
}

PointEvaluator pure_evaluator() {
    return [](const Alpha& point, Rng& rng) {
        // Depends on both the point and the candidate RNG stream, so a
        // retry that failed to replay the exact stream would show up as a
        // bitwise mismatch.
        return std::sin(7.0 * point[0]) + 0.25 * point[1] +
               0.01 * rng.uniform();
    };
}

EvalContext engine_context() {
    EvalContext context;
    context.key = mix_key(0x9E3779B97F4A7C15ULL, std::uint64_t{17});
    context.stamp = 0;
    return context;
}

BatchOutcome run_engine(const EngineConfig& config) {
    EvaluationEngine engine(config);
    return engine.evaluate_points(engine_points(), pure_evaluator(),
                                  engine_context());
}

void expect_identical_ok(const BatchOutcome& clean,
                         const BatchOutcome& chaotic) {
    ASSERT_EQ(chaotic.utilities.size(), clean.utilities.size());
    for (std::size_t i = 0; i < clean.utilities.size(); ++i) {
        EXPECT_EQ(chaotic.utilities[i], clean.utilities[i])
            << "candidate " << i << " diverged";
        EXPECT_EQ(chaotic.statuses[i], TrialStatus::kOk)
            << "candidate " << i << " not recovered";
    }
    EXPECT_EQ(chaotic.best_index, clean.best_index);
}

EngineConfig quiet_engine_config() {
    EngineConfig config;
    config.chaos = ChaosSpec{};  // never inherit ambient BAYESFT_CHAOS
    return config;
}

TEST(ChaosEngineTest, InProcessRetriesRecoverBitIdentical) {
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_engine_config());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        for (const char* mode : {"crash", "hang", "nan", "mixed"}) {
            EngineConfig config = quiet_engine_config();
            config.threads = threads;
            config.resilience.max_retries = 12;
            config.resilience.backoff_seconds = 0.0005;
            config.chaos.seed = 11;
            if (std::string(mode) == "crash") config.chaos.crash = 0.45;
            if (std::string(mode) == "hang") config.chaos.hang = 0.45;
            if (std::string(mode) == "nan") config.chaos.nan = 0.45;
            if (std::string(mode) == "mixed") {
                config.chaos.crash = 0.2;
                config.chaos.hang = 0.15;
                config.chaos.nan = 0.2;
            }
            // No deadline: an injected in-process hang with timeout == 0
            // falls through to normal evaluation instead of deadlocking.
            const BatchOutcome chaotic = run_engine(config);
            expect_identical_ok(clean, chaotic);
        }
    }
}

TEST(ChaosEngineTest, HangsAreTimedOutAndQuarantined) {
    set_log_level(LogLevel::Error);
    EngineConfig config = quiet_engine_config();
    config.chaos.hang = 1.0;
    config.resilience.timeout_seconds = 0.02;
    config.resilience.max_retries = 1;
    config.resilience.backoff_seconds = 0.001;
    EvaluationEngine engine(config);
    const std::vector<Alpha> points = {{0.2, 0.3}, {0.7, 0.6}};
    const BatchOutcome outcome =
        engine.evaluate_points(points, pure_evaluator(), engine_context());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(outcome.statuses[i], TrialStatus::kFailedTimeout);
        EXPECT_TRUE(std::isnan(outcome.utilities[i]));
    }
    EXPECT_EQ(outcome.best_index, 0U);
    // Quarantined results must never be memoized.
    EXPECT_EQ(engine.cache_entries(), 0U);
}

TEST(ChaosEngineTest, PermanentCrashIsQuarantinedAndUncached) {
    set_log_level(LogLevel::Error);
    EngineConfig config = quiet_engine_config();
    config.chaos.crash = 1.0;
    config.resilience.max_retries = 2;
    config.resilience.backoff_seconds = 0.0005;
    EvaluationEngine engine(config);
    const BatchOutcome outcome = engine.evaluate_points(
        engine_points(), pure_evaluator(), engine_context());
    for (std::size_t i = 0; i < outcome.statuses.size(); ++i) {
        EXPECT_EQ(outcome.statuses[i], TrialStatus::kFailedCrash);
        EXPECT_TRUE(std::isnan(outcome.utilities[i]));
    }
    EXPECT_EQ(engine.cache_entries(), 0U);
}

#ifdef BAYESFT_TEST_POSIX
TEST(ChaosEngineTest, IsolatedEvaluationMatchesInProcessBitwise) {
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_engine_config());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        EngineConfig config = quiet_engine_config();
        config.threads = threads;
        config.resilience.isolate = true;
        EvaluationEngine engine(config);
        const BatchOutcome isolated = engine.evaluate_points(
            engine_points(), pure_evaluator(), engine_context());
        expect_identical_ok(clean, isolated);
        EXPECT_FALSE(engine.isolation_degraded());
    }
}

TEST(ChaosEngineTest, IsolatedCrashChaosRecoversBitIdentical) {
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_engine_config());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        EngineConfig config = quiet_engine_config();
        config.threads = threads;
        config.resilience.isolate = true;
        config.resilience.max_retries = 12;
        config.resilience.backoff_seconds = 0.0005;
        config.chaos.crash = 0.45;
        config.chaos.seed = 23;
        EvaluationEngine engine(config);
        const BatchOutcome chaotic = engine.evaluate_points(
            engine_points(), pure_evaluator(), engine_context());
        expect_identical_ok(clean, chaotic);
        EXPECT_FALSE(engine.isolation_degraded());
    }
}

TEST(ChaosEngineTest, IsolatedHangIsKilledAtTheDeadline) {
    set_log_level(LogLevel::Error);
    EngineConfig config = quiet_engine_config();
    config.resilience.isolate = true;
    config.resilience.timeout_seconds = 0.1;
    config.resilience.max_retries = 0;
    config.chaos.hang = 1.0;
    EvaluationEngine engine(config);
    const std::vector<Alpha> points = {{0.2, 0.3}, {0.7, 0.6}};
    const BatchOutcome outcome =
        engine.evaluate_points(points, pure_evaluator(), engine_context());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(outcome.statuses[i], TrialStatus::kFailedTimeout);
        EXPECT_TRUE(std::isnan(outcome.utilities[i]));
    }
    EXPECT_EQ(engine.cache_entries(), 0U);
}

TEST(ChaosEngineTest, SpawnWatchdogDegradesToInProcess) {
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_engine_config());
    EngineConfig config = quiet_engine_config();
    config.resilience.isolate = true;
    config.chaos.spawn = 1.0;  // every fork "fails"; watchdog must trip
    EvaluationEngine engine(config);
    const BatchOutcome degraded = engine.evaluate_points(
        engine_points(), pure_evaluator(), engine_context());
    expect_identical_ok(clean, degraded);
    EXPECT_TRUE(engine.isolation_degraded());
}
#endif

// ---------------------------------------------------------------------------
// Full-search determinism under chaos: the acceptance contract is that a
// chaos run with retries is bitwise indistinguishable from a failure-free
// run — same trial log, same best point, same final weights.

class ChaosSearchFixture : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(1);
        const data::Dataset full = data::make_blobs(240, 3, 4.0, 0.6, rng);
        Rng split_rng(2);
        auto parts = data::split(full, 0.3, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }

    static models::ModelHandle make_model() {
        Rng rng(5);
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 16;
        options.hidden_layers = 2;
        options.classes = 3;
        return models::make_mlp(options, rng);
    }

    static BayesFTConfig small_config() {
        BayesFTConfig config;
        config.iterations = 3;
        config.epochs_per_iteration = 1;
        config.train.epochs = 1;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.warmup_epochs = 1;
        config.final_epochs = 1;
        return config;
    }

    static models::ArchFamily tiny_family() {
        models::MlpOptions base;
        base.input_features = 2;
        base.hidden = 12;
        base.classes = 3;
        return models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                       /*max_dropout_rate=*/0.5);
    }

    static ArchSearchConfig tiny_arch_config() {
        ArchSearchConfig config;
        config.iterations = 4;
        config.train.epochs = 1;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.bo.initial_random_trials = 2;
        config.bo.candidates = 64;
        config.bo.local_candidates = 16;
        config.final_epochs = 1;
        return config;
    }

    static std::vector<float> weights_of(nn::Module& net) {
        std::vector<float> values;
        for (const nn::Parameter* p : net.parameters()) {
            values.insert(values.end(), p->value.data(),
                          p->value.data() + p->value.size());
        }
        return values;
    }

    static void expect_same_search(const BayesFTResult& clean,
                                   const BayesFTResult& chaotic) {
        ASSERT_EQ(chaotic.trials.size(), clean.trials.size());
        for (std::size_t i = 0; i < clean.trials.size(); ++i) {
            EXPECT_EQ(chaotic.trials[i].x, clean.trials[i].x)
                << "trial " << i;
            EXPECT_EQ(chaotic.trials[i].y, clean.trials[i].y)
                << "trial " << i;
            EXPECT_EQ(chaotic.trials[i].status, TrialStatus::kOk)
                << "trial " << i;
        }
        EXPECT_EQ(chaotic.best_alpha, clean.best_alpha);
        EXPECT_EQ(chaotic.best_utility, clean.best_utility);
    }

    data::Dataset train_;
    data::Dataset test_;
};

#ifdef BAYESFT_TEST_POSIX
TEST_F(ChaosSearchFixture, BayesftSerialSearchBitIdenticalUnderChaos) {
    const BayesFTConfig config = small_config();
    models::ModelHandle clean_model = make_model();
    Rng clean_rng(7);
    const BayesFTResult clean =
        bayesft_search(clean_model, train_, test_, config, clean_rng);
    const std::vector<float> clean_weights = weights_of(*clean_model.net);

    for (const char* spec : {"crash:0.4", "nan:0.4", "crash:0.2,nan:0.2"}) {
        ChaosEnv env(spec, "3");
        BayesFTConfig chaos_config = config;
        chaos_config.resilience.max_retries = 12;
        chaos_config.resilience.backoff_seconds = 0.0005;
        models::ModelHandle model = make_model();
        Rng rng(7);
        const BayesFTResult chaotic =
            bayesft_search(model, train_, test_, chaos_config, rng);
        expect_same_search(clean, chaotic);
        // The q == 1 rollback restored theta and every RNG before each
        // retry, so even the trained weights are bit-identical.
        EXPECT_EQ(weights_of(*model.net), clean_weights) << spec;
    }
}

TEST_F(ChaosSearchFixture, BayesftBatchedSearchChaosInvariantToThreads) {
    BayesFTConfig config = small_config();
    config.batch = 2;
    models::ModelHandle clean_model = make_model();
    Rng clean_rng(11);
    const BayesFTResult clean =
        bayesft_search(clean_model, train_, test_, config, clean_rng);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ChaosEnv env("crash:0.3,nan:0.2", "5");
        BayesFTConfig chaos_config = config;
        chaos_config.eval_threads = threads;
        chaos_config.resilience.max_retries = 12;
        chaos_config.resilience.backoff_seconds = 0.0005;
        models::ModelHandle model = make_model();
        Rng rng(11);
        const BayesFTResult chaotic =
            bayesft_search(model, train_, test_, chaos_config, rng);
        expect_same_search(clean, chaotic);
    }
}

TEST_F(ChaosSearchFixture, AlwaysFailingCandidatesAreQuarantined) {
    // nan:1 fails every attempt of every candidate: retries cannot save
    // them, so each trial must be quarantined with its status recorded —
    // and the search must still run to completion.
    ChaosEnv env("nan:1");
    BayesFTConfig config = small_config();
    config.resilience.max_retries = 1;
    models::ModelHandle model = make_model();
    Rng rng(13);
    const BayesFTResult result =
        bayesft_search(model, train_, test_, config, rng);
    EXPECT_TRUE(result.completed);
    ASSERT_EQ(result.trials.size(), config.iterations);
    for (const auto& trial : result.trials) {
        EXPECT_EQ(trial.status, TrialStatus::kFailedNaN);
        EXPECT_TRUE(std::isfinite(trial.y));  // stored at the fail penalty
    }
    // best() falls back to a quarantined point so a winner can still be
    // installed; the model stays usable.
    EXPECT_EQ(result.best_alpha.size(), model.dropout_sites.size());
    ASSERT_NE(model.net, nullptr);
    Rng probe(17);
    const Tensor logits = model.net->forward(Tensor::randn({4, 2}, probe));
    EXPECT_EQ(logits.dim(1), 3U);
}

TEST_F(ChaosSearchFixture, ArchSearchBitIdenticalUnderChaosAndIsolation) {
    const models::ArchFamily family = tiny_family();
    ArchSearchConfig config = tiny_arch_config();
    config.batch = 2;
    Rng clean_rng(19);
    const ArchSearchResult clean =
        arch_search(family, train_, test_, config, clean_rng);

    auto expect_same = [&](const ArchSearchResult& other,
                           const std::string& label) {
        ASSERT_EQ(other.trials.size(), clean.trials.size()) << label;
        for (std::size_t i = 0; i < clean.trials.size(); ++i) {
            EXPECT_EQ(other.trials[i].x, clean.trials[i].x)
                << label << " trial " << i;
            EXPECT_EQ(other.trials[i].y, clean.trials[i].y)
                << label << " trial " << i;
            EXPECT_EQ(other.trials[i].status, TrialStatus::kOk)
                << label << " trial " << i;
        }
        EXPECT_EQ(other.best_utility, clean.best_utility) << label;
    };

    // In-process chaos, 1 and 4 evaluation threads.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ChaosEnv env("crash:0.35,nan:0.15", "29");
        ArchSearchConfig chaos_config = config;
        chaos_config.eval_threads = threads;
        chaos_config.resilience.max_retries = 12;
        chaos_config.resilience.backoff_seconds = 0.0005;
        Rng rng(19);
        expect_same(arch_search(family, train_, test_, chaos_config, rng),
                    "in-process threads=" + std::to_string(threads));
    }

    // Crash isolation, clean and under crash chaos (candidates are
    // self-contained here, so forked children really carry the trial).
    for (const bool with_chaos : {false, true}) {
        ArchSearchConfig isolated_config = config;
        isolated_config.resilience.isolate = true;
        isolated_config.resilience.max_retries = 12;
        isolated_config.resilience.backoff_seconds = 0.0005;
        if (with_chaos) {
            ChaosEnv env("crash:0.35", "31");
            Rng rng(19);
            expect_same(
                arch_search(family, train_, test_, isolated_config, rng),
                "isolated+chaos");
        } else {
            Rng rng(19);
            expect_same(
                arch_search(family, train_, test_, isolated_config, rng),
                "isolated");
        }
    }

    // Spawn chaos: every fork fails, the watchdog degrades the run back to
    // in-process evaluation, and the results still match bit for bit.
    {
        ChaosEnv env("spawn:1");
        ArchSearchConfig spawn_config = config;
        spawn_config.resilience.isolate = true;
        Rng rng(19);
        expect_same(arch_search(family, train_, test_, spawn_config, rng),
                    "spawn watchdog");
    }
}
#endif

// ---------------------------------------------------------------------------
// Surrogate degradation: a refit the Cholesky jitter cannot rescue must not
// kill the search — the last-good posterior is kept and proposals fall back
// to the random pool until a refit succeeds (docs/robustness.md).

TEST(ChaosSurrogateTest, ImpossibleRefitDegradesGracefully) {
    set_log_level(LogLevel::Error);
    const double nan_value = std::numeric_limits<double>::quiet_NaN();
    bayesopt::BayesOptConfig config;
    config.initial_random_trials = 1;
    bayesopt::BayesOpt bo(
        bayesopt::BoxBounds::uniform(2, 0.0, 1.0),
        std::make_shared<bayesopt::ArdSquaredExponential>(2, 4.0),
        std::make_unique<bayesopt::PosteriorMean>(), config, Rng(37));
    // A NaN coordinate poisons the Gram matrix beyond any jitter level.
    // Under kPenalize the poisoned row reaches the fit, so the refit fails
    // — but observe() must absorb that, flag the surrogate, and keep
    // suggesting feasible points from the random pool.
    EXPECT_NO_THROW(bo.observe({nan_value, 0.5}, 0.5));
    EXPECT_TRUE(bo.surrogate_degraded());
    for (int i = 0; i < 4; ++i) {
        const bayesopt::Point p = bo.suggest();
        ASSERT_EQ(p.size(), 2U);
        for (double v : p) {
            EXPECT_TRUE(v >= 0.0 && v <= 1.0);
        }
        EXPECT_NO_THROW(bo.observe(p, 0.1 * i));
    }
    // The poisoned row stays in the history, so the surrogate remains
    // degraded — yet every observe/suggest above succeeded.
    EXPECT_TRUE(bo.surrogate_degraded());

    // kExclude keeps quarantined rows out of the fit entirely: the same
    // poisoned point, reported as a failed trial, leaves the GP healthy.
    bayesopt::BayesOptConfig exclude_config;
    exclude_config.initial_random_trials = 1;
    exclude_config.fail_policy = FailPolicy::kExclude;
    bayesopt::BayesOpt healthy(
        bayesopt::BoxBounds::uniform(2, 0.0, 1.0),
        std::make_shared<bayesopt::ArdSquaredExponential>(2, 4.0),
        std::make_unique<bayesopt::PosteriorMean>(), exclude_config, Rng(41));
    healthy.observe({nan_value, 0.5}, nan_value);
    EXPECT_EQ(healthy.trials().back().status, TrialStatus::kFailedNaN);
    EXPECT_FALSE(healthy.surrogate_degraded());
    healthy.observe({0.25, 0.75}, -0.5);
    healthy.observe({0.75, 0.25}, -1.5);
    EXPECT_FALSE(healthy.surrogate_degraded());
    EXPECT_TRUE(healthy.surrogate().fitted());
    ASSERT_TRUE(healthy.best().has_value());
    EXPECT_EQ(healthy.best()->status, TrialStatus::kOk);
    EXPECT_EQ(healthy.best()->y, -0.5);
}

}  // namespace
}  // namespace bayesft::core
