// Extensions beyond the paper's minimal pipeline: model serialization,
// Latin-hypercube initial design, GP hyperparameter selection, and the
// per-parameter drift sensitivity analyzer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "bayesopt/design.hpp"
#include "data/toy.hpp"
#include "fault/drift.hpp"
#include "fault/sensitivity.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/residual.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace bayesft {
namespace {

// ------------------------------------------------------------ serialize --

class SerializeFixture : public ::testing::Test {
protected:
    void TearDown() override { std::remove(kPath); }
    static constexpr const char* kPath = "/tmp/bayesft_ckpt_test.bin";

    static std::unique_ptr<nn::Sequential> make_model(std::uint64_t seed) {
        Rng rng(seed);
        auto model = std::make_unique<nn::Sequential>();
        model->emplace<nn::Linear>(4, 8, rng);
        model->emplace<nn::ReLU>();
        model->emplace<nn::Linear>(8, 3, rng);
        return model;
    }
};

TEST_F(SerializeFixture, RoundTripRestoresExactWeights) {
    auto source = make_model(1);
    auto target = make_model(2);  // same structure, different weights
    ASSERT_FALSE(source->parameters()[0]->value.equals(
        target->parameters()[0]->value));

    nn::save_parameters(*source, kPath);
    nn::load_parameters(*target, kPath);
    const auto src_params = source->parameters();
    const auto dst_params = target->parameters();
    for (std::size_t i = 0; i < src_params.size(); ++i) {
        EXPECT_TRUE(dst_params[i]->value.equals(src_params[i]->value));
    }
}

TEST_F(SerializeFixture, RoundTripPreservesPredictions) {
    Rng rng(3);
    auto source = make_model(1);
    auto target = make_model(2);
    const Tensor input = Tensor::randn({5, 4}, rng);
    nn::save_parameters(*source, kPath);
    nn::load_parameters(*target, kPath);
    source->set_training(false);
    target->set_training(false);
    EXPECT_TRUE(source->forward(input).equals(target->forward(input)));
}

TEST_F(SerializeFixture, RoundTripsBatchNormRunningStatistics) {
    // Regression test: running statistics are buffers, not Parameters —
    // v1 checkpoints silently dropped them and eval-mode restores of
    // normalized models were wrong.
    Rng rng(11);
    nn::Sequential source;
    source.emplace<nn::Linear>(4, 6, rng);
    source.emplace<nn::BatchNorm>(6);
    source.set_training(true);
    for (int i = 0; i < 20; ++i) {
        Tensor batch = Tensor::randn({16, 4}, rng);
        batch.add_scalar_(3.0F);  // push running mean away from init
        source.forward(batch);
    }
    nn::save_parameters(source, kPath);

    Rng rng2(12);
    nn::Sequential target;
    target.emplace<nn::Linear>(4, 6, rng2);
    target.emplace<nn::BatchNorm>(6);
    nn::load_parameters(target, kPath);

    const auto src_buffers = source.buffers();
    const auto dst_buffers = target.buffers();
    ASSERT_EQ(src_buffers.size(), 2U);
    ASSERT_EQ(dst_buffers.size(), 2U);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(dst_buffers[i]->equals(*src_buffers[i]));
    }
    // Eval-mode predictions must match exactly.
    source.set_training(false);
    target.set_training(false);
    const Tensor probe = Tensor::randn({3, 4}, rng);
    EXPECT_TRUE(source.forward(probe).equals(target.forward(probe)));
}

TEST_F(SerializeFixture, BuffersRecurseThroughContainers) {
    Rng rng(13);
    auto inner = std::make_unique<nn::Sequential>();
    inner->emplace<nn::Linear>(4, 4, rng);
    inner->emplace<nn::BatchNorm>(4);
    nn::Residual residual(std::move(inner));
    EXPECT_EQ(residual.buffers().size(), 2U);  // mean + var via Residual
}

TEST_F(SerializeFixture, RejectsStructuralMismatch) {
    auto source = make_model(1);
    nn::save_parameters(*source, kPath);
    Rng rng(4);
    nn::Sequential wider;
    wider.emplace<nn::Linear>(4, 16, rng);  // shape mismatch
    wider.emplace<nn::Linear>(16, 3, rng);
    EXPECT_THROW(nn::load_parameters(wider, kPath), std::runtime_error);
    nn::Sequential fewer;
    fewer.emplace<nn::Linear>(4, 8, rng);  // parameter count mismatch
    EXPECT_THROW(nn::load_parameters(fewer, kPath), std::runtime_error);
}

TEST_F(SerializeFixture, RejectsGarbageFile) {
    {
        std::FILE* f = std::fopen(kPath, "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a checkpoint", f);
        std::fclose(f);
    }
    auto model = make_model(1);
    EXPECT_THROW(nn::load_parameters(*model, kPath), std::runtime_error);
    EXPECT_THROW(nn::load_parameters(*model, "/no/such/file.bin"),
                 std::runtime_error);
    EXPECT_THROW(nn::save_parameters(*model, "/no/such/dir/x.bin"),
                 std::runtime_error);
}

// --------------------------------------------------------------- design --

TEST(LatinHypercube, OnePointPerStratumPerDimension) {
    Rng rng(5);
    const auto bounds = bayesopt::BoxBounds::uniform(3, 0.0, 1.0);
    const std::size_t n = 10;
    const auto points = bayesopt::latin_hypercube(n, bounds, rng);
    ASSERT_EQ(points.size(), n);
    for (std::size_t d = 0; d < 3; ++d) {
        std::set<std::size_t> strata;
        for (const auto& p : points) {
            EXPECT_GE(p[d], 0.0);
            EXPECT_LT(p[d], 1.0);
            strata.insert(static_cast<std::size_t>(p[d] * n));
        }
        EXPECT_EQ(strata.size(), n) << "dimension " << d;
    }
}

TEST(LatinHypercube, RespectsNonUnitBounds) {
    Rng rng(6);
    bayesopt::BoxBounds bounds;
    bounds.lower = {-2.0, 10.0};
    bounds.upper = {2.0, 20.0};
    const auto points = bayesopt::latin_hypercube(8, bounds, rng);
    for (const auto& p : points) {
        EXPECT_GE(p[0], -2.0);
        EXPECT_LT(p[0], 2.0);
        EXPECT_GE(p[1], 10.0);
        EXPECT_LT(p[1], 20.0);
    }
    EXPECT_THROW(bayesopt::latin_hypercube(0, bounds, rng),
                 std::invalid_argument);
}

TEST(SelectInverseScale, RecoversSensibleScale) {
    // Data from a smooth sinusoid: a moderate inverse scale should beat
    // wildly small/large extremes.
    std::vector<bayesopt::Point> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 12; ++i) {
        const double x = i / 12.0;
        xs.push_back({x});
        ys.push_back(std::sin(4.0 * x));
    }
    const double chosen = bayesopt::select_inverse_scale(
        xs, ys, {0.001, 1.0, 10.0, 100000.0});
    EXPECT_GE(chosen, 1.0);
    EXPECT_LE(chosen, 10.0);
}

TEST(SelectInverseScale, ValidatesInput) {
    EXPECT_THROW(bayesopt::select_inverse_scale({{0.1}, {0.2}}, {1.0, 2.0},
                                                {}),
                 std::invalid_argument);
    EXPECT_THROW(bayesopt::select_inverse_scale({{0.1}}, {1.0}, {1.0}),
                 std::invalid_argument);
}

// ---------------------------------------------------------- sensitivity --

TEST(Sensitivity, IdentifiesTheFragileParameter) {
    // Train a model, then compare sensitivity of the first-layer weights
    // against the (zero-initialized, tiny) biases: drifting a zero bias
    // multiplicatively is a no-op, so weights must rank strictly worse.
    Rng rng(7);
    const data::Dataset blobs = data::make_blobs(300, 3, 4.0, 0.5, rng);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 16, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(16, 3, rng);
    nn::TrainConfig config;
    config.epochs = 10;
    nn::train_classifier(model, blobs.images, blobs.labels, config, rng);

    const fault::LogNormalDrift drift(1.5);
    auto records = fault::per_parameter_sensitivity(
        model, blobs.images, blobs.labels, drift, 4, rng);
    ASSERT_EQ(records.size(), 4U);  // 2 x (weight, bias)
    for (const auto& record : records) {
        EXPECT_GT(record.clean_accuracy, 0.9);
        EXPECT_LE(record.drifted_accuracy, record.clean_accuracy + 1e-9);
        EXPECT_GT(record.scalar_count, 0U);
    }
    const auto ranked = fault::rank_by_drop(records);
    EXPECT_EQ(ranked.front().name, "weight");  // weights dominate drops
    EXPECT_GE(ranked.front().accuracy_drop(),
              ranked.back().accuracy_drop());
}

TEST(Sensitivity, RestoresWeightsAfterAnalysis) {
    Rng rng(8);
    const data::Dataset blobs = data::make_blobs(100, 2, 3.0, 0.5, rng);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 2, rng);
    const Tensor before = model.parameters()[0]->value;
    fault::per_parameter_sensitivity(model, blobs.images, blobs.labels,
                                     fault::LogNormalDrift(1.0), 3, rng);
    EXPECT_TRUE(model.parameters()[0]->value.equals(before));
}

TEST(Sensitivity, ValidatesSampleCount) {
    Rng rng(9);
    const data::Dataset blobs = data::make_blobs(50, 2, 3.0, 0.5, rng);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 2, rng);
    EXPECT_THROW(
        fault::per_parameter_sensitivity(model, blobs.images, blobs.labels,
                                         fault::LogNormalDrift(1.0), 0, rng),
        std::invalid_argument);
}

TEST(Sensitivity, NormAffineParametersAreAchillesHeel) {
    // The paper's Fig. 2(b) mechanism at parameter granularity: with a
    // batch-normalized model, drifting gamma/beta hurts despite their
    // small scalar count.
    Rng rng(10);
    const data::Dataset blobs = data::make_blobs(300, 3, 2.5, 1.0, rng);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 16, rng);
    model.emplace<nn::BatchNorm>(16);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(16, 3, rng);
    nn::TrainConfig config;
    config.epochs = 12;
    nn::train_classifier(model, blobs.images, blobs.labels, config, rng);

    const auto records = fault::per_parameter_sensitivity(
        model, blobs.images, blobs.labels, fault::LogNormalDrift(2.0), 4,
        rng);
    double gamma_drop = 0.0;
    double beta_drop = 0.0;
    for (const auto& record : records) {
        if (record.name == "gamma") gamma_drop = record.accuracy_drop();
        if (record.name == "beta") beta_drop = record.accuracy_drop();
    }
    // Drifting the 16+16 affine norm scalars must cause measurable drops —
    // tiny tensors, outsized damage (the paper's "Achilles' heel").
    EXPECT_GT(gamma_drop, 0.02);
    EXPECT_GT(beta_drop, 0.05);
}

}  // namespace
}  // namespace bayesft
