// Distributed candidate evaluation (core/distrib.*, docs/distributed.md):
// the coordinator/worker split must be invisible in the results — best
// point, trial history, and trial-log lines bit-identical for every worker
// count, including under injected worker crashes, hangs, and spawn
// failures, and across a checkpoint written at one worker count and
// resumed at another.  Plus the satellite coverage: RunStore::parse_line
// fuzzed as a wire format (truncated lines, non-finite objectives,
// overlong fields, interleaved writers) and the candidate_seed purity
// contract pinned across process boundaries.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "core/archsearch.hpp"
#include "core/engine.hpp"
#include "core/runstore.hpp"
#include "data/toy.hpp"
#include "models/zoo.hpp"
#include "utils/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define BAYESFT_TEST_POSIX 1
#endif

namespace bayesft::core {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
    return (fs::temp_directory_path() / ("bayesft_distrib_" + name))
        .string();
}

// ------------------------------------------------------------------ //
// Satellite: RunStore::parse_line as a wire format.                   //
// ------------------------------------------------------------------ //

RunRecord sample_trial() {
    RunRecord r;
    r.kind = "trial";
    r.scenario = "wire";
    r.family = "toy";
    r.seed = 7;
    r.trial = 3;
    r.point = "alpha0=0.25 alpha1=0.5";
    r.objective = 0.625;
    r.status = "ok";
    return r;
}

RunRecord sample_summary() {
    RunRecord r;
    r.kind = "summary";
    r.scenario = "wire";
    r.family = "toy";
    r.seed = 7;
    r.trials = 5;
    r.best_trial = 3;
    r.best_point = "alpha0=0.25";
    r.best_objective = 0.625;
    r.seconds = 1.5;
    return r;
}

TEST(RunStoreWireFormat, EveryTruncationOfAValidLineIsRejected) {
    // A worker SIGKILLed mid-write (or a torn tail after a power loss)
    // leaves an arbitrary prefix: none of them may parse, however far the
    // cut got — a truncated trial parsed with defaulted fields would
    // poison the aggregation and desynchronize the resume backfill.
    for (const std::string line :
         {RunStore::to_json(sample_trial()),
          RunStore::to_json(sample_summary())}) {
        RunRecord full;
        ASSERT_TRUE(RunStore::parse_line(line, full));
        for (std::size_t cut = 0; cut < line.size(); ++cut) {
            RunRecord r;
            EXPECT_FALSE(RunStore::parse_line(line.substr(0, cut), r))
                << "prefix of length " << cut << " parsed";
        }
        // A suffix lost its '{' — e.g. the head of a line overwritten by
        // a concurrent writer.
        for (const std::size_t cut : {std::size_t{1}, line.size() / 2}) {
            RunRecord r;
            EXPECT_FALSE(RunStore::parse_line(line.substr(cut), r))
                << "suffix from offset " << cut << " parsed";
        }
    }
}

TEST(RunStoreWireFormat, RequiredFieldsCannotDefault) {
    RunRecord r;
    EXPECT_FALSE(RunStore::parse_line("", r));
    EXPECT_FALSE(RunStore::parse_line("{}", r));
    EXPECT_FALSE(RunStore::parse_line("not json at all", r));
    EXPECT_FALSE(RunStore::parse_line("{\"kind\":\"trial\"}", r));
    EXPECT_FALSE(RunStore::parse_line(
        "{\"kind\":\"mystery\",\"scenario\":\"x\",\"seed\":1}", r));
    // A trial without its objective (or a summary without seconds) is an
    // incomplete record, not a defaultable one.
    EXPECT_FALSE(RunStore::parse_line(
        "{\"kind\":\"trial\",\"scenario\":\"x\",\"seed\":1,\"trial\":0,"
        "\"point\":\"-\"}",
        r));
    EXPECT_FALSE(RunStore::parse_line(
        "{\"kind\":\"summary\",\"scenario\":\"x\",\"seed\":1,\"trials\":2}",
        r));
}

TEST(RunStoreWireFormat, NonFiniteObjectivesRoundTrip) {
    // Quarantined trials carry NaN objectives across the worker pipe; the
    // wire format must round-trip them (and the infinities a hostile
    // evaluator could produce), not silently zero them.
    for (const double value : {std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()}) {
        RunRecord r = sample_trial();
        r.objective = value;
        r.status = "failed_nan";
        RunRecord parsed;
        ASSERT_TRUE(RunStore::parse_line(RunStore::to_json(r), parsed));
        if (std::isnan(value)) {
            EXPECT_TRUE(std::isnan(parsed.objective));
        } else {
            EXPECT_EQ(parsed.objective, value);
        }
        EXPECT_EQ(parsed.status, "failed_nan");
    }
}

TEST(RunStoreWireFormat, OverlongFieldsRoundTripAndUnterminatedReject) {
    // A pathological decoded point (a megabyte of text) must survive the
    // round trip unclipped...
    RunRecord r = sample_trial();
    r.point.assign(1 << 20, 'x');
    r.point += " end";
    RunRecord parsed;
    ASSERT_TRUE(RunStore::parse_line(RunStore::to_json(r), parsed));
    EXPECT_EQ(parsed.point, r.point);

    // ...while the same line with the string's closing quote torn off
    // (the writer died inside the value) is rejected, no matter that the
    // line still happens to end in '}'.
    const std::string line = RunStore::to_json(r);
    const std::size_t quote = line.rfind("\",\"objective\"");
    ASSERT_NE(quote, std::string::npos);
    std::string torn = line.substr(0, quote) + "}";
    RunRecord rejected;
    EXPECT_FALSE(RunStore::parse_line(torn, rejected));
}

TEST(RunStoreWireFormat, InterleavedWriterFrankenlinesAreRejected) {
    // Two writers without O_APPEND discipline (or a partial write later
    // "completed" by another record) can weld the head of one record onto
    // a full second record: the result has '{', '}', and plausible fields
    // from both.  The single-"kind" rule must reject it.
    const std::string a = RunStore::to_json(sample_trial());
    const std::string b = RunStore::to_json(sample_summary());
    RunRecord r;
    EXPECT_FALSE(RunStore::parse_line(a.substr(0, a.size() / 2) + b, r));
    EXPECT_FALSE(RunStore::parse_line(a + b, r));
    EXPECT_FALSE(RunStore::parse_line(a.substr(0, 1) + b.substr(1), r) &&
                 r.kind == "trial" && r.trial != sample_summary().trial);
    // An intact line straight after the mess still parses — the store
    // skips garbage lines, it does not give up on the file.
    EXPECT_TRUE(RunStore::parse_line(b, r));
    EXPECT_EQ(r.kind, "summary");
}

// ------------------------------------------------------------------ //
// Satellite: candidate_seed purity across process boundaries.         //
// ------------------------------------------------------------------ //

#ifdef BAYESFT_TEST_POSIX
TEST(CandidateSeedPurity, IdenticalAcrossFork) {
    // The whole distribution scheme rests on candidate_seed being a pure
    // function of (context, point): the coordinator computes it, ships it,
    // and a worker in a different process must agree.  Fork a child,
    // recompute there, and compare the 8 raw bytes.
    EvalContext context;
    context.key = mix_key(0x9E3779B97F4A7C15ULL, std::uint64_t{99});
    context.stamp = 4;
    const Alpha point = {0.125, 0.75, 0.5};
    const std::uint64_t parent_seed = candidate_seed(context, point);

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(fds[0]);
        const std::uint64_t child_seed = candidate_seed(context, point);
        const ssize_t wrote =
            ::write(fds[1], &child_seed, sizeof child_seed);
        ::_exit(wrote == sizeof child_seed ? 0 : 1);
    }
    ::close(fds[1]);
    std::uint64_t child_seed = 0;
    ASSERT_EQ(::read(fds[0], &child_seed, sizeof child_seed),
              static_cast<ssize_t>(sizeof child_seed));
    ::close(fds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_EQ(child_seed, parent_seed);
}
#endif

// Cheap pure evaluator: depends on the point and the candidate stream, so
// any path that failed to replay the exact stream shows up bitwise.
PointEvaluator pure_evaluator() {
    return [](const Alpha& point, Rng& rng) {
        return std::sin(7.0 * point[0]) + 0.25 * point[1] +
               0.01 * rng.uniform();
    };
}

std::vector<Alpha> engine_points() {
    std::vector<Alpha> points = {{0.10, 0.90}, {0.25, 0.40}, {0.50, 0.50},
                                 {0.75, 0.20}, {0.90, 0.10}, {0.33, 0.66}};
    points.push_back(points[2]);  // within-batch duplicate
    return points;
}

EvalContext engine_context() {
    EvalContext context;
    context.key = mix_key(0x9E3779B97F4A7C15ULL, std::uint64_t{23});
    context.stamp = 0;
    return context;
}

EngineConfig quiet_config() {
    EngineConfig config;
    config.chaos = fault::ChaosSpec{};  // never inherit ambient chaos
    return config;
}

/// Formats one outcome as the trial lines a run store would persist, so
/// "byte-identical trial records" is checked literally, not via double
/// comparison alone.
std::vector<std::string> trial_lines(const BatchOutcome& outcome,
                                     const EvalContext& context,
                                     const std::vector<Alpha>& points) {
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < outcome.utilities.size(); ++i) {
        RunRecord r;
        r.kind = "trial";
        r.scenario = "purity";
        r.family = "engine";
        r.seed = candidate_seed(context, points[i]);
        r.trial = i;
        r.point = "-";
        r.objective = outcome.utilities[i];
        r.status = trial_status_name(outcome.statuses[i]);
        lines.push_back(RunStore::to_json(r));
    }
    return lines;
}

TEST(CandidateSeedPurity, TrialRecordsIdenticalInProcessIsolatedAndWorkers) {
    set_log_level(LogLevel::Error);
    const std::vector<Alpha> points = engine_points();
    const EvalContext context = engine_context();

    EvaluationEngine plain(quiet_config());
    const BatchOutcome in_process =
        plain.evaluate_points(points, pure_evaluator(), context);
    const std::vector<std::string> reference =
        trial_lines(in_process, context, points);

#ifdef BAYESFT_TEST_POSIX
    EngineConfig isolated_config = quiet_config();
    isolated_config.resilience.isolate = true;
    EvaluationEngine isolated(isolated_config);
    const BatchOutcome via_isolation =
        isolated.evaluate_points(points, pure_evaluator(), context);
    EXPECT_EQ(trial_lines(via_isolation, context, points), reference);

    EngineConfig worker_config = quiet_config();
    worker_config.workers = 2;
    EvaluationEngine distributed(worker_config);
    const BatchOutcome via_workers =
        distributed.evaluate_points(points, pure_evaluator(), context);
    EXPECT_FALSE(distributed.distribution_degraded());
    EXPECT_EQ(trial_lines(via_workers, context, points), reference);
#endif
}

#ifdef BAYESFT_TEST_POSIX

// ------------------------------------------------------------------ //
// Tentpole: engine-level worker matrix, chaos, and degradation.       //
// ------------------------------------------------------------------ //

BatchOutcome run_engine(EngineConfig config) {
    EvaluationEngine engine(config);
    return engine.evaluate_points(engine_points(), pure_evaluator(),
                                  engine_context());
}

void expect_identical_ok(const BatchOutcome& clean,
                         const BatchOutcome& other) {
    ASSERT_EQ(other.utilities.size(), clean.utilities.size());
    for (std::size_t i = 0; i < clean.utilities.size(); ++i) {
        EXPECT_EQ(other.utilities[i], clean.utilities[i])
            << "candidate " << i << " diverged";
        EXPECT_EQ(other.statuses[i], TrialStatus::kOk)
            << "candidate " << i << " not ok";
    }
    EXPECT_EQ(other.best_index, clean.best_index);
}

TEST(DistribEngine, OutcomeBitIdenticalAcrossWorkerCounts) {
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_config());
    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        EngineConfig config = quiet_config();
        config.workers = workers;
        expect_identical_ok(clean, run_engine(config));
    }
}

TEST(DistribEngine, WorkerCrashChaosRecoversBitIdentical) {
    // Injected whole-worker deaths (the worker aborts mid-evaluation, the
    // coordinator sees EOF, respawns, and re-dispatches): with retry
    // budget the final outcome must be bitwise the clean one at every
    // worker count.
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_config());
    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        EngineConfig config = quiet_config();
        config.workers = workers;
        config.chaos.worker_crash = 0.3;
        config.resilience.max_retries = 8;
        expect_identical_ok(clean, run_engine(config));
    }
}

TEST(DistribEngine, CertainWorkerCrashQuarantinesEveryCandidate) {
    // worker_crash:1 kills the worker on every dispatch: after the retry
    // budget each candidate must be quarantined as failed_crash — and the
    // evaluation must still terminate (respawn per attempt, no livelock).
    set_log_level(LogLevel::Error);
    EngineConfig config = quiet_config();
    config.workers = 2;
    config.chaos.worker_crash = 1.0;
    config.resilience.max_retries = 1;
    const BatchOutcome outcome = run_engine(config);
    for (std::size_t i = 0; i < outcome.statuses.size(); ++i) {
        EXPECT_EQ(outcome.statuses[i], TrialStatus::kFailedCrash)
            << "candidate " << i;
        EXPECT_TRUE(std::isnan(outcome.utilities[i])) << "candidate " << i;
    }
}

TEST(DistribEngine, HungWorkersAreKilledAtTheDeadlineAndRecovered) {
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_config());
    EngineConfig config = quiet_config();
    config.workers = 2;
    config.chaos.hang = 0.3;
    config.resilience.timeout_seconds = 0.25;
    config.resilience.max_retries = 8;
    expect_identical_ok(clean, run_engine(config));
}

TEST(DistribEngine, SpawnWatchdogDegradesToInProcess) {
    // Every spawn fails: the pool must trip its watchdog, finish the batch
    // in-process with identical results, and latch the engine out of the
    // distributed path.
    set_log_level(LogLevel::Error);
    const BatchOutcome clean = run_engine(quiet_config());
    EngineConfig config = quiet_config();
    config.workers = 2;
    config.chaos.spawn = 1.0;
    EvaluationEngine engine(config);
    const BatchOutcome outcome = engine.evaluate_points(
        engine_points(), pure_evaluator(), engine_context());
    expect_identical_ok(clean, outcome);
    EXPECT_TRUE(engine.distribution_degraded());
}

// ------------------------------------------------------------------ //
// Tentpole: full arch_search worker matrix + resume across counts.    //
// ------------------------------------------------------------------ //

class DistribSearchFixture : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_level(LogLevel::Error);
        Rng rng(1);
        const data::Dataset full = data::make_blobs(240, 3, 4.0, 0.6, rng);
        Rng split_rng(2);
        auto parts = data::split(full, 0.3, split_rng);
        train_ = std::move(parts.train);
        test_ = std::move(parts.test);
    }

    static models::ArchFamily tiny_family() {
        models::MlpOptions base;
        base.input_features = 2;
        base.hidden = 12;
        base.classes = 3;
        return models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                       /*max_dropout_rate=*/0.5);
    }

    static ArchSearchConfig tiny_config() {
        ArchSearchConfig config;
        config.iterations = 5;
        config.train.epochs = 1;
        config.objective.sigmas = {0.5};
        config.objective.mc_samples = 1;
        config.bo.initial_random_trials = 2;
        config.bo.candidates = 64;
        config.bo.local_candidates = 16;
        config.final_epochs = 1;
        return config;
    }

    static std::vector<float> weights_of(nn::Module& net) {
        std::vector<float> values;
        for (const nn::Parameter* p : net.parameters()) {
            values.insert(values.end(), p->value.data(),
                          p->value.data() + p->value.size());
        }
        return values;
    }

    ArchSearchResult run_search(ArchSearchConfig config,
                                std::size_t workers) const {
        config.workers = workers;
        Rng rng(7);
        return arch_search(tiny_family(), train_, test_, config, rng);
    }

    static void expect_same_search(const ArchSearchResult& a,
                                   const ArchSearchResult& b,
                                   const std::string& label) {
        ASSERT_EQ(b.trials.size(), a.trials.size()) << label;
        for (std::size_t i = 0; i < a.trials.size(); ++i) {
            EXPECT_EQ(b.trials[i].x, a.trials[i].x) << label << " trial "
                                                    << i;
            EXPECT_EQ(b.trials[i].y, a.trials[i].y) << label << " trial "
                                                    << i;
        }
        EXPECT_EQ(b.best_point.values, a.best_point.values) << label;
        EXPECT_EQ(b.best_utility, a.best_utility) << label;
    }

    data::Dataset train_;
    data::Dataset test_;
};

TEST_F(DistribSearchFixture, SearchBitIdenticalAcrossWorkerCounts) {
    // The acceptance bar: best point, GP trial set, utilities, the decoded
    // description, and the winner's weights all bitwise-equal between the
    // in-process engine path and every distributed worker count.
    const ArchSearchConfig config = tiny_config();
    const ArchSearchResult reference = run_search(config, 0);
    const models::ArchFamily family = tiny_family();
    const std::string reference_desc =
        family.space.describe(reference.best_point);
    const std::vector<float> reference_weights =
        weights_of(*reference.best_model.net);

    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        const ArchSearchResult result = run_search(config, workers);
        expect_same_search(reference, result,
                           "workers=" + std::to_string(workers));
        EXPECT_EQ(family.space.describe(result.best_point), reference_desc);
        EXPECT_EQ(weights_of(*result.best_model.net), reference_weights)
            << "workers=" << workers;
    }
}

TEST_F(DistribSearchFixture, ResumeAcrossWorkerCountsBitIdentical) {
    // A run checkpointed at --workers 4 must resume bit-exactly at
    // --workers 1: the worker count is provenance, not search state, so it
    // is excluded from the checkpoint's scenario digest.
    const ArchSearchResult reference = run_search(tiny_config(), 0);

    const std::string path = temp_path("resume.ckpt");
    fs::remove(path);
    ArchSearchConfig stopped = tiny_config();
    stopped.checkpoint.path = path;
    stopped.checkpoint.stop_after = 2;
    {
        const ArchSearchResult partial = run_search(stopped, 4);
        ASSERT_FALSE(partial.completed);
    }
    ArchSearchConfig resumed_config = tiny_config();
    resumed_config.checkpoint.path = path;
    const ArchSearchResult resumed = run_search(resumed_config, 1);
    EXPECT_TRUE(resumed.completed);
    EXPECT_GE(resumed.resumed_trials, 2U);
    expect_same_search(reference, resumed, "resume w4->w1");
    fs::remove(path);
}

TEST_F(DistribSearchFixture, WorkerCrashTortureSearchBitIdentical) {
    // The chaos x distribution acceptance case: under
    // BAYESFT_CHAOS=worker_crash:0.3 — injected through the same
    // environment door the CI chaos-smoke job uses (arch_search builds its
    // engine with ChaosSpec::from_env()) — the whole search, not just one
    // batch, must complete with every trial recovered and the final best
    // point bitwise the clean run's, at worker counts 1, 2, and 4.
    const ArchSearchResult reference = run_search(tiny_config(), 0);
    ArchSearchConfig config = tiny_config();
    config.resilience.max_retries = 8;
    ::setenv("BAYESFT_CHAOS", "worker_crash:0.3", 1);
    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        const ArchSearchResult result = run_search(config, workers);
        expect_same_search(reference, result,
                           "chaos workers=" + std::to_string(workers));
    }
    ::unsetenv("BAYESFT_CHAOS");
}

#endif  // BAYESFT_TEST_POSIX

}  // namespace
}  // namespace bayesft::core
