// Tests for structured tensor operations: matrix products, im2col/col2im,
// and row-wise reductions.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "utils/rng.hpp"

namespace bayesft {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(a(i, kk)) * b(kk, j);
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

TEST(Ops, MatmulKnownValues) {
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0F);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0F);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0F);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0F);
}

TEST(Ops, MatmulMatchesNaiveOnRandom) {
    Rng rng(1);
    const Tensor a = Tensor::randn({7, 13}, rng);
    const Tensor b = Tensor::randn({13, 5}, rng);
    EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-4F));
}

TEST(Ops, MatmulDimensionMismatchThrows) {
    Tensor a({2, 3});
    Tensor b({4, 2});
    EXPECT_THROW(matmul(a, b), std::invalid_argument);
    EXPECT_THROW(matmul(a, Tensor({3})), std::invalid_argument);
}

TEST(Ops, MatmulTnEqualsExplicitTranspose) {
    Rng rng(2);
    const Tensor a = Tensor::randn({6, 4}, rng);
    const Tensor b = Tensor::randn({6, 5}, rng);
    EXPECT_TRUE(matmul_tn(a, b).allclose(matmul(transpose(a), b), 1e-4F));
}

TEST(Ops, MatmulNtEqualsExplicitTranspose) {
    Rng rng(3);
    const Tensor a = Tensor::randn({6, 4}, rng);
    const Tensor b = Tensor::randn({5, 4}, rng);
    EXPECT_TRUE(matmul_nt(a, b).allclose(matmul(a, transpose(b)), 1e-4F));
}

TEST(Ops, TransposeInvolution) {
    Rng rng(4);
    const Tensor a = Tensor::randn({3, 7}, rng);
    EXPECT_TRUE(transpose(transpose(a)).equals(a));
}

TEST(Ops, ConvGeometryOutputSize) {
    ConvGeometry g{3, 16, 16, 3, 3, 1, 1};
    EXPECT_EQ(g.out_h(), 16U);
    EXPECT_EQ(g.out_w(), 16U);
    ConvGeometry strided{3, 16, 16, 3, 3, 2, 1};
    EXPECT_EQ(strided.out_h(), 8U);
    ConvGeometry invalid{3, 2, 2, 5, 5, 1, 0};
    EXPECT_THROW(invalid.validate(), std::invalid_argument);
}

TEST(Ops, Im2ColIdentityKernel) {
    // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
    Rng rng(5);
    const Tensor img = Tensor::randn({2, 4, 4}, rng);
    ConvGeometry g{2, 4, 4, 1, 1, 1, 0};
    Tensor cols({2, 16});
    im2col(img.data(), g, cols.data());
    for (std::size_t i = 0; i < img.size(); ++i) {
        EXPECT_FLOAT_EQ(cols[i], img[i]);
    }
}

TEST(Ops, Im2ColPaddingReadsZero) {
    const Tensor img = Tensor::ones({1, 2, 2});
    ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
    Tensor cols({9, 4});
    im2col(img.data(), g, cols.data());
    // Top-left output position, top-left kernel cell reads the padding.
    EXPECT_FLOAT_EQ(cols(0, 0), 0.0F);
    // Center kernel cell reads the image.
    EXPECT_FLOAT_EQ(cols(4, 0), 1.0F);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
    // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining adjoint
    // property that makes the convolution backward pass correct.
    Rng rng(6);
    ConvGeometry g{3, 6, 5, 3, 2, 2, 1};
    const std::size_t rows = g.channels * g.kernel_h * g.kernel_w;
    const std::size_t cols_n = g.out_h() * g.out_w();
    const Tensor x = Tensor::randn({g.channels, g.in_h, g.in_w}, rng);
    const Tensor y = Tensor::randn({rows, cols_n}, rng);

    Tensor unfolded({rows, cols_n});
    im2col(x.data(), g, unfolded.data());
    Tensor folded({g.channels, g.in_h, g.in_w});
    col2im(y.data(), g, folded.data());

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < unfolded.size(); ++i) {
        lhs += static_cast<double>(unfolded[i]) * y[i];
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
        rhs += static_cast<double>(x[i]) * folded[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, ArgmaxRows) {
    Tensor t({2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
    const auto idx = argmax_rows(t);
    EXPECT_EQ(idx[0], 1U);
    EXPECT_EQ(idx[1], 0U);
}

TEST(Ops, SoftmaxRowsSumToOne) {
    Rng rng(7);
    const Tensor logits = Tensor::randn({5, 8}, rng, 3.0F);
    const Tensor probs = softmax_rows(logits);
    for (std::size_t i = 0; i < 5; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_GE(probs(i, j), 0.0F);
            row_sum += probs(i, j);
        }
        EXPECT_NEAR(row_sum, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxShiftInvariance) {
    Tensor a({1, 3}, std::vector<float>{1, 2, 3});
    Tensor b({1, 3}, std::vector<float>{101, 102, 103});
    EXPECT_TRUE(softmax_rows(a).allclose(softmax_rows(b), 1e-5F));
}

TEST(Ops, SoftmaxHandlesLargeLogitsWithoutOverflow) {
    Tensor t({1, 2}, std::vector<float>{1000.0F, 999.0F});
    const Tensor p = softmax_rows(t);
    EXPECT_TRUE(std::isfinite(p(0, 0)));
    EXPECT_GT(p(0, 0), p(0, 1));
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
    Rng rng(8);
    const Tensor logits = Tensor::randn({3, 4}, rng);
    const Tensor log_probs = log_softmax_rows(logits);
    const Tensor probs = softmax_rows(logits);
    for (std::size_t i = 0; i < log_probs.size(); ++i) {
        EXPECT_NEAR(std::exp(log_probs[i]), probs[i], 1e-5);
    }
}

TEST(Ops, AccuracyComputation) {
    Tensor logits({3, 2}, std::vector<float>{0.9F, 0.1F,  // -> 0
                                             0.2F, 0.8F,  // -> 1
                                             0.6F, 0.4F});  // -> 0
    EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
    EXPECT_THROW(accuracy(logits, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace bayesft
