#!/usr/bin/env bash
# docs-check: fail on dead relative links in README.md, docs/*.md, and the
# generated docs/results/*.md tree (when a `report` run has produced it).
# Plain grep/sed only — no external dependencies.  A link is checked when
# it is a markdown inline link [text](target) whose target is neither an
# absolute URL (scheme:) nor a pure in-page anchor (#...); anchors on
# relative targets are stripped before the existence check.
set -u
cd "$(dirname "$0")/.."

fail=0
for file in README.md docs/*.md docs/results/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Extract every ](...) target, one per line.
    grep -o '](.[^)]*)' "$file" | sed 's/^](//; s/)$//' |
        while IFS= read -r link; do
            case "$link" in
                *://*|mailto:*|\#*) continue ;;
            esac
            target=${link%%#*}
            [ -n "$target" ] || continue
            if [ ! -e "$dir/$target" ]; then
                echo "dead link in $file: $link"
            fi
        done > /tmp/docs_check_$$.out
    if [ -s /tmp/docs_check_$$.out ]; then
        cat /tmp/docs_check_$$.out
        fail=1
    fi
    rm -f /tmp/docs_check_$$.out
done

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED"
    exit 1
fi
echo "docs-check: all relative links in README.md, docs/, and docs/results/ resolve"
