// Fig. 3(a) reproduction: MLP on MNIST substitute, all five methods vs drift sigma.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3a_mlp_mnist") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3aMlpMnist(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3a_mlp_mnist",
            "Fig. 3(a): MLP on synthetic digits (MNIST substitute)");
    }
}
BENCHMARK(BM_Fig3aMlpMnist)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
