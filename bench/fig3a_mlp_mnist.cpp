// Fig. 3(a) reproduction: MLP on MNIST (synthetic digits substitute),
// all five methods vs drift sigma.
// Expected shape: BayesFT dominates all baselines for sigma >= 0.3; FTNA
// gives a small boost over ERM; ReRAM-V generalizes poorly to fresh drift.

#include "data/digits.hpp"
#include "fig3_common.hpp"
#include "models/zoo.hpp"

namespace {

using namespace bayesft;

void BM_Fig3aMlpMnist(benchmark::State& state) {
    Rng data_rng(31);
    data::DigitConfig digit_config;
    digit_config.samples = bayesft::bench::default_sample_count(1200);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(32);
    const auto parts = data::split(full, 0.25, split_rng);

    const core::ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        models::MlpOptions options;
        options.input_features = 256;
        options.hidden = 64;
        options.hidden_layers = 2;
        options.classes = outputs;
        return models::make_mlp(options, rng);
    };
    for (auto _ : state) {
        bayesft::bench::run_fig3_panel(
            state, "Fig. 3(a): MLP on synthetic digits (MNIST substitute)",
            "fig3a_mlp_mnist.csv", factory, parts.train, parts.test, 10,
            bayesft::bench::default_experiment_config());
    }
}
BENCHMARK(BM_Fig3aMlpMnist)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
