#pragma once
// Thin google-benchmark adapter over the core ExperimentRegistry: every
// figure bench binary is now a named registry lookup — the scenario
// definition (data seeds, model factory, method set, config) lives in
// src/core/registry.cpp and is shared with the `experiments` CLI driver.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/registry.hpp"

namespace bayesft::bench {

/// Runs one registered experiment and reports table + CSV + counters.
/// `counter_prefix` disambiguates counters when one binary runs several
/// panels (e.g. the fig3 f/g/h depth sweep).
inline void run_registry_panel(benchmark::State& state,
                               const std::string& name,
                               const std::string& title,
                               const std::string& counter_prefix = "") {
    core::RunOptions options;
    options.quick = quick_mode();
    const core::RegistryResult result =
        core::ExperimentRegistry::instance().run(name, options);
    const bool percent = result.x_label == "sigma";
    const double scale = percent ? 100.0 : 1.0;
    const ResultTable table = result.to_table(title, scale);
    std::cout << "\n" << table << std::endl;
    if (!result.bayesft_alpha.empty()) {
        std::cout << "BayesFT best alpha:";
        for (double a : result.bayesft_alpha) {
            std::cout << ' ' << format_double(a, 3);
        }
        std::cout << "\n" << std::endl;
    }
    table.save_csv(name + ".csv");
    const std::string x_prefix = percent ? "@s" : "@x";
    for (const core::NamedCurve& curve : result.curves) {
        for (std::size_t i = 0; i < result.xs.size(); ++i) {
            state.counters[counter_prefix + curve.label + x_prefix +
                           format_double(result.xs[i], 1)] =
                curve.values[i] * scale;
        }
    }
}

}  // namespace bayesft::bench
