// Load generator for the evaluation server (docs/serving.md): spawns K
// concurrent clients hammering one server with eval requests and emits
// p50/p99 latency, jobs/sec, and cache-hit-rate per K into
// BENCH_serve.json — the perf trajectory of the serving story.  Also
// hosts the byte-diff verifier (--verify: sampled served responses must
// equal direct in-process evaluation) and the cold-vs-hit cache
// micro-bench that demonstrates a cross-client memo hit is cheaper than
// a cold evaluation.
//
// Usage:
//   serve_load --socket /tmp/bayesft.sock --clients 1,2,4,8 --jobs 200 \
//              --json BENCH_serve.json --verify 16 [--quick] [--shutdown]

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/targets.hpp"
#include "utils/rng.hpp"

namespace {

using namespace bayesft;
using Clock = std::chrono::steady_clock;

struct Options {
    std::string socket_path;
    int tcp_port = 0;
    std::vector<std::size_t> clients = {1, 2, 4, 8};
    std::size_t jobs = 200;
    double repeat_frac = 0.5;
    std::string target = "quadratic";
    std::string variant;  ///< default: the target's first variant
    std::string mode = "float32";
    std::string json_path;
    std::size_t verify = 0;
    std::string cache_target = "toy_mlp";
    std::size_t cache_points = 6;
    bool quick = false;
    bool shutdown = false;
};

void print_usage() {
    std::cout <<
        "usage: serve_load [options]\n"
        "  --socket <path>    connect to this Unix-domain socket\n"
        "  --tcp <port>       connect to 127.0.0.1:<port> instead\n"
        "  --clients <list>   comma-separated client counts (default "
        "1,2,4,8)\n"
        "  --jobs <n>         eval requests per client per round "
        "(default 200)\n"
        "  --repeat-frac <f>  fraction of requests drawn from a shared\n"
        "                     hot pool, driving cross-client cache hits\n"
        "                     (default 0.5)\n"
        "  --target <name>    served target to load (default quadratic)\n"
        "  --variant <name>   fault variant (default: first)\n"
        "  --mode <m>         inference mode: float32|int8|int12\n"
        "  --json <path>      write BENCH_serve.json records\n"
        "  --verify <n>       byte-diff n served responses against direct\n"
        "                     in-process evaluation; exit 1 on mismatch\n"
        "  --cache-target <t> target for the cold-vs-hit micro-bench\n"
        "                     (default toy_mlp; 'none' skips it)\n"
        "  --quick            match a server started with --quick\n"
        "  --shutdown         send the shutdown verb when done\n";
}

serve::ServeClient connect(const Options& options) {
    if (!options.socket_path.empty()) {
        return serve::ServeClient::connect_unix(options.socket_path);
    }
    return serve::ServeClient::connect_tcp(options.tcp_port);
}

serve::ServeStats fetch_stats(const Options& options) {
    serve::ServeClient client = connect(options);
    serve::ServeStats stats;
    const std::string line = client.request("stats");
    if (!serve::parse_stats(line, stats)) {
        throw std::runtime_error("serve_load: bad stats response: " + line);
    }
    return stats;
}

const serve::ServeTarget* pick_target(
    const std::vector<serve::ServeTarget>& targets,
    const std::string& name) {
    for (const serve::ServeTarget& target : targets) {
        if (target.name == name) return &target;
    }
    return nullptr;
}

const serve::FaultVariant* pick_variant(const serve::ServeTarget& target,
                                        const std::string& name) {
    if (name.empty()) {
        return target.variants.empty() ? nullptr : &target.variants.front();
    }
    for (const serve::FaultVariant& variant : target.variants) {
        if (variant.name == name) return &variant;
    }
    return nullptr;
}

double percentile(std::vector<double> sorted_values, double p) {
    if (sorted_values.empty()) return 0.0;
    const double rank =
        p * static_cast<double>(sorted_values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi =
        std::min(lo + 1, sorted_values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

struct RoundResult {
    std::size_t clients = 0;
    std::size_t jobs = 0;  ///< total round-trips across all clients
    double p50_us = 0.0;
    double p99_us = 0.0;
    double jobs_per_sec = 0.0;
    double cache_hit_rate = 0.0;
    std::uint64_t busy = 0;
    std::uint64_t errors = 0;
};

/// One load round: K clients, each running `jobs` request/response round
/// trips over its own connection against deterministic point streams
/// (a shared hot pool drives cross-client cache hits).
RoundResult run_round(const Options& options,
                      const serve::ServeTarget& target,
                      const serve::FaultVariant& variant,
                      nn::InferenceMode mode, std::size_t k) {
    // The hot pool is identical across rounds and clients: every client
    // re-requests these points, so K > 1 rounds observe cross-client
    // cache traffic and later rounds hit the cache warmed by earlier
    // ones.
    Rng pool_rng(42);
    std::vector<core::Alpha> hot_pool;
    for (std::size_t i = 0; i < 16; ++i) {
        hot_pool.push_back(target.bounds.sample(pool_rng));
    }

    const serve::ServeStats before = fetch_stats(options);
    std::vector<std::vector<double>> latencies(k);
    std::vector<std::uint64_t> busy_counts(k, 0);
    std::vector<std::uint64_t> error_counts(k, 0);
    std::vector<std::thread> threads;
    const auto round_start = Clock::now();
    for (std::size_t c = 0; c < k; ++c) {
        threads.emplace_back([&, c] {
            serve::ServeClient client = connect(options);
            Rng rng(1000003 * (k + 1) + 97 * c + 1);
            serve::EvalRequest request;
            request.target = target.digest;
            request.fault = variant.digest;
            request.inference = mode;
            for (std::size_t j = 0; j < options.jobs; ++j) {
                if (rng.uniform() < options.repeat_frac) {
                    request.point =
                        hot_pool[rng.uniform_int(hot_pool.size())];
                } else {
                    request.point = target.bounds.sample(rng);
                }
                const auto start = Clock::now();
                const std::string response = client.eval(request);
                const auto stop = Clock::now();
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(stop - start)
                        .count());
                if (response == serve::kBusyResponse) {
                    ++busy_counts[c];
                } else if (response.rfind("error", 0) == 0) {
                    ++error_counts[c];
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - round_start).count();
    const serve::ServeStats after = fetch_stats(options);

    RoundResult result;
    result.clients = k;
    std::vector<double> all;
    for (const auto& per_client : latencies) {
        all.insert(all.end(), per_client.begin(), per_client.end());
    }
    result.jobs = all.size();
    std::sort(all.begin(), all.end());
    result.p50_us = percentile(all, 0.50);
    result.p99_us = percentile(all, 0.99);
    result.jobs_per_sec =
        seconds > 0.0 ? static_cast<double>(all.size()) / seconds : 0.0;
    const std::uint64_t completed_delta = after.completed - before.completed;
    const std::uint64_t hits_delta = after.cache_hits - before.cache_hits;
    result.cache_hit_rate =
        completed_delta > 0
            ? static_cast<double>(hits_delta) /
                  static_cast<double>(completed_delta)
            : 0.0;
    for (std::size_t c = 0; c < k; ++c) {
        result.busy += busy_counts[c];
        result.errors += error_counts[c];
    }
    return result;
}

/// Byte-diffs `count` served responses against direct in-process
/// evaluation (targets.hpp reference_responses).  Returns mismatches.
std::size_t run_verify(const Options& options,
                       const serve::ServeTarget& target,
                       const serve::FaultVariant& variant,
                       nn::InferenceMode mode, std::size_t count) {
    Rng rng(7);
    std::vector<core::Alpha> points;
    std::vector<std::uint64_t> trials;
    for (std::size_t i = 0; i < count; ++i) {
        points.push_back(target.bounds.sample(rng));
        trials.push_back(i);  // a fresh connection's eval indices
    }
    const std::vector<std::string> expected = serve::reference_responses(
        target, variant, mode, points, trials);
    serve::ServeClient client = connect(options);
    std::size_t mismatches = 0;
    serve::EvalRequest request;
    request.target = target.digest;
    request.fault = variant.digest;
    request.inference = mode;
    for (std::size_t i = 0; i < count; ++i) {
        request.point = points[i];
        const std::string served = client.eval(request, 120.0);
        if (served != expected[i]) {
            ++mismatches;
            std::cerr << "serve_load: verify mismatch at point " << i
                      << "\n  served:   " << served
                      << "\n  expected: " << expected[i] << "\n";
        }
    }
    return mismatches;
}

struct CacheBench {
    std::string target;
    double cold_us = 0.0;
    double hit_us = 0.0;
};

/// Cold-vs-hit latency: client A evaluates fresh points (cold — the
/// engine trains/evaluates), then client B re-requests the same points
/// (cross-client cache hits).  The gap is the cache's value.
CacheBench run_cache_bench(const Options& options,
                           const serve::ServeTarget& target,
                           const serve::FaultVariant& variant,
                           nn::InferenceMode mode, std::size_t count) {
    Rng rng(1234567);
    std::vector<core::Alpha> points;
    for (std::size_t i = 0; i < count; ++i) {
        points.push_back(target.bounds.sample(rng));
    }
    serve::EvalRequest request;
    request.target = target.digest;
    request.fault = variant.digest;
    request.inference = mode;
    CacheBench bench;
    bench.target = target.name;
    {
        serve::ServeClient cold = connect(options);
        const auto start = Clock::now();
        for (const core::Alpha& point : points) {
            request.point = point;
            (void)cold.eval(request, 120.0);
        }
        bench.cold_us =
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count() /
            static_cast<double>(count);
    }
    {
        serve::ServeClient hot = connect(options);
        const auto start = Clock::now();
        for (const core::Alpha& point : points) {
            request.point = point;
            (void)hot.eval(request, 120.0);
        }
        bench.hit_us =
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count() /
            static_cast<double>(count);
    }
    return bench;
}

std::vector<std::size_t> parse_client_list(const std::string& text) {
    std::vector<std::size_t> counts;
    std::stringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        const long long value = std::atoll(item.c_str());
        if (value > 0) counts.push_back(static_cast<std::size_t>(value));
    }
    return counts;
}

}  // namespace

int main(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "serve_load: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socket_path = next("--socket");
        } else if (arg == "--tcp") {
            options.tcp_port = std::atoi(next("--tcp").c_str());
        } else if (arg == "--clients") {
            options.clients = parse_client_list(next("--clients"));
        } else if (arg == "--jobs") {
            options.jobs = static_cast<std::size_t>(
                std::atoll(next("--jobs").c_str()));
        } else if (arg == "--repeat-frac") {
            options.repeat_frac = std::atof(next("--repeat-frac").c_str());
        } else if (arg == "--target") {
            options.target = next("--target");
        } else if (arg == "--variant") {
            options.variant = next("--variant");
        } else if (arg == "--mode") {
            options.mode = next("--mode");
        } else if (arg == "--json") {
            options.json_path = next("--json");
        } else if (arg == "--verify") {
            options.verify = static_cast<std::size_t>(
                std::atoll(next("--verify").c_str()));
        } else if (arg == "--cache-target") {
            options.cache_target = next("--cache-target");
        } else if (arg == "--cache-points") {
            options.cache_points = static_cast<std::size_t>(
                std::atoll(next("--cache-points").c_str()));
        } else if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--shutdown") {
            options.shutdown = true;
        } else if (arg == "--help" || arg == "-h") {
            print_usage();
            return 0;
        } else {
            std::cerr << "serve_load: unknown option '" << arg << "'\n";
            print_usage();
            return 2;
        }
    }
    if (options.socket_path.empty() && options.tcp_port == 0) {
        std::cerr << "serve_load: --socket or --tcp is required\n";
        return 2;
    }

    const std::vector<serve::ServeTarget> targets =
        serve::builtin_targets(options.quick);
    const serve::ServeTarget* target =
        pick_target(targets, options.target);
    if (target == nullptr) {
        std::cerr << "serve_load: unknown target '" << options.target
                  << "'\n";
        return 2;
    }
    const serve::FaultVariant* variant =
        pick_variant(*target, options.variant);
    if (variant == nullptr) {
        std::cerr << "serve_load: unknown variant '" << options.variant
                  << "'\n";
        return 2;
    }
    nn::InferenceMode mode;
    try {
        mode = nn::parse_inference_mode(options.mode);
    } catch (const std::exception&) {
        std::cerr << "serve_load: bad --mode '" << options.mode << "'\n";
        return 2;
    }

    int exit_code = 0;
    std::vector<RoundResult> rounds;
    CacheBench cache_bench;
    std::size_t verified = 0, mismatches = 0;
    try {
        for (const std::size_t k : options.clients) {
            const RoundResult round =
                run_round(options, *target, *variant, mode, k);
            std::cout << "clients=" << round.clients
                      << " jobs=" << round.jobs << " p50=" << round.p50_us
                      << "us p99=" << round.p99_us
                      << "us jobs/sec=" << round.jobs_per_sec
                      << " hit-rate=" << round.cache_hit_rate
                      << " busy=" << round.busy
                      << " errors=" << round.errors << "\n";
            rounds.push_back(round);
        }
        if (options.cache_target != "none") {
            const serve::ServeTarget* cache_target =
                pick_target(targets, options.cache_target);
            if (cache_target != nullptr &&
                !cache_target->variants.empty()) {
                cache_bench = run_cache_bench(
                    options, *cache_target,
                    cache_target->variants.front(),
                    nn::InferenceMode::kFloat32, options.cache_points);
                std::cout << "cache " << cache_bench.target
                          << ": cold=" << cache_bench.cold_us
                          << "us hit=" << cache_bench.hit_us
                          << "us speedup="
                          << (cache_bench.hit_us > 0.0
                                  ? cache_bench.cold_us / cache_bench.hit_us
                                  : 0.0)
                          << "x\n";
            }
        }
        if (options.verify > 0) {
            verified = options.verify;
            mismatches = run_verify(options, *target, *variant, mode,
                                    options.verify);
            std::cout << "verify: " << (verified - mismatches) << "/"
                      << verified << " responses byte-identical to "
                      << "in-process evaluation\n";
            if (mismatches > 0) exit_code = 1;
        }
        if (options.shutdown) {
            serve::ServeClient client = connect(options);
            (void)client.request("shutdown");
        }
    } catch (const std::exception& error) {
        std::cerr << "serve_load: " << error.what() << "\n";
        return 1;
    }

    if (!options.json_path.empty()) {
        std::ofstream out(options.json_path);
        if (!out) {
            std::cerr << "serve_load: cannot write " << options.json_path
                      << "\n";
            return 1;
        }
        out << "[\n";
        bool first = true;
        const auto sep = [&]() -> const char* {
            if (first) {
                first = false;
                return "  ";
            }
            return ",\n  ";
        };
        for (const RoundResult& r : rounds) {
            out << sep() << "{\"bench\": \"serve_load\", \"target\": \""
                << target->name << "\", \"variant\": \"" << variant->name
                << "\", \"mode\": \"" << options.mode
                << "\", \"clients\": " << r.clients
                << ", \"jobs\": " << r.jobs << ", \"p50_us\": " << r.p50_us
                << ", \"p99_us\": " << r.p99_us
                << ", \"jobs_per_sec\": " << r.jobs_per_sec
                << ", \"cache_hit_rate\": " << r.cache_hit_rate
                << ", \"busy\": " << r.busy
                << ", \"errors\": " << r.errors << "}";
        }
        if (!cache_bench.target.empty()) {
            out << sep() << "{\"bench\": \"serve_cache\", \"target\": \""
                << cache_bench.target
                << "\", \"cold_us\": " << cache_bench.cold_us
                << ", \"hit_us\": " << cache_bench.hit_us
                << ", \"speedup\": "
                << (cache_bench.hit_us > 0.0
                        ? cache_bench.cold_us / cache_bench.hit_us
                        : 0.0)
                << "}";
        }
        if (verified > 0) {
            out << sep() << "{\"bench\": \"serve_verify\", \"checked\": "
                << verified << ", \"mismatches\": " << mismatches << "}";
        }
        out << "\n]\n";
    }
    return exit_code;
}
