// Fig. 2(d) reproduction: activation-function ablation for drift robustness.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig2d_activation") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig2dActivation(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig2d_activation",
            "Fig. 2(d): activation functions (MLP, synthetic digits)");
    }
}
BENCHMARK(BM_Fig2dActivation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
