// Fig. 2(d) reproduction: activation-function ablation for drift robustness.
// Expected shape (paper): no statistically meaningful differences between
// ReLU, ELU, GELU and Leaky ReLU.

#include "fig2_common.hpp"

namespace {

using namespace bayesft;
using bayesft::bench::Variant;

Variant act_variant(const std::string& name, const std::string& activation) {
    return {name, [activation](Rng& rng) {
                models::MlpOptions o;
                o.input_features = 256;
                o.hidden = 64;
                o.hidden_layers = 2;
                o.dropout = models::DropoutKind::kNone;
                o.activation = activation;
                return models::make_mlp(o, rng);
            }};
}

void BM_Fig2dActivation(benchmark::State& state) {
    const std::vector<Variant> variants{
        act_variant("ReLU", "relu"),
        act_variant("ELU", "elu"),
        act_variant("GELU", "gelu"),
        act_variant("LeakyReLU", "leaky_relu"),
    };
    for (auto _ : state) {
        bayesft::bench::run_ablation(
            state, "Fig. 2(d): activation functions (MLP, synthetic digits)",
            "fig2d_activation.csv", variants);
    }
}
BENCHMARK(BM_Fig2dActivation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
