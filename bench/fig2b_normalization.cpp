// Fig. 2(b) reproduction: normalization ablation for drift robustness.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig2b_normalization") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig2bNormalization(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig2b_normalization",
            "Fig. 2(b): normalization ablation (MLP, synthetic digits)");
    }
}
BENCHMARK(BM_Fig2bNormalization)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
