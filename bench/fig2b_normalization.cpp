// Fig. 2(b) reproduction: normalization ablation for drift robustness.
// Expected shape (paper): adding any normalization generally worsens
// robustness relative to no normalization ("Achilles' heel" effect on the
// drifting affine parameters).

#include "fig2_common.hpp"

namespace {

using namespace bayesft;
using bayesft::bench::Variant;

Variant norm_variant(const std::string& name, models::NormKind norm) {
    return {name, [norm](Rng& rng) {
                models::MlpOptions o;
                o.input_features = 256;
                o.hidden = 64;
                o.hidden_layers = 2;
                o.dropout = models::DropoutKind::kNone;
                o.norm = norm;
                return models::make_mlp(o, rng);
            }};
}

void BM_Fig2bNormalization(benchmark::State& state) {
    const std::vector<Variant> variants{
        norm_variant("WithoutNorm", models::NormKind::kNone),
        norm_variant("InstanceNorm", models::NormKind::kInstance),
        norm_variant("BatchNorm", models::NormKind::kBatch),
        norm_variant("GroupNorm", models::NormKind::kGroup),
        norm_variant("LayerNorm", models::NormKind::kLayer),
    };
    for (auto _ : state) {
        bayesft::bench::run_ablation(
            state, "Fig. 2(b): normalization ablation (MLP, synthetic digits)",
            "fig2b_normalization.csv", variants);
    }
}
BENCHMARK(BM_Fig2bNormalization)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
