// Micro-benchmarks of the numeric substrates: matmul, conv forward/backward,
// GP fit/posterior scaling, drift injection throughput.  These are classic
// google-benchmark timing loops (no figure attached) used to track the
// performance of the kernels everything else is built on.

#include <benchmark/benchmark.h>

#include <memory>

#include "bayesopt/gp.hpp"
#include "fault/drift.hpp"
#include "nn/conv.hpp"
#include "tensor/ops.hpp"
#include "utils/rng.hpp"

namespace {

using namespace bayesft;

void BM_Matmul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matmul(a, b));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_MatmulTransposedVariants(benchmark::State& state) {
    Rng rng(2);
    const Tensor a = Tensor::randn({64, 64}, rng);
    const Tensor b = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matmul_tn(a, b));
        benchmark::DoNotOptimize(matmul_nt(a, b));
    }
}
BENCHMARK(BM_MatmulTransposedVariants);

void BM_ConvForward(benchmark::State& state) {
    const auto channels = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    nn::Conv2d conv(channels, channels * 2, 3, 1, 1, rng);
    const Tensor input = Tensor::randn({8, channels, 16, 16}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.forward(input));
    }
}
BENCHMARK(BM_ConvForward)->Arg(4)->Arg(16);

void BM_ConvBackward(benchmark::State& state) {
    Rng rng(4);
    nn::Conv2d conv(8, 16, 3, 1, 1, rng);
    const Tensor input = Tensor::randn({8, 8, 16, 16}, rng);
    const Tensor out = conv.forward(input);
    const Tensor grad = Tensor::randn(out.shape(), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.backward(grad));
    }
}
BENCHMARK(BM_ConvBackward);

void BM_Im2Col(benchmark::State& state) {
    Rng rng(5);
    const Tensor image = Tensor::randn({16, 32, 32}, rng);
    ConvGeometry g{16, 32, 32, 3, 3, 1, 1};
    Tensor cols({16 * 9, g.out_h() * g.out_w()});
    for (auto _ : state) {
        im2col(image.data(), g, cols.data());
        benchmark::DoNotOptimize(cols.data());
    }
}
BENCHMARK(BM_Im2Col);

void BM_GpFit(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    std::vector<bayesopt::Point> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal());
    }
    bayesopt::GaussianProcess gp(
        std::make_shared<bayesopt::ArdSquaredExponential>(3, 4.0), 1e-4);
    for (auto _ : state) {
        gp.fit(xs, ys);
        benchmark::DoNotOptimize(gp.observation_count());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpFit)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_GpPosterior(benchmark::State& state) {
    Rng rng(7);
    std::vector<bayesopt::Point> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < 64; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal());
    }
    bayesopt::GaussianProcess gp(
        std::make_shared<bayesopt::ArdSquaredExponential>(3, 4.0), 1e-4);
    gp.fit(xs, ys);
    const bayesopt::Point query{0.5, 0.5, 0.5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(gp.posterior(query));
    }
}
BENCHMARK(BM_GpPosterior);

void BM_DriftInjection(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(8);
    std::vector<float> weights(n, 1.0F);
    const fault::LogNormalDrift drift(0.5);
    for (auto _ : state) {
        drift.apply(weights, rng);
        benchmark::DoNotOptimize(weights.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_DriftInjection)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
