// Micro-benchmarks of the numeric substrates: blocked GEMM (including a
// comparison against the seed's scalar i-k-j kernel), batched conv
// forward/backward, GP fit, per-fault-model injection throughput across
// the FaultModel zoo, multi-threaded Monte-Carlo drift evaluation scaling,
// candidate-engine search throughput, and GP proposal cost over typed
// mixed search spaces (suggest_throughput_vs_dims).
//
// Results are printed as a human-readable table AND emitted as
// machine-readable JSON — one record per (op, shape, threads) with ns/iter,
// GFLOP/s, and (for the bandwidth-bound injection ops) GB/s — so successive
// PRs can track a perf trajectory in BENCH_*.json files.  Usage:
//
//   micro_ops [output.json] [--filter <op-substring>]
//
// Default output: BENCH_micro_ops.json.  --filter runs only the ops whose
// name contains the substring (e.g. --filter matmul, --filter injection).
//
// Timing discipline: every op gets one untimed warmup call (pages the
// buffers in, settles the lazily initialized SIMD dispatch), then samples
// until ~200 ms accumulate and reports the median iteration — robust to
// scheduler noise in both directions, unlike best-of (optimistic) or mean
// (tail-sensitive).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/bayesopt.hpp"
#include "bayesopt/gp.hpp"
#include "core/engine.hpp"
#include "core/objective.hpp"
#include "core/param_space.hpp"
#include "data/toy.hpp"
#include "fault/drift.hpp"
#include "fault/evaluator.hpp"
#include "fault/model.hpp"
#include "fault/zoo.hpp"
#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/trainer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "utils/parallel.hpp"
#include "utils/rng.hpp"

namespace {

using namespace bayesft;

struct Record {
    std::string op;
    std::string shape;
    std::size_t threads = 1;
    double ns_per_iter = 0.0;
    double gflops = 0.0;  // 0 when FLOP count is not meaningful
    double gbps = 0.0;    // 0 when a bytes count is not meaningful
};

std::vector<Record> g_records;
std::string g_filter;  // --filter: run only ops containing this substring

/// True when `op` passes the --filter substring (empty filter = run all).
bool want(const std::string& op) {
    return g_filter.empty() || op.find(g_filter) != std::string::npos;
}

/// Times `fn` adaptively: one untimed warmup call, then repeats until
/// ~200ms of samples (at least `min_iters`), reporting the median
/// iteration — robust against scheduler noise in either direction.
template <typename Fn>
double time_ns(Fn&& fn, std::size_t min_iters = 3) {
    using clock = std::chrono::steady_clock;
    fn();  // warmup: fault pages in, settle lazy SIMD dispatch / scratch
    std::vector<double> samples;
    double total = 0.0;
    while (samples.size() < min_iters || total < 2e8) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        samples.push_back(ns);
        total += ns;
        if (samples.size() > 200) break;
    }
    std::nth_element(samples.begin(),
                     samples.begin() +
                         static_cast<std::ptrdiff_t>(samples.size() / 2),
                     samples.end());
    return samples[samples.size() / 2];
}

void report(const std::string& op, const std::string& shape,
            std::size_t threads, double ns, double flops,
            double bytes = 0.0) {
    Record r;
    r.op = op;
    r.shape = shape;
    r.threads = threads;
    r.ns_per_iter = ns;
    r.gflops = flops > 0.0 ? flops / ns : 0.0;  // FLOP/ns == GFLOP/s
    r.gbps = bytes > 0.0 ? bytes / ns : 0.0;    // byte/ns == GB/s
    g_records.push_back(r);
    std::printf("%-28s %-16s threads=%-2zu %12.0f ns/iter %8.2f GFLOP/s"
                " %8.2f GB/s\n",
                op.c_str(), shape.c_str(), threads, ns, r.gflops, r.gbps);
}

/// The seed repository's scalar i-k-j matmul kernel, kept verbatim as the
/// speedup baseline for the blocked kernel.
Tensor seed_matmul(const Tensor& a, const Tensor& b) {
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        float* crow = pc + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float aval = pa[i * k + kk];
            if (aval == 0.0F) continue;
            const float* brow = pb + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
    }
    return c;
}

void bench_gemm() {
    Rng rng(1);
    const std::size_t n = 256;
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const std::string shape = "256x256x256";

    volatile float sink = 0.0F;
    double seed_ns = 0.0;
    if (want("matmul_seed_ikj")) {
        seed_ns = time_ns([&] {
            Tensor c = seed_matmul(a, b);
            sink = sink + c[0];
        });
        report("matmul_seed_ikj", shape, 1, seed_ns, flops);
    }

    if (want("matmul_blocked_1t")) {
        // Single-threaded blocked kernel (direct call, bypassing the pool).
        Tensor c({n, n});
        const double blocked_ns = time_ns([&] {
            c.fill(0.0F);
            detail::gemm_block(a.data(), n, b.data(), n, c.data(), n, n, n,
                               n);
            sink = sink + c[0];
        });
        report("matmul_blocked_1t", shape, 1, blocked_ns, flops);
        if (seed_ns > 0.0) {
            std::printf("  -> blocked vs seed single-thread speedup: %.2fx\n",
                        seed_ns / blocked_ns);
        }
    }

    if (!want("matmul")) return;
    // Pool-parallel entry point the library actually uses.
    const double pool_ns = time_ns([&] {
        Tensor out = matmul(a, b);
        sink = sink + out[0];
    });
    report("matmul", shape, parallel_thread_count(), pool_ns, flops);

    for (const std::size_t dim : {64UL, 128UL, 512UL}) {
        Rng r2(2);
        const Tensor aa = Tensor::randn({dim, dim}, r2);
        const Tensor bb = Tensor::randn({dim, dim}, r2);
        const double f = 2.0 * static_cast<double>(dim) * dim * dim;
        const double ns = time_ns([&] {
            Tensor out = matmul(aa, bb);
            sink = sink + out[0];
        });
        report("matmul",
               std::to_string(dim) + "x" + std::to_string(dim) + "x" +
                   std::to_string(dim),
               parallel_thread_count(), ns, f);
    }
}

void bench_conv() {
    Rng rng(3);
    nn::Conv2d conv(16, 32, 3, 1, 1, rng);
    const Tensor input = Tensor::randn({16, 16, 16, 16}, rng);
    // FLOPs: 2 * N * OC * OH * OW * (IC * KH * KW)
    const double flops = 2.0 * 16 * 32 * 16 * 16 * (16 * 9);
    volatile float sink = 0.0F;
    if (want("conv2d_forward")) {
        const double fwd_ns = time_ns([&] {
            Tensor out = conv.forward(input);
            sink = sink + out[0];
        });
        report("conv2d_forward", "n16c16->32k3s1p1x16",
               parallel_thread_count(), fwd_ns, flops);
    }

    if (want("conv2d_backward")) {
        const Tensor out = conv.forward(input);
        const Tensor grad = Tensor::randn(out.shape(), rng);
        const double bwd_ns = time_ns([&] {
            Tensor gin = conv.backward(grad);
            sink = sink + gin[0];
        });
        report("conv2d_backward", "n16c16->32k3s1p1x16",
               parallel_thread_count(), bwd_ns, 3.0 * flops);
    }
}

/// Random d3 design of size n for the GP scaling benches (one shared
/// generator so every op in the series sees the same kind of data).
void make_gp_data(std::size_t n, std::vector<bayesopt::Point>& xs,
                  std::vector<double>& ys) {
    Rng rng(6);
    xs.clear();
    ys.clear();
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal());
    }
}

bayesopt::GaussianProcess make_gp() {
    return bayesopt::GaussianProcess(
        std::make_shared<bayesopt::ArdSquaredExponential>(3, 4.0), 1e-4);
}

void bench_gp() {
    // Full refits across the trial-count axis: the O(n^3) wall a
    // thousand-trial search would hit without the incremental path
    // (docs/optimizer-scaling.md).  n=4096 is a single timed call — at
    // tens of seconds per refit, medians of many samples are pointless.
    if (want("gp_fit")) {
        std::vector<bayesopt::Point> xs;
        std::vector<double> ys;
        for (const std::size_t n : {128UL, 512UL, 1024UL, 4096UL}) {
            make_gp_data(n, xs, ys);
            bayesopt::GaussianProcess gp = make_gp();
            const double ns = time_ns([&] { gp.fit(xs, ys); },
                                      n >= 4096 ? 1 : 3);
            report("gp_fit", "n" + std::to_string(n) + "d3",
                   parallel_thread_count(), ns, 0.0);
        }
    }

    // Incremental observe at n=1024: one rank-1 Cholesky append + alpha
    // recompute (O(n^2)) against the O(n^3) full refit the pre-PR9 code
    // paid per observation.  Each timed iteration appends one row to a
    // 1024-row fit and truncates back, so every sample measures the same
    // n -> n+1 transition.
    if (want("gp_observe")) {
        std::vector<bayesopt::Point> xs;
        std::vector<double> ys;
        make_gp_data(1024, xs, ys);
        const bayesopt::Point extra = {0.25, 0.5, 0.75};

        bayesopt::GaussianProcess gp = make_gp();
        gp.fit(xs, ys);
        if (gp.jitter() != 0.0) {
            std::fprintf(stderr,
                         "micro_ops: gp_observe baseline fit needed jitter; "
                         "incremental path unavailable\n");
            std::exit(1);
        }
        const double inc_ns = time_ns([&] {
            if (!gp.observe(extra, 0.5)) std::abort();
            gp.truncate(1024);
        });
        report("gp_observe", "n1024d3_incremental", parallel_thread_count(),
               inc_ns, 0.0);

        // The historical alternative: refit from scratch on n+1 rows.
        std::vector<bayesopt::Point> xs_plus = xs;
        std::vector<double> ys_plus = ys;
        xs_plus.push_back(extra);
        ys_plus.push_back(0.5);
        bayesopt::GaussianProcess full = make_gp();
        const double full_ns =
            time_ns([&] { full.fit(xs_plus, ys_plus); }, 2);
        report("gp_observe", "n1024d3_full_refit", parallel_thread_count(),
               full_ns, 0.0);
        std::printf("  -> incremental observe speedup over full refit: "
                    "%.1fx\n",
                    full_ns / inc_ns);
    }

    // Acquisition scoring of one proposal pool: m pooled posteriors in one
    // cross-kernel build + multi-RHS solve vs m per-point calls.
    if (want("gp_acquisition_pool")) {
        std::vector<bayesopt::Point> xs;
        std::vector<double> ys;
        make_gp_data(512, xs, ys);
        bayesopt::GaussianProcess gp = make_gp();
        gp.fit(xs, ys);
        constexpr std::size_t kPool = 192;
        std::vector<bayesopt::Point> pool;
        Rng pool_rng(7);
        for (std::size_t i = 0; i < kPool; ++i) {
            pool.push_back({pool_rng.uniform(), pool_rng.uniform(),
                            pool_rng.uniform()});
        }
        volatile double sink = 0.0;
        const double batched_ns = time_ns([&] {
            const std::vector<bayesopt::Posterior> posts =
                gp.posterior_batch(pool);
            sink = sink + posts.back().mean;
        });
        report("gp_acquisition_pool", "n512m192_batched",
               parallel_thread_count(), batched_ns, 0.0);
        const double pointwise_ns = time_ns([&] {
            double acc = 0.0;
            for (const bayesopt::Point& p : pool) {
                acc += gp.posterior(p).mean;
            }
            sink = sink + acc;
        });
        report("gp_acquisition_pool", "n512m192_per_point",
               parallel_thread_count(), pointwise_ns, 0.0);
        std::printf("  -> pooled posterior speedup over per-point: %.1fx\n",
                    pointwise_ns / batched_ns);
    }
}

void bench_fault_injection() {
    // Bytes per injection: the elementwise kernels stream the span once —
    // one 4-byte read and one 4-byte write per weight.  (The composed
    // chain touches the span once per stage, so its GB/s understates the
    // raw traffic; records stay comparable as "useful bytes per second".)
    constexpr double kBytesPerWeight = 2.0 * sizeof(float);

    // Historical drift_injection record, timed region unchanged since PR1
    // (perturb only, constant-ones initial buffer) so the ns/iter
    // trajectory in BENCH_micro_ops.json stays comparable across PRs.
    if (want("drift_injection")) {
        Rng rng(8);
        std::vector<float> weights(1 << 16, 1.0F);
        const fault::LogNormalDrift drift(0.5);
        volatile float sink = 0.0F;
        const double ns = time_ns([&] {
            drift.apply(weights, rng);
            sink = sink + weights[0];
        });
        report("drift_injection", "65536", 1, ns, 0.0,
               kBytesPerWeight * 65536.0);
    }

    if (!want("fault_injection")) return;

    // Per-model injection throughput over the rest of the fault zoo: one
    // `fault_injection` record per FaultModel on a 64K-weight buffer.
    // This series refreshes the buffer inside the timed region (so
    // magnitude-dependent models see a stable input); records are
    // comparable within the series, not with drift_injection.
    Rng init_rng(8);
    std::vector<float> base(1 << 16);
    for (float& w : base) w = static_cast<float>(init_rng.normal());

    struct Case {
        const char* shape;
        std::unique_ptr<fault::FaultModel> model;
    };
    std::vector<Case> cases;
    cases.push_back({"stuck_at",
                     std::make_unique<fault::StuckAtFault>(0.05, 0.25)});
    cases.push_back({"bit_flip8",
                     std::make_unique<fault::BitFlipFault>(1e-3, 8)});
    cases.push_back({"variation",
                     std::make_unique<fault::GaussianVariationFault>(0.3)});
    cases.push_back({"quantize8",
                     std::make_unique<fault::QuantizationFault>(8)});
    {
        std::vector<std::unique_ptr<fault::FaultModel>> stages;
        stages.push_back(std::make_unique<fault::QuantizationFault>(8));
        stages.push_back(
            std::make_unique<fault::GaussianVariationFault>(0.2));
        stages.push_back(std::make_unique<fault::LogNormalDrift>(0.3));
        cases.push_back({"composed_deploy",
                         std::make_unique<fault::ComposedFault>(
                             std::move(stages))});
    }

    Rng rng(9);
    std::vector<float> weights(base.size());
    volatile float sink = 0.0F;
    for (const Case& c : cases) {
        const double ns = time_ns([&] {
            std::copy(base.begin(), base.end(), weights.begin());
            c.model->perturb(weights, rng);
            sink = sink + weights[0];
        });
        report("fault_injection", c.shape, 1, ns, 0.0,
               kBytesPerWeight * static_cast<double>(base.size()));
    }
}

void bench_mc_evaluation() {
    if (!want("mc_drift_eval")) return;
    // Monte-Carlo drift evaluation: same seed at 1/2/4 threads must give
    // identical reports, and wall time should scale down with real cores.
    Rng rng(12);
    auto blobs = data::make_blobs(512, 3, 4.0, 0.4, rng);
    nn::Sequential model;
    model.emplace<nn::Linear>(2, 64, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(64, 64, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(64, 3, rng);
    model.set_training(false);
    const fault::LogNormalDrift drift(0.4);
    constexpr std::size_t kSamples = 16;

    std::vector<double> reference;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        fault::RobustnessReport rep;
        const double ns = time_ns(
            [&] {
                Rng inner(99);
                rep = fault::evaluate_under_drift(model, blobs.images,
                                                  blobs.labels, drift,
                                                  kSamples, inner, threads);
            },
            2);
        report("mc_drift_eval", "mlp64x2_T16", threads, ns, 0.0);
        if (reference.empty()) {
            reference = rep.samples;
        } else if (rep.samples != reference) {
            std::fprintf(stderr,
                         "ERROR: thread-count-variant robustness report at "
                         "%zu threads\n",
                         threads);
            std::exit(1);
        }
    }
    std::printf(
        "  -> reports bit-identical across 1/2/4 threads (pool width %zu)\n",
        parallel_thread_count());
}

void bench_search_throughput() {
    if (!want("search_throughput")) return;
    // Candidate-evaluation engine throughput vs batch size q: every
    // candidate trains a replica of a small MLP for one epoch and scores
    // the drift-marginalized utility — the BayesFT inner loop.  Each q
    // evaluates the same total number of candidates, so ns/candidate is
    // directly comparable (q = 1 is the serial in-place path).
    Rng data_rng(21);
    const auto blobs = data::make_blobs(256, 3, 4.0, 0.4, data_rng);
    Rng split_rng(22);
    const auto parts = data::split(blobs, 0.3, split_rng);

    nn::TrainConfig epoch_config;
    epoch_config.epochs = 1;
    core::ObjectiveConfig objective;
    objective.sigmas = {0.4};
    objective.mc_samples = 2;
    const core::CandidateEvaluator evaluator =
        [&](models::ModelHandle& m, const core::Alpha&, Rng& r) {
            nn::train_classifier(*m.net, parts.train.images,
                                 parts.train.labels, epoch_config, r);
            return core::drift_utility(*m.net, parts.test.images,
                                       parts.test.labels, objective, r);
        };

    constexpr std::size_t kCandidates = 8;
    double serial_ns = 0.0;
    for (const std::size_t q : {1UL, 2UL, 4UL, 8UL}) {
        Rng model_rng(23);
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 32;
        options.hidden_layers = 2;
        options.classes = 3;
        models::ModelHandle model = models::make_mlp(options, model_rng);

        core::EvaluationEngine engine;
        core::EvalContext context;
        Rng search_rng(24);
        Rng alpha_rng(25);
        const double ns = time_ns(
            [&] {
                for (std::size_t done = 0; done < kCandidates; done += q) {
                    std::vector<core::Alpha> alphas;
                    for (std::size_t j = 0; j < q; ++j) {
                        core::Alpha alpha(2);
                        for (double& a : alpha) {
                            a = alpha_rng.uniform(0.0, 0.5);
                        }
                        alphas.push_back(std::move(alpha));
                    }
                    engine.evaluate_batch(model, alphas, evaluator,
                                          search_rng, context,
                                          /*adopt_winner=*/true);
                    ++context.stamp;
                }
            },
            2);
        const double per_candidate = ns / static_cast<double>(kCandidates);
        report("search_throughput", "q" + std::to_string(q),
               parallel_thread_count(), per_candidate, 0.0);
        if (q == 1) {
            serial_ns = per_candidate;
        } else if (q == 4) {
            std::printf("  -> q=4 batched speedup over q=1: %.2fx\n",
                        serial_ns / per_candidate);
        }
    }
}

void bench_search_distributed() {
    if (!want("search_distributed")) return;
    // Self-contained candidate evaluation vs worker count: the coordinator
    // farms evaluate_points batches to w forked workers over the pipe
    // protocol (docs/distributed.md); w=0 is the in-process path.  Every
    // worker count evaluates the same candidates, so ns/candidate directly
    // shows the fork/pipe overhead against the parallel win.  The engine
    // (and so its worker pool) lives across the timing iterations — a real
    // search forks its workers once, not per batch.
    Rng data_rng(31);
    const auto blobs = data::make_blobs(192, 3, 4.0, 0.4, data_rng);
    Rng split_rng(32);
    const auto parts = data::split(blobs, 0.3, split_rng);

    nn::TrainConfig epoch_config;
    epoch_config.epochs = 1;
    core::ObjectiveConfig objective;
    objective.sigmas = {0.4};
    objective.mc_samples = 1;
    const core::PointEvaluator evaluator = [&](const core::Alpha& encoded,
                                               Rng& r) {
        models::MlpOptions options;
        options.input_features = 2;
        options.hidden = 24;
        options.hidden_layers = 2;
        options.classes = 3;
        options.dropout = models::DropoutKind::kStandard;
        options.initial_dropout_rate =
            encoded.empty() ? 0.0 : encoded.front();
        models::ModelHandle model = models::make_mlp(options, r);
        nn::train_classifier(*model.net, parts.train.images,
                             parts.train.labels, epoch_config, r);
        return core::drift_utility(*model.net, parts.test.images,
                                   parts.test.labels, objective, r);
    };

    constexpr std::size_t kCandidates = 8;
    std::vector<core::Alpha> points;
    Rng point_rng(33);
    for (std::size_t i = 0; i < kCandidates; ++i) {
        points.push_back({point_rng.uniform(0.0, 0.5)});
    }
    core::EvalContext context;
    context.key = 34;

    for (const std::size_t w : {0UL, 1UL, 2UL, 4UL}) {
        core::EngineConfig config;
        // The memo cache would serve every iteration after the first from
        // memory; the point here is the live evaluation path.
        config.cache = false;
        config.workers = w;
        core::EvaluationEngine engine(config);
        const double ns = time_ns(
            [&] { engine.evaluate_points(points, evaluator, context); }, 2);
        report("search_distributed", "w" + std::to_string(w),
               parallel_thread_count(),
               ns / static_cast<double>(kCandidates), 0.0);
    }
}

void bench_suggest_throughput() {
    if (!want("suggest_throughput_vs_dims")) return;
    // GP proposal cost over typed mixed spaces: one BayesOpt per dimension
    // count (continuous + integer + categorical mix), seeded with 12
    // observations of a cheap synthetic objective, then ns per suggest()
    // call — the fixed per-iteration overhead an archsearch scenario pays
    // on top of candidate training.
    struct SpaceCase {
        const char* shape;
        core::ParamSpace space;
    };
    std::vector<SpaceCase> cases;
    {
        core::ParamSpace d3;
        d3.add_continuous("c0", 0.0, 0.6);
        d3.add_integer("i0", 1, 8);
        d3.add_categorical("k0", {"a", "b", "c"});
        cases.push_back({"d3", std::move(d3)});
    }
    {
        core::ParamSpace d8;
        for (int i = 0; i < 4; ++i) {
            d8.add_continuous("c" + std::to_string(i), 0.0, 0.6);
        }
        d8.add_integer("i0", 1, 8);
        d8.add_integer("i1", 16, 128);
        d8.add_categorical("k0", {"a", "b", "c"});
        d8.add_categorical("k1", {"w", "x", "y", "z"});
        cases.push_back({"d8", std::move(d8)});
    }
    {
        core::ParamSpace d16;
        for (int i = 0; i < 8; ++i) {
            d16.add_continuous("c" + std::to_string(i), 0.0, 0.6);
        }
        for (int i = 0; i < 4; ++i) {
            d16.add_integer("i" + std::to_string(i), 1, 8);
        }
        for (int i = 0; i < 4; ++i) {
            d16.add_categorical("k" + std::to_string(i),
                                {"a", "b", "c", "d"});
        }
        cases.push_back({"d16", std::move(d16)});
    }

    for (const SpaceCase& c : cases) {
        bayesopt::BayesOptConfig config;
        config.initial_random_trials = 4;
        bayesopt::BayesOpt bo(c.space.encoded_bounds(),
                              c.space.kernel(4.0, 1.0),
                              std::make_unique<bayesopt::PosteriorMean>(),
                              config, Rng(31), c.space.projection());
        Rng sample_rng(32);
        for (std::size_t i = 0; i < 12; ++i) {
            const std::vector<double> x =
                c.space.encode(c.space.sample(sample_rng));
            double y = 0.0;
            for (double v : x) y += v;
            bo.observe(x, -y);
        }
        volatile double sink = 0.0;
        const double ns = time_ns([&] {
            const bayesopt::Point p = bo.suggest();
            sink = sink + p[0];
        });
        report("suggest_throughput_vs_dims", c.shape, 1, ns, 0.0);
    }
}

void write_json(const std::string& path) {
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < g_records.size(); ++i) {
        const Record& r = g_records[i];
        out << "  {\"op\": \"" << r.op << "\", \"shape\": \"" << r.shape
            << "\", \"threads\": " << r.threads << ", \"ns_per_iter\": "
            << std::llround(r.ns_per_iter) << ", \"gflops\": " << r.gflops
            << ", \"gbps\": " << r.gbps << "}"
            << (i + 1 < g_records.size() ? "," : "") << "\n";
    }
    out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_micro_ops.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--filter") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "micro_ops: --filter needs an op substring\n");
                return 2;
            }
            g_filter = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: micro_ops [output.json] [--filter <op-substring>]\n");
            return 0;
        } else {
            json_path = arg;
        }
    }
    std::printf("pool width: %zu threads (override with BAYESFT_NUM_THREADS)\n",
                parallel_thread_count());
    bench_gemm();
    bench_conv();
    bench_gp();
    bench_fault_injection();
    bench_mc_evaluation();
    bench_search_throughput();
    bench_search_distributed();
    bench_suggest_throughput();
    write_json(json_path);
    std::cout << "wrote " << json_path << " (" << g_records.size()
              << " records)\n";
    return 0;
}
