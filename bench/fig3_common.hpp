#pragma once
// Shared runner for the Fig. 3 panels: one task (dataset + model family),
// all enabled methods (ERM / FTNA / ReRAM-V / AWP / BayesFT), accuracy
// swept over sigma in [0, 1.5].

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/experiment.hpp"

namespace bayesft::bench {

/// Runs one Fig. 3 panel and reports table + counters.
inline void run_fig3_panel(benchmark::State& state, const std::string& title,
                           const std::string& csv_name,
                           const core::ModelFactory& factory,
                           const data::Dataset& train_set,
                           const data::Dataset& test_set,
                           std::size_t num_classes,
                           core::ExperimentConfig config) {
    const core::ExperimentResult result = core::run_classification_experiment(
        factory, train_set, test_set, num_classes, config);
    report_experiment(state, result, title, csv_name);
}

}  // namespace bayesft::bench
