#pragma once
// Shared infrastructure of the figure-reproduction benches.
//
// Every fig*_ bench binary reproduces one figure of the paper: it trains the
// relevant methods, sweeps the drift level sigma, prints a ResultTable whose
// rows correspond to the figure's x-axis, writes a CSV next to the binary,
// and registers the run with google-benchmark (accuracy values appear as
// user counters, wall time as the benchmark timing).
//
// Set BAYESFT_QUICK=1 to shrink datasets/epochs for a fast smoke run.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "utils/logging.hpp"

namespace bayesft::bench {

/// True when the BAYESFT_QUICK environment variable requests a smoke run.
inline bool quick_mode() {
    const char* env = std::getenv("BAYESFT_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Experiment defaults shared by the Fig. 3 benches, scaled by quick_mode().
inline core::ExperimentConfig default_experiment_config() {
    core::ExperimentConfig config;
    config.sigmas = {0.0, 0.3, 0.6, 0.9, 1.2, 1.5};
    config.eval_samples = quick_mode() ? 2 : 4;

    config.train.epochs = quick_mode() ? 2 : 8;
    config.train.batch_size = 32;
    config.train.learning_rate = 0.05;

    config.bayesft.iterations = quick_mode() ? 2 : 8;
    config.bayesft.epochs_per_iteration = quick_mode() ? 1 : 2;
    config.bayesft.train = config.train;
    config.bayesft.objective.sigmas = {0.3, 0.6, 0.9};
    config.bayesft.objective.mc_samples = quick_mode() ? 1 : 3;
    config.bayesft.warmup_epochs = quick_mode() ? 1 : 3;
    config.bayesft.final_epochs = quick_mode() ? 1 : 4;
    config.bayesft.max_dropout_rate = 0.5;

    config.reram_v.adapt_epochs = 2;
    config.reram_v.device_sigma = 0.3;
    config.awp.gamma = 0.02;
    config.ftna_code_bits = 16;
    return config;
}

/// Dataset sizing shared by the benches.
inline std::size_t default_sample_count(std::size_t full) {
    return quick_mode() ? full / 4 : full;
}

/// Prints the table, saves CSV, and exposes each (method, sigma) cell as a
/// benchmark counter so `--benchmark_format=json` captures the figure data.
inline void report_experiment(benchmark::State& state,
                              const core::ExperimentResult& result,
                              const std::string& title,
                              const std::string& csv_name) {
    const ResultTable table = result.to_table(title);
    std::cout << "\n" << table << std::endl;
    if (!result.bayesft_alpha.empty()) {
        std::cout << "BayesFT best alpha:";
        for (double a : result.bayesft_alpha) {
            std::cout << ' ' << format_double(a, 3);
        }
        std::cout << "\n" << std::endl;
    }
    table.save_csv(csv_name);
    for (const auto& curve : result.curves) {
        for (std::size_t i = 0; i < result.sigmas.size(); ++i) {
            state.counters[curve.method + "@s" +
                           format_double(result.sigmas[i], 1)] =
                curve.accuracy[i] * 100.0;
        }
    }
}

/// Common main body: quiet logging unless verbose.
inline void configure_bench_logging() {
    set_log_level(quick_mode() ? LogLevel::Error : LogLevel::Info);
}

}  // namespace bayesft::bench

/// Standard main for every bench binary.
#define BAYESFT_BENCH_MAIN()                                   \
    int main(int argc, char** argv) {                         \
        bayesft::bench::configure_bench_logging();            \
        benchmark::Initialize(&argc, argv);                   \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        benchmark::RunSpecifiedBenchmarks();                  \
        benchmark::Shutdown();                                \
        return 0;                                             \
    }
