#pragma once
// Shared infrastructure of the figure-reproduction benches.
//
// Every fig*_ bench binary reproduces one figure of the paper.  The
// experiment definitions themselves live in the core ExperimentRegistry
// (src/core/registry.cpp) — see registry_bench.hpp for the adapter — so
// this header only carries the smoke-run scaling and the standard main.
//
// Set BAYESFT_QUICK=1 to shrink datasets/epochs for a fast smoke run.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "utils/logging.hpp"

namespace bayesft::bench {

/// True when the BAYESFT_QUICK environment variable requests a smoke run.
inline bool quick_mode() {
    const char* env = std::getenv("BAYESFT_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Dataset sizing shared by the non-registry benches (fig1, fig4).
inline std::size_t default_sample_count(std::size_t full) {
    return quick_mode() ? full / 4 : full;
}

/// Common main body: quiet logging unless verbose.
inline void configure_bench_logging() {
    set_log_level(quick_mode() ? LogLevel::Error : LogLevel::Info);
}

}  // namespace bayesft::bench

/// Standard main for every bench binary.
#define BAYESFT_BENCH_MAIN()                                   \
    int main(int argc, char** argv) {                         \
        bayesft::bench::configure_bench_logging();            \
        benchmark::Initialize(&argc, argv);                   \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        benchmark::RunSpecifiedBenchmarks();                  \
        benchmark::Shutdown();                                \
        return 0;                                             \
    }
