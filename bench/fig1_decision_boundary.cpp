// Fig. 1 reproduction: decision-boundary shift under memristance drift.
//
// A small MLP is trained on the two-moons binary task; the decision boundary
// is rasterized over a grid for increasing drift sigma.  The bench prints
// ASCII boundary plots (the paper's scatter plots) and a table of accuracy
// plus boundary displacement (fraction of grid cells whose predicted class
// changed vs the clean model).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "data/toy.hpp"
#include "fault/evaluator.hpp"
#include "fault/injector.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

constexpr std::size_t kGrid = 40;

/// Predicted class over a [-1.8, 2.8] x [-1.3, 1.8] grid.
std::vector<int> rasterize(nn::Module& model) {
    Tensor grid({kGrid * kGrid, 2});
    for (std::size_t gy = 0; gy < kGrid; ++gy) {
        for (std::size_t gx = 0; gx < kGrid; ++gx) {
            grid(gy * kGrid + gx, 0) =
                -1.8F + 4.6F * static_cast<float>(gx) / (kGrid - 1);
            grid(gy * kGrid + gx, 1) =
                -1.3F + 3.1F * static_cast<float>(gy) / (kGrid - 1);
        }
    }
    const Tensor logits = nn::predict_logits(model, grid);
    const auto pred = argmax_rows(logits);
    return {pred.begin(), pred.end()};
}

std::string ascii_boundary(const std::vector<int>& cells) {
    std::string art;
    for (std::size_t gy = 0; gy < kGrid; gy += 2) {  // halve vertical res
        for (std::size_t gx = 0; gx < kGrid; ++gx) {
            art += cells[gy * kGrid + gx] == 0 ? '.' : '#';
        }
        art += '\n';
    }
    return art;
}

void run_fig1(benchmark::State& state) {
    Rng rng(7);
    const data::Dataset moons = data::make_moons(
        bayesft::bench::default_sample_count(400), 0.08, rng);

    models::MlpOptions options;
    options.input_features = 2;
    options.hidden = 24;
    options.hidden_layers = 2;
    options.classes = 2;
    models::ModelHandle model = models::make_mlp(options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = bayesft::bench::quick_mode() ? 5 : 25;
    nn::train_classifier(*model.net, moons.images, moons.labels, train_config,
                         rng);

    const std::vector<int> clean_cells = rasterize(*model.net);
    ResultTable table("Fig. 1: decision boundary shift vs drift (two moons)",
                      {"sigma", "accuracy %", "boundary shift %"});
    for (double sigma : {0.0, 0.5, 1.0, 1.5}) {
        const fault::LogNormalDrift drift(sigma);
        Rng drift_rng(99);
        fault::WeightSnapshot snapshot(*model.net);
        fault::inject(*model.net, drift, drift_rng);
        const std::vector<int> cells = rasterize(*model.net);
        const double acc =
            nn::evaluate_accuracy(*model.net, moons.images, moons.labels);
        std::size_t moved = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i] != clean_cells[i]) ++moved;
        }
        const double shift =
            100.0 * static_cast<double>(moved) / cells.size();
        table.add_row({sigma, acc * 100.0, shift});
        std::cout << "-- sigma = " << sigma << " --\n"
                  << ascii_boundary(cells) << "\n";
        state.counters["acc@s" + format_double(sigma, 1)] = acc * 100.0;
        state.counters["shift@s" + format_double(sigma, 1)] = shift;
        // snapshot restores the clean weights at scope exit
    }
    std::cout << table << std::endl;
    table.save_csv("fig1_decision_boundary.csv");
}

void BM_Fig1DecisionBoundary(benchmark::State& state) {
    for (auto _ : state) {
        run_fig1(state);
    }
}
BENCHMARK(BM_Fig1DecisionBoundary)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
