// Fig. 3(i) reproduction: spatial-transformer classifier on GTSRB substitute (no FTNA, per the paper).
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3i_gtsrb") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3iGtsrb(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3i_gtsrb",
            "Fig. 3(i): STN-lite on synthetic traffic signs (GTSRB substitute, 43 classes)");
    }
}
BENCHMARK(BM_Fig3iGtsrb)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
