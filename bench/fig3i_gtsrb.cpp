// Fig. 3(i) reproduction: spatial-transformer classifier on GTSRB
// (synthetic traffic signs substitute, 43 classes).  The paper omits FTNA
// here (error-correction coding does not transfer to this head), so the
// methods are ERM / ReRAM-V / AWP / BayesFT.

#include "data/traffic_signs.hpp"
#include "fig3_common.hpp"
#include "models/zoo.hpp"

namespace {

using namespace bayesft;

void BM_Fig3iGtsrb(benchmark::State& state) {
    Rng data_rng(91);
    data::TrafficSignConfig sign_config;
    sign_config.samples = bayesft::bench::default_sample_count(2150);
    const data::Dataset full =
        data::synthetic_traffic_signs(sign_config, data_rng);
    Rng split_rng(92);
    const auto parts = data::split(full, 0.25, split_rng);

    const core::ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_stn_classifier(outputs, rng);
    };
    core::ExperimentConfig config =
        bayesft::bench::default_experiment_config();
    config.methods.ftna = false;  // per the paper
    config.train.learning_rate = 0.02;
    config.bayesft.train = config.train;
    for (auto _ : state) {
        bayesft::bench::run_fig3_panel(
            state,
            "Fig. 3(i): STN-lite on synthetic traffic signs "
            "(GTSRB substitute, 43 classes)",
            "fig3i_gtsrb.csv", factory, parts.train, parts.test, 43, config);
    }
}
BENCHMARK(BM_Fig3iGtsrb)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
