// Fig. 2(c) reproduction: model-complexity ablation for drift robustness.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig2c_depth") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig2cDepth(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig2c_depth",
            "Fig. 2(c): model complexity (MLP, synthetic digits)");
    }
}
BENCHMARK(BM_Fig2cDepth)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
