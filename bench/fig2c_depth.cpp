// Fig. 2(c) reproduction: model-complexity ablation for drift robustness.
// Expected shape (paper): deeper MLPs degrade faster — drifted weights
// accumulate error layer by layer.

#include "fig2_common.hpp"

namespace {

using namespace bayesft;
using bayesft::bench::Variant;

Variant depth_variant(const std::string& name, std::size_t hidden_layers) {
    return {name, [hidden_layers](Rng& rng) {
                models::MlpOptions o;
                o.input_features = 256;
                o.hidden = 64;
                o.hidden_layers = hidden_layers;
                o.dropout = models::DropoutKind::kNone;
                return models::make_mlp(o, rng);
            }};
}

void BM_Fig2cDepth(benchmark::State& state) {
    const std::vector<Variant> variants{
        depth_variant("3-Layer", 2),
        depth_variant("6-Layer", 5),
        depth_variant("9-Layer", 8),
    };
    for (auto _ : state) {
        bayesft::bench::run_ablation(
            state, "Fig. 2(c): model complexity (MLP, synthetic digits)",
            "fig2c_depth.csv", variants);
    }
}
BENCHMARK(BM_Fig2cDepth)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
