// Fig. 3(b) reproduction: LeNet on MNIST (synthetic digits substitute),
// all five methods vs drift sigma.

#include "data/digits.hpp"
#include "fig3_common.hpp"
#include "models/zoo.hpp"

namespace {

using namespace bayesft;

void BM_Fig3bLenetMnist(benchmark::State& state) {
    Rng data_rng(41);
    data::DigitConfig digit_config;
    digit_config.samples = bayesft::bench::default_sample_count(1000);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(42);
    const auto parts = data::split(full, 0.25, split_rng);

    const core::ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_lenet5(1, 16, outputs, rng);
    };
    core::ExperimentConfig config =
        bayesft::bench::default_experiment_config();
    config.train.epochs = bayesft::bench::quick_mode() ? 3 : 12;
    config.train.learning_rate = 0.03;
    config.bayesft.train = config.train;
    for (auto _ : state) {
        bayesft::bench::run_fig3_panel(
            state, "Fig. 3(b): LeNet on synthetic digits (MNIST substitute)",
            "fig3b_lenet_mnist.csv", factory, parts.train, parts.test, 10,
            config);
    }
}
BENCHMARK(BM_Fig3bLenetMnist)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
