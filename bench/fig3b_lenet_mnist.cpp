// Fig. 3(b) reproduction: LeNet on MNIST substitute, all five methods vs drift sigma.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3b_lenet_mnist") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3bLenetMnist(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3b_lenet_mnist",
            "Fig. 3(b): LeNet on synthetic digits (MNIST substitute)");
    }
}
BENCHMARK(BM_Fig3bLenetMnist)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
