// The robustness-as-a-service evaluation server binary (docs/serving.md):
// binds a Unix-domain socket and/or a loopback TCP port, registers the
// built-in target set, and serves `eval` requests until SIGINT/SIGTERM or
// a client's `shutdown` verb.
//
// Usage:
//   serve --socket /tmp/bayesft.sock [--runs-dir runs] [--cache-entries N]
//   serve --tcp 7411 --queue-depth 128 --batch 8 --threads 4
//   serve --list-targets

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "core/runstore.hpp"
#include "serve/server.hpp"
#include "utils/logging.hpp"

namespace {

using namespace bayesft;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

void print_usage() {
    std::cout <<
        "usage: serve [options]\n"
        "  --socket <path>     Unix-domain socket to listen on\n"
        "  --tcp <port>        TCP port on 127.0.0.1 (0 = ephemeral;\n"
        "                      the bound port is printed)\n"
        "  --runs-dir <dir>    persist served trials to this run-store\n"
        "                      directory (default: no persistence)\n"
        "  --cache-entries <n> LRU bound on the cross-client result cache\n"
        "                      (default 1024; 0 disables caching)\n"
        "  --queue-depth <n>   admission-queue bound; jobs beyond it are\n"
        "                      answered 'busy' (default 64)\n"
        "  --batch <n>         max jobs coalesced into one engine batch\n"
        "                      (default 8)\n"
        "  --threads <n>       engine evaluation concurrency (0 = pool)\n"
        "  --trial-timeout <s> per-trial wall-clock deadline (0 = none)\n"
        "  --max-retries <n>   re-attempts before a trial is quarantined\n"
        "                      (default 2)\n"
        "  --quick             register quick-scaled targets (CI size)\n"
        "  --list-targets      print the target table and exit\n";
}

void print_targets(const std::vector<serve::ServeTarget>& targets) {
    for (const serve::ServeTarget& target : targets) {
        std::cout << target.name << "  digest="
                  << core::format_hex(target.digest)
                  << "  dims=" << target.bounds.dims() << "\n";
        for (const serve::FaultVariant& variant : target.variants) {
            std::cout << "  " << variant.name << "  digest="
                      << core::format_hex(variant.digest) << "\n";
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    serve::ServeConfig config;
    bool quick = false;
    bool list_targets = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "serve: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            config.socket_path = next("--socket");
        } else if (arg == "--tcp") {
            config.tcp_port = std::atoi(next("--tcp").c_str());
        } else if (arg == "--runs-dir") {
            config.runs_dir = next("--runs-dir");
        } else if (arg == "--cache-entries") {
            config.cache_entries = static_cast<std::size_t>(
                std::atoll(next("--cache-entries").c_str()));
        } else if (arg == "--queue-depth") {
            config.queue_depth = static_cast<std::size_t>(
                std::atoll(next("--queue-depth").c_str()));
        } else if (arg == "--batch") {
            config.max_batch = static_cast<std::size_t>(
                std::atoll(next("--batch").c_str()));
        } else if (arg == "--threads") {
            config.threads = static_cast<std::size_t>(
                std::atoll(next("--threads").c_str()));
        } else if (arg == "--trial-timeout") {
            config.resilience.timeout_seconds =
                std::atof(next("--trial-timeout").c_str());
        } else if (arg == "--max-retries") {
            config.resilience.max_retries = static_cast<std::size_t>(
                std::atoll(next("--max-retries").c_str()));
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--list-targets") {
            list_targets = true;
        } else if (arg == "--help" || arg == "-h") {
            print_usage();
            return 0;
        } else {
            std::cerr << "serve: unknown option '" << arg << "'\n";
            print_usage();
            return 2;
        }
    }

    std::vector<serve::ServeTarget> targets =
        serve::builtin_targets(quick);
    if (list_targets) {
        print_targets(targets);
        return 0;
    }

    serve::EvalServer server(config, std::move(targets));
    try {
        server.start();
    } catch (const std::exception& error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (!config.socket_path.empty()) {
        std::cout << "serving on " << config.socket_path << "\n";
    }
    if (server.tcp_port() != 0) {
        std::cout << "serving on 127.0.0.1:" << server.tcp_port() << "\n";
    }
    std::cout.flush();

    while (!g_stop.load() && server.running()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    const serve::ServeStats stats = server.stats();
    server.stop();
    std::cout << "served " << stats.completed << " evaluations ("
              << stats.cache_hits << " cache hits, " << stats.busy
              << " busy, " << stats.failed << " failed, "
              << stats.protocol_errors << " protocol errors)\n";
    return 0;
}
