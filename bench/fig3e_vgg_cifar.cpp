// Fig. 3(e) reproduction: VGG11 on CIFAR-10 substitute.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3e_vgg_cifar") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3eVggCifar(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3e_vgg_cifar",
            "Fig. 3(e): VGG11-S on synthetic objects (CIFAR-10 substitute)");
    }
}
BENCHMARK(BM_Fig3eVggCifar)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
