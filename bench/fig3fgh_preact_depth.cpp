// Fig. 3(f)-(h) reproduction: the PreAct-ResNet depth sweep on CIFAR-10
// (synthetic objects substitute).  Paper point: the deeper the network, the
// steeper the accuracy fall under drift (errors accumulate layer by layer);
// BayesFT rescues each depth.  PreAct-S depths 1/2/4 blocks-per-stage stand
// in for PreAct-18/50/152.

#include <iostream>

#include "data/objects.hpp"
#include "fig3_common.hpp"
#include "models/zoo.hpp"

namespace {

using namespace bayesft;

void BM_Fig3fghPreactDepth(benchmark::State& state) {
    Rng data_rng(81);
    data::ObjectConfig object_config;
    object_config.samples = bayesft::bench::default_sample_count(800);
    const data::Dataset full =
        data::synthetic_objects(object_config, data_rng);
    Rng split_rng(82);
    const auto parts = data::split(full, 0.25, split_rng);

    // Depth sweep runs ERM + BayesFT per depth (the panel's message is the
    // depth/robustness interaction, not the full baseline zoo).
    core::ExperimentConfig config =
        bayesft::bench::default_experiment_config();
    config.methods.ftna = false;
    config.methods.reram_v = false;
    config.methods.awp = false;
    config.train.learning_rate = 0.02;
    config.bayesft.train = config.train;

    const struct {
        const char* panel;
        const char* paper_name;
        std::size_t blocks;
    } depths[] = {
        {"f", "PreAct-18 (S, 1 block/stage)", 1},
        {"g", "PreAct-50 (S, 2 blocks/stage)", 2},
        {"h", "PreAct-152 (S, 4 blocks/stage)", 4},
    };
    for (auto _ : state) {
        for (const auto& depth : depths) {
            const std::size_t blocks = depth.blocks;
            const core::ModelFactory factory =
                [blocks](std::size_t outputs, Rng& rng) {
                    return models::make_preact_resnet_s(blocks, outputs, rng);
                };
            const core::ExperimentResult result =
                core::run_classification_experiment(
                    factory, parts.train, parts.test, 10, config);
            const std::string title = std::string("Fig. 3(") + depth.panel +
                                      "): " + depth.paper_name +
                                      " on synthetic objects";
            const ResultTable table = result.to_table(title);
            std::cout << "\n" << table << std::endl;
            table.save_csv(std::string("fig3") + depth.panel +
                           "_preact.csv");
            for (const auto& curve : result.curves) {
                for (std::size_t i = 0; i < result.sigmas.size(); ++i) {
                    state.counters[std::string(depth.panel) + ":" +
                                   curve.method + "@s" +
                                   format_double(result.sigmas[i], 1)] =
                        curve.accuracy[i] * 100.0;
                }
            }
        }
    }
}
BENCHMARK(BM_Fig3fghPreactDepth)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
