// Fig. 3(f)-(h) reproduction: the PreAct-ResNet depth sweep on the
// CIFAR-10 substitute — the deeper the network, the steeper the accuracy
// fall under drift; BayesFT rescues each depth.
// Thin wrapper over the experiment registry: one registered scenario per
// depth ("fig3f_preact18" / "fig3g_preact50" / "fig3h_preact152").

#include "registry_bench.hpp"

namespace {

void BM_Fig3fghPreactDepth(benchmark::State& state) {
    const struct {
        const char* name;
        const char* title;
        const char* prefix;
    } panels[] = {
        {"fig3f_preact18",
         "Fig. 3(f): PreAct-18 (S, 1 block/stage) on synthetic objects",
         "f:"},
        {"fig3g_preact50",
         "Fig. 3(g): PreAct-50 (S, 2 blocks/stage) on synthetic objects",
         "g:"},
        {"fig3h_preact152",
         "Fig. 3(h): PreAct-152 (S, 4 blocks/stage) on synthetic objects",
         "h:"},
    };
    for (auto _ : state) {
        for (const auto& panel : panels) {
            bayesft::bench::run_registry_panel(state, panel.name,
                                               panel.title, panel.prefix);
        }
    }
}
BENCHMARK(BM_Fig3fghPreactDepth)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
