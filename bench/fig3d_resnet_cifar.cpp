// Fig. 3(d) reproduction: ResNet-18 on CIFAR-10 substitute; batch norms make its ERM curve fall fastest (paper Sec. III-A).
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3d_resnet_cifar") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3dResnetCifar(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3d_resnet_cifar",
            "Fig. 3(d): ResNet18-S on synthetic objects (CIFAR-10 substitute)");
    }
}
BENCHMARK(BM_Fig3dResnetCifar)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
