// Fig. 3(d) reproduction: ResNet-18 on CIFAR-10 (synthetic objects
// substitute).  ResNet keeps its batch norms, so its ERM curve falls faster
// than the norm-free AlexNet/VGG (paper Sec. III-A).

#include "data/objects.hpp"
#include "fig3_common.hpp"
#include "models/zoo.hpp"

namespace {

using namespace bayesft;

void BM_Fig3dResnetCifar(benchmark::State& state) {
    Rng data_rng(61);
    data::ObjectConfig object_config;
    object_config.samples = bayesft::bench::default_sample_count(800);
    const data::Dataset full =
        data::synthetic_objects(object_config, data_rng);
    Rng split_rng(62);
    const auto parts = data::split(full, 0.25, split_rng);

    const core::ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_resnet18_s(outputs, rng);
    };
    core::ExperimentConfig config =
        bayesft::bench::default_experiment_config();
    config.train.learning_rate = 0.02;
    config.bayesft.train = config.train;
    for (auto _ : state) {
        bayesft::bench::run_fig3_panel(
            state,
            "Fig. 3(d): ResNet18-S on synthetic objects (CIFAR-10 substitute)",
            "fig3d_resnet_cifar.csv", factory, parts.train, parts.test, 10,
            config);
    }
}
BENCHMARK(BM_Fig3dResnetCifar)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
