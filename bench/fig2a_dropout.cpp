// Fig. 2(a) reproduction: dropout ablation for drift robustness.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig2a_dropout") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig2aDropout(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig2a_dropout",
            "Fig. 2(a): dropout ablation (MLP, synthetic digits)");
    }
}
BENCHMARK(BM_Fig2aDropout)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
