// Fig. 2(a) reproduction: dropout ablation for drift robustness.
// Expected shape (paper): both dropout variants degrade far more slowly
// than the original model; plain and alpha dropout are similar.

#include "fig2_common.hpp"

namespace {

using namespace bayesft;
using bayesft::bench::Variant;

void BM_Fig2aDropout(benchmark::State& state) {
    models::MlpOptions base;
    base.input_features = 256;
    base.hidden = 64;
    base.hidden_layers = 2;

    std::vector<Variant> variants;
    variants.push_back({"Original", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kNone;
                            return models::make_mlp(o, rng);
                        }});
    variants.push_back({"DropOut", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kStandard;
                            o.initial_dropout_rate = 0.3;
                            return models::make_mlp(o, rng);
                        }});
    variants.push_back({"AlphaDropOut", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kAlpha;
                            o.initial_dropout_rate = 0.3;
                            return models::make_mlp(o, rng);
                        }});
    for (auto _ : state) {
        bayesft::bench::run_ablation(
            state, "Fig. 2(a): dropout ablation (MLP, synthetic digits)",
            "fig2a_dropout.csv", variants);
    }
}
BENCHMARK(BM_Fig2aDropout)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
