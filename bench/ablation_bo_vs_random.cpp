// Ablation (DESIGN.md section 5): is the GP surrogate earning its keep? GP-guided search vs uniform random under the same budget.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("ablation_bo_vs_random") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_AblationBoVsRandom(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "ablation_bo_vs_random",
            "Ablation: search strategy for alpha (best drift utility, same trial budget)");
    }
}
BENCHMARK(BM_AblationBoVsRandom)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
