// Ablation (DESIGN.md section 5): is the GP surrogate earning its keep?
// Compares BayesFT's GP-guided alpha search against uniform random search
// under the same trial budget, and the paper's posterior-mean acquisition
// against EI and UCB.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "core/bayesft.hpp"
#include "data/digits.hpp"
#include "models/zoo.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

models::ModelHandle make_task_model(Rng& rng) {
    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 64;
    options.hidden_layers = 3;  // 3 searchable dropout sites
    return models::make_mlp(options, rng);
}

void BM_AblationBoVsRandom(benchmark::State& state) {
    Rng data_rng(131);
    data::DigitConfig digit_config;
    digit_config.samples = bayesft::bench::default_sample_count(1000);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(132);
    const auto parts = data::split(full, 0.25, split_rng);

    core::BayesFTConfig config;
    config.iterations = bayesft::bench::quick_mode() ? 3 : 10;
    config.epochs_per_iteration = 1;
    config.objective.sigmas = {0.3, 0.6, 0.9};
    config.objective.mc_samples = bayesft::bench::quick_mode() ? 1 : 3;
    config.final_epochs = 2;

    const struct {
        const char* name;
        const char* acquisition;  // nullptr = random search
    } strategies[] = {
        {"BO-PosteriorMean (paper)", "posterior_mean"},
        {"BO-EI", "ei"},
        {"BO-UCB", "ucb"},
        {"RandomSearch", nullptr},
    };

    for (auto _ : state) {
        ResultTable table(
            "Ablation: search strategy for alpha (best drift utility, "
            "same trial budget)",
            {"strategy", "best utility", "trials"});
        for (const auto& strategy : strategies) {
            Rng rng(777);  // identical seed: same data order per strategy
            models::ModelHandle model = make_task_model(rng);
            core::BayesFTConfig run_config = config;
            core::BayesFTResult result;
            if (strategy.acquisition != nullptr) {
                run_config.acquisition = strategy.acquisition;
                result = core::bayesft_search(model, parts.train, parts.test,
                                              run_config, rng);
            } else {
                result = core::random_search(model, parts.train, parts.test,
                                             run_config, rng);
            }
            table.add_text_row({strategy.name,
                                format_double(result.best_utility, 4),
                                std::to_string(result.trials.size())});
            state.counters[strategy.name] = result.best_utility;
        }
        std::cout << "\n" << table << std::endl;
        table.save_csv("ablation_bo_vs_random.csv");
    }
}
BENCHMARK(BM_AblationBoVsRandom)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
