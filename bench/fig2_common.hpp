#pragma once
// Shared runner for the four Fig. 2 ablation panels: train a set of MLP
// variants identically on synthetic digits, sweep the drift sigma, and
// report one accuracy curve per variant.

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/digits.hpp"
#include "fault/evaluator.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"
#include "utils/table.hpp"

namespace bayesft::bench {

struct Variant {
    std::string name;
    std::function<models::ModelHandle(Rng&)> make;
};

/// Trains every variant on the same digit task and prints / registers the
/// accuracy-vs-sigma table named `title`.
inline void run_ablation(benchmark::State& state, const std::string& title,
                         const std::string& csv_name,
                         const std::vector<Variant>& variants) {
    Rng data_rng(11);
    data::DigitConfig digit_config;
    digit_config.samples = default_sample_count(1200);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(12);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    const std::vector<double> sigmas{0.0, 0.3, 0.6, 0.9, 1.2, 1.5};
    const std::size_t mc_samples = quick_mode() ? 2 : 5;

    std::vector<std::string> columns{"sigma"};
    std::vector<std::vector<double>> curves;
    for (const Variant& variant : variants) {
        Rng rng(1000 + curves.size());
        models::ModelHandle model = variant.make(rng);
        nn::TrainConfig train_config;
        train_config.epochs = quick_mode() ? 3 : 10;
        nn::train_classifier(*model.net, parts.train.images,
                             parts.train.labels, train_config, rng);
        Rng eval_rng(2000 + curves.size());
        curves.push_back(fault::sigma_sweep(*model.net, parts.test.images,
                                            parts.test.labels, sigmas,
                                            mc_samples, eval_rng));
        columns.push_back(variant.name);
        for (std::size_t i = 0; i < sigmas.size(); ++i) {
            state.counters[variant.name + "@s" + format_double(sigmas[i], 1)] =
                curves.back()[i] * 100.0;
        }
    }

    ResultTable table(title, columns);
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
        std::vector<double> row{sigmas[i]};
        for (const auto& curve : curves) row.push_back(curve[i] * 100.0);
        table.add_row(row);
    }
    std::cout << "\n" << table << std::endl;
    table.save_csv(csv_name);
}

}  // namespace bayesft::bench
