// Fig. 3(c) reproduction: AlexNet-S on CIFAR-10 substitute, all five methods vs drift sigma.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3c_alexnet_cifar") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3cAlexnetCifar(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3c_alexnet_cifar",
            "Fig. 3(c): AlexNet-S on synthetic objects (CIFAR-10 substitute)");
    }
}
BENCHMARK(BM_Fig3cAlexnetCifar)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
