// Ablation (DESIGN.md section 5): sensitivity of the Monte-Carlo objective (Eq. 4) to the sample count T.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("ablation_mc_samples") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_AblationMcSamples(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "ablation_mc_samples",
            "Ablation: MC sample count T vs utility-estimate noise (Eq. 4, sigma = 0.6)");
    }
}
BENCHMARK(BM_AblationMcSamples)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
