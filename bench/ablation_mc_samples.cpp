// Ablation (DESIGN.md section 5): sensitivity of the Monte-Carlo objective
// (Eq. 4) to the sample count T.  Reports the standard deviation of the
// utility estimate across repeated estimates, and the wall-clock cost —
// the tradeoff that motivates the paper's small T.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/objective.hpp"
#include "data/digits.hpp"
#include "models/zoo.hpp"
#include "utils/stopwatch.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

void BM_AblationMcSamples(benchmark::State& state) {
    Rng data_rng(141);
    data::DigitConfig digit_config;
    digit_config.samples = bayesft::bench::default_sample_count(800);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(142);
    const auto parts = data::split(full, 0.25, split_rng);

    Rng rng(143);
    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 64;
    models::ModelHandle model = models::make_mlp(options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = bayesft::bench::quick_mode() ? 3 : 8;
    core::train_erm(model, parts.train, train_config, rng);

    const std::size_t repeats = bayesft::bench::quick_mode() ? 4 : 10;
    for (auto _ : state) {
        ResultTable table(
            "Ablation: MC sample count T vs utility-estimate noise "
            "(Eq. 4, sigma = 0.6)",
            {"T", "mean utility", "std across estimates", "seconds/estimate"});
        for (std::size_t t : {1, 2, 4, 8, 16}) {
            core::ObjectiveConfig objective;
            objective.sigmas = {0.6};
            objective.mc_samples = t;
            std::vector<double> estimates;
            Stopwatch watch;
            for (std::size_t r = 0; r < repeats; ++r) {
                Rng eval_rng(1000 + r);
                estimates.push_back(core::drift_utility(
                    *model.net, parts.test.images, parts.test.labels,
                    objective, eval_rng));
            }
            const double elapsed =
                watch.seconds() / static_cast<double>(repeats);
            double mean = 0.0;
            for (double e : estimates) mean += e;
            mean /= static_cast<double>(estimates.size());
            double var = 0.0;
            for (double e : estimates) var += (e - mean) * (e - mean);
            var /= static_cast<double>(estimates.size());
            table.add_row({static_cast<double>(t), mean, std::sqrt(var),
                           elapsed});
            state.counters["std@T" + std::to_string(t)] = std::sqrt(var);
        }
        std::cout << "\n" << table << std::endl;
        table.save_csv("ablation_mc_samples.csv");
    }
}
BENCHMARK(BM_AblationMcSamples)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
