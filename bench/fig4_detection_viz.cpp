// Fig. 4 reproduction: qualitative detection visualization under weight
// drifting 0.1 / 0.2 / 0.4 for ERM vs BayesFT-style dropout training.
//
// For each drift level, the bench renders the same scenes with both models'
// detections overlaid: ASCII to stdout ('#' = detection, '+' = ground
// truth) and PPM files (red = detection, green = ground truth) on disk —
// the CPU-world analogue of the paper's image grid.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "data/pedestrians.hpp"
#include "detect/detector.hpp"
#include "detect/render.hpp"
#include "fault/drift.hpp"
#include "fault/injector.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

Tensor scene_slice(const Tensor& images, std::size_t index) {
    const std::size_t row = images.size() / images.dim(0);
    Tensor out({images.dim(1), images.dim(2), images.dim(3)});
    std::copy_n(images.data() + index * row, row, out.data());
    return out;
}

void BM_Fig4DetectionViz(benchmark::State& state) {
    Rng rng(121);
    data::PedestrianConfig data_config;
    data_config.samples = bayesft::bench::quick_mode() ? 80 : 200;
    const data::DetectionDataset scenes =
        data::synthetic_pedestrians(data_config, rng);

    for (auto _ : state) {
        detect::GridDetectorConfig config;
        detect::DetectorTrainConfig train_config;
        train_config.epochs = bayesft::bench::quick_mode() ? 15 : 50;

        Rng erm_rng(122);
        detect::GridDetector erm(config, erm_rng);
        erm.train(scenes.images, scenes.boxes, train_config, erm_rng);

        // "BayesFT" detector: moderate dropout on every stage (the searched
        // configuration fig3j converges to); retrained from scratch.
        Rng bft_rng(123);
        detect::GridDetector bft(config, bft_rng);
        for (nn::Dropout* site : bft.dropout_sites()) site->set_rate(0.2);
        bft.train(scenes.images, scenes.boxes, train_config, bft_rng);

        ResultTable table("Fig. 4: detections kept under drift (2 scenes)",
                          {"drift", "ERM detections", "BayesFT detections"});
        Rng drift_rng(124);
        for (double sigma : {0.1, 0.2, 0.4}) {
            const fault::LogNormalDrift drift(sigma);
            fault::WeightSnapshot erm_snapshot(erm.network());
            fault::WeightSnapshot bft_snapshot(bft.network());
            fault::inject(erm.network(), drift, drift_rng);
            fault::inject(bft.network(), drift, drift_rng);

            const auto erm_dets = erm.detect(scenes.images);
            const auto bft_dets = bft.detect(scenes.images);
            std::size_t erm_count = 0;
            std::size_t bft_count = 0;
            for (std::size_t scene = 0; scene < 2; ++scene) {
                const Tensor img = scene_slice(scenes.images, scene);
                std::cout << "=== drift " << sigma << ", scene " << scene
                          << ", ERM ('#'=det, '+'=gt) ===\n"
                          << detect::render_ascii(img, erm_dets[scene],
                                                  scenes.boxes[scene])
                          << "=== drift " << sigma << ", scene " << scene
                          << ", BayesFT ===\n"
                          << detect::render_ascii(img, bft_dets[scene],
                                                  scenes.boxes[scene])
                          << std::endl;
                const std::string tag = "fig4_s" + format_double(sigma, 1) +
                                        "_scene" + std::to_string(scene);
                detect::write_ppm(tag + "_erm.ppm", img, erm_dets[scene],
                                  scenes.boxes[scene]);
                detect::write_ppm(tag + "_bayesft.ppm", img, bft_dets[scene],
                                  scenes.boxes[scene]);
            }
            for (const auto& dets : erm_dets) erm_count += dets.size();
            for (const auto& dets : bft_dets) bft_count += dets.size();
            table.add_row({sigma, static_cast<double>(erm_count),
                           static_cast<double>(bft_count)});
            state.counters["ERM_dets@s" + format_double(sigma, 1)] =
                static_cast<double>(erm_count);
            state.counters["BayesFT_dets@s" + format_double(sigma, 1)] =
                static_cast<double>(bft_count);
        }
        std::cout << table << std::endl;
        table.save_csv("fig4_detection_viz.csv");
    }
}
BENCHMARK(BM_Fig4DetectionViz)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
