// Unified experiment driver: lists and runs every registered fig2 / fig3 /
// ablation scenario by name through the core ExperimentRegistry, replacing
// one hand-rolled main per figure.  Results are printed as tables and
// optionally emitted as machine-readable JSON records (one per curve point,
// the same flat-array shape as BENCH_micro_ops.json).
//
// Usage:
//   experiments --list
//   experiments --run fig3a_mlp_mnist [--run toy_mlp_blobs ...]
//   experiments --family fig2                 (run a whole family)
//   experiments --run toy_mlp_blobs --quick --batch 4 --threads 8 \
//               --json experiments.json [--seed 7]
//   experiments --run archsearch_fig2_mlp --repeat 5 --json out.json
//               (5 distinct seeds; JSON gains mean/stddev aggregates)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/persist.hpp"
#include "core/registry.hpp"
#include "core/runstore.hpp"
#include "utils/logging.hpp"
#include "utils/parallel.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

void print_usage() {
    std::cout <<
        "usage: experiments [options]\n"
        "  --list            list registered experiments and exit\n"
        "  --run <name>      run one experiment (repeatable)\n"
        "  --family <fam>    run every experiment of a family "
        "(fig2|fig3|faults|archsearch|ablation|toy)\n"
        "  --quick           shrink datasets/epochs for a smoke run\n"
        "  --batch <q>       BayesFT candidate batch size (default 1)\n"
        "  --threads <n>     thread budget (sets BAYESFT_NUM_THREADS)\n"
        "  --workers <n>     farm candidate evaluations to n forked worker\n"
        "                    processes (self-contained searches only:\n"
        "                    archsearch_* and toy_arch_blobs; result-\n"
        "                    invariant; docs/distributed.md)\n"
        "  --seed <s>        override the scenario base seed\n"
        "  --repeat <n>      re-run each scenario with n distinct seeds and\n"
        "                    add mean/stddev aggregate records to the JSON\n"
        "  --json <path>     write flat JSON records for all runs\n"
        "  --checkpoint <p>  checkpoint/resume the scenario's search at this\n"
        "                    path (one scenario, no --repeat;\n"
        "                    docs/checkpointing.md)\n"
        "  --stop-after <n>  halt the search after n new trials (checkpoint\n"
        "                    stays on disk; resume by re-running)\n"
        "  --runs-dir <dir>  run-store directory (default: runs)\n"
        "  --no-store        skip appending to the JSONL run store\n"
        "  --isolate         fork each self-contained candidate evaluation\n"
        "                    into a crash-isolated child (archsearch\n"
        "                    scenarios; docs/robustness.md)\n"
        "  --trial-timeout <sec>  per-trial wall-clock deadline; isolated\n"
        "                    children are SIGKILLed past it (0 = none)\n"
        "  --max-retries <n> re-attempts before a failing trial is\n"
        "                    quarantined (default 2)\n"
        "  --fail-policy <p> how quarantined trials reach the GP:\n"
        "                    penalize (default) | exclude\n"
        "  --inference <m>   fixed-point forward mode for the quantized-\n"
        "                    inference scenarios: float32 (default) | int8 |\n"
        "                    int12 (docs/performance.md)\n"
        "  --trust-region    switch proposals to TuRBO-style trust-region\n"
        "                    local BO once the search has enough history\n"
        "                    (docs/optimizer-scaling.md); part of the\n"
        "                    scenario digest when enabled\n"
        "  --tr-after <n>    observed trials before the trust region\n"
        "                    activates (default 500; needs --trust-region)\n"
        "  --checkpoint-info <p>  load the checkpoint at <p>, print its\n"
        "                    metadata (format version, trial count, trust-\n"
        "                    region state), and exit; fails on a file this\n"
        "                    build cannot resume\n";
}

struct JsonRecord {
    std::string experiment;
    std::string curve;
    std::string x_label;
    double x = 0.0;
    double value = 0.0;
    double seconds = 0.0;
    std::string stat = "raw";  ///< "raw" | "mean" | "stddev"
    std::uint64_t seed = 0;    ///< effective seed of a raw record
};

void write_json(const std::string& path, const std::vector<JsonRecord>& records,
                const core::RunOptions& options, std::size_t repeats) {
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("experiments: cannot write " + path);
    }
    out << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const JsonRecord& r = records[i];
        out << "  {\"experiment\": \"" << r.experiment << "\", \"curve\": \""
            << r.curve << "\", \"x_label\": \"" << r.x_label
            << "\", \"x\": " << r.x << ", \"value\": " << r.value
            << ", \"stat\": \"" << r.stat << "\", \"seed\": " << r.seed
            << ", \"repeats\": " << repeats
            << ", \"batch\": " << options.batch
            << ", \"threads\": " << parallel_thread_count()
            << ", \"quick\": " << (options.quick ? "true" : "false")
            << ", \"seconds\": " << r.seconds << "}"
            << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "]\n";
}

/// Fault-level axes report fractions (accuracy or mAP) rendered as
/// percentages; the ablation axes (mc_samples, trial_budget) report
/// utilities/seconds and stay raw.
bool percent_axis(const std::string& x_label) {
    return x_label == "sigma" || x_label == "stuck_fraction" ||
           x_label == "flip_probability" || x_label == "bits";
}

/// Appends one finished (or checkpoint-interrupted) run to the JSONL run
/// store: one "trial" record per trial not already stored, plus one
/// "summary" record when the run completed.
///
/// A resumed run reconciles against the store file instead of trusting
/// `resumed_trials` alone: a cooperatively stopped (--stop-after)
/// predecessor appended its trials before exiting, but a killed process
/// never reached the append, so the resumed invocation must backfill
/// whatever trial indices are missing.  Trial records are deterministic
/// functions of (scenario, seed, config), so skipping indices that are
/// already present can never lose information.  The same reconciliation
/// keeps a re-run of an already-complete checkpoint from appending a
/// duplicate summary for the seed.
void append_to_store(const std::string& runs_dir,
                     const core::ExperimentRegistry& registry,
                     const core::RegistryResult& result,
                     const core::RunOptions& options) {
    const core::ExperimentSpec* spec = registry.find(result.experiment);
    core::RunRecord base;
    base.scenario = result.experiment;
    base.family = spec != nullptr ? spec->family : "";
    base.seed = options.seed;
    base.build = core::build_stamp();
    base.batch = std::max<std::size_t>(1, options.batch);
    base.threads = parallel_thread_count();
    base.workers = options.workers;
    base.quick = options.quick;

    std::set<std::uint64_t> stored_trials;
    bool stored_summary = false;
    if (result.resumed_trials > 0) {
        const std::string path =
            runs_dir + "/" + result.experiment + ".jsonl";
        if (std::filesystem::is_regular_file(path)) {
            for (const core::RunRecord& record :
                 core::RunStore::parse_file(path)) {
                if (record.seed != options.seed) continue;
                if (record.kind == "trial") {
                    stored_trials.insert(record.trial);
                } else {
                    stored_summary = true;
                }
            }
        }
    }

    std::vector<core::RunRecord> rows;
    for (const core::TrialRecord& trial : result.trials) {
        if (stored_trials.count(trial.index) != 0) continue;
        core::RunRecord row = base;
        row.kind = "trial";
        row.trial = trial.index;
        row.point = trial.point;
        row.objective = trial.objective;
        row.status = trial.status;
        rows.push_back(std::move(row));
    }
    if (result.search_completed && !stored_summary) {
        core::RunRecord summary = base;
        summary.kind = "summary";
        summary.trials = result.trials.size();
        if (!result.trials.empty()) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < result.trials.size(); ++i) {
                if (result.trials[i].objective >
                    result.trials[best].objective) {
                    best = i;
                }
            }
            summary.best_trial = result.trials[best].index;
            summary.best_point = result.trials[best].point;
            summary.best_objective = result.trials[best].objective;
        }
        summary.annotation = result.annotation;
        summary.seconds = result.seconds;
        rows.push_back(std::move(summary));
    }
    core::RunStore(runs_dir).append(result.experiment, rows);
}

/// Mean and population standard deviation of one (curve, x) cell across
/// the repeated runs.
std::pair<double, double> mean_stddev(const std::vector<double>& values) {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    return {mean, std::sqrt(var)};
}

}  // namespace

int main(int argc, char** argv) {
    bool list = false;
    std::vector<std::string> names;
    std::vector<std::string> families;
    std::string json_path;
    std::string checkpoint_info;
    std::string runs_dir = "runs";
    bool store_runs = true;
    std::size_t repeat = 1;
    core::RunOptions options;

    auto need_value = [&](int& i, const char* flag) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "experiments: " << flag << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    auto need_real = [&](int& i, const char* flag) -> double {
        const std::string value = need_value(i, flag);
        try {
            std::size_t used = 0;
            const double parsed = std::stod(value, &used);
            if (used != value.size() || !(parsed >= 0.0)) {
                throw std::invalid_argument(value);
            }
            return parsed;
        } catch (const std::exception&) {
            std::cerr << "experiments: " << flag
                      << " needs a non-negative number, got '" << value
                      << "'\n";
            std::exit(2);
        }
    };
    auto need_number = [&](int& i, const char* flag) -> std::uint64_t {
        const std::string value = need_value(i, flag);
        // Digits only: stoull would silently wrap "-1" to 2^64 - 1.
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos) {
            std::cerr << "experiments: " << flag
                      << " needs a non-negative number, got '" << value
                      << "'\n";
            std::exit(2);
        }
        try {
            return std::stoull(value);
        } catch (const std::exception&) {
            std::cerr << "experiments: " << flag
                      << " needs a non-negative number, got '" << value
                      << "'\n";
            std::exit(2);
        }
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg == "--run") {
            names.push_back(need_value(i, "--run"));
        } else if (arg == "--family") {
            families.push_back(need_value(i, "--family"));
        } else if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--batch") {
            options.batch = need_number(i, "--batch");
        } else if (arg == "--threads") {
            options.threads = need_number(i, "--threads");
        } else if (arg == "--workers") {
            options.workers = need_number(i, "--workers");
        } else if (arg == "--seed") {
            options.seed = need_number(i, "--seed");
        } else if (arg == "--repeat") {
            repeat = need_number(i, "--repeat");
            if (repeat == 0) {
                std::cerr << "experiments: --repeat needs n >= 1\n";
                return 2;
            }
        } else if (arg == "--json") {
            json_path = need_value(i, "--json");
        } else if (arg == "--checkpoint") {
            options.checkpoint = need_value(i, "--checkpoint");
        } else if (arg == "--stop-after") {
            options.stop_after = need_number(i, "--stop-after");
        } else if (arg == "--runs-dir") {
            runs_dir = need_value(i, "--runs-dir");
        } else if (arg == "--no-store") {
            store_runs = false;
        } else if (arg == "--isolate") {
            options.isolate = true;
        } else if (arg == "--trial-timeout") {
            options.trial_timeout = need_real(i, "--trial-timeout");
        } else if (arg == "--max-retries") {
            options.max_retries = need_number(i, "--max-retries");
        } else if (arg == "--fail-policy") {
            options.fail_policy = need_value(i, "--fail-policy");
            if (options.fail_policy != "penalize" &&
                options.fail_policy != "exclude") {
                std::cerr << "experiments: --fail-policy needs 'penalize' "
                             "or 'exclude', got '" << options.fail_policy
                          << "'\n";
                return 2;
            }
        } else if (arg == "--trust-region") {
            options.trust_region = true;
        } else if (arg == "--tr-after") {
            options.tr_after = need_number(i, "--tr-after");
        } else if (arg == "--checkpoint-info") {
            checkpoint_info = need_value(i, "--checkpoint-info");
        } else if (arg == "--inference") {
            options.inference = need_value(i, "--inference");
            if (options.inference != "float32" &&
                options.inference != "int8" &&
                options.inference != "int12") {
                std::cerr << "experiments: --inference needs 'float32', "
                             "'int8' or 'int12', got '" << options.inference
                          << "'\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            print_usage();
            return 0;
        } else {
            std::cerr << "experiments: unknown option " << arg << "\n";
            print_usage();
            return 2;
        }
    }
    if (!checkpoint_info.empty()) {
        // Inspection mode: prove the file loads under this build's reader
        // (the CI cross-version smoke), then print what a resume would see.
        try {
            const core::SearchCheckpoint ckpt =
                core::load_checkpoint(checkpoint_info);
            std::uint64_t version = 0;
            {
                std::ifstream in(checkpoint_info);
                std::string magic;
                in >> magic >> version;
            }
            std::cout << "checkpoint " << checkpoint_info << "\n"
                      << "  format_version " << version << " (this build reads "
                      << core::SearchCheckpoint::kOldestReadableVersion << ".."
                      << core::SearchCheckpoint::kVersion << ", writes "
                      << core::SearchCheckpoint::kVersion << ")\n"
                      << "  run_id " << ckpt.run_id << "\n"
                      << "  build " << ckpt.build << "\n"
                      << "  trials_done " << ckpt.trials_done << "\n"
                      << "  initial_used " << ckpt.bo.initial_used << "\n"
                      << "  trust_region length="
                      << ckpt.bo.trust_region.length << " successes="
                      << ckpt.bo.trust_region.successes << " failures="
                      << ckpt.bo.trust_region.failures << " restarts="
                      << ckpt.bo.trust_region.restarts << "\n";
            return 0;
        } catch (const std::exception& error) {
            std::cerr << "experiments: " << error.what() << "\n";
            return 1;
        }
    }
    if (options.tr_after != 500 && !options.trust_region) {
        std::cerr << "experiments: --tr-after needs --trust-region (it only "
                     "shapes the trust-region activation point)\n";
        return 2;
    }
    // Fail fast on an unusable --json target (a directory, a missing or
    // unwritable parent) instead of discovering it after minutes of
    // computation — or worse, never writing anything.
    if (!json_path.empty()) {
        try {
            core::validate_output_file(json_path);
        } catch (const std::exception& error) {
            std::cerr << "experiments: --json: " << error.what() << "\n";
            return 2;
        }
    }
    if (!options.checkpoint.empty()) {
        // Same fail-fast contract as --json: discover an unwritable
        // checkpoint target before the warmup epochs, not after them.
        // The probe never truncates an existing checkpoint, so resume
        // detection is unaffected.
        try {
            core::validate_output_file(options.checkpoint);
        } catch (const std::exception& error) {
            std::cerr << "experiments: --checkpoint: " << error.what()
                      << "\n";
            return 2;
        }
    }
    if (!options.checkpoint.empty() && repeat > 1) {
        std::cerr << "experiments: --checkpoint cannot be combined with "
                     "--repeat (every seed would fight over one file)\n";
        return 2;
    }
    if (options.stop_after != 0 && options.checkpoint.empty()) {
        std::cerr << "experiments: --stop-after needs --checkpoint (there "
                     "is nothing to resume from otherwise)\n";
        return 2;
    }
    // The pool reads BAYESFT_NUM_THREADS once at first use; honour --threads
    // before anything touches it.
    if (options.threads != 0) {
        setenv("BAYESFT_NUM_THREADS",
               std::to_string(options.threads).c_str(), 1);
    }
    const char* quick_env = std::getenv("BAYESFT_QUICK");
    if (quick_env != nullptr && quick_env[0] != '\0' && quick_env[0] != '0') {
        options.quick = true;
    }
    set_log_level(options.quick ? LogLevel::Error : LogLevel::Info);

    const core::ExperimentRegistry& registry =
        core::ExperimentRegistry::instance();
    if (list) {
        ResultTable table("registered experiments",
                          {"name", "family", "description"});
        for (const core::ExperimentSpec& spec : registry.list()) {
            table.add_text_row({spec.name, spec.family, spec.description});
        }
        std::cout << table;
        return 0;
    }
    for (const std::string& family : families) {
        bool any = false;
        for (const core::ExperimentSpec& spec : registry.list()) {
            if (spec.family == family) {
                names.push_back(spec.name);
                any = true;
            }
        }
        if (!any) {
            std::cerr << "experiments: no experiments in family '" << family
                      << "'\n";
            return 2;
        }
    }
    if (names.empty()) {
        print_usage();
        return 2;
    }
    for (const std::string& name : names) {
        if (registry.find(name) == nullptr) {
            std::cerr << "experiments: unknown experiment '" << name
                      << "' (use --list)\n";
            return 2;
        }
    }
    if (!options.checkpoint.empty() && names.size() > 1) {
        std::cerr << "experiments: --checkpoint covers exactly one "
                     "scenario, got " << names.size() << "\n";
        return 2;
    }
    if (!options.checkpoint.empty()) {
        // Durability must never be a silent no-op: scenarios that do not
        // wire the checkpoint into a search driver reject the flag instead
        // of running a full unresumable budget.
        const core::ExperimentSpec* spec = registry.find(names.front());
        if (spec != nullptr && !spec->checkpointable) {
            std::cerr << "experiments: scenario '" << names.front()
                      << "' has no resumable search loop; --checkpoint is "
                         "supported by the fig3 classification panels, "
                         "faults_fig3a_*, archsearch_*, and toy\n";
            return 2;
        }
    }

    if (options.workers != 0) {
        // Fail-fast probes for --workers (docs/distributed.md): the flag
        // must never be a silent no-op or silently change semantics.
        if (repeat > 1) {
            std::cerr << "experiments: --workers cannot be combined with "
                         "--repeat (one worker pool per search; repeated "
                         "seeds would interleave their pools)\n";
            return 2;
        }
        if (options.isolate) {
            std::cerr << "experiments: --workers cannot be combined with "
                         "--isolate (workers already run in child "
                         "processes; pick one execution model)\n";
            return 2;
        }
        for (const std::string& name : names) {
            const core::ExperimentSpec* spec = registry.find(name);
            if (spec != nullptr && !spec->distributable) {
                std::cerr << "experiments: scenario '" << name
                          << "' cannot be distributed (its search evolves "
                             "model weights that cannot cross the worker "
                             "pipe); --workers is supported by the "
                             "self-contained searches: archsearch_* and "
                             "toy_arch_blobs\n";
                return 2;
            }
        }
    }

    if (store_runs) {
        // Probe the run store only after the scenario names validated:
        // by default every run appends there, and discovering an
        // unwritable directory after the computation would lose the
        // records (and abort before --json) — but an erroneous invocation
        // must not litter the cwd with an empty runs/ either.
        try {
            core::RunStore(runs_dir).probe();
        } catch (const std::exception& error) {
            std::cerr << "experiments: --runs-dir: " << error.what()
                      << "\n";
            return 2;
        }
    }

    std::vector<JsonRecord> records;
    for (const std::string& name : names) {
        std::vector<core::RegistryResult> runs;
        for (std::size_t r = 0; r < repeat; ++r) {
            // Distinct seeds per repeat: run 0 reproduces the single-run
            // behaviour; later runs shift the scenario base seed.
            core::RunOptions run_options = options;
            run_options.seed = options.seed + r;
            core::RegistryResult result;
            try {
                result = registry.run(name, run_options);
            } catch (const std::exception& error) {
                std::cerr << "experiments: " << error.what() << "\n";
                return 1;
            }
            const bool percent = percent_axis(result.x_label);
            std::string title = name + (percent ? " (%)" : "");
            if (repeat > 1) {
                title += " [seed " + std::to_string(run_options.seed) + "]";
            }
            if (!result.xs.empty()) {
                std::cout << "\n"
                          << result.to_table(title, percent ? 100.0 : 1.0)
                          << "  wall clock: "
                          << format_double(result.seconds, 2) << " s\n";
            }
            if (!result.search_completed) {
                std::cout << "\n" << name << ": search checkpointed after "
                          << result.trials.size()
                          << " trials; re-run with --checkpoint "
                          << options.checkpoint << " to resume\n";
            }
            if (!result.annotation.empty()) {
                std::cout << "  best point: " << result.annotation << "\n";
            }
            if (!result.bayesft_alpha.empty()) {
                std::cout << "  BayesFT best alpha:";
                for (double a : result.bayesft_alpha) {
                    std::cout << ' ' << format_double(a, 3);
                }
                std::cout << "\n";
            }
            if (store_runs) {
                try {
                    append_to_store(runs_dir, registry, result, run_options);
                } catch (const std::exception& error) {
                    std::cerr << "experiments: " << error.what() << "\n";
                    return 1;
                }
            }
            for (const core::NamedCurve& curve : result.curves) {
                for (std::size_t i = 0; i < result.xs.size(); ++i) {
                    records.push_back({result.experiment, curve.label,
                                       result.x_label, result.xs[i],
                                       curve.values[i], result.seconds,
                                       "raw", run_options.seed});
                }
            }
            runs.push_back(std::move(result));
        }
        if (repeat > 1) {
            // Mean/stddev aggregates across the repeated seeds, per
            // (curve, x) cell; every run of one scenario shares xs and
            // curve labels by construction.
            const core::RegistryResult& first = runs.front();
            double seconds = 0.0;
            for (const core::RegistryResult& run : runs) {
                seconds += run.seconds;
            }
            seconds /= static_cast<double>(runs.size());
            core::RegistryResult aggregate;
            aggregate.experiment = first.experiment;
            aggregate.x_label = first.x_label;
            aggregate.xs = first.xs;
            aggregate.seconds = seconds;
            for (std::size_t c = 0; c < first.curves.size(); ++c) {
                core::NamedCurve mean_curve{first.curves[c].label + "|mean",
                                            {}};
                core::NamedCurve sd_curve{first.curves[c].label + "|stddev",
                                          {}};
                for (std::size_t i = 0; i < first.xs.size(); ++i) {
                    std::vector<double> cell;
                    cell.reserve(runs.size());
                    for (const core::RegistryResult& run : runs) {
                        cell.push_back(run.curves[c].values[i]);
                    }
                    const auto [mean, sd] = mean_stddev(cell);
                    mean_curve.values.push_back(mean);
                    sd_curve.values.push_back(sd);
                    records.push_back({first.experiment,
                                       first.curves[c].label, first.x_label,
                                       first.xs[i], mean, seconds, "mean",
                                       options.seed});
                    records.push_back({first.experiment,
                                       first.curves[c].label, first.x_label,
                                       first.xs[i], sd, seconds, "stddev",
                                       options.seed});
                }
                aggregate.curves.push_back(std::move(mean_curve));
                aggregate.curves.push_back(std::move(sd_curve));
            }
            const bool percent = percent_axis(first.x_label);
            std::cout << "\n"
                      << aggregate.to_table(
                             name + " aggregate over " +
                                 std::to_string(repeat) + " seeds" +
                                 (percent ? " (%)" : ""),
                             percent ? 100.0 : 1.0)
                      << "  mean wall clock: "
                      << format_double(seconds, 2) << " s\n";
        }
    }
    if (!json_path.empty()) {
        write_json(json_path, records, options, repeat);
        std::cout << "\nwrote " << json_path << " (" << records.size()
                  << " records)\n";
    }
    return 0;
}
