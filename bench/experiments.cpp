// Unified experiment driver: lists and runs every registered fig2 / fig3 /
// ablation scenario by name through the core ExperimentRegistry, replacing
// one hand-rolled main per figure.  Results are printed as tables and
// optionally emitted as machine-readable JSON records (one per curve point,
// the same flat-array shape as BENCH_micro_ops.json).
//
// Usage:
//   experiments --list
//   experiments --run fig3a_mlp_mnist [--run toy_mlp_blobs ...]
//   experiments --family fig2                 (run a whole family)
//   experiments --run toy_mlp_blobs --quick --batch 4 --threads 8 \
//               --json experiments.json [--seed 7]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "utils/logging.hpp"
#include "utils/parallel.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

void print_usage() {
    std::cout <<
        "usage: experiments [options]\n"
        "  --list            list registered experiments and exit\n"
        "  --run <name>      run one experiment (repeatable)\n"
        "  --family <fam>    run every experiment of a family "
        "(fig2|fig3|faults|ablation|toy)\n"
        "  --quick           shrink datasets/epochs for a smoke run\n"
        "  --batch <q>       BayesFT candidate batch size (default 1)\n"
        "  --threads <n>     thread budget (sets BAYESFT_NUM_THREADS)\n"
        "  --seed <s>        override the scenario base seed\n"
        "  --json <path>     write flat JSON records for all runs\n";
}

struct JsonRecord {
    std::string experiment;
    std::string curve;
    std::string x_label;
    double x = 0.0;
    double value = 0.0;
    double seconds = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonRecord>& records,
                const core::RunOptions& options) {
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("experiments: cannot write " + path);
    }
    out << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const JsonRecord& r = records[i];
        out << "  {\"experiment\": \"" << r.experiment << "\", \"curve\": \""
            << r.curve << "\", \"x_label\": \"" << r.x_label
            << "\", \"x\": " << r.x << ", \"value\": " << r.value
            << ", \"batch\": " << options.batch
            << ", \"threads\": " << parallel_thread_count()
            << ", \"quick\": " << (options.quick ? "true" : "false")
            << ", \"seconds\": " << r.seconds << "}"
            << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool list = false;
    std::vector<std::string> names;
    std::vector<std::string> families;
    std::string json_path;
    core::RunOptions options;

    auto need_value = [&](int& i, const char* flag) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "experiments: " << flag << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    auto need_number = [&](int& i, const char* flag) -> std::uint64_t {
        const std::string value = need_value(i, flag);
        // Digits only: stoull would silently wrap "-1" to 2^64 - 1.
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos) {
            std::cerr << "experiments: " << flag
                      << " needs a non-negative number, got '" << value
                      << "'\n";
            std::exit(2);
        }
        try {
            return std::stoull(value);
        } catch (const std::exception&) {
            std::cerr << "experiments: " << flag
                      << " needs a non-negative number, got '" << value
                      << "'\n";
            std::exit(2);
        }
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg == "--run") {
            names.push_back(need_value(i, "--run"));
        } else if (arg == "--family") {
            families.push_back(need_value(i, "--family"));
        } else if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--batch") {
            options.batch = need_number(i, "--batch");
        } else if (arg == "--threads") {
            options.threads = need_number(i, "--threads");
        } else if (arg == "--seed") {
            options.seed = need_number(i, "--seed");
        } else if (arg == "--json") {
            json_path = need_value(i, "--json");
        } else if (arg == "--help" || arg == "-h") {
            print_usage();
            return 0;
        } else {
            std::cerr << "experiments: unknown option " << arg << "\n";
            print_usage();
            return 2;
        }
    }
    // The pool reads BAYESFT_NUM_THREADS once at first use; honour --threads
    // before anything touches it.
    if (options.threads != 0) {
        setenv("BAYESFT_NUM_THREADS",
               std::to_string(options.threads).c_str(), 1);
    }
    const char* quick_env = std::getenv("BAYESFT_QUICK");
    if (quick_env != nullptr && quick_env[0] != '\0' && quick_env[0] != '0') {
        options.quick = true;
    }
    set_log_level(options.quick ? LogLevel::Error : LogLevel::Info);

    const core::ExperimentRegistry& registry =
        core::ExperimentRegistry::instance();
    if (list) {
        ResultTable table("registered experiments",
                          {"name", "family", "description"});
        for (const core::ExperimentSpec& spec : registry.list()) {
            table.add_text_row({spec.name, spec.family, spec.description});
        }
        std::cout << table;
        return 0;
    }
    for (const std::string& family : families) {
        bool any = false;
        for (const core::ExperimentSpec& spec : registry.list()) {
            if (spec.family == family) {
                names.push_back(spec.name);
                any = true;
            }
        }
        if (!any) {
            std::cerr << "experiments: no experiments in family '" << family
                      << "'\n";
            return 2;
        }
    }
    if (names.empty()) {
        print_usage();
        return 2;
    }

    std::vector<JsonRecord> records;
    for (const std::string& name : names) {
        core::RegistryResult result;
        try {
            result = registry.run(name, options);
        } catch (const std::exception& error) {
            std::cerr << "experiments: " << error.what() << "\n";
            return 1;
        }
        // Fault-level-axis experiments report fractions (accuracy or mAP);
        // render them as percentages.  The ablation axes (mc_samples,
        // trial_budget) report utilities/seconds and stay raw.
        const bool percent = result.x_label == "sigma" ||
                             result.x_label == "stuck_fraction" ||
                             result.x_label == "flip_probability" ||
                             result.x_label == "bits";
        std::cout << "\n"
                  << result.to_table(name + (percent ? " (%)" : ""),
                                     percent ? 100.0 : 1.0)
                  << "  wall clock: " << format_double(result.seconds, 2)
                  << " s\n";
        if (!result.bayesft_alpha.empty()) {
            std::cout << "  BayesFT best alpha:";
            for (double a : result.bayesft_alpha) {
                std::cout << ' ' << format_double(a, 3);
            }
            std::cout << "\n";
        }
        for (const core::NamedCurve& curve : result.curves) {
            for (std::size_t i = 0; i < result.xs.size(); ++i) {
                records.push_back({result.experiment, curve.label,
                                   result.x_label, result.xs[i],
                                   curve.values[i], result.seconds});
            }
        }
    }
    if (!json_path.empty()) {
        write_json(json_path, records, options);
        std::cout << "\nwrote " << json_path << " (" << records.size()
                  << " records)\n";
    }
    return 0;
}
