// Fig. 3(j) reproduction: object detection (PennFudanPed substitute) —
// mAP vs drift sigma in [0, 0.8], ERM vs BayesFT.
//
// BayesFT here composes the library's public primitives directly: the BO
// loop proposes per-stage dropout rates for the GridDetector and the
// utility is Monte-Carlo mAP under drift on a validation split, exactly
// the Algorithm 1 pattern applied to a non-classification metric.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bayesopt/bayesopt.hpp"
#include "bench_common.hpp"
#include "data/pedestrians.hpp"
#include "detect/detector.hpp"
#include "fault/evaluator.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

struct DetectionData {
    Tensor train_images;
    std::vector<std::vector<detect::Box>> train_boxes;
    Tensor val_images;
    std::vector<std::vector<detect::Box>> val_boxes;
    Tensor test_images;
    std::vector<std::vector<detect::Box>> test_boxes;
};

DetectionData make_detection_data() {
    Rng rng(101);
    data::PedestrianConfig config;
    config.samples = bayesft::bench::quick_mode() ? 120 : 360;
    const data::DetectionDataset scenes =
        data::synthetic_pedestrians(config, rng);

    const std::size_t n = scenes.size();
    const std::size_t row = scenes.images.size() / n;
    const std::size_t train_n = n * 6 / 10;
    const std::size_t val_n = n * 2 / 10;
    auto slice = [&](std::size_t lo, std::size_t hi, Tensor& images,
                     std::vector<std::vector<detect::Box>>& boxes) {
        std::vector<std::size_t> shape = scenes.images.shape();
        shape[0] = hi - lo;
        images = Tensor(shape);
        std::copy_n(scenes.images.data() + lo * row, (hi - lo) * row,
                    images.data());
        boxes.assign(scenes.boxes.begin() + static_cast<std::ptrdiff_t>(lo),
                     scenes.boxes.begin() + static_cast<std::ptrdiff_t>(hi));
    };
    DetectionData data;
    slice(0, train_n, data.train_images, data.train_boxes);
    slice(train_n, train_n + val_n, data.val_images, data.val_boxes);
    slice(train_n + val_n, n, data.test_images, data.test_boxes);
    return data;
}

/// mAP under LogNormalDrift(sigma), averaged over `samples` realizations.
double map_under_drift(detect::GridDetector& detector, const Tensor& images,
                       const std::vector<std::vector<detect::Box>>& boxes,
                       double sigma, std::size_t samples, Rng& rng) {
    const fault::LogNormalDrift drift(sigma);
    return fault::evaluate_metric_under_drift(
               detector.network(), drift, samples, rng,
               [&](nn::Module& m) {
                   return detector.evaluate_map_with(m, images, boxes);
               },
               0)
        .mean_accuracy;
}

/// Algorithm 1 applied to the detector: alternate short training runs with
/// BO updates on the per-stage dropout rates, utility = drift-averaged mAP.
void bayesft_detector_search(detect::GridDetector& detector,
                             const DetectionData& data, Rng& rng) {
    const std::size_t dims = detector.dropout_sites().size();
    bayesopt::BayesOptConfig bo_config;
    bo_config.initial_random_trials = 3;
    bayesopt::BayesOpt bo(
        bayesopt::BoxBounds::uniform(dims, 0.0, 0.6),
        std::make_shared<bayesopt::ArdSquaredExponential>(dims, 4.0),
        std::make_unique<bayesopt::PosteriorMean>(), bo_config, rng.split());

    detect::DetectorTrainConfig step;
    step.epochs = bayesft::bench::quick_mode() ? 4 : 10;
    const std::size_t iterations = bayesft::bench::quick_mode() ? 3 : 7;
    const std::size_t mc_samples = bayesft::bench::quick_mode() ? 1 : 2;

    for (std::size_t t = 0; t < iterations; ++t) {
        const bayesopt::Point alpha = bo.suggest();
        for (std::size_t i = 0; i < dims; ++i) {
            detector.dropout_sites()[i]->set_rate(alpha[i]);
        }
        detector.train(data.train_images, data.train_boxes, step, rng);
        double utility = 0.0;
        for (double sigma : {0.2, 0.4}) {
            utility += map_under_drift(detector, data.val_images,
                                       data.val_boxes, sigma, mc_samples,
                                       rng);
        }
        bo.observe(alpha, utility / 2.0);
    }
    const auto best = bo.best();
    for (std::size_t i = 0; i < dims; ++i) {
        detector.dropout_sites()[i]->set_rate(best->x[i]);
    }
    detector.train(data.train_images, data.train_boxes, step, rng);
}

void BM_Fig3jDetection(benchmark::State& state) {
    const DetectionData data = make_detection_data();
    const std::vector<double> sigmas{0.0, 0.2, 0.4, 0.6, 0.8};
    const std::size_t eval_samples = bayesft::bench::quick_mode() ? 2 : 4;

    for (auto _ : state) {
        // ERM detector: plain training, zero dropout.
        Rng erm_rng(111);
        detect::GridDetectorConfig config;
        detect::GridDetector erm(config, erm_rng);
        detect::DetectorTrainConfig train_config;
        train_config.epochs = bayesft::bench::quick_mode() ? 15 : 60;
        erm.train(data.train_images, data.train_boxes, train_config, erm_rng);

        // BayesFT detector.
        Rng bft_rng(112);
        detect::GridDetector bft(config, bft_rng);
        bayesft_detector_search(bft, data, bft_rng);

        ResultTable table(
            "Fig. 3(j): detection mAP vs drift (synthetic pedestrians)",
            {"sigma", "ERM mAP %", "BayesFT mAP %"});
        Rng eval_rng(113);
        for (double sigma : sigmas) {
            const double erm_map =
                map_under_drift(erm, data.test_images, data.test_boxes,
                                sigma, eval_samples, eval_rng) *
                100.0;
            const double bft_map =
                map_under_drift(bft, data.test_images, data.test_boxes,
                                sigma, eval_samples, eval_rng) *
                100.0;
            table.add_row({sigma, erm_map, bft_map});
            state.counters["ERM@s" + format_double(sigma, 1)] = erm_map;
            state.counters["BayesFT@s" + format_double(sigma, 1)] = bft_map;
        }
        std::cout << "\n" << table << std::endl;
        table.save_csv("fig3j_detection.csv");
    }
}
BENCHMARK(BM_Fig3jDetection)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
