// Fig. 3(j) reproduction: object detection (PennFudanPed substitute) - mAP vs drift, ERM vs BayesFT.
// Thin wrapper over the experiment registry: the scenario definition lives
// in src/core/registry.cpp ("fig3j_detection") and is shared with the
// `experiments` CLI driver.

#include "registry_bench.hpp"

namespace {

void BM_Fig3jDetection(benchmark::State& state) {
    for (auto _ : state) {
        bayesft::bench::run_registry_panel(
            state, "fig3j_detection",
            "Fig. 3(j): detection mAP vs drift (synthetic pedestrians)");
    }
}
BENCHMARK(BM_Fig3jDetection)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BAYESFT_BENCH_MAIN()
