// Extension example: plugging a custom fault model into the framework
// (paper Sec. II-B: "our methodology can be seamlessly extended to other
// possible weight drifting distributions").
//
// Implements a temperature-dependent drift model — log-normal scale noise
// whose sigma grows with die temperature, plus a small stuck-at-zero cell
// probability — and evaluates a trained classifier against it alongside
// the built-in fault-model zoo (drift, stuck-at, bit flips, variation,
// quantization, and a composed deployment chain).
//
// A custom FaultModel implements four members: perturb (draws only from
// the Rng argument — no hidden state, see docs/fault-models.md), clone,
// describe, and params.
//
// Build & run:  ./build/example_custom_drift

#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/baselines.hpp"
#include "data/digits.hpp"
#include "fault/drift.hpp"
#include "fault/evaluator.hpp"
#include "fault/model.hpp"
#include "fault/zoo.hpp"
#include "models/zoo.hpp"
#include "utils/logging.hpp"
#include "utils/table.hpp"

namespace {

using namespace bayesft;

/// Arrhenius-flavoured thermal drift: sigma(T) = sigma25 * exp(k (T - 25)),
/// composed with dead cells appearing above 85C.
class ThermalDrift final : public fault::FaultModel {
public:
    ThermalDrift(double sigma_at_25c, double temperature_c)
        : sigma_at_25c_(sigma_at_25c),
          sigma_(sigma_at_25c * std::exp(0.02 * (temperature_c - 25.0))),
          dead_cell_probability_(
              temperature_c > 85.0 ? 0.01 * (temperature_c - 85.0) / 10.0
                                   : 0.0),
          temperature_c_(temperature_c) {}

    void perturb(std::span<float> weights, Rng& rng) const override {
        for (float& w : weights) {
            if (dead_cell_probability_ > 0.0 &&
                rng.bernoulli(dead_cell_probability_)) {
                w = 0.0F;
                continue;
            }
            w *= static_cast<float>(rng.log_normal(0.0, sigma_));
        }
    }

    std::unique_ptr<fault::FaultModel> clone() const override {
        return std::make_unique<ThermalDrift>(sigma_at_25c_, temperature_c_);
    }

    std::string describe() const override {
        std::ostringstream os;
        os << "ThermalDrift(T=" << temperature_c_ << "C, sigma=" << sigma_
           << ", dead=" << dead_cell_probability_ << ")";
        return os.str();
    }

    std::vector<double> params() const override {
        return {sigma_at_25c_, temperature_c_};
    }

private:
    double sigma_at_25c_;
    double sigma_;
    double dead_cell_probability_;
    double temperature_c_;
};

}  // namespace

int main() {
    using namespace bayesft;
    set_log_level(LogLevel::Warn);

    Rng rng(51);
    data::DigitConfig digit_config;
    digit_config.samples = 800;
    digit_config.image_size = 16;
    const data::Dataset digits = data::synthetic_digits(digit_config, rng);
    Rng split_rng(52);
    const data::TrainTestSplit parts = data::split(digits, 0.25, split_rng);

    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 64;
    models::ModelHandle model = models::make_mlp(options, rng);
    model.set_dropout_rates({0.3, 0.3});  // a robust configuration
    nn::TrainConfig train_config;
    train_config.epochs = 10;
    nn::train_classifier(*model.net, parts.train.images, parts.train.labels,
                         train_config, rng);

    // The evaluator only sees the FaultModel interface — any perturbation
    // plugs in without touching the rest of the pipeline.
    std::vector<std::unique_ptr<fault::FaultModel>> faults;
    faults.push_back(std::make_unique<fault::LogNormalDrift>(0.5));
    faults.push_back(std::make_unique<fault::GaussianAdditiveDrift>(0.1));
    faults.push_back(std::make_unique<fault::UniformScaleDrift>(0.5));
    faults.push_back(std::make_unique<fault::StuckAtZeroDrift>(0.1));
    faults.push_back(std::make_unique<fault::SignFlipDrift>(0.02));
    faults.push_back(std::make_unique<fault::StuckAtFault>(0.05, 0.25));
    faults.push_back(std::make_unique<fault::BitFlipFault>(1e-3, 8));
    faults.push_back(std::make_unique<fault::GaussianVariationFault>(0.3));
    faults.push_back(std::make_unique<fault::QuantizationFault>(6));
    faults.push_back(std::make_unique<ThermalDrift>(0.3, 25.0));
    faults.push_back(std::make_unique<ThermalDrift>(0.3, 75.0));
    faults.push_back(std::make_unique<ThermalDrift>(0.3, 105.0));
    {
        // Composition: a real deployment chain — quantize to 8 bits, then
        // device variation, then drift.
        std::vector<std::unique_ptr<fault::FaultModel>> stages;
        stages.push_back(std::make_unique<fault::QuantizationFault>(8));
        stages.push_back(
            std::make_unique<fault::GaussianVariationFault>(0.2));
        stages.push_back(std::make_unique<fault::LogNormalDrift>(0.3));
        faults.push_back(
            std::make_unique<fault::ComposedFault>(std::move(stages)));
    }

    ResultTable table("Accuracy under the fault-model zoo "
                      "(MLP + dropout 0.3, 6 MC samples)",
                      {"fault model", "mean %", "std %"});
    for (const auto& fault : faults) {
        const auto report = fault::evaluate_under_faults(
            *model.net, parts.test.images, parts.test.labels, *fault, 6,
            rng);
        table.add_text_row({fault->describe(),
                            format_double(report.mean_accuracy * 100.0, 1),
                            format_double(report.std_accuracy * 100.0, 1)});
    }
    std::cout << table;
    return 0;
}
