// Domain example: fault-tolerant traffic-sign recognition (the paper's
// Fig. 3(i) scenario — 43 classes, spatial-transformer classifier).
//
// Demonstrates:
//   - the STN-lite model with a differentiable affine warp front-end,
//   - running BayesFT on a many-class task,
//   - comparing the searched architecture against ERM across drift levels.
//
// Build & run:  ./build/examples/traffic_sign_search

#include <iostream>

#include "core/baselines.hpp"
#include "core/bayesft.hpp"
#include "data/traffic_signs.hpp"
#include "fault/evaluator.hpp"
#include "models/zoo.hpp"
#include "utils/logging.hpp"
#include "utils/table.hpp"

int main() {
    using namespace bayesft;
    set_log_level(LogLevel::Info);

    Rng rng(21);
    data::TrafficSignConfig sign_config;
    sign_config.samples = 1720;  // 40 per class
    const data::Dataset signs =
        data::synthetic_traffic_signs(sign_config, rng);
    Rng split_rng(22);
    const data::TrainTestSplit parts = data::split(signs, 0.25, split_rng);
    std::cout << "Dataset: " << parts.train.size() << " train / "
              << parts.test.size() << " test, " << signs.num_classes
              << " classes\n";

    // ERM baseline.
    Rng erm_rng(23);
    models::ModelHandle erm_model =
        models::make_stn_classifier(43, erm_rng);
    nn::TrainConfig train_config;
    train_config.epochs = 10;
    train_config.learning_rate = 0.02;
    core::train_erm(erm_model, parts.train, train_config, erm_rng);
    std::cout << "ERM clean accuracy: "
              << format_double(
                     nn::evaluate_accuracy(*erm_model.net,
                                           parts.test.images,
                                           parts.test.labels) *
                         100.0,
                     1)
              << "%\n";

    // BayesFT search over the classifier's dropout sites.
    Rng bft_rng(24);
    models::ModelHandle bft_model =
        models::make_stn_classifier(43, bft_rng);
    core::BayesFTConfig search_config;
    search_config.iterations = 8;
    search_config.epochs_per_iteration = 2;
    // The STN needs the same gentle learning rate the ERM baseline uses —
    // the default (0.05) destabilizes the localization head.
    search_config.train = train_config;
    search_config.warmup_epochs = 3;
    search_config.objective.sigmas = {0.3, 0.6};
    search_config.objective.mc_samples = 2;
    // Cap the per-layer rate: beyond ~0.5 a searching STN can warp itself
    // into a degenerate transform it cannot train out of.
    search_config.max_dropout_rate = 0.5;
    search_config.final_epochs = 4;
    const core::BayesFTResult result = core::bayesft_search(
        bft_model, parts.train, parts.test, search_config, bft_rng);
    std::cout << "BayesFT best alpha:";
    for (double a : result.best_alpha) {
        std::cout << ' ' << format_double(a, 3);
    }
    std::cout << '\n';

    ResultTable table("Traffic-sign robustness (43 classes, STN-lite)",
                      {"sigma", "ERM %", "BayesFT %"});
    Rng eval_rng(25);
    for (double sigma : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        const fault::LogNormalDrift drift(sigma);
        const double erm_acc =
            fault::evaluate_under_drift(*erm_model.net, parts.test.images,
                                        parts.test.labels, drift, 4,
                                        eval_rng)
                .mean_accuracy;
        const double bft_acc =
            fault::evaluate_under_drift(*bft_model.net, parts.test.images,
                                        parts.test.labels, drift, 4,
                                        eval_rng)
                .mean_accuracy;
        table.add_row({sigma, erm_acc * 100.0, bft_acc * 100.0});
    }
    std::cout << table;
    return 0;
}
