// Quickstart: the 60-second tour of the BayesFT library.
//
//   1. Generate a synthetic digit dataset (MNIST substitute).
//   2. Train a small MLP with plain ERM.
//   3. Simulate ReRAM weight drift (Eq. 1) and watch accuracy collapse.
//   4. Run the BayesFT search (Algorithm 1) and compare.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/baselines.hpp"
#include "core/bayesft.hpp"
#include "data/digits.hpp"
#include "fault/evaluator.hpp"
#include "models/zoo.hpp"
#include "utils/logging.hpp"
#include "utils/table.hpp"

int main() {
    using namespace bayesft;
    set_log_level(LogLevel::Warn);

    // 1. Data: 1000 synthetic 16x16 digits, 75/25 train/test split.
    Rng rng(7);
    data::DigitConfig digit_config;
    digit_config.samples = 1000;
    digit_config.image_size = 16;
    const data::Dataset digits = data::synthetic_digits(digit_config, rng);
    Rng split_rng(8);
    const data::TrainTestSplit parts = data::split(digits, 0.25, split_rng);

    // 2. A 3-layer MLP trained with plain empirical risk minimization.
    models::MlpOptions options;
    options.input_features = 16 * 16;
    options.hidden = 64;
    options.hidden_layers = 2;
    models::ModelHandle erm_model = models::make_mlp(options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = 10;
    core::train_erm(erm_model, parts.train, train_config, rng);
    std::cout << "ERM clean test accuracy: "
              << nn::evaluate_accuracy(*erm_model.net, parts.test.images,
                                       parts.test.labels) *
                     100.0
              << "%\n";

    // 3. Drift the weights: theta' = theta * exp(N(0, sigma^2)).
    //    WeightSnapshot-based evaluation restores clean weights afterwards.
    std::cout << "\nAccuracy under memristance drift (5 MC samples each):\n";
    for (double sigma : {0.3, 0.6, 0.9, 1.2}) {
        const fault::LogNormalDrift drift(sigma);
        const auto report = fault::evaluate_under_drift(
            *erm_model.net, parts.test.images, parts.test.labels, drift, 5,
            rng);
        std::cout << "  sigma = " << sigma << ": "
                  << format_double(report.mean_accuracy * 100.0, 1) << "% (+/- "
                  << format_double(report.std_accuracy * 100.0, 1) << ")\n";
    }

    // 4. BayesFT: search per-layer dropout rates that maximize the
    //    drift-marginalized utility, alternating with SGD on the weights.
    std::cout << "\nRunning BayesFT search (Algorithm 1)...\n";
    models::ModelHandle bft_model = models::make_mlp(options, rng);
    core::BayesFTConfig search_config;
    search_config.iterations = 8;
    search_config.epochs_per_iteration = 1;
    search_config.objective.sigmas = {0.3, 0.6, 0.9};
    search_config.objective.mc_samples = 3;
    search_config.final_epochs = 3;
    const core::BayesFTResult result = core::bayesft_search(
        bft_model, parts.train, parts.test, search_config, rng);

    std::cout << "Best per-layer dropout rates:";
    for (double a : result.best_alpha) {
        std::cout << ' ' << format_double(a, 3);
    }
    std::cout << "\n\nERM vs BayesFT under drift:\n";
    ResultTable table("quickstart", {"sigma", "ERM %", "BayesFT %"});
    for (double sigma : {0.0, 0.3, 0.6, 0.9, 1.2}) {
        const fault::LogNormalDrift drift(sigma);
        const double erm_acc =
            fault::evaluate_under_drift(*erm_model.net, parts.test.images,
                                        parts.test.labels, drift, 5, rng)
                .mean_accuracy;
        const double bft_acc =
            fault::evaluate_under_drift(*bft_model.net, parts.test.images,
                                        parts.test.labels, drift, 5, rng)
                .mean_accuracy;
        table.add_row({sigma, erm_acc * 100.0, bft_acc * 100.0});
    }
    std::cout << table;
    return 0;
}
