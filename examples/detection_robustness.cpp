// Domain example: pedestrian detection under weight drift (the paper's
// Fig. 3(j)/Fig. 4 scenario).
//
// Demonstrates:
//   - the GridDetector (YOLO-lite) on synthetic pedestrian scenes,
//   - mAP evaluation under Monte-Carlo drift,
//   - ASCII visualization of detections before/after drift.
//
// Build & run:  ./build/examples/detection_robustness

#include <iostream>

#include "data/pedestrians.hpp"
#include "detect/detector.hpp"
#include "detect/render.hpp"
#include "fault/evaluator.hpp"
#include "fault/injector.hpp"
#include "utils/logging.hpp"
#include "utils/table.hpp"

int main() {
    using namespace bayesft;
    set_log_level(LogLevel::Warn);

    Rng rng(31);
    data::PedestrianConfig scene_config;
    scene_config.samples = 200;
    const data::DetectionDataset scenes =
        data::synthetic_pedestrians(scene_config, rng);

    detect::GridDetectorConfig config;
    detect::GridDetector detector(config, rng);
    detect::DetectorTrainConfig train_config;
    train_config.epochs = 50;
    std::cout << "Training grid detector on " << scenes.size()
              << " scenes...\n";
    const double final_loss =
        detector.train(scenes.images, scenes.boxes, train_config, rng);
    std::cout << "final loss " << format_double(final_loss, 4)
              << ", clean mAP@0.5 "
              << format_double(
                     detector.evaluate_map(scenes.images, scenes.boxes) *
                         100.0,
                     1)
              << "%\n\n";

    // mAP under drift.
    ResultTable table("Detection robustness (mAP@0.5, 4 MC samples)",
                      {"sigma", "mAP %"});
    for (double sigma : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        const fault::LogNormalDrift drift(sigma);
        const auto report = fault::evaluate_metric_under_drift(
            detector.network(), drift, 4, rng,
            [&](nn::Module& m) {
                return detector.evaluate_map_with(m, scenes.images,
                                                  scenes.boxes);
            },
            0);
        table.add_row({sigma, report.mean_accuracy * 100.0});
    }
    std::cout << table << '\n';

    // Visualize one scene clean vs drifted.
    const std::size_t row = scenes.images.size() / scenes.size();
    Tensor scene({3, 32, 32});
    std::copy_n(scenes.images.data(), row, scene.data());

    std::cout << "Scene 0, clean weights ('#' = detection, '+' = truth):\n"
              << detect::render_ascii(scene, detector.detect(scenes.images)[0],
                                      scenes.boxes[0]);
    {
        fault::WeightSnapshot snapshot(detector.network());
        fault::inject(detector.network(), fault::LogNormalDrift(0.4), rng);
        std::cout << "\nScene 0, drifted weights (sigma = 0.4):\n"
                  << detect::render_ascii(scene,
                                          detector.detect(scenes.images)[0],
                                          scenes.boxes[0]);
    }
    return 0;
}
