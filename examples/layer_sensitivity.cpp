// Analysis example: which parameters are the drift "Achilles' heel"?
//
// Trains a batch-normalized MLP (the architecture the paper's Fig. 2(b)
// warns about), ranks every parameter tensor by the accuracy it destroys
// when drifted alone, and round-trips the trained weights through the
// checkpoint format (the train-offline / deploy-on-ReRAM workflow).
//
// Build & run:  ./build/examples/layer_sensitivity

#include <cstdio>
#include <iostream>

#include "data/digits.hpp"
#include "fault/drift.hpp"
#include "fault/sensitivity.hpp"
#include "models/zoo.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "utils/logging.hpp"
#include "utils/table.hpp"

int main() {
    using namespace bayesft;
    set_log_level(LogLevel::Warn);

    Rng rng(61);
    data::DigitConfig digit_config;
    digit_config.samples = 800;
    digit_config.image_size = 16;
    const data::Dataset digits = data::synthetic_digits(digit_config, rng);
    Rng split_rng(62);
    const data::TrainTestSplit parts = data::split(digits, 0.25, split_rng);

    // A batch-normalized MLP — deliberately the fragile configuration.
    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 64;
    options.hidden_layers = 2;
    options.norm = models::NormKind::kBatch;
    models::ModelHandle model = models::make_mlp(options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = 10;
    nn::train_classifier(*model.net, parts.train.images, parts.train.labels,
                         train_config, rng);
    std::cout << "clean accuracy: "
              << format_double(
                     nn::evaluate_accuracy(*model.net, parts.test.images,
                                           parts.test.labels) *
                         100.0,
                     1)
              << "%\n\n";

    // Rank parameters by accuracy destroyed when drifted in isolation.
    const fault::LogNormalDrift drift(1.0);
    const auto ranked = fault::rank_by_drop(fault::per_parameter_sensitivity(
        *model.net, parts.test.images, parts.test.labels, drift, 5, rng));

    ResultTable table("Per-parameter drift sensitivity (sigma = 1.0, worst first)",
                      {"rank", "parameter", "#scalars", "drifted %", "drop %"});
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const auto& record = ranked[i];
        table.add_text_row({std::to_string(i + 1),
                            record.name + "[" + std::to_string(record.index) +
                                "]",
                            std::to_string(record.scalar_count),
                            format_double(record.drifted_accuracy * 100.0, 1),
                            format_double(record.accuracy_drop() * 100.0, 1)});
    }
    std::cout << table << '\n';
    std::cout << "Note the norm affine parameters: few scalars, outsized "
                 "damage (paper Fig. 2(b)).\n\n";

    // Checkpoint round trip: train offline, deploy later.
    const std::string path = "/tmp/bayesft_sensitivity_example.ckpt";
    nn::save_parameters(*model.net, path);
    models::ModelHandle restored = models::make_mlp(options, rng);
    nn::load_parameters(*restored.net, path);
    const double restored_accuracy = nn::evaluate_accuracy(
        *restored.net, parts.test.images, parts.test.labels);
    std::cout << "checkpoint round trip: restored model accuracy "
              << format_double(restored_accuracy * 100.0, 1) << "% (saved to "
              << path << ")\n";
    std::remove(path.c_str());
    return 0;
}
