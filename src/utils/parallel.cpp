#include "utils/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bayesft {

namespace {

thread_local bool tls_inside_worker = false;

std::size_t configured_thread_count() {
    if (const char* env = std::getenv("BAYESFT_NUM_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// One parallel_for invocation.  Chunks are claimed through an atomic cursor
/// so fast threads steal work from slow ones; `pending` counts unfinished
/// chunks and releases the calling thread when it reaches zero.  The batch is
/// shared_ptr-owned: straggler workers that wake up late keep it alive until
/// they observe the exhausted cursor.
struct Batch {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> pending{0};  // chunks not yet completed
    std::mutex error_mutex;
    std::exception_ptr error;
    std::mutex done_mutex;
    std::condition_variable done;

    void run_chunks() {
        for (;;) {
            const std::size_t lo = begin + cursor.fetch_add(grain);
            if (lo >= end) return;
            const std::size_t hi = std::min(end, lo + grain);
            try {
                (*fn)(lo, hi);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error) error = std::current_exception();
            }
            if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                // Last chunk: release the caller blocked in wait_done().
                const std::lock_guard<std::mutex> lock(done_mutex);
                done.notify_all();
            }
        }
    }

    void wait_done() {
        std::unique_lock<std::mutex> lock(done_mutex);
        done.wait(lock, [&] {
            return pending.load(std::memory_order_acquire) == 0;
        });
    }
};

class ThreadPool {
public:
    static ThreadPool& instance() {
        static ThreadPool pool(configured_thread_count());
        return pool;
    }

    std::size_t width() const { return workers_.size() + 1; }

    void run(const std::shared_ptr<Batch>& batch) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            batch_ = batch;
            ++generation_;
        }
        wake_.notify_all();
        batch->run_chunks();  // the caller is a full participant
        // Block until straggler workers finish their last chunk; all fn()
        // effects are published by the acq_rel decrements.
        batch->wait_done();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (batch_ == batch) batch_.reset();
        }
        if (batch->error) std::rethrow_exception(batch->error);
    }

    ~ThreadPool() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread& t : workers_) t.join();
    }

private:
    explicit ThreadPool(std::size_t width) {
        for (std::size_t i = 1; i < width; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    void worker_loop() {
        tls_inside_worker = true;
        std::uint64_t seen_generation = 0;
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return stop_ || generation_ != seen_generation;
                });
                if (stop_) return;
                seen_generation = generation_;
                batch = batch_;  // shared ownership keeps the batch alive
            }
            if (batch != nullptr) batch->run_chunks();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::shared_ptr<Batch> batch_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

}  // namespace

std::size_t parallel_thread_count() { return ThreadPool::instance().width(); }

bool inside_parallel_worker() { return tls_inside_worker; }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    const std::size_t n = end - begin;
    if (n <= grain || tls_inside_worker ||
        ThreadPool::instance().width() == 1) {
        fn(begin, end);
        return;
    }
    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->begin = begin;
    batch->end = end;
    batch->grain = grain;
    batch->pending.store((n + grain - 1) / grain, std::memory_order_relaxed);
    ThreadPool::instance().run(batch);
}

}  // namespace bayesft
