#pragma once
// Result tables: the bench harness prints every reproduced figure as a
// fixed-width text table (series = methods, rows = sigma values) and can
// also emit CSV for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace bayesft {

/// A column-oriented results table, e.g.
///   sigma | ERM | FTNA | ReRAM-V | AWP | BayesFT
/// Rows are added one at a time; all rows must match the header width.
class ResultTable {
public:
    ResultTable(std::string title, std::vector<std::string> columns);

    /// Appends a row of numeric cells; throws if the width mismatches.
    void add_row(const std::vector<double>& cells);

    /// Appends a row of preformatted cells; throws if the width mismatches.
    void add_text_row(const std::vector<std::string>& cells);

    const std::string& title() const { return title_; }
    const std::vector<std::string>& columns() const { return columns_; }
    std::size_t row_count() const { return rows_.size(); }

    /// Cell accessor (numeric rows render with `precision` decimals).
    const std::string& cell(std::size_t row, std::size_t col) const;

    /// Renders an aligned text table.
    std::string to_text() const;

    /// Renders RFC-4180-ish CSV (cells containing commas are quoted).
    std::string to_csv() const;

    /// Writes `to_csv()` to `path`; throws std::runtime_error on I/O failure.
    void save_csv(const std::string& path) const;

    /// Streams `to_text()`.
    friend std::ostream& operator<<(std::ostream& os, const ResultTable& t);

    /// Number of decimals used when formatting numeric cells (default 2).
    void set_precision(int digits);

private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
    int precision_ = 2;
};

/// Formats `value` with `digits` decimals (helper shared with benches).
std::string format_double(double value, int digits);

}  // namespace bayesft
