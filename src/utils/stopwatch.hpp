#pragma once
// Wall-clock stopwatch used by the trainer and bench harnesses.

#include <chrono>

namespace bayesft {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    /// Restarts the clock.
    void reset() { start_ = clock::now(); }

    /// Elapsed seconds since construction or last reset().
    double seconds() const {
        const auto delta = clock::now() - start_;
        return std::chrono::duration<double>(delta).count();
    }

    /// Elapsed milliseconds.
    double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace bayesft
