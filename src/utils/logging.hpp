#pragma once
// Minimal leveled logging.  Experiments are long-running; progress lines are
// emitted at Info level and can be silenced globally (tests set Error).

#include <sstream>
#include <string>

namespace bayesft {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits `message` to stderr if `level` >= the global level.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
public:
    explicit LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { log_message(level_, stream_.str()); }
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace bayesft
