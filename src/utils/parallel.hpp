#pragma once
// Shared parallel-compute runtime.
//
// A single lazily-initialized global thread pool backs every hot loop in the
// library (blocked GEMM row/column panels, batched im2col assembly, Monte-
// Carlo drift evaluation).  Work is expressed as `parallel_for` over an index
// range; the pool splits the range into chunks of at least `grain` indices,
// the calling thread participates, and the call returns when every chunk has
// finished.  Exceptions thrown inside chunks are captured and rethrown on the
// calling thread.
//
// Determinism: parallel_for only changes *which thread* runs a chunk, never
// the iteration order inside a chunk, so any kernel whose chunks touch
// disjoint outputs produces bit-identical results for every thread count.
//
// The pool width is `std::thread::hardware_concurrency()` unless the
// `BAYESFT_NUM_THREADS` environment variable overrides it (read once, at
// first use).  Width 1 short-circuits to a plain serial loop.  Nested calls
// from inside a pool worker also run serially, so kernels may freely use
// parallel_for even when their caller is already parallel.

#include <cstddef>
#include <functional>

namespace bayesft {

/// Width of the global pool (callers + workers): max(1, override or
/// hardware_concurrency).  This is the maximum useful `num_threads` for any
/// parallel API in the library.
std::size_t parallel_thread_count();

/// True while the current thread is a pool worker executing a chunk (used
/// internally to serialize nested parallelism; exposed for tests).
bool inside_parallel_worker();

/// Splits [begin, end) into contiguous chunks of at least `grain` indices
/// (grain 0 is treated as 1) and invokes `fn(lo, hi)` once per chunk, in
/// parallel.  Every index in [begin, end) is covered by exactly one chunk.
/// Runs serially when the range is a single chunk, the pool width is 1, or
/// the caller is itself a pool worker.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace bayesft
