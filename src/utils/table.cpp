#include "utils/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bayesft {

std::string format_double(double value, int digits) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << value;
    return os.str();
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
    if (columns_.empty()) {
        throw std::invalid_argument("ResultTable: need at least one column");
    }
}

void ResultTable::add_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) text.push_back(format_double(v, precision_));
    add_text_row(text);
}

void ResultTable::add_text_row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_.size()) {
        throw std::invalid_argument("ResultTable: row width " +
                                    std::to_string(cells.size()) +
                                    " != column count " +
                                    std::to_string(columns_.size()));
    }
    rows_.push_back(cells);
}

const std::string& ResultTable::cell(std::size_t row, std::size_t col) const {
    if (row >= rows_.size() || col >= columns_.size()) {
        throw std::out_of_range("ResultTable::cell: index out of range");
    }
    return rows_[row][col];
}

void ResultTable::set_precision(int digits) {
    if (digits < 0 || digits > 17) {
        throw std::invalid_argument("ResultTable: precision out of range");
    }
    precision_ = digits;
}

std::string ResultTable::to_text() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        widths[c] = columns_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0) os << " | ";
            os << cells[c];
            for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
                os << ' ';
            }
        }
        os << '\n';
    };
    emit_row(columns_);
    std::size_t total = columns_.size() > 0 ? 3 * (columns_.size() - 1) : 0;
    for (auto w : widths) total += w;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::string ResultTable::to_csv() const {
    auto quote = [](const std::string& s) {
        if (s.find(',') == std::string::npos &&
            s.find('"') == std::string::npos) {
            return s;
        }
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"') out += "\"\"";
            else out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c != 0) os << ',';
        os << quote(columns_[c]);
    }
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    }
    return os.str();
}

void ResultTable::save_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("ResultTable::save_csv: cannot open " + path);
    }
    out << to_csv();
    if (!out) {
        throw std::runtime_error("ResultTable::save_csv: write failed " + path);
    }
}

std::ostream& operator<<(std::ostream& os, const ResultTable& t) {
    return os << t.to_text();
}

}  // namespace bayesft
