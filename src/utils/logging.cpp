#include "utils/logging.hpp"

#include <atomic>
#include <iostream>

namespace bayesft {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF  ";
    }
    return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
    if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
        return;
    }
    std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace bayesft
