#pragma once
// Deterministic random number generation for all stochastic components.
//
// Every stochastic component in this library (weight init, dropout masks,
// drift sampling, dataset synthesis, Bayesian-optimization candidates) takes
// an explicit `Rng&` so experiments are reproducible bit-for-bit for a fixed
// seed.  The engine is xoshiro256**, a small, fast, high-quality generator.

#include <array>
#include <cstdint>
#include <vector>

namespace bayesft {

/// Complete serializable state of an Rng: the four xoshiro lanes plus the
/// Box-Muller cache (the second normal variate held between normal() calls).
/// The cached variate is stored as its IEEE-754 bit pattern so a
/// save/restore round trip is bit-exact — the checkpoint/resume determinism
/// contract (docs/checkpointing.md) depends on it.
struct RngState {
    std::array<std::uint64_t, 4> lanes{};
    std::uint64_t cached_normal_bits = 0;
    bool has_cached_normal = false;

    bool operator==(const RngState& other) const = default;
};

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// standard-library facilities (e.g. std::shuffle).
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit lanes from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~static_cast<result_type>(0); }

    /// Next raw 64-bit value.
    result_type operator()();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal via Box-Muller (cached second variate).
    double normal();

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Log-normal: exp(N(mu, sigma^2)).  This is the paper's Eq. (1) factor.
    double log_normal(double mu, double sigma);

    /// Uniform integer in [0, n), n > 0.
    std::uint64_t uniform_int(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Bernoulli draw with probability `p` of true.
    bool bernoulli(double p);

    /// Fisher-Yates shuffle of an index permutation [0, n).
    std::vector<std::size_t> permutation(std::size_t n);

    /// Derives an independent child generator, advancing this one.
    Rng split();

    /// Derives the `stream`-th deterministic child generator WITHOUT
    /// advancing this one: fork(t) is a pure function of (state, t), so a
    /// parallel loop can hand stream t to Monte-Carlo sample t and get
    /// bit-identical draws for any thread count or evaluation order.
    Rng fork(std::uint64_t stream) const;

    /// Full generator state for checkpointing; set_state restores it so the
    /// continued stream is bit-identical to one that was never saved.
    RngState state() const;
    void set_state(const RngState& state);

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace bayesft
