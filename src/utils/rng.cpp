#include "utils/rng.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

namespace bayesft {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& lane : state_) lane = splitmix64(s);
    // Avoid the all-zero state, which is a fixed point of xoshiro.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 1;
    }
}

Rng::result_type Rng::operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53-bit mantissa of the raw draw, mapped to [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 is nudged away from zero so log() is finite.
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(angle);
    has_cached_normal_ = true;
    return r * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

double Rng::log_normal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return draw % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_int(span));
}

bool Rng::bernoulli(double p) {
    return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = uniform_int(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Rng Rng::split() {
    return Rng((*this)());
}

RngState Rng::state() const {
    RngState s;
    s.lanes = state_;
    std::memcpy(&s.cached_normal_bits, &cached_normal_, sizeof(double));
    s.has_cached_normal = has_cached_normal_;
    return s;
}

void Rng::set_state(const RngState& state) {
    state_ = state.lanes;
    std::memcpy(&cached_normal_, &state.cached_normal_bits, sizeof(double));
    has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::fork(std::uint64_t stream) const {
    // Condense the four lanes, then decorrelate neighbouring streams with a
    // full splitmix64 finalization (the Rng constructor adds another).
    std::uint64_t x = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 27) ^
                      rotl(state_[3], 41);
    x += (stream + 1) * 0x9E3779B97F4A7C15ULL;
    return Rng(splitmix64(x));
}

}  // namespace bayesft
