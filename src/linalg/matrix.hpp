#pragma once
// Small dense double-precision linear algebra for the Gaussian-process
// surrogate: the GP needs Cholesky factorization of kernel matrices,
// triangular solves, and log-determinants (for the marginal likelihood).
// Double precision is used here (unlike the float NN stack) because kernel
// matrices from clustered Bayesian-optimization trials are ill-conditioned.

#include <cstddef>
#include <string>
#include <vector>

namespace bayesft::linalg {

using Vector = std::vector<double>;

/// Dense row-major double matrix with value semantics.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
    Matrix(std::size_t rows, std::size_t cols, std::vector<double> values);

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }

    double& operator()(std::size_t i, std::size_t j) {
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const {
        return data_[i * cols_ + j];
    }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    Matrix transposed() const;

    /// this += scale * I (diagonal jitter; matrix must be square).
    void add_diagonal(double scale);

    std::string to_string() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);

/// Inner product of two equal-length vectors.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm(const Vector& a);

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Throws std::runtime_error if A is not positive definite.
Matrix cholesky(const Matrix& a);

/// Cholesky with escalating diagonal jitter (up to `max_tries` powers of 10
/// starting at `initial_jitter`).  Returns the factor of (A + jitter*I).
Matrix cholesky_with_jitter(Matrix a, double initial_jitter = 1e-10,
                            int max_tries = 10);

/// Solves L y = b for lower-triangular L.
Vector solve_lower(const Matrix& l, const Vector& b);

/// Solves L^T x = y for lower-triangular L.
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Solves A x = b via the given Cholesky factor L of A.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// log det(A) = 2 * sum(log diag(L)) from the Cholesky factor L.
double log_det_from_cholesky(const Matrix& l);

}  // namespace bayesft::linalg
