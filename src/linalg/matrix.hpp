#pragma once
// Small dense double-precision linear algebra for the Gaussian-process
// surrogate: the GP needs Cholesky factorization of kernel matrices,
// triangular solves, and log-determinants (for the marginal likelihood).
// Double precision is used here (unlike the float NN stack) because kernel
// matrices from clustered Bayesian-optimization trials are ill-conditioned.

#include <cstddef>
#include <string>
#include <vector>

namespace bayesft::linalg {

using Vector = std::vector<double>;

/// Dense row-major double matrix with value semantics.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
    Matrix(std::size_t rows, std::size_t cols, std::vector<double> values);

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }

    double& operator()(std::size_t i, std::size_t j) {
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const {
        return data_[i * cols_ + j];
    }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    Matrix transposed() const;

    /// this += scale * I (diagonal jitter; matrix must be square).
    void add_diagonal(double scale);

    std::string to_string() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);

/// Inner product of two equal-length vectors.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm(const Vector& a);

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Throws std::runtime_error if A is not positive definite.
///
/// Large factorizations run column-by-column with the rows of each column
/// split over the global thread pool; every element is still computed with
/// the exact scalar recurrence of the serial loop (same ascending-k dot,
/// then one divide or sqrt), so the factor is bit-identical for every
/// thread count and to the historical serial implementation.
Matrix cholesky(const Matrix& a);

/// Cholesky with escalating diagonal jitter (up to `max_tries` powers of 10
/// starting at `initial_jitter`).  Returns the factor of (A + jitter*I).
Matrix cholesky_with_jitter(Matrix a, double initial_jitter = 1e-10,
                            int max_tries = 10);

/// cholesky_with_jitter that also reports the jitter level that succeeded
/// (0.0 when the matrix factorized unmodified).  Callers that maintain an
/// incremental factor need this: rank-1 appends are only valid against a
/// jitter-free factor (docs/optimizer-scaling.md).
Matrix cholesky_with_jitter_info(Matrix a, double& applied_jitter,
                                 double initial_jitter = 1e-10,
                                 int max_tries = 10);

/// Rank-1 append: grows the lower factor L of an n x n matrix A into the
/// factor of the (n+1) x (n+1) matrix [[A, k], [k^T, diag]] in O(n^2).
/// The new row is computed with exactly the recurrence cholesky() uses for
/// its last row (forward substitution in ascending-k order, then one
/// sqrt), so the grown factor is bit-identical to refactorizing from
/// scratch.  Returns false — leaving `l` untouched — when the new pivot is
/// not positive (the grown matrix is not numerically positive definite;
/// callers fall back to a full jittered refactorization, exactly where a
/// from-scratch cholesky() of the grown matrix would have thrown).
bool cholesky_append_row(Matrix& l, const Vector& k, double diag);

/// Rank-1 downdate by truncation: shrinks the factor back to its leading
/// n x n block.  Because cholesky() finalizes rows top-down, the leading
/// block of a factor IS the factor of the leading block of the matrix —
/// truncation after cholesky_append_row restores the pre-append factor
/// bit-for-bit (constant-liar fantasy rollback).  Requires n <= l.rows().
void cholesky_truncate(Matrix& l, std::size_t n);

/// Multi-RHS forward solve: treats each ROW r of `rhs` as an independent
/// right-hand side and solves L y_r = rhs_r in place.  Each row runs the
/// exact solve_lower() recurrence, so row r of the result is bit-identical
/// to solve_lower(l, row r); rows are independent and are split over the
/// global thread pool (disjoint outputs => bit-identical for every thread
/// count).  This is the batched-acquisition path: one solve over the whole
/// candidate pool instead of a triangular solve per candidate.
void solve_lower_multi_inplace(const Matrix& l, Matrix& rhs);

/// Solves L y = b for lower-triangular L.
Vector solve_lower(const Matrix& l, const Vector& b);

/// Solves L^T x = y for lower-triangular L.
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Solves A x = b via the given Cholesky factor L of A.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// log det(A) = 2 * sum(log diag(L)) from the Cholesky factor L.
double log_det_from_cholesky(const Matrix& l);

}  // namespace bayesft::linalg
