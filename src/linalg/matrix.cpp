#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace bayesft::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
    if (data_.size() != rows * cols) {
        throw std::invalid_argument("Matrix: value count mismatch");
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    }
    return t;
}

void Matrix::add_diagonal(double scale) {
    if (rows_ != cols_) {
        throw std::invalid_argument("Matrix::add_diagonal: not square");
    }
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += scale;
}

std::string Matrix::to_string() const {
    std::ostringstream os;
    os << "Matrix(" << rows_ << "x" << cols_ << ")";
    return os.str();
}

Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) {
        throw std::invalid_argument("Matrix multiply: dimension mismatch");
    }
    Matrix c(a.rows(), b.cols());
    detail::gemm_parallel(a.data(), a.cols(), b.data(), b.cols(), c.data(),
                          c.cols(), a.rows(), a.cols(), b.cols());
    return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
    if (a.cols() != x.size()) {
        throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
    }
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
        y[i] = acc;
    }
    return y;
}

double dot(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) {
        throw std::invalid_argument("dot: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

Matrix cholesky(const Matrix& a) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("cholesky: matrix not square");
    }
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
            if (i == j) {
                if (acc <= 0.0 || !std::isfinite(acc)) {
                    throw std::runtime_error(
                        "cholesky: matrix not positive definite at pivot " +
                        std::to_string(i));
                }
                l(i, j) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return l;
}

Matrix cholesky_with_jitter(Matrix a, double initial_jitter, int max_tries) {
    // Each retry factors original + jitter*I, not the already-jittered
    // matrix, so the effective regularization is exactly the current jitter
    // level rather than a compounding sum of all previous levels.
    const Matrix original = a;
    double jitter = initial_jitter;
    for (int attempt = 0; attempt < max_tries; ++attempt) {
        try {
            return cholesky(a);
        } catch (const std::runtime_error&) {
            a = original;
            a.add_diagonal(jitter);
            jitter *= 10.0;
        }
    }
    return cholesky(a);  // Last attempt: let the failure propagate.
}

Vector solve_lower(const Matrix& l, const Vector& b) {
    const std::size_t n = l.rows();
    if (l.cols() != n || b.size() != n) {
        throw std::invalid_argument("solve_lower: dimension mismatch");
    }
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
    const std::size_t n = l.rows();
    if (l.cols() != n || y.size() != n) {
        throw std::invalid_argument("solve_lower_transposed: dimension mismatch");
    }
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
    return solve_lower_transposed(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
    double acc = 0.0;
    for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
    return 2.0 * acc;
}

}  // namespace bayesft::linalg
