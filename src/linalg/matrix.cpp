#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "utils/parallel.hpp"

namespace bayesft::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
    if (data_.size() != rows * cols) {
        throw std::invalid_argument("Matrix: value count mismatch");
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    }
    return t;
}

void Matrix::add_diagonal(double scale) {
    if (rows_ != cols_) {
        throw std::invalid_argument("Matrix::add_diagonal: not square");
    }
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += scale;
}

std::string Matrix::to_string() const {
    std::ostringstream os;
    os << "Matrix(" << rows_ << "x" << cols_ << ")";
    return os.str();
}

Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) {
        throw std::invalid_argument("Matrix multiply: dimension mismatch");
    }
    Matrix c(a.rows(), b.cols());
    detail::gemm_parallel(a.data(), a.cols(), b.data(), b.cols(), c.data(),
                          c.cols(), a.rows(), a.cols(), b.cols());
    return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
    if (a.cols() != x.size()) {
        throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
    }
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
        y[i] = acc;
    }
    return y;
}

double dot(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) {
        throw std::invalid_argument("dot: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

namespace {

/// Matrices below this order factorize with the plain serial loop: the
/// per-column parallel_for barrier costs more than it saves.  Both code
/// paths compute every element with the identical scalar recurrence, so
/// the threshold is a pure performance knob, never a results knob.
constexpr std::size_t kParallelCholeskyMinDim = 192;

[[noreturn]] void cholesky_pivot_failure(std::size_t i) {
    throw std::runtime_error(
        "cholesky: matrix not positive definite at pivot " +
        std::to_string(i));
}

}  // namespace

Matrix cholesky(const Matrix& a) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("cholesky: matrix not square");
    }
    const std::size_t n = a.rows();
    Matrix l(n, n);
    if (n < kParallelCholeskyMinDim) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j <= i; ++j) {
                double acc = a(i, j);
                for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
                if (i == j) {
                    if (acc <= 0.0 || !std::isfinite(acc)) {
                        cholesky_pivot_failure(i);
                    }
                    l(i, j) = std::sqrt(acc);
                } else {
                    l(i, j) = acc / l(j, j);
                }
            }
        }
        return l;
    }
    // Column-oriented schedule: finalize pivot j, then fill the rest of
    // column j with the rows split over the pool.  Every element still
    // runs the exact scalar recurrence above (ascending-k dot, then one
    // divide or sqrt) against already-finalized columns, so the factor —
    // and the index of the first failing pivot — is bit-identical to the
    // serial row-major loop at every thread count.
    for (std::size_t j = 0; j < n; ++j) {
        double pivot = a(j, j);
        for (std::size_t k = 0; k < j; ++k) pivot -= l(j, k) * l(j, k);
        if (pivot <= 0.0 || !std::isfinite(pivot)) cholesky_pivot_failure(j);
        l(j, j) = std::sqrt(pivot);
        // Per-row work grows with j; keep chunks at ~16k multiply-adds so
        // early (cheap) columns do not drown in scheduling overhead.
        const std::size_t grain = std::max<std::size_t>(4, 16384 / (j + 1));
        parallel_for(j + 1, n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                double acc = a(i, j);
                for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
                l(i, j) = acc / l(j, j);
            }
        });
    }
    return l;
}

Matrix cholesky_with_jitter(Matrix a, double initial_jitter, int max_tries) {
    double applied = 0.0;
    return cholesky_with_jitter_info(std::move(a), applied, initial_jitter,
                                     max_tries);
}

Matrix cholesky_with_jitter_info(Matrix a, double& applied_jitter,
                                 double initial_jitter, int max_tries) {
    // Each retry factors original + jitter*I, not the already-jittered
    // matrix, so the effective regularization is exactly the current jitter
    // level rather than a compounding sum of all previous levels.
    const Matrix original = a;
    double jitter = initial_jitter;
    applied_jitter = 0.0;
    for (int attempt = 0; attempt < max_tries; ++attempt) {
        try {
            return cholesky(a);
        } catch (const std::runtime_error&) {
            a = original;
            a.add_diagonal(jitter);
            applied_jitter = jitter;
            jitter *= 10.0;
        }
    }
    return cholesky(a);  // Last attempt: let the failure propagate.
}

bool cholesky_append_row(Matrix& l, const Vector& k, double diag) {
    const std::size_t n = l.rows();
    if (l.cols() != n || k.size() != n) {
        throw std::invalid_argument("cholesky_append_row: dimension mismatch");
    }
    // The new off-diagonal row is the forward substitution L c = k — the
    // identical recurrence cholesky() runs for its last row, so the grown
    // factor matches a from-scratch refactorization bit-for-bit.
    Vector c(n);
    for (std::size_t j = 0; j < n; ++j) {
        double acc = k[j];
        for (std::size_t t = 0; t < j; ++t) acc -= c[t] * l(j, t);
        c[j] = acc / l(j, j);
    }
    double pivot = diag;
    for (std::size_t t = 0; t < n; ++t) pivot -= c[t] * c[t];
    // Exactly cholesky()'s pivot test: when this fails, a from-scratch
    // factorization of the grown matrix fails at the same pivot (its
    // leading block is this factor, finalized row by row).
    if (pivot <= 0.0 || !std::isfinite(pivot)) return false;
    Matrix grown(n + 1, n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l(i, j);
    }
    for (std::size_t t = 0; t < n; ++t) grown(n, t) = c[t];
    grown(n, n) = std::sqrt(pivot);
    l = std::move(grown);
    return true;
}

void cholesky_truncate(Matrix& l, std::size_t n) {
    if (l.cols() != l.rows() || n > l.rows()) {
        throw std::invalid_argument("cholesky_truncate: bad target size");
    }
    if (n == l.rows()) return;
    Matrix cut(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) cut(i, j) = l(i, j);
    }
    l = std::move(cut);
}

void solve_lower_multi_inplace(const Matrix& l, Matrix& rhs) {
    const std::size_t n = l.rows();
    if (l.cols() != n || rhs.cols() != n) {
        throw std::invalid_argument(
            "solve_lower_multi_inplace: dimension mismatch");
    }
    // Rows are independent right-hand sides with disjoint outputs; each
    // runs the exact solve_lower() recurrence, so the result is
    // bit-identical to n_rows separate solve_lower calls at every thread
    // count.  Grain keeps chunks at ~16k multiply-adds.
    const std::size_t grain =
        std::max<std::size_t>(1, 32768 / (n * n + 1));
    parallel_for(0, rhs.rows(), grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
            double* y = rhs.data() + r * n;
            for (std::size_t i = 0; i < n; ++i) {
                double acc = y[i];
                for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
                y[i] = acc / l(i, i);
            }
        }
    });
}

Vector solve_lower(const Matrix& l, const Vector& b) {
    const std::size_t n = l.rows();
    if (l.cols() != n || b.size() != n) {
        throw std::invalid_argument("solve_lower: dimension mismatch");
    }
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
    const std::size_t n = l.rows();
    if (l.cols() != n || y.size() != n) {
        throw std::invalid_argument("solve_lower_transposed: dimension mismatch");
    }
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
    return solve_lower_transposed(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
    double acc = 0.0;
    for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
    return 2.0 * acc;
}

}  // namespace bayesft::linalg
