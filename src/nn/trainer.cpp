#include "nn/trainer.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace bayesft::nn {

Batch gather_batch(const Tensor& images, const std::vector<int>& labels,
                   const std::vector<std::size_t>& order, std::size_t lo,
                   std::size_t hi) {
    if (lo >= hi || hi > order.size()) {
        throw std::invalid_argument("gather_batch: bad range");
    }
    const std::size_t row = images.size() / images.dim(0);
    std::vector<std::size_t> shape = images.shape();
    shape[0] = hi - lo;
    Batch batch{Tensor(shape), {}};
    batch.labels.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t src = order[i];
        std::copy_n(images.data() + src * row, row,
                    batch.images.data() + (i - lo) * row);
        batch.labels.push_back(labels[src]);
    }
    return batch;
}

std::vector<EpochStats> train_classifier(
    Module& model, const Tensor& images, const std::vector<int>& labels,
    const TrainConfig& config, Rng& rng,
    const std::function<void(std::size_t, const EpochStats&)>& on_epoch) {
    if (images.dim(0) != labels.size()) {
        throw std::invalid_argument("train_classifier: size mismatch");
    }
    if (images.dim(0) == 0) {
        throw std::invalid_argument("train_classifier: empty dataset");
    }
    const std::size_t n = images.dim(0);
    const std::size_t batch = std::min(config.batch_size, n);

    std::unique_ptr<Optimizer> opt;
    if (config.use_adam) {
        opt = std::make_unique<Adam>(model.parameters(), config.learning_rate,
                                     0.9, 0.999, 1e-8, config.weight_decay);
    } else {
        opt = std::make_unique<Sgd>(model.parameters(), config.learning_rate,
                                    config.momentum, config.weight_decay);
    }

    std::vector<EpochStats> history;
    history.reserve(config.epochs);
    double lr = config.learning_rate;
    model.set_training(true);
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        const std::vector<std::size_t> order = rng.permutation(n);
        double loss_sum = 0.0;
        std::size_t hit = 0;
        std::size_t batches = 0;
        for (std::size_t lo = 0; lo < n; lo += batch) {
            const std::size_t hi = std::min(lo + batch, n);
            Batch b = gather_batch(images, labels, order, lo, hi);
            opt->zero_grad();
            const Tensor logits = model.forward(b.images);
            const LossResult loss = cross_entropy(logits, b.labels);
            model.backward(loss.grad);
            opt->step();
            loss_sum += loss.value;
            ++batches;
            const auto preds = argmax_rows(logits);
            for (std::size_t i = 0; i < b.labels.size(); ++i) {
                if (preds[i] == static_cast<std::size_t>(b.labels[i])) ++hit;
            }
        }
        EpochStats stats;
        stats.mean_loss = loss_sum / static_cast<double>(batches);
        stats.train_accuracy =
            static_cast<double>(hit) / static_cast<double>(n);
        history.push_back(stats);
        if (on_epoch) on_epoch(epoch, stats);
        if (config.lr_decay != 1.0) {
            lr *= config.lr_decay;
            if (auto* sgd = dynamic_cast<Sgd*>(opt.get())) {
                sgd->set_learning_rate(lr);
            } else if (auto* adam = dynamic_cast<Adam*>(opt.get())) {
                adam->set_learning_rate(lr);
            }
        }
    }
    return history;
}

Tensor predict_logits(Module& model, const Tensor& images,
                      std::size_t batch_size) {
    const std::size_t n = images.dim(0);
    const bool was_training = model.training();
    model.set_training(false);
    Tensor logits;
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::vector<int> dummy_labels(n, 0);
    for (std::size_t lo = 0; lo < n; lo += batch_size) {
        const std::size_t hi = std::min(lo + batch_size, n);
        Batch b = gather_batch(images, dummy_labels, order, lo, hi);
        const Tensor out = model.forward(b.images);
        if (logits.empty()) {
            logits = Tensor({n, out.dim(1)});
        }
        std::copy_n(out.data(), out.size(), logits.data() + lo * out.dim(1));
    }
    model.set_training(was_training);
    return logits;
}

double evaluate_accuracy(Module& model, const Tensor& images,
                         const std::vector<int>& labels,
                         std::size_t batch_size) {
    const Tensor logits = predict_logits(model, images, batch_size);
    return accuracy(logits, labels);
}

double evaluate_loss(Module& model, const Tensor& images,
                     const std::vector<int>& labels, std::size_t batch_size) {
    const Tensor logits = predict_logits(model, images, batch_size);
    return cross_entropy(logits, labels).value;
}

}  // namespace bayesft::nn
