#pragma once
// Fixed-point inference mode: an int8 / int12 forward path for the layers
// that dominate inference FLOPs (Linear, Conv2d).
//
// Semantics: dynamic per-tensor symmetric quantization.  On every forward
// the weight tensor and the activation tensor are each mapped to signed
// `bits`-bit codes with scale s = max|v| / (2^(bits-1) - 1) — the exact
// grid, rounding, and saturation of fault::QuantizationFault (both run
// through simd::KernelTable::quantize / quantize_codes) — and the product
// is accumulated in integers (qgemm_nt), so the layer computes
//   y = (s_w * s_x) * (codes(W) @ codes(x)^T) + b
// with a single float rounding per output element.  Because the quantized
// view of the weights is bit-identical to QuantizationFault's perturbed
// weights, running the int-b forward is exactly "evaluate the quantized
// deployment" without mutating the model, and the integer accumulation
// makes the result bit-identical across SIMD dispatch tiers for free.
//
// kInt12 matches the DAC'12-profile deployment chain (fault::dac12_deploy):
// 12-bit words are the typical memristor DAC/ADC resolution the paper's
// hardware model assumes.
//
// The mode only changes `forward`; gradients are not defined through the
// integer path (training always runs float32).  docs/performance.md covers
// the mode end to end.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace bayesft::nn {

/// Numeric mode of the forward pass of fixed-point-capable layers.
enum class InferenceMode {
    kFloat32 = 0,  ///< full float path (default)
    kInt8,         ///< 8-bit symmetric fixed point
    kInt12,        ///< 12-bit symmetric fixed point (DAC'12 profile)
};

/// Word width of a mode: 0 / 8 / 12.
int inference_bits(InferenceMode mode);

/// Stable name: "float32" | "int8" | "int12".
const char* inference_mode_name(InferenceMode mode);

/// Inverse of inference_mode_name; throws std::invalid_argument on
/// anything else.
InferenceMode parse_inference_mode(const std::string& name);

/// Implemented by layers that own a fixed-point forward path (Linear,
/// Conv2d).  Side interface next to Module so the walker can find capable
/// layers in any container without the Module base knowing about
/// quantization.
class FixedPointCapable {
public:
    virtual ~FixedPointCapable() = default;
    virtual void set_inference_mode(InferenceMode mode) = 0;
    virtual InferenceMode inference_mode() const = 0;
};

/// Walks the module tree (collect_children, depth-first) and sets `mode`
/// on every FixedPointCapable layer.  Returns how many layers switched.
std::size_t set_inference_mode(Module& root, InferenceMode mode);

/// RAII mode switch: applies `mode` to the tree on construction and
/// restores each layer's previous mode on destruction, so evaluation
/// helpers can run a quantized pass without leaking state into the model.
class ScopedInferenceMode {
public:
    ScopedInferenceMode(Module& root, InferenceMode mode);
    ~ScopedInferenceMode();
    ScopedInferenceMode(const ScopedInferenceMode&) = delete;
    ScopedInferenceMode& operator=(const ScopedInferenceMode&) = delete;

private:
    std::vector<std::pair<FixedPointCapable*, InferenceMode>> saved_;
};

}  // namespace bayesft::nn
