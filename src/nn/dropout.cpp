#include "nn/dropout.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bayesft::nn {

namespace {

void check_rate(double rate, const char* who) {
    if (!(rate >= 0.0) || rate >= 1.0) {
        throw std::invalid_argument(std::string(who) +
                                    ": rate must be in [0, 1), got " +
                                    std::to_string(rate));
    }
}

// SELU saturation value: -lambda * alpha from Klambauer et al.
constexpr float kAlphaPrime = -1.7580993408473766F;

}  // namespace

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
    check_rate(rate, "Dropout");
}

void Dropout::set_rate(double rate) {
    check_rate(rate, "Dropout::set_rate");
    rate_ = rate;
}

Tensor Dropout::forward(const Tensor& input) {
    if (!training() || rate_ == 0.0) {
        mask_ = Tensor();  // signals pass-through for backward
        return input;
    }
    const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
    mask_ = Tensor(input.shape());
    Tensor out = input;
    float* m = mask_.data();
    float* o = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (rng_.bernoulli(rate_)) {
            m[i] = 0.0F;
            o[i] = 0.0F;
        } else {
            m[i] = keep_scale;
            o[i] *= keep_scale;
        }
    }
    return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
    if (mask_.empty()) return grad_output;
    if (grad_output.shape() != mask_.shape()) {
        throw std::invalid_argument("Dropout::backward: shape mismatch");
    }
    Tensor grad = grad_output;
    grad.mul_(mask_);
    return grad;
}

std::unique_ptr<Module> Dropout::clone() const {
    auto copy = std::make_unique<Dropout>(rate_);
    copy->rng_ = rng_;  // replicas draw the same mask stream
    copy->training_ = training_;
    return copy;
}

std::string Dropout::name() const {
    std::ostringstream os;
    os << "Dropout(" << rate_ << ")";
    return os.str();
}

AlphaDropout::AlphaDropout(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
    check_rate(rate, "AlphaDropout");
}

void AlphaDropout::set_rate(double rate) {
    check_rate(rate, "AlphaDropout::set_rate");
    rate_ = rate;
}

Tensor AlphaDropout::forward(const Tensor& input) {
    if (!training() || rate_ == 0.0) {
        mask_ = Tensor();
        return input;
    }
    const double p = rate_;
    // Affine correction keeping zero mean / unit variance for SELU-normalized
    // inputs: a = ((1-p) * (1 + p * alpha'^2))^(-1/2), b = -a * p * alpha'.
    const double a =
        1.0 / std::sqrt((1.0 - p) * (1.0 + p * kAlphaPrime * kAlphaPrime));
    const double b = -a * p * kAlphaPrime;
    scale_a_ = static_cast<float>(a);

    mask_ = Tensor(input.shape());
    Tensor out = input;
    float* m = mask_.data();
    float* o = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (rng_.bernoulli(p)) {
            m[i] = 0.0F;
            o[i] = kAlphaPrime;
        } else {
            m[i] = 1.0F;
        }
        o[i] = static_cast<float>(a) * o[i] + static_cast<float>(b);
    }
    return out;
}

Tensor AlphaDropout::backward(const Tensor& grad_output) {
    if (mask_.empty()) return grad_output;
    if (grad_output.shape() != mask_.shape()) {
        throw std::invalid_argument("AlphaDropout::backward: shape mismatch");
    }
    // y = a * (kept ? x : alpha') + b  =>  dy/dx = a on kept positions.
    Tensor grad = grad_output;
    grad.mul_(mask_);
    grad.mul_scalar_(scale_a_);
    return grad;
}

std::unique_ptr<Module> AlphaDropout::clone() const {
    auto copy = std::make_unique<AlphaDropout>(rate_);
    copy->rng_ = rng_;
    copy->training_ = training_;
    return copy;
}

std::string AlphaDropout::name() const {
    std::ostringstream os;
    os << "AlphaDropout(" << rate_ << ")";
    return os.str();
}

std::vector<Dropout*> collect_dropout_layers(Module& root) {
    std::vector<Dropout*> sites;
    std::vector<Module*> stack{&root};
    while (!stack.empty()) {
        Module* node = stack.back();
        stack.pop_back();
        if (auto* dropout = dynamic_cast<Dropout*>(node)) {
            sites.push_back(dropout);
        }
        std::vector<Module*> children;
        node->collect_children(children);
        // Push in reverse so the DFS visits children front-to-back.
        for (auto it = children.rbegin(); it != children.rend(); ++it) {
            stack.push_back(*it);
        }
    }
    return sites;
}

}  // namespace bayesft::nn
