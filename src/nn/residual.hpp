#pragma once
// Residual composition: out = main(x) + shortcut(x).  Used by the ResNet /
// PreAct-ResNet families in the model zoo (paper Fig. 3(d), (f)-(h)).

#include <memory>

#include "nn/module.hpp"

namespace bayesft::nn {

/// Two-branch residual sum.  Owns both branches; the shortcut defaults to
/// Identity.  Both branches must produce outputs of identical shape.
class Residual : public Module {
public:
    explicit Residual(std::unique_ptr<Module> main_branch,
                      std::unique_ptr<Module> shortcut = nullptr);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_children(std::vector<Module*>& out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    void collect_buffers(std::vector<Tensor*>& out) override;
    void set_training(bool training) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    Module& main_branch() { return *main_; }
    Module& shortcut() { return *shortcut_; }

private:
    std::unique_ptr<Module> main_;
    std::unique_ptr<Module> shortcut_;
};

}  // namespace bayesft::nn
