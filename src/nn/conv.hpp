#pragma once
// Convolution and pooling layers for [N, C, H, W] tensors.

#include <cstdint>

#include "nn/module.hpp"
#include "nn/quant.hpp"
#include "tensor/ops.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {

/// 2-d convolution via im2col + matrix product.
/// Weight layout: [out_channels, in_channels * kh * kw]; bias: [out_channels].
///
/// Fixed-point capable: under InferenceMode::kInt8 / kInt12 the forward
/// quantizes the weights and the input per-tensor to signed codes, unfolds
/// the code image (im2col_into<int16_t>), and accumulates the products in
/// integers (simd qgemm_nt); see nn/quant.hpp.  Backward always
/// differentiates the float path.
class Conv2d : public Module, public FixedPointCapable {
public:
    Conv2d(std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, std::size_t stride, std::size_t pad, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    void set_inference_mode(InferenceMode mode) override { mode_ = mode; }
    InferenceMode inference_mode() const override { return mode_; }

    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }
    std::size_t out_channels() const { return out_channels_; }

private:
    /// Clone path: copies config and parameters without running the
    /// (discarded) random weight initialization.
    struct CloneTag {};
    Conv2d(const Conv2d& other, CloneTag);

    ConvGeometry geometry_for(const Tensor& input) const;
    Tensor forward_fixed_point(const Tensor& input);

    std::size_t in_channels_;
    std::size_t out_channels_;
    std::size_t kernel_;
    std::size_t stride_;
    std::size_t pad_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
    InferenceMode mode_ = InferenceMode::kFloat32;
    // Persistent batched-im2col/GEMM scratch, grown on demand and reused
    // across calls so the hot path allocates nothing per batch.
    std::vector<float> cols_scratch_;    // [patch, group*positions]
    std::vector<float> gemm_scratch_;    // [out_channels, group*positions]
    std::vector<float> grad_scratch_;    // backward: grad slab [OC, group*P]
    std::vector<float> colsT_scratch_;   // backward: cols^T [group*P, patch]
    // Fixed-point scratch: per-tensor codes of W and the input image, plus
    // the unfolded / transposed code matrices.
    std::vector<std::int16_t> weight_codes_;   // [OC, patch]
    std::vector<std::int16_t> input_codes_;    // [N, C, H, W]
    std::vector<std::int16_t> cols_codes_;     // [patch, group*positions]
    std::vector<std::int16_t> colsT_codes_;    // [group*positions, patch]
};

/// Max pooling with square window; stores argmax indices for backward.
class MaxPool2d : public Module {
public:
    explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

private:
    std::size_t kernel_;
    std::size_t stride_;
    std::vector<std::size_t> input_shape_;
    std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::unique_ptr<Module> clone() const override {
        return std::make_unique<GlobalAvgPool>();
    }
    std::string name() const override { return "GlobalAvgPool"; }

private:
    std::vector<std::size_t> input_shape_;
};

/// Average pooling with square window (used by LeNet-style models).
class AvgPool2d : public Module {
public:
    explicit AvgPool2d(std::size_t kernel, std::size_t stride = 0);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

private:
    std::size_t kernel_;
    std::size_t stride_;
    std::vector<std::size_t> input_shape_;
};

}  // namespace bayesft::nn
