#pragma once
// Normalization layers (paper Fig. 2(b), Eq. 2).
//
// GroupNorm is implemented generically; LayerNorm and InstanceNorm are the
// groups=1 and groups=channels special cases (as in Wu & He 2018).
// BatchNorm keeps running statistics for eval mode.
//
// All affine parameters (gamma, beta) are driftable Parameters: the paper's
// explanation for why norms hurt under drift is precisely that gamma/beta
// sit in ReRAM cells and get perturbed, which the normalized activations
// amplify ("Achilles' heel").

#include "nn/module.hpp"

namespace bayesft::nn {

/// Group normalization over [N, C, H, W] or [N, C] inputs.
/// Normalizes each (sample, group) slab to zero mean / unit variance, then
/// applies per-channel affine gamma/beta.
class GroupNorm : public Module {
public:
    GroupNorm(std::size_t num_groups, std::size_t channels,
              float eps = 1e-5F);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    Parameter& gamma() { return gamma_; }
    Parameter& beta() { return beta_; }

protected:
    std::size_t channels() const { return channels_; }
    float eps() const { return eps_; }
    /// Copies affine parameters and the train/eval flag into a fresh norm.
    void copy_norm_state_into(GroupNorm& dst) const {
        dst.gamma_.value = gamma_.value;
        dst.beta_.value = beta_.value;
        dst.training_ = training_;
    }

private:
    std::size_t num_groups_;
    std::size_t channels_;
    float eps_;
    Parameter gamma_;
    Parameter beta_;
    // Cached forward state for backward.
    Tensor normalized_;              // x-hat
    std::vector<float> inv_stddev_;  // per (n, g)
    std::vector<std::size_t> input_shape_;
};

/// Layer normalization = GroupNorm with a single group.
class LayerNorm : public GroupNorm {
public:
    explicit LayerNorm(std::size_t channels, float eps = 1e-5F)
        : GroupNorm(1, channels, eps) {}
    std::unique_ptr<Module> clone() const override {
        auto copy = std::make_unique<LayerNorm>(channels(), eps());
        copy_norm_state_into(*copy);
        return copy;
    }
    std::string name() const override { return "LayerNorm"; }
};

/// Instance normalization = GroupNorm with one group per channel.
class InstanceNorm : public GroupNorm {
public:
    explicit InstanceNorm(std::size_t channels, float eps = 1e-5F)
        : GroupNorm(channels, channels, eps) {}
    std::unique_ptr<Module> clone() const override {
        auto copy = std::make_unique<InstanceNorm>(channels(), eps());
        copy_norm_state_into(*copy);
        return copy;
    }
    std::string name() const override { return "InstanceNorm"; }
};

/// Batch normalization with running statistics (biased variance throughout).
class BatchNorm : public Module {
public:
    explicit BatchNorm(std::size_t channels, float eps = 1e-5F,
                       float momentum = 0.1F);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    void collect_buffers(std::vector<Tensor*>& out) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    Parameter& gamma() { return gamma_; }
    Parameter& beta() { return beta_; }
    const Tensor& running_mean() const { return running_mean_; }
    const Tensor& running_var() const { return running_var_; }

private:
    std::size_t channels_;
    float eps_;
    float momentum_;
    Parameter gamma_;
    Parameter beta_;
    Tensor running_mean_;
    Tensor running_var_;
    // Cached state for backward (training mode).
    Tensor normalized_;
    std::vector<float> inv_stddev_;  // per channel
    std::vector<std::size_t> input_shape_;
    bool forward_was_training_ = true;
};

}  // namespace bayesft::nn
