#pragma once
// Model weight serialization.  The paper's deployment story is "train
// off-line on GPU servers, then deploy on ReRAM devices" — which needs a
// way to persist a trained theta.  The format is a small self-describing
// binary: magic, parameter count, then per parameter its name, shape and
// raw float payload.  Loading verifies names and shapes so a checkpoint
// can only be restored into a structurally identical model.

#include <string>

#include "nn/module.hpp"

namespace bayesft::nn {

/// Writes all parameters of `model` to `path`.
/// Throws std::runtime_error on I/O failure.
void save_parameters(Module& model, const std::string& path);

/// Restores parameters saved by save_parameters into `model`.
/// Throws std::runtime_error on I/O failure or if the checkpoint does not
/// structurally match the model (parameter count, names, or shapes).
void load_parameters(Module& model, const std::string& path);

}  // namespace bayesft::nn
