#include "nn/residual.hpp"

#include <stdexcept>

namespace bayesft::nn {

Residual::Residual(std::unique_ptr<Module> main_branch,
                   std::unique_ptr<Module> shortcut)
    : main_(std::move(main_branch)),
      shortcut_(shortcut ? std::move(shortcut)
                         : std::make_unique<Identity>()) {
    if (!main_) throw std::invalid_argument("Residual: null main branch");
}

Tensor Residual::forward(const Tensor& input) {
    Tensor main_out = main_->forward(input);
    Tensor short_out = shortcut_->forward(input);
    if (main_out.shape() != short_out.shape()) {
        throw std::invalid_argument(
            "Residual: branch shape mismatch " +
            shape_to_string(main_out.shape()) + " vs " +
            shape_to_string(short_out.shape()));
    }
    return main_out.add_(short_out);
}

Tensor Residual::backward(const Tensor& grad_output) {
    Tensor grad_main = main_->backward(grad_output);
    Tensor grad_short = shortcut_->backward(grad_output);
    return grad_main.add_(grad_short);
}

void Residual::collect_children(std::vector<Module*>& out) {
    out.push_back(main_.get());
    out.push_back(shortcut_.get());
}

void Residual::collect_parameters(std::vector<Parameter*>& out) {
    main_->collect_parameters(out);
    shortcut_->collect_parameters(out);
}

void Residual::collect_buffers(std::vector<Tensor*>& out) {
    main_->collect_buffers(out);
    shortcut_->collect_buffers(out);
}

void Residual::set_training(bool training) {
    training_ = training;
    main_->set_training(training);
    shortcut_->set_training(training);
}

std::unique_ptr<Module> Residual::clone() const {
    std::unique_ptr<Module> main_copy = main_->clone();
    std::unique_ptr<Module> shortcut_copy = shortcut_->clone();
    if (!main_copy || !shortcut_copy) return nullptr;
    auto copy = std::make_unique<Residual>(std::move(main_copy),
                                           std::move(shortcut_copy));
    copy->training_ = training_;
    return copy;
}

std::string Residual::name() const { return "Residual"; }

}  // namespace bayesft::nn
