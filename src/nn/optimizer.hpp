#pragma once
// First-order optimizers over Parameter lists.  Algorithm 1 trains theta
// with stochastic gradient descent; Adam is provided for the detection task
// where SGD converges too slowly within the CPU budget.

#include <vector>

#include "nn/module.hpp"

namespace bayesft::nn {

/// Base: owns nothing; operates on borrowed Parameter pointers.
class Optimizer {
public:
    explicit Optimizer(std::vector<Parameter*> params);
    virtual ~Optimizer() = default;
    Optimizer(const Optimizer&) = delete;
    Optimizer& operator=(const Optimizer&) = delete;

    /// Applies one update from the accumulated gradients.
    virtual void step() = 0;

    /// Clears all parameter gradients.
    void zero_grad();

    std::size_t parameter_count() const { return params_.size(); }

protected:
    std::vector<Parameter*> params_;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
public:
    Sgd(std::vector<Parameter*> params, double learning_rate,
        double momentum = 0.9, double weight_decay = 0.0);

    void step() override;

    double learning_rate() const { return learning_rate_; }
    void set_learning_rate(double lr);

private:
    double learning_rate_;
    double momentum_;
    double weight_decay_;
    std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
public:
    Adam(std::vector<Parameter*> params, double learning_rate,
         double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
         double weight_decay = 0.0);

    void step() override;

    double learning_rate() const { return learning_rate_; }
    void set_learning_rate(double lr);

private:
    double learning_rate_;
    double beta1_;
    double beta2_;
    double eps_;
    double weight_decay_;
    long step_count_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

}  // namespace bayesft::nn
