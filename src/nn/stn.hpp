#pragma once
// Spatial transformer network components (Jaderberg et al.), used by the
// traffic-sign model (paper Fig. 3(i)).  The transformer warps its input by
// an affine transform predicted from the input itself, with a differentiable
// bilinear sampler so the whole pipeline trains end-to-end.

#include <memory>

#include "nn/module.hpp"

namespace bayesft::nn {

/// Warps [N, C, H, W] inputs by an affine transform predicted by an owned
/// localization network.
///
/// The localization net must map [N, C, H, W] -> [N, 6]; the 6 outputs are
/// the row-major 2x3 affine matrix theta.  Output coordinates are normalized
/// to [-1, 1] (align-corners convention); samples falling outside the input
/// read as zero and receive no gradient.
class SpatialTransformer : public Module {
public:
    explicit SpatialTransformer(std::unique_ptr<Module> localization_net);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_children(std::vector<Module*>& out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    void collect_buffers(std::vector<Tensor*>& out) override;
    void set_training(bool training) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override { return "SpatialTransformer"; }

    Module& localization_net() { return *loc_net_; }

private:
    std::unique_ptr<Module> loc_net_;
    Tensor cached_input_;
    Tensor cached_theta_;  // [N, 6]
};

/// Standalone bilinear sampling (exposed for tests): samples `input`
/// [N, C, H, W] at `theta`-transformed grid positions; returns [N, C, H, W].
Tensor affine_grid_sample(const Tensor& input, const Tensor& theta);

/// Gradients of affine_grid_sample w.r.t. input and theta.
struct GridSampleGrads {
    Tensor grad_input;  // [N, C, H, W]
    Tensor grad_theta;  // [N, 6]
};
GridSampleGrads affine_grid_sample_backward(const Tensor& input,
                                            const Tensor& theta,
                                            const Tensor& grad_output);

}  // namespace bayesft::nn
