#pragma once
// Module framework: every layer implements forward/backward with explicit,
// analytically derived gradients (verified against finite differences in
// tests/).  The design mirrors the classic modular-NN decomposition the
// paper's Sec. II-A describes: f = f1 o f2 o ... o fK.

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace bayesft::nn {

/// A learnable tensor with its gradient accumulator.
///
/// `driftable` marks parameters that live in ReRAM cells and are therefore
/// subject to memristance drift (Eq. 1).  All weights/biases/affine-norm
/// parameters are driftable; bookkeeping state (running statistics) is not
/// a Parameter at all.
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    bool driftable = true;

    Parameter(std::string n, Tensor v, bool drift = true)
        : name(std::move(n)),
          value(std::move(v)),
          grad(Tensor::zeros(value.shape())),
          driftable(drift) {}
};

/// Base class for all layers.
///
/// Contract: `backward` must be called after `forward` with a gradient of
/// the same shape as the most recent forward output; it accumulates into
/// the parameters' `grad` fields and returns the gradient w.r.t. the input.
class Module {
public:
    virtual ~Module() = default;
    Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /// Computes the layer output; caches whatever backward needs.
    virtual Tensor forward(const Tensor& input) = 0;

    /// Propagates gradients; accumulates parameter grads.
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Deep structural copy carrying the current parameter values, buffers
    /// and train/eval flag (but no cached forward state).  Used to build
    /// per-thread model replicas for parallel Monte-Carlo evaluation.
    /// Returns nullptr for layers that do not support replication (the
    /// default); containers propagate the nullptr so callers can fall back
    /// to serial evaluation.
    virtual std::unique_ptr<Module> clone() const { return nullptr; }

    /// Appends raw (non-owning) pointers to this module's direct children.
    /// Leaves append nothing (the default); containers must override so the
    /// module tree can be traversed generically (e.g. to re-locate layer
    /// handles inside a clone()d replica).  Child order must be
    /// deterministic and match the order the container runs them.
    virtual void collect_children(std::vector<Module*>& out) {
        (void)out;
    }

    /// Appends raw (non-owning) pointers to this module's parameters.
    virtual void collect_parameters(std::vector<Parameter*>& out);

    /// Appends pointers to non-learnable persistent state (e.g. batch-norm
    /// running statistics).  Buffers are serialized with checkpoints but
    /// are never drifted or optimized.  Containers must recurse.
    virtual void collect_buffers(std::vector<Tensor*>& out);

    /// Convenience wrapper over collect_parameters.
    std::vector<Parameter*> parameters();

    /// Convenience wrapper over collect_buffers.
    std::vector<Tensor*> buffers();

    /// Total number of scalar learnable values.
    std::size_t parameter_count();

    /// Switches train/eval behaviour (dropout, batch-norm statistics).
    /// Containers must override to recurse into children.
    virtual void set_training(bool training) { training_ = training; }
    bool training() const { return training_; }

    /// Short human-readable layer name, e.g. "Linear(64->10)".
    virtual std::string name() const = 0;

protected:
    bool training_ = true;
};

/// Ordered container running children front-to-back (and back-to-front for
/// gradients).  Owns its children.
class Sequential : public Module {
public:
    Sequential() = default;

    /// Appends a child and returns a non-owning typed pointer to it, so
    /// callers can keep handles to e.g. Dropout layers for rate updates.
    template <typename M>
    M* add(std::unique_ptr<M> child) {
        M* raw = child.get();
        children_.push_back(std::move(child));
        return raw;
    }

    /// Constructs the child in place.
    template <typename M, typename... Args>
    M* emplace(Args&&... args) {
        return add(std::make_unique<M>(std::forward<Args>(args)...));
    }

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_children(std::vector<Module*>& out) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    void collect_buffers(std::vector<Tensor*>& out) override;
    void set_training(bool training) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    std::size_t child_count() const { return children_.size(); }
    Module& child(std::size_t i) { return *children_.at(i); }

private:
    std::vector<std::unique_ptr<Module>> children_;
};

/// Reshapes [N, C, H, W] (or any rank >= 2) to [N, rest].
class Flatten : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::unique_ptr<Module> clone() const override {
        return std::make_unique<Flatten>();
    }
    std::string name() const override { return "Flatten"; }

private:
    std::vector<std::size_t> input_shape_;
};

/// Identity layer (useful as a stand-in for disabled blocks).
class Identity : public Module {
public:
    Tensor forward(const Tensor& input) override { return input; }
    Tensor backward(const Tensor& grad_output) override { return grad_output; }
    std::unique_ptr<Module> clone() const override {
        return std::make_unique<Identity>();
    }
    std::string name() const override { return "Identity"; }
};

}  // namespace bayesft::nn
