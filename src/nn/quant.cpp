#include "nn/quant.hpp"

#include <stdexcept>

namespace bayesft::nn {

int inference_bits(InferenceMode mode) {
    switch (mode) {
        case InferenceMode::kFloat32: return 0;
        case InferenceMode::kInt8: return 8;
        case InferenceMode::kInt12: return 12;
    }
    throw std::logic_error("inference_bits: bad mode");
}

const char* inference_mode_name(InferenceMode mode) {
    switch (mode) {
        case InferenceMode::kFloat32: return "float32";
        case InferenceMode::kInt8: return "int8";
        case InferenceMode::kInt12: return "int12";
    }
    throw std::logic_error("inference_mode_name: bad mode");
}

InferenceMode parse_inference_mode(const std::string& name) {
    if (name == "float32") return InferenceMode::kFloat32;
    if (name == "int8") return InferenceMode::kInt8;
    if (name == "int12") return InferenceMode::kInt12;
    throw std::invalid_argument(
        "parse_inference_mode: expected float32|int8|int12, got '" + name +
        "'");
}

namespace {

template <typename Visit>
void visit_capable(Module& node, Visit&& visit) {
    if (auto* capable = dynamic_cast<FixedPointCapable*>(&node)) {
        visit(*capable);
    }
    std::vector<Module*> children;
    node.collect_children(children);
    for (Module* child : children) {
        visit_capable(*child, visit);
    }
}

}  // namespace

std::size_t set_inference_mode(Module& root, InferenceMode mode) {
    std::size_t count = 0;
    visit_capable(root, [&](FixedPointCapable& layer) {
        layer.set_inference_mode(mode);
        ++count;
    });
    return count;
}

ScopedInferenceMode::ScopedInferenceMode(Module& root, InferenceMode mode) {
    visit_capable(root, [&](FixedPointCapable& layer) {
        saved_.emplace_back(&layer, layer.inference_mode());
        layer.set_inference_mode(mode);
    });
}

ScopedInferenceMode::~ScopedInferenceMode() {
    for (const auto& [layer, mode] : saved_) {
        layer->set_inference_mode(mode);
    }
}

}  // namespace bayesft::nn
