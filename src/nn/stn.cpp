#include "nn/stn.hpp"

#include <cmath>
#include <stdexcept>

namespace bayesft::nn {

namespace {

void require_theta(const Tensor& theta, std::size_t n) {
    if (theta.rank() != 2 || theta.dim(0) != n || theta.dim(1) != 6) {
        throw std::invalid_argument("STN: theta must be [N, 6], got " +
                                    shape_to_string(theta.shape()));
    }
}

struct SamplePoint {
    float ix = 0.0F;  // continuous input x coordinate (pixels)
    float iy = 0.0F;
};

// Normalized output coordinate -> continuous input pixel coordinate under
// theta.  Align-corners convention: -1 maps to pixel 0, +1 to pixel extent-1.
SamplePoint sample_point(const float* theta, std::size_t ox, std::size_t oy,
                         std::size_t w, std::size_t h) {
    const float xn =
        w > 1 ? 2.0F * static_cast<float>(ox) / static_cast<float>(w - 1) -
                    1.0F
              : 0.0F;
    const float yn =
        h > 1 ? 2.0F * static_cast<float>(oy) / static_cast<float>(h - 1) -
                    1.0F
              : 0.0F;
    const float xs = theta[0] * xn + theta[1] * yn + theta[2];
    const float ys = theta[3] * xn + theta[4] * yn + theta[5];
    SamplePoint p;
    p.ix = (xs + 1.0F) * 0.5F * static_cast<float>(w - 1);
    p.iy = (ys + 1.0F) * 0.5F * static_cast<float>(h - 1);
    return p;
}

float pixel_or_zero(const float* plane, std::ptrdiff_t y, std::ptrdiff_t x,
                    std::size_t h, std::size_t w) {
    if (y < 0 || x < 0 || y >= static_cast<std::ptrdiff_t>(h) ||
        x >= static_cast<std::ptrdiff_t>(w)) {
        return 0.0F;
    }
    return plane[static_cast<std::size_t>(y) * w +
                 static_cast<std::size_t>(x)];
}

}  // namespace

Tensor affine_grid_sample(const Tensor& input, const Tensor& theta) {
    if (input.rank() != 4) {
        throw std::invalid_argument("affine_grid_sample: input must be NCHW");
    }
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    require_theta(theta, n);

    Tensor output(input.shape());
    for (std::size_t s = 0; s < n; ++s) {
        const float* t = theta.data() + s * 6;
        for (std::size_t oy = 0; oy < h; ++oy) {
            for (std::size_t ox = 0; ox < w; ++ox) {
                const SamplePoint p = sample_point(t, ox, oy, w, h);
                const auto x0 =
                    static_cast<std::ptrdiff_t>(std::floor(p.ix));
                const auto y0 =
                    static_cast<std::ptrdiff_t>(std::floor(p.iy));
                const float wx = p.ix - static_cast<float>(x0);
                const float wy = p.iy - static_cast<float>(y0);
                for (std::size_t ch = 0; ch < c; ++ch) {
                    const float* plane = input.data() + (s * c + ch) * h * w;
                    const float v00 = pixel_or_zero(plane, y0, x0, h, w);
                    const float v01 = pixel_or_zero(plane, y0, x0 + 1, h, w);
                    const float v10 = pixel_or_zero(plane, y0 + 1, x0, h, w);
                    const float v11 =
                        pixel_or_zero(plane, y0 + 1, x0 + 1, h, w);
                    output(s, ch, oy, ox) =
                        (1.0F - wy) * ((1.0F - wx) * v00 + wx * v01) +
                        wy * ((1.0F - wx) * v10 + wx * v11);
                }
            }
        }
    }
    return output;
}

GridSampleGrads affine_grid_sample_backward(const Tensor& input,
                                            const Tensor& theta,
                                            const Tensor& grad_output) {
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    require_theta(theta, n);
    if (grad_output.shape() != input.shape()) {
        throw std::invalid_argument(
            "affine_grid_sample_backward: grad shape mismatch");
    }

    GridSampleGrads grads{Tensor(input.shape()), Tensor({n, 6})};
    auto scatter = [&](std::size_t s, std::size_t ch, std::ptrdiff_t y,
                       std::ptrdiff_t x, float value) {
        if (y < 0 || x < 0 || y >= static_cast<std::ptrdiff_t>(h) ||
            x >= static_cast<std::ptrdiff_t>(w)) {
            return;
        }
        grads.grad_input(s, ch, static_cast<std::size_t>(y),
                         static_cast<std::size_t>(x)) += value;
    };

    for (std::size_t s = 0; s < n; ++s) {
        const float* t = theta.data() + s * 6;
        float* dt = grads.grad_theta.data() + s * 6;
        for (std::size_t oy = 0; oy < h; ++oy) {
            for (std::size_t ox = 0; ox < w; ++ox) {
                const SamplePoint p = sample_point(t, ox, oy, w, h);
                const auto x0 =
                    static_cast<std::ptrdiff_t>(std::floor(p.ix));
                const auto y0 =
                    static_cast<std::ptrdiff_t>(std::floor(p.iy));
                const float wx = p.ix - static_cast<float>(x0);
                const float wy = p.iy - static_cast<float>(y0);
                float d_ix = 0.0F;  // sum over channels of dy * dout/dix
                float d_iy = 0.0F;
                for (std::size_t ch = 0; ch < c; ++ch) {
                    const float g = grad_output(s, ch, oy, ox);
                    // Input gradient: bilinear weights scatter.
                    scatter(s, ch, y0, x0, g * (1.0F - wy) * (1.0F - wx));
                    scatter(s, ch, y0, x0 + 1, g * (1.0F - wy) * wx);
                    scatter(s, ch, y0 + 1, x0, g * wy * (1.0F - wx));
                    scatter(s, ch, y0 + 1, x0 + 1, g * wy * wx);
                    // Coordinate gradient via the bilinear surface slopes.
                    const float* plane = input.data() + (s * c + ch) * h * w;
                    const float v00 = pixel_or_zero(plane, y0, x0, h, w);
                    const float v01 = pixel_or_zero(plane, y0, x0 + 1, h, w);
                    const float v10 = pixel_or_zero(plane, y0 + 1, x0, h, w);
                    const float v11 =
                        pixel_or_zero(plane, y0 + 1, x0 + 1, h, w);
                    d_ix += g * ((1.0F - wy) * (v01 - v00) +
                                 wy * (v11 - v10));
                    d_iy += g * ((1.0F - wx) * (v10 - v00) +
                                 wx * (v11 - v01));
                }
                // Chain through pixel<->normalized coordinate scaling and
                // the affine map xs = t0*xn + t1*yn + t2, ys = t3..t5.
                const float d_xs = d_ix * 0.5F * static_cast<float>(w - 1);
                const float d_ys = d_iy * 0.5F * static_cast<float>(h - 1);
                const float xn =
                    w > 1 ? 2.0F * static_cast<float>(ox) /
                                    static_cast<float>(w - 1) -
                                1.0F
                          : 0.0F;
                const float yn =
                    h > 1 ? 2.0F * static_cast<float>(oy) /
                                    static_cast<float>(h - 1) -
                                1.0F
                          : 0.0F;
                dt[0] += d_xs * xn;
                dt[1] += d_xs * yn;
                dt[2] += d_xs;
                dt[3] += d_ys * xn;
                dt[4] += d_ys * yn;
                dt[5] += d_ys;
            }
        }
    }
    return grads;
}

SpatialTransformer::SpatialTransformer(
    std::unique_ptr<Module> localization_net)
    : loc_net_(std::move(localization_net)) {
    if (!loc_net_) {
        throw std::invalid_argument("SpatialTransformer: null localization net");
    }
}

Tensor SpatialTransformer::forward(const Tensor& input) {
    cached_input_ = input;
    cached_theta_ = loc_net_->forward(input);
    return affine_grid_sample(input, cached_theta_);
}

Tensor SpatialTransformer::backward(const Tensor& grad_output) {
    GridSampleGrads grads = affine_grid_sample_backward(
        cached_input_, cached_theta_, grad_output);
    Tensor grad_via_loc = loc_net_->backward(grads.grad_theta);
    return grads.grad_input.add_(grad_via_loc);
}

void SpatialTransformer::collect_children(std::vector<Module*>& out) {
    out.push_back(loc_net_.get());
}

void SpatialTransformer::collect_parameters(std::vector<Parameter*>& out) {
    loc_net_->collect_parameters(out);
}

void SpatialTransformer::collect_buffers(std::vector<Tensor*>& out) {
    loc_net_->collect_buffers(out);
}

void SpatialTransformer::set_training(bool training) {
    training_ = training;
    loc_net_->set_training(training);
}

std::unique_ptr<Module> SpatialTransformer::clone() const {
    std::unique_ptr<Module> loc_copy = loc_net_->clone();
    if (!loc_copy) return nullptr;
    auto copy = std::make_unique<SpatialTransformer>(std::move(loc_copy));
    copy->training_ = training_;
    return copy;
}

}  // namespace bayesft::nn
