#pragma once
// Weight initialization schemes.  Algorithm 1 in the paper initializes theta
// with Xavier initialization [Glorot & Bengio 2010]; He initialization is
// provided for the ReLU-heavy convolutional models.

#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {

/// Xavier/Glorot uniform: U[-a, a] with a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                      std::size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, 2 / fan_in).
Tensor he_normal(std::vector<std::size_t> shape, std::size_t fan_in, Rng& rng);

}  // namespace bayesft::nn
