#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace bayesft::nn {

Tensor xavier_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                      std::size_t fan_out, Rng& rng) {
    if (fan_in + fan_out == 0) {
        throw std::invalid_argument("xavier_uniform: zero fan");
    }
    const float bound = std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
    return Tensor::uniform(std::move(shape), rng, -bound, bound);
}

Tensor he_normal(std::vector<std::size_t> shape, std::size_t fan_in, Rng& rng) {
    if (fan_in == 0) throw std::invalid_argument("he_normal: zero fan_in");
    const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
    return Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace bayesft::nn
