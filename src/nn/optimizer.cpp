#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace bayesft::nn {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
    for (const Parameter* p : params_) {
        if (p == nullptr) {
            throw std::invalid_argument("Optimizer: null parameter");
        }
    }
}

void Optimizer::zero_grad() {
    for (Parameter* p : params_) p->grad.fill(0.0F);
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
    if (learning_rate <= 0.0) {
        throw std::invalid_argument("Sgd: learning rate must be positive");
    }
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_) {
        velocity_.push_back(Tensor::zeros(p->value.shape()));
    }
}

void Sgd::set_learning_rate(double lr) {
    if (lr <= 0.0) throw std::invalid_argument("Sgd: bad learning rate");
    learning_rate_ = lr;
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        Tensor& vel = velocity_[i];
        const auto lr = static_cast<float>(learning_rate_);
        const auto mu = static_cast<float>(momentum_);
        const auto wd = static_cast<float>(weight_decay_);
        for (std::size_t j = 0; j < p.value.size(); ++j) {
            float g = p.grad[j];
            if (wd != 0.0F) g += wd * p.value[j];
            vel[j] = mu * vel[j] + g;
            p.value[j] -= lr * vel[j];
        }
    }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
    if (learning_rate <= 0.0) {
        throw std::invalid_argument("Adam: learning rate must be positive");
    }
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Parameter* p : params_) {
        m_.push_back(Tensor::zeros(p->value.shape()));
        v_.push_back(Tensor::zeros(p->value.shape()));
    }
}

void Adam::set_learning_rate(double lr) {
    if (lr <= 0.0) throw std::invalid_argument("Adam: bad learning rate");
    learning_rate_ = lr;
}

void Adam::step() {
    ++step_count_;
    const double bias1 = 1.0 - std::pow(beta1_, step_count_);
    const double bias2 = 1.0 - std::pow(beta2_, step_count_);
    const auto lr = static_cast<float>(learning_rate_);
    const auto b1 = static_cast<float>(beta1_);
    const auto b2 = static_cast<float>(beta2_);
    const auto eps = static_cast<float>(eps_);
    const auto wd = static_cast<float>(weight_decay_);
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        Tensor& m = m_[i];
        Tensor& v = v_[i];
        for (std::size_t j = 0; j < p.value.size(); ++j) {
            float g = p.grad[j];
            if (wd != 0.0F) g += wd * p.value[j];
            m[j] = b1 * m[j] + (1.0F - b1) * g;
            v[j] = b2 * v[j] + (1.0F - b2) * g * g;
            const float m_hat = m[j] / static_cast<float>(bias1);
            const float v_hat = v[j] / static_cast<float>(bias2);
            p.value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
        }
    }
}

}  // namespace bayesft::nn
