#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace bayesft::nn {

namespace {

constexpr std::uint32_t kMagic = 0xBA7E5F70;  // "BayesFT" checkpoint
constexpr std::uint32_t kVersion = 2;  // v2 adds module buffers

void write_u32(std::ostream& out, std::uint32_t value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void write_u64(std::ostream& out, std::uint64_t value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void write_string(std::ostream& out, const std::string& s) {
    write_u64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t read_u32(std::istream& in) {
    std::uint32_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return value;
}

std::uint64_t read_u64(std::istream& in) {
    std::uint64_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return value;
}

std::string read_string(std::istream& in) {
    const std::uint64_t size = read_u64(in);
    if (size > (1ULL << 20)) {
        throw std::runtime_error("load_parameters: implausible string size");
    }
    std::string s(size, '\0');
    in.read(s.data(), static_cast<std::streamsize>(size));
    return s;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error(what + ": " + path);
}

}  // namespace

void save_parameters(Module& model, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) fail("save_parameters: cannot open", path);
    const auto params = model.parameters();
    write_u32(out, kMagic);
    write_u32(out, kVersion);
    write_u64(out, params.size());
    for (const Parameter* p : params) {
        write_string(out, p->name);
        write_u64(out, p->value.rank());
        for (std::size_t d = 0; d < p->value.rank(); ++d) {
            write_u64(out, p->value.dim(d));
        }
        out.write(reinterpret_cast<const char*>(p->value.data()),
                  static_cast<std::streamsize>(p->value.size() *
                                               sizeof(float)));
    }
    // Non-learnable persistent state (e.g. batch-norm running statistics):
    // without it an eval-mode restore of a normalized model is wrong.
    const auto buffers = model.buffers();
    write_u64(out, buffers.size());
    for (const Tensor* b : buffers) {
        write_u64(out, b->rank());
        for (std::size_t d = 0; d < b->rank(); ++d) {
            write_u64(out, b->dim(d));
        }
        out.write(reinterpret_cast<const char*>(b->data()),
                  static_cast<std::streamsize>(b->size() * sizeof(float)));
    }
    if (!out) fail("save_parameters: write failed", path);
}

void load_parameters(Module& model, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail("load_parameters: cannot open", path);
    if (read_u32(in) != kMagic) {
        fail("load_parameters: bad magic (not a BayesFT checkpoint)", path);
    }
    if (read_u32(in) != kVersion) {
        fail("load_parameters: unsupported checkpoint version", path);
    }
    const auto params = model.parameters();
    const std::uint64_t count = read_u64(in);
    if (count != params.size()) {
        fail("load_parameters: parameter count mismatch", path);
    }
    for (Parameter* p : params) {
        const std::string name = read_string(in);
        if (name != p->name) {
            fail("load_parameters: parameter name mismatch ('" + name +
                     "' vs '" + p->name + "')",
                 path);
        }
        const std::uint64_t rank = read_u64(in);
        std::vector<std::size_t> shape(rank);
        for (std::uint64_t d = 0; d < rank; ++d) {
            shape[d] = static_cast<std::size_t>(read_u64(in));
        }
        if (shape != p->value.shape()) {
            fail("load_parameters: shape mismatch for '" + p->name + "'",
                 path);
        }
        in.read(reinterpret_cast<char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() *
                                             sizeof(float)));
        if (!in) fail("load_parameters: truncated payload", path);
    }
    const auto buffers = model.buffers();
    const std::uint64_t buffer_count = read_u64(in);
    if (buffer_count != buffers.size()) {
        fail("load_parameters: buffer count mismatch", path);
    }
    for (Tensor* b : buffers) {
        const std::uint64_t rank = read_u64(in);
        std::vector<std::size_t> shape(rank);
        for (std::uint64_t d = 0; d < rank; ++d) {
            shape[d] = static_cast<std::size_t>(read_u64(in));
        }
        if (shape != b->shape()) {
            fail("load_parameters: buffer shape mismatch", path);
        }
        in.read(reinterpret_cast<char*>(b->data()),
                static_cast<std::streamsize>(b->size() * sizeof(float)));
        if (!in) fail("load_parameters: truncated buffer payload", path);
    }
}

}  // namespace bayesft::nn
