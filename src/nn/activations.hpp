#pragma once
// Elementwise activation functions.  The paper's Fig. 2(d) ablation compares
// ReLU, Leaky ReLU, ELU and GELU; all four are implemented here with exact
// analytic derivatives.

#include "nn/module.hpp"
#include "simd/kernels.hpp"

namespace bayesft::nn {

/// Common base: caches the forward input for the backward pass.  The
/// elementwise loops run through the runtime-dispatched SIMD kernels
/// (simd::kernels().act_fwd / act_bwd); a subclass only names its kernel
/// via kind() and supplies the scalar parameter via param().
class Activation : public Module {
public:
    Tensor forward(const Tensor& input) final;
    Tensor backward(const Tensor& grad_output) final;

protected:
    /// Which elementwise kernel implements this activation.
    virtual simd::Act kind() const = 0;
    /// The kernel's scalar parameter (leaky slope / ELU alpha).
    virtual float param() const { return 0.0F; }

    /// Helper for subclass clone(): carries the train/eval flag over.
    std::unique_ptr<Module> copy_flags(std::unique_ptr<Activation> c) const {
        c->training_ = training_;
        return c;
    }

private:
    Tensor cached_input_;
};

class ReLU : public Activation {
public:
    std::unique_ptr<Module> clone() const override {
        return copy_flags(std::make_unique<ReLU>());
    }
    std::string name() const override { return "ReLU"; }

protected:
    simd::Act kind() const override { return simd::Act::kRelu; }
};

class LeakyReLU : public Activation {
public:
    explicit LeakyReLU(float negative_slope = 0.01F);
    std::unique_ptr<Module> clone() const override {
        return copy_flags(std::make_unique<LeakyReLU>(slope_));
    }
    std::string name() const override;

protected:
    simd::Act kind() const override { return simd::Act::kLeakyRelu; }
    float param() const override { return slope_; }

private:
    float slope_;
};

class ELU : public Activation {
public:
    explicit ELU(float alpha = 1.0F);
    std::unique_ptr<Module> clone() const override {
        return copy_flags(std::make_unique<ELU>(alpha_));
    }
    std::string name() const override;

protected:
    simd::Act kind() const override { return simd::Act::kElu; }
    float param() const override { return alpha_; }

private:
    float alpha_;
};

/// Exact GELU: x * Phi(x) with Phi the standard normal CDF (erf-based).
class GELU : public Activation {
public:
    std::unique_ptr<Module> clone() const override {
        return copy_flags(std::make_unique<GELU>());
    }
    std::string name() const override { return "GELU"; }

protected:
    simd::Act kind() const override { return simd::Act::kGelu; }
};

class Sigmoid : public Activation {
public:
    std::unique_ptr<Module> clone() const override {
        return copy_flags(std::make_unique<Sigmoid>());
    }
    std::string name() const override { return "Sigmoid"; }

protected:
    simd::Act kind() const override { return simd::Act::kSigmoid; }
};

class Tanh : public Activation {
public:
    std::unique_ptr<Module> clone() const override {
        return copy_flags(std::make_unique<Tanh>());
    }
    std::string name() const override { return "Tanh"; }

protected:
    simd::Act kind() const override { return simd::Act::kTanh; }
};

/// Names usable from configuration strings: "relu", "leaky_relu", "elu",
/// "gelu", "sigmoid", "tanh".  Throws std::invalid_argument on unknown names.
std::unique_ptr<Module> make_activation(const std::string& kind);

}  // namespace bayesft::nn
