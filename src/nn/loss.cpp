#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace bayesft::nn {

LossResult cross_entropy(const Tensor& logits,
                         const std::vector<int>& labels) {
    if (logits.rank() != 2) {
        throw std::invalid_argument("cross_entropy: logits must be [N, K]");
    }
    const std::size_t n = logits.dim(0), k = logits.dim(1);
    if (labels.size() != n) {
        throw std::invalid_argument("cross_entropy: label count mismatch");
    }
    const Tensor log_probs = log_softmax_rows(logits);
    LossResult result;
    result.grad = Tensor({n, k});
    double total = 0.0;
    const float inv_n = 1.0F / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int label = labels[i];
        if (label < 0 || static_cast<std::size_t>(label) >= k) {
            throw std::invalid_argument("cross_entropy: label out of range");
        }
        total -= log_probs(i, static_cast<std::size_t>(label));
        for (std::size_t j = 0; j < k; ++j) {
            const float p = std::exp(log_probs(i, j));
            result.grad(i, j) =
                (p - (j == static_cast<std::size_t>(label) ? 1.0F : 0.0F)) *
                inv_n;
        }
    }
    result.value = total / static_cast<double>(n);
    return result;
}

LossResult bce_with_logits(const Tensor& logits, const Tensor& targets) {
    if (logits.shape() != targets.shape()) {
        throw std::invalid_argument("bce_with_logits: shape mismatch");
    }
    if (logits.empty()) {
        throw std::invalid_argument("bce_with_logits: empty input");
    }
    LossResult result;
    result.grad = Tensor(logits.shape());
    double total = 0.0;
    const std::size_t count = logits.size();
    const float inv = 1.0F / static_cast<float>(count);
    for (std::size_t i = 0; i < count; ++i) {
        const double z = logits[i];
        const double t = targets[i];
        // Numerically stable: log(1 + e^-|z|) + max(z, 0) - z*t.
        total += std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0) -
                 z * t;
        const double sigma = 1.0 / (1.0 + std::exp(-z));
        result.grad[i] = static_cast<float>(sigma - t) * inv;
    }
    result.value = total / static_cast<double>(count);
    return result;
}

LossResult mse(const Tensor& pred, const Tensor& target,
               const Tensor& weights) {
    if (pred.shape() != target.shape()) {
        throw std::invalid_argument("mse: shape mismatch");
    }
    if (pred.empty()) {
        throw std::invalid_argument("mse: empty input");
    }
    const bool weighted = !weights.empty();
    if (weighted && weights.shape() != pred.shape()) {
        throw std::invalid_argument("mse: weight shape mismatch");
    }
    LossResult result;
    result.grad = Tensor(pred.shape());
    double total = 0.0;
    const std::size_t count = pred.size();
    const float inv = 1.0F / static_cast<float>(count);
    for (std::size_t i = 0; i < count; ++i) {
        const float w = weighted ? weights[i] : 1.0F;
        const float d = pred[i] - target[i];
        total += static_cast<double>(w) * d * d;
        result.grad[i] = 2.0F * w * d * inv;
    }
    result.value = total / static_cast<double>(count);
    return result;
}

}  // namespace bayesft::nn
