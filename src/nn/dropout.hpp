#pragma once
// Dropout layers — the architectural component BayesFT searches over.
//
// The key property used by the search (Sec. III-B) is that the dropout rate
// is a *runtime-adjustable* knob: `set_rate` lets the BayesFT loop install a
// candidate alpha vector into a model without rebuilding it.

#include "nn/module.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {

/// Standard (inverted) dropout: during training each element is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate) so that the
/// expected activation is unchanged.  Identity in eval mode.
class Dropout : public Module {
public:
    /// `seed` makes mask sampling reproducible per layer.
    explicit Dropout(double rate, std::uint64_t seed = 0x5EEDULL);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    double rate() const { return rate_; }
    /// Sets the drop probability; throws std::invalid_argument outside [0,1).
    void set_rate(double rate);

    /// Mask-generator state, persisted by search checkpoints so a resumed
    /// run replays the exact mask stream an uninterrupted run would draw.
    RngState mask_rng_state() const { return rng_.state(); }
    void set_mask_rng_state(const RngState& state) { rng_.set_state(state); }

private:
    double rate_;
    Rng rng_;
    Tensor mask_;  // scaled keep mask from the last training forward
};

/// Alpha dropout [Klambauer et al. 2017]: dropped units are set to the
/// SELU saturation value alpha' and the output is affinely rescaled to keep
/// zero mean / unit variance.  The paper's Fig. 2(a) compares it to plain
/// dropout and finds no significant benefit.
class AlphaDropout : public Module {
public:
    explicit AlphaDropout(double rate, std::uint64_t seed = 0xA1FAULL);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    double rate() const { return rate_; }
    void set_rate(double rate);

    /// Mask-generator state (see Dropout::mask_rng_state).
    RngState mask_rng_state() const { return rng_.state(); }
    void set_mask_rng_state(const RngState& state) { rng_.set_state(state); }

private:
    double rate_;
    Rng rng_;
    Tensor mask_;  // 1 for kept positions, 0 for dropped
    float scale_a_ = 1.0F;
};

/// All standard Dropout layers reachable from `root`, in deterministic DFS
/// pre-order (container child order).  Because clone() preserves structure,
/// the n-th dropout of a module equals the n-th dropout of its clone — the
/// basis for re-locating searchable sites inside model replicas.
std::vector<Dropout*> collect_dropout_layers(Module& root);

}  // namespace bayesft::nn
