#include "nn/norm.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bayesft::nn {

namespace {

struct NcsView {
    std::size_t n = 0;
    std::size_t c = 0;
    std::size_t s = 0;  // spatial extent (1 for rank-2 inputs)
};

NcsView view_of(const Tensor& input, std::size_t channels, const char* who) {
    NcsView v;
    if (input.rank() == 2) {
        v = {input.dim(0), input.dim(1), 1};
    } else if (input.rank() == 4) {
        v = {input.dim(0), input.dim(1), input.dim(2) * input.dim(3)};
    } else {
        throw std::invalid_argument(std::string(who) +
                                    ": expected rank 2 or 4, got " +
                                    shape_to_string(input.shape()));
    }
    if (v.c != channels) {
        throw std::invalid_argument(std::string(who) + ": channel mismatch (" +
                                    std::to_string(v.c) + " vs " +
                                    std::to_string(channels) + ")");
    }
    return v;
}

}  // namespace

GroupNorm::GroupNorm(std::size_t num_groups, std::size_t channels, float eps)
    : num_groups_(num_groups),
      channels_(channels),
      eps_(eps),
      gamma_("gamma", Tensor::ones({channels})),
      beta_("beta", Tensor::zeros({channels})) {
    if (num_groups == 0 || channels == 0 || channels % num_groups != 0) {
        throw std::invalid_argument(
            "GroupNorm: channels must be a positive multiple of num_groups");
    }
}

Tensor GroupNorm::forward(const Tensor& input) {
    const NcsView v = view_of(input, channels_, "GroupNorm");
    input_shape_ = input.shape();
    const std::size_t cpg = channels_ / num_groups_;  // channels per group
    const std::size_t slab = cpg * v.s;               // elements per (n, g)

    normalized_ = Tensor(input.shape());
    inv_stddev_.assign(v.n * num_groups_, 0.0F);
    Tensor output(input.shape());

    for (std::size_t n = 0; n < v.n; ++n) {
        for (std::size_t g = 0; g < num_groups_; ++g) {
            const std::size_t base = (n * channels_ + g * cpg) * v.s;
            const float* x = input.data() + base;
            double mean = 0.0;
            for (std::size_t i = 0; i < slab; ++i) mean += x[i];
            mean /= static_cast<double>(slab);
            double var = 0.0;
            for (std::size_t i = 0; i < slab; ++i) {
                const double d = x[i] - mean;
                var += d * d;
            }
            var /= static_cast<double>(slab);
            const float inv_std =
                1.0F / std::sqrt(static_cast<float>(var) + eps_);
            inv_stddev_[n * num_groups_ + g] = inv_std;

            float* xhat = normalized_.data() + base;
            float* y = output.data() + base;
            for (std::size_t i = 0; i < slab; ++i) {
                const std::size_t ch = g * cpg + i / v.s;
                xhat[i] =
                    (x[i] - static_cast<float>(mean)) * inv_std;
                y[i] = gamma_.value[ch] * xhat[i] + beta_.value[ch];
            }
        }
    }
    return output;
}

Tensor GroupNorm::backward(const Tensor& grad_output) {
    if (grad_output.shape() != input_shape_) {
        throw std::invalid_argument("GroupNorm::backward: shape mismatch");
    }
    const NcsView v = view_of(grad_output, channels_, "GroupNorm::backward");
    const std::size_t cpg = channels_ / num_groups_;
    const std::size_t slab = cpg * v.s;
    Tensor grad_input(input_shape_);

    for (std::size_t n = 0; n < v.n; ++n) {
        for (std::size_t g = 0; g < num_groups_; ++g) {
            const std::size_t base = (n * channels_ + g * cpg) * v.s;
            const float* dy = grad_output.data() + base;
            const float* xhat = normalized_.data() + base;
            const float inv_std = inv_stddev_[n * num_groups_ + g];

            // Accumulate affine gradients and the two group means needed by
            // the normalization backward formula.
            double sum_h = 0.0;       // sum of dy * gamma
            double sum_h_xhat = 0.0;  // sum of dy * gamma * xhat
            for (std::size_t i = 0; i < slab; ++i) {
                const std::size_t ch = g * cpg + i / v.s;
                gamma_.grad[ch] += dy[i] * xhat[i];
                beta_.grad[ch] += dy[i];
                const double h = static_cast<double>(dy[i]) * gamma_.value[ch];
                sum_h += h;
                sum_h_xhat += h * xhat[i];
            }
            const float mean_h =
                static_cast<float>(sum_h / static_cast<double>(slab));
            const float mean_h_xhat =
                static_cast<float>(sum_h_xhat / static_cast<double>(slab));

            float* dx = grad_input.data() + base;
            for (std::size_t i = 0; i < slab; ++i) {
                const std::size_t ch = g * cpg + i / v.s;
                const float h = dy[i] * gamma_.value[ch];
                dx[i] = inv_std * (h - mean_h - xhat[i] * mean_h_xhat);
            }
        }
    }
    return grad_input;
}

void GroupNorm::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

std::unique_ptr<Module> GroupNorm::clone() const {
    auto copy = std::make_unique<GroupNorm>(num_groups_, channels_, eps_);
    copy_norm_state_into(*copy);
    return copy;
}

std::string GroupNorm::name() const {
    std::ostringstream os;
    os << "GroupNorm(g" << num_groups_ << ", c" << channels_ << ")";
    return os.str();
}

BatchNorm::BatchNorm(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Tensor::ones({channels})),
      beta_("beta", Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {
    if (channels == 0) throw std::invalid_argument("BatchNorm: zero channels");
}

Tensor BatchNorm::forward(const Tensor& input) {
    const NcsView v = view_of(input, channels_, "BatchNorm");
    input_shape_ = input.shape();
    forward_was_training_ = training();
    Tensor output(input.shape());

    auto element = [&](const Tensor& t, std::size_t n, std::size_t c,
                       std::size_t s) -> float {
        return t.data()[(n * channels_ + c) * v.s + s];
    };

    if (training()) {
        normalized_ = Tensor(input.shape());
        inv_stddev_.assign(channels_, 0.0F);
        const std::size_t count = v.n * v.s;
        if (count < 2) {
            throw std::invalid_argument(
                "BatchNorm: training forward needs batch*spatial >= 2");
        }
        for (std::size_t c = 0; c < channels_; ++c) {
            double mean = 0.0;
            for (std::size_t n = 0; n < v.n; ++n) {
                for (std::size_t s = 0; s < v.s; ++s) {
                    mean += element(input, n, c, s);
                }
            }
            mean /= static_cast<double>(count);
            double var = 0.0;
            for (std::size_t n = 0; n < v.n; ++n) {
                for (std::size_t s = 0; s < v.s; ++s) {
                    const double d = element(input, n, c, s) - mean;
                    var += d * d;
                }
            }
            var /= static_cast<double>(count);
            const float inv_std =
                1.0F / std::sqrt(static_cast<float>(var) + eps_);
            inv_stddev_[c] = inv_std;
            running_mean_[c] =
                (1.0F - momentum_) * running_mean_[c] +
                momentum_ * static_cast<float>(mean);
            running_var_[c] = (1.0F - momentum_) * running_var_[c] +
                              momentum_ * static_cast<float>(var);
            for (std::size_t n = 0; n < v.n; ++n) {
                for (std::size_t s = 0; s < v.s; ++s) {
                    const std::size_t idx = (n * channels_ + c) * v.s + s;
                    const float xhat =
                        (input.data()[idx] - static_cast<float>(mean)) *
                        inv_std;
                    normalized_.data()[idx] = xhat;
                    output.data()[idx] =
                        gamma_.value[c] * xhat + beta_.value[c];
                }
            }
        }
    } else {
        for (std::size_t c = 0; c < channels_; ++c) {
            const float inv_std =
                1.0F / std::sqrt(running_var_[c] + eps_);
            for (std::size_t n = 0; n < v.n; ++n) {
                for (std::size_t s = 0; s < v.s; ++s) {
                    const std::size_t idx = (n * channels_ + c) * v.s + s;
                    output.data()[idx] =
                        gamma_.value[c] *
                            (input.data()[idx] - running_mean_[c]) * inv_std +
                        beta_.value[c];
                }
            }
        }
    }
    return output;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
    if (grad_output.shape() != input_shape_) {
        throw std::invalid_argument("BatchNorm::backward: shape mismatch");
    }
    const NcsView v = view_of(grad_output, channels_, "BatchNorm::backward");
    Tensor grad_input(input_shape_);

    if (!forward_was_training_) {
        // Eval mode: y = gamma * (x - rm) * inv_std + beta is affine in x.
        for (std::size_t c = 0; c < channels_; ++c) {
            const float scale =
                gamma_.value[c] / std::sqrt(running_var_[c] + eps_);
            for (std::size_t n = 0; n < v.n; ++n) {
                for (std::size_t s = 0; s < v.s; ++s) {
                    const std::size_t idx = (n * channels_ + c) * v.s + s;
                    grad_input.data()[idx] = grad_output.data()[idx] * scale;
                }
            }
        }
        return grad_input;
    }

    const std::size_t count = v.n * v.s;
    for (std::size_t c = 0; c < channels_; ++c) {
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (std::size_t n = 0; n < v.n; ++n) {
            for (std::size_t s = 0; s < v.s; ++s) {
                const std::size_t idx = (n * channels_ + c) * v.s + s;
                const double dy = grad_output.data()[idx];
                sum_dy += dy;
                sum_dy_xhat += dy * normalized_.data()[idx];
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
        beta_.grad[c] += static_cast<float>(sum_dy);
        const float mean_dy =
            static_cast<float>(sum_dy / static_cast<double>(count));
        const float mean_dy_xhat =
            static_cast<float>(sum_dy_xhat / static_cast<double>(count));
        const float scale = gamma_.value[c] * inv_stddev_[c];
        for (std::size_t n = 0; n < v.n; ++n) {
            for (std::size_t s = 0; s < v.s; ++s) {
                const std::size_t idx = (n * channels_ + c) * v.s + s;
                grad_input.data()[idx] =
                    scale * (grad_output.data()[idx] - mean_dy -
                             normalized_.data()[idx] * mean_dy_xhat);
            }
        }
    }
    return grad_input;
}

void BatchNorm::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

void BatchNorm::collect_buffers(std::vector<Tensor*>& out) {
    out.push_back(&running_mean_);
    out.push_back(&running_var_);
}

std::unique_ptr<Module> BatchNorm::clone() const {
    auto copy = std::make_unique<BatchNorm>(channels_, eps_, momentum_);
    copy->gamma_.value = gamma_.value;
    copy->beta_.value = beta_.value;
    copy->running_mean_ = running_mean_;
    copy->running_var_ = running_var_;
    copy->training_ = training_;
    return copy;
}

std::string BatchNorm::name() const {
    std::ostringstream os;
    os << "BatchNorm(c" << channels_ << ")";
    return os.str();
}

}  // namespace bayesft::nn
