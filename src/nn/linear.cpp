#include "nn/linear.hpp"

#include <sstream>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace bayesft::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", xavier_uniform({out_features, in_features}, in_features,
                                       out_features, rng)),
      bias_("bias", Tensor::zeros({out_features})) {
    if (in_features == 0 || out_features == 0) {
        throw std::invalid_argument("Linear: zero feature count");
    }
}

Tensor Linear::forward(const Tensor& input) {
    if (input.rank() != 2 || input.dim(1) != in_features_) {
        throw std::invalid_argument("Linear: expected [N, " +
                                    std::to_string(in_features_) + "], got " +
                                    shape_to_string(input.shape()));
    }
    cached_input_ = input;
    Tensor out = matmul_nt(input, weight_.value);  // [N, out]
    const std::size_t n = out.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
        float* row = out.data() + i * out_features_;
        for (std::size_t j = 0; j < out_features_; ++j) {
            row[j] += bias_.value[j];
        }
    }
    return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
    if (grad_output.rank() != 2 || grad_output.dim(1) != out_features_ ||
        grad_output.dim(0) != cached_input_.dim(0)) {
        throw std::invalid_argument("Linear::backward: bad grad shape " +
                                    shape_to_string(grad_output.shape()));
    }
    // dW = dY^T X ; db = column sums of dY ; dX = dY W.
    weight_.grad.add_(matmul_tn(grad_output, cached_input_));
    const std::size_t n = grad_output.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
        const float* row = grad_output.data() + i * out_features_;
        for (std::size_t j = 0; j < out_features_; ++j) {
            bias_.grad[j] += row[j];
        }
    }
    return matmul(grad_output, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    out.push_back(&bias_);
}

Linear::Linear(const Linear& other, CloneTag)
    : in_features_(other.in_features_),
      out_features_(other.out_features_),
      weight_(other.weight_),
      bias_(other.bias_) {
    training_ = other.training_;
}

std::unique_ptr<Module> Linear::clone() const {
    return std::unique_ptr<Module>(new Linear(*this, CloneTag{}));
}

std::string Linear::name() const {
    std::ostringstream os;
    os << "Linear(" << in_features_ << "->" << out_features_ << ")";
    return os.str();
}

}  // namespace bayesft::nn
