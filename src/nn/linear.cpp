#include "nn/linear.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "nn/init.hpp"
#include "simd/kernels.hpp"
#include "tensor/ops.hpp"

namespace bayesft::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", xavier_uniform({out_features, in_features}, in_features,
                                       out_features, rng)),
      bias_("bias", Tensor::zeros({out_features})) {
    if (in_features == 0 || out_features == 0) {
        throw std::invalid_argument("Linear: zero feature count");
    }
}

Tensor Linear::forward(const Tensor& input) {
    if (input.rank() != 2 || input.dim(1) != in_features_) {
        throw std::invalid_argument("Linear: expected [N, " +
                                    std::to_string(in_features_) + "], got " +
                                    shape_to_string(input.shape()));
    }
    cached_input_ = input;
    if (mode_ != InferenceMode::kFloat32) return forward_fixed_point(input);
    Tensor out = matmul_nt(input, weight_.value);  // [N, out]
    const std::size_t n = out.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
        float* row = out.data() + i * out_features_;
        for (std::size_t j = 0; j < out_features_; ++j) {
            row[j] += bias_.value[j];
        }
    }
    return out;
}

Tensor Linear::forward_fixed_point(const Tensor& input) {
    const auto& kt = simd::kernels();
    const int bits = inference_bits(mode_);
    const float qmax =
        static_cast<float>((std::int32_t{1} << (bits - 1)) - 1);
    // Dynamic per-tensor symmetric scales: the weight grid is exactly
    // QuantizationFault(bits)'s view of W (same max|.| / quantize kernel).
    const float s_w =
        kt.max_abs(weight_.value.data(), weight_.value.size()) / qmax;
    const float s_x = kt.max_abs(input.data(), input.size()) / qmax;
    const std::size_t n = input.dim(0);
    Tensor out({n, out_features_});
    if (s_w == 0.0F || s_x == 0.0F) {
        // An all-zero operand quantizes to all-zero codes: y = b.
        for (std::size_t i = 0; i < n; ++i) {
            float* row = out.data() + i * out_features_;
            for (std::size_t j = 0; j < out_features_; ++j) {
                row[j] = bias_.value[j];
            }
        }
        return out;
    }
    weight_codes_.resize(weight_.value.size());
    input_codes_.resize(input.size());
    kt.quantize_codes(weight_.value.data(), weight_codes_.data(),
                      weight_.value.size(), bits, s_w);
    kt.quantize_codes(input.data(), input_codes_.data(), input.size(), bits,
                      s_x);
    // y = (s_w * s_x) * codes(x) @ codes(W)^T — W:[out, in] is already the
    // transposed operand qgemm_nt expects.
    kt.qgemm_nt(input_codes_.data(), weight_codes_.data(), out.data(), n,
                in_features_, out_features_, s_w * s_x);
    for (std::size_t i = 0; i < n; ++i) {
        float* row = out.data() + i * out_features_;
        for (std::size_t j = 0; j < out_features_; ++j) {
            row[j] += bias_.value[j];
        }
    }
    return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
    if (grad_output.rank() != 2 || grad_output.dim(1) != out_features_ ||
        grad_output.dim(0) != cached_input_.dim(0)) {
        throw std::invalid_argument("Linear::backward: bad grad shape " +
                                    shape_to_string(grad_output.shape()));
    }
    // dW = dY^T X ; db = column sums of dY ; dX = dY W.
    weight_.grad.add_(matmul_tn(grad_output, cached_input_));
    const std::size_t n = grad_output.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
        const float* row = grad_output.data() + i * out_features_;
        for (std::size_t j = 0; j < out_features_; ++j) {
            bias_.grad[j] += row[j];
        }
    }
    return matmul(grad_output, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    out.push_back(&bias_);
}

Linear::Linear(const Linear& other, CloneTag)
    : in_features_(other.in_features_),
      out_features_(other.out_features_),
      weight_(other.weight_),
      bias_(other.bias_),
      mode_(other.mode_) {
    training_ = other.training_;
}

std::unique_ptr<Module> Linear::clone() const {
    return std::unique_ptr<Module>(new Linear(*this, CloneTag{}));
}

std::string Linear::name() const {
    std::ostringstream os;
    os << "Linear(" << in_features_ << "->" << out_features_ << ")";
    return os.str();
}

}  // namespace bayesft::nn
