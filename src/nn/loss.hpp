#pragma once
// Loss functions.  Each returns the scalar loss and the gradient w.r.t. the
// predictions, ready to feed into Module::backward.

#include <vector>

#include "tensor/tensor.hpp"

namespace bayesft::nn {

/// Scalar loss value plus gradient w.r.t. the prediction tensor.
struct LossResult {
    double value = 0.0;
    Tensor grad;
};

/// Mean cross-entropy of logits [N, K] against integer labels (size N).
/// Gradient is (softmax - onehot) / N.
LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Mean binary cross-entropy with logits, elementwise against targets of the
/// same shape (targets in [0, 1]).  Used by the FTNA error-correction head
/// and the detector's confidence channel.
LossResult bce_with_logits(const Tensor& logits, const Tensor& targets);

/// Mean squared error, elementwise, optionally with a per-element weight
/// mask of the same shape (pass an empty tensor for uniform weights).
LossResult mse(const Tensor& pred, const Tensor& target,
               const Tensor& weights = Tensor());

}  // namespace bayesft::nn
