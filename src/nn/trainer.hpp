#pragma once
// Mini-batch classification trainer: shuffled epochs of SGD on cross-entropy
// loss, plus evaluation helpers.  This is the inner "optimize theta" loop of
// Algorithm 1 (lines 5-7).

#include <functional>
#include <vector>

#include "nn/module.hpp"
#include "nn/optimizer.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {

/// Configuration of one training run.
struct TrainConfig {
    std::size_t epochs = 5;
    std::size_t batch_size = 32;
    double learning_rate = 0.05;
    double momentum = 0.9;
    double weight_decay = 0.0;
    bool use_adam = false;
    /// Multiplied into the learning rate after each epoch (1 = constant).
    double lr_decay = 1.0;
};

/// Per-epoch training statistics.
struct EpochStats {
    double mean_loss = 0.0;
    double train_accuracy = 0.0;
};

/// Extracts one batch of rows `indices[lo, hi)` from images [N, ...]
/// (keeping trailing dims) and the matching labels.
struct Batch {
    Tensor images;
    std::vector<int> labels;
};
Batch gather_batch(const Tensor& images, const std::vector<int>& labels,
                   const std::vector<std::size_t>& order, std::size_t lo,
                   std::size_t hi);

/// Trains `model` on (images, labels) with cross-entropy.
/// Returns per-epoch stats.  `on_epoch` (optional) observes progress.
std::vector<EpochStats> train_classifier(
    Module& model, const Tensor& images, const std::vector<int>& labels,
    const TrainConfig& config, Rng& rng,
    const std::function<void(std::size_t, const EpochStats&)>& on_epoch = {});

/// Classification accuracy in eval mode (batched to bound memory).
double evaluate_accuracy(Module& model, const Tensor& images,
                         const std::vector<int>& labels,
                         std::size_t batch_size = 256);

/// Mean cross-entropy loss in eval mode.
double evaluate_loss(Module& model, const Tensor& images,
                     const std::vector<int>& labels,
                     std::size_t batch_size = 256);

/// Runs the model over all rows and returns the logits [N, K].
Tensor predict_logits(Module& model, const Tensor& images,
                      std::size_t batch_size = 256);

}  // namespace bayesft::nn
