#include "nn/conv.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "nn/init.hpp"
#include "simd/kernels.hpp"
#include "utils/parallel.hpp"

namespace bayesft::nn {

namespace {

void require_nchw(const Tensor& t, const char* who) {
    if (t.rank() != 4) {
        throw std::invalid_argument(std::string(who) +
                                    ": expected [N, C, H, W], got " +
                                    shape_to_string(t.shape()));
    }
}

/// Samples per batched-GEMM group: bounds each scratch buffer near 32 MiB
/// so deep layers on large eval batches don't balloon resident memory.
std::size_t conv_group_size(std::size_t n, std::size_t patch,
                            std::size_t positions) {
    constexpr std::size_t kMaxScratchFloats = std::size_t{1} << 23;
    const std::size_t per_sample = patch * positions;
    if (per_sample == 0) return n;
    return std::min(n, std::max<std::size_t>(1, kMaxScratchFloats / per_sample));
}

template <typename T>
void ensure_size(std::vector<T>& buffer, std::size_t n) {
    if (buffer.size() < n) buffer.resize(n);
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("weight",
              he_normal({out_channels, in_channels * kernel * kernel},
                        in_channels * kernel * kernel, rng)),
      bias_("bias", Tensor::zeros({out_channels})) {
    if (in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0) {
        throw std::invalid_argument("Conv2d: zero extent");
    }
}

ConvGeometry Conv2d::geometry_for(const Tensor& input) const {
    ConvGeometry g;
    g.channels = in_channels_;
    g.in_h = input.dim(2);
    g.in_w = input.dim(3);
    g.kernel_h = kernel_;
    g.kernel_w = kernel_;
    g.stride = stride_;
    g.pad = pad_;
    g.validate();
    return g;
}

Tensor Conv2d::forward(const Tensor& input) {
    require_nchw(input, "Conv2d");
    if (input.dim(1) != in_channels_) {
        throw std::invalid_argument("Conv2d: channel mismatch, got " +
                                    shape_to_string(input.shape()));
    }
    cached_input_ = input;
    if (mode_ != InferenceMode::kFloat32) return forward_fixed_point(input);
    const ConvGeometry g = geometry_for(input);
    const std::size_t n = input.dim(0);
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t patch = in_channels_ * kernel_ * kernel_;
    const std::size_t positions = oh * ow;

    Tensor output({n, out_channels_, oh, ow});
    const std::size_t image_stride = in_channels_ * g.in_h * g.in_w;
    const std::size_t group = conv_group_size(n, patch, positions);
    ensure_size(cols_scratch_, patch * group * positions);
    ensure_size(gemm_scratch_, out_channels_ * group * positions);
    for (std::size_t g0 = 0; g0 < n; g0 += group) {
        const std::size_t gs = std::min(group, n - g0);
        const std::size_t gp = gs * positions;
        // Unfold the whole group into one [patch, gs*positions] matrix;
        // sample s owns the column slice starting at s*positions.
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                im2col(input.data() + (g0 + s) * image_stride, g,
                       cols_scratch_.data() + s * positions, gp);
            }
        });
        // One large GEMM for the group: [OC, patch] @ [patch, gs*positions].
        std::fill_n(gemm_scratch_.data(), out_channels_ * gp, 0.0F);
        gemm_accumulate(weight_.value.data(), cols_scratch_.data(),
                        gemm_scratch_.data(), out_channels_, patch, gp);
        // Scatter back to [N, OC, positions] layout, adding the bias.
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                for (std::size_t oc = 0; oc < out_channels_; ++oc) {
                    float* dst = output.data() +
                                 ((g0 + s) * out_channels_ + oc) * positions;
                    const float* src =
                        gemm_scratch_.data() + oc * gp + s * positions;
                    const float b = bias_.value[oc];
                    for (std::size_t p = 0; p < positions; ++p) {
                        dst[p] = src[p] + b;
                    }
                }
            }
        });
    }
    return output;
}

Tensor Conv2d::forward_fixed_point(const Tensor& input) {
    const ConvGeometry g = geometry_for(input);
    const std::size_t n = input.dim(0);
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t patch = in_channels_ * kernel_ * kernel_;
    const std::size_t positions = oh * ow;

    const auto& kt = simd::kernels();
    const int bits = inference_bits(mode_);
    const float qmax =
        static_cast<float>((std::int32_t{1} << (bits - 1)) - 1);
    // Dynamic per-tensor symmetric scales over W and the whole input
    // batch; the weight grid is exactly QuantizationFault(bits)'s view.
    const float s_w =
        kt.max_abs(weight_.value.data(), weight_.value.size()) / qmax;
    const float s_x = kt.max_abs(input.data(), input.size()) / qmax;

    Tensor output({n, out_channels_, oh, ow});
    if (s_w == 0.0F || s_x == 0.0F) {
        // An all-zero operand quantizes to all-zero codes: y = b.
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t oc = 0; oc < out_channels_; ++oc) {
                float* dst =
                    output.data() + (i * out_channels_ + oc) * positions;
                std::fill_n(dst, positions, bias_.value[oc]);
            }
        }
        return output;
    }
    ensure_size(weight_codes_, weight_.value.size());
    ensure_size(input_codes_, input.size());
    kt.quantize_codes(weight_.value.data(), weight_codes_.data(),
                      weight_.value.size(), bits, s_w);
    kt.quantize_codes(input.data(), input_codes_.data(), input.size(), bits,
                      s_x);
    const float scale = s_w * s_x;

    const std::size_t image_stride = in_channels_ * g.in_h * g.in_w;
    const std::size_t group = conv_group_size(n, patch, positions);
    ensure_size(cols_codes_, patch * group * positions);
    ensure_size(colsT_codes_, group * positions * patch);
    ensure_size(gemm_scratch_, out_channels_ * group * positions);
    for (std::size_t g0 = 0; g0 < n; g0 += group) {
        const std::size_t gs = std::min(group, n - g0);
        const std::size_t gp = gs * positions;
        // Unfold the code image of the group into [patch, gs*positions],
        // then transpose: qgemm_nt wants the right operand's k-vectors
        // (the patches) contiguous.
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                im2col_into(input_codes_.data() + (g0 + s) * image_stride, g,
                            cols_codes_.data() + s * positions, gp);
            }
        });
        transpose_into_t(cols_codes_.data(), patch, gp, colsT_codes_.data());
        // [OC, patch] @ [patch, gs*positions] in integer arithmetic, one
        // float rounding per output element.
        kt.qgemm_nt(weight_codes_.data(), colsT_codes_.data(),
                    gemm_scratch_.data(), out_channels_, patch, gp, scale);
        // Scatter back to [N, OC, positions] layout, adding the bias.
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                for (std::size_t oc = 0; oc < out_channels_; ++oc) {
                    float* dst = output.data() +
                                 ((g0 + s) * out_channels_ + oc) * positions;
                    const float* src =
                        gemm_scratch_.data() + oc * gp + s * positions;
                    const float b = bias_.value[oc];
                    for (std::size_t p = 0; p < positions; ++p) {
                        dst[p] = src[p] + b;
                    }
                }
            }
        });
    }
    return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    require_nchw(grad_output, "Conv2d::backward");
    const ConvGeometry g = geometry_for(cached_input_);
    const std::size_t n = cached_input_.dim(0);
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t positions = oh * ow;
    const std::size_t patch = in_channels_ * kernel_ * kernel_;
    if (grad_output.dim(0) != n || grad_output.dim(1) != out_channels_ ||
        grad_output.dim(2) != oh || grad_output.dim(3) != ow) {
        throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                    shape_to_string(grad_output.shape()));
    }

    Tensor grad_input(cached_input_.shape());
    const std::size_t image_stride = in_channels_ * g.in_h * g.in_w;
    const std::size_t group = conv_group_size(n, patch, positions);
    ensure_size(cols_scratch_, patch * group * positions);
    ensure_size(grad_scratch_, out_channels_ * group * positions);
    ensure_size(colsT_scratch_, group * positions * patch);
    // W^T once per call: the dcols GEMM streams contiguous rows of it.
    Tensor wt({patch, out_channels_});
    transpose_into(weight_.value.data(), out_channels_, patch, wt.data());
    for (std::size_t g0 = 0; g0 < n; g0 += group) {
        const std::size_t gs = std::min(group, n - g0);
        const std::size_t gp = gs * positions;
        // Recompute the unfolded input (cheaper than caching N copies).
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                im2col(cached_input_.data() + (g0 + s) * image_stride, g,
                       cols_scratch_.data() + s * positions, gp);
            }
        });
        // Gather grad_output [N, OC, positions] into one [OC, gs*positions]
        // slab matching the cols layout.
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                for (std::size_t oc = 0; oc < out_channels_; ++oc) {
                    const float* src =
                        grad_output.data() +
                        ((g0 + s) * out_channels_ + oc) * positions;
                    std::copy_n(src, positions,
                                grad_scratch_.data() + oc * gp +
                                    s * positions);
                }
            }
        });
        // dW += G @ cols^T as one batched GEMM over the group.
        transpose_into(cols_scratch_.data(), patch, gp, colsT_scratch_.data());
        gemm_accumulate(grad_scratch_.data(), colsT_scratch_.data(),
                        weight_.grad.data(), out_channels_, gp, patch);
        // db += row sums of G.
        for (std::size_t oc = 0; oc < out_channels_; ++oc) {
            const float* row = grad_scratch_.data() + oc * gp;
            double acc = 0.0;
            for (std::size_t p = 0; p < gp; ++p) acc += row[p];
            bias_.grad[oc] += static_cast<float>(acc);
        }
        // dcols = W^T @ G, folded back into the input gradient.  The cols
        // buffer is dead after the dW product, so reuse it for dcols.
        std::fill_n(cols_scratch_.data(), patch * gp, 0.0F);
        gemm_accumulate(wt.data(), grad_scratch_.data(), cols_scratch_.data(),
                        patch, out_channels_, gp);
        parallel_for(0, gs, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                col2im(cols_scratch_.data() + s * positions, g,
                       grad_input.data() + (g0 + s) * image_stride, gp);
            }
        });
    }
    return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    out.push_back(&bias_);
}

Conv2d::Conv2d(const Conv2d& other, CloneTag)
    : in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      kernel_(other.kernel_),
      stride_(other.stride_),
      pad_(other.pad_),
      weight_(other.weight_),
      bias_(other.bias_),
      mode_(other.mode_) {
    training_ = other.training_;
}

std::unique_ptr<Module> Conv2d::clone() const {
    return std::unique_ptr<Module>(new Conv2d(*this, CloneTag{}));
}

std::string Conv2d::name() const {
    std::ostringstream os;
    os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", k"
       << kernel_ << ", s" << stride_ << ", p" << pad_ << ")";
    return os.str();
}

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
    if (kernel == 0) throw std::invalid_argument("MaxPool2d: zero kernel");
}

Tensor MaxPool2d::forward(const Tensor& input) {
    require_nchw(input, "MaxPool2d");
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    if (h < kernel_ || w < kernel_) {
        throw std::invalid_argument("MaxPool2d: input smaller than window");
    }
    const std::size_t oh = (h - kernel_) / stride_ + 1;
    const std::size_t ow = (w - kernel_) / stride_ + 1;
    input_shape_ = input.shape();
    Tensor output({n, c, oh, ow});
    argmax_.assign(output.size(), 0);
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float* plane = input.data() + (s * c + ch) * h * w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            const std::size_t iy = oy * stride_ + ky;
                            const std::size_t ix = ox * stride_ + kx;
                            const float v = plane[iy * w + ix];
                            if (v > best) {
                                best = v;
                                best_idx = iy * w + ix;
                            }
                        }
                    }
                    const std::size_t out_idx =
                        ((s * c + ch) * oh + oy) * ow + ox;
                    output[out_idx] = best;
                    argmax_[out_idx] = (s * c + ch) * h * w + best_idx;
                }
            }
        }
    }
    return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
    if (grad_output.size() != argmax_.size()) {
        throw std::invalid_argument("MaxPool2d::backward: bad grad size");
    }
    Tensor grad_input(input_shape_);
    for (std::size_t i = 0; i < argmax_.size(); ++i) {
        grad_input[argmax_[i]] += grad_output[i];
    }
    return grad_input;
}

std::unique_ptr<Module> MaxPool2d::clone() const {
    auto copy = std::make_unique<MaxPool2d>(kernel_, stride_);
    copy->training_ = training_;
    return copy;
}

std::string MaxPool2d::name() const {
    std::ostringstream os;
    os << "MaxPool2d(k" << kernel_ << ", s" << stride_ << ")";
    return os.str();
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
    require_nchw(input, "GlobalAvgPool");
    input_shape_ = input.shape();
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t spatial = input.dim(2) * input.dim(3);
    Tensor output({n, c});
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float* plane = input.data() + (s * c + ch) * spatial;
            double acc = 0.0;
            for (std::size_t p = 0; p < spatial; ++p) acc += plane[p];
            output(s, ch) = static_cast<float>(acc / spatial);
        }
    }
    return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
    const std::size_t n = input_shape_[0], c = input_shape_[1];
    const std::size_t spatial = input_shape_[2] * input_shape_[3];
    if (grad_output.rank() != 2 || grad_output.dim(0) != n ||
        grad_output.dim(1) != c) {
        throw std::invalid_argument("GlobalAvgPool::backward: bad grad shape");
    }
    Tensor grad_input(input_shape_);
    const float inv = 1.0F / static_cast<float>(spatial);
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float g = grad_output(s, ch) * inv;
            float* plane = grad_input.data() + (s * c + ch) * spatial;
            for (std::size_t p = 0; p < spatial; ++p) plane[p] = g;
        }
    }
    return grad_input;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
    if (kernel == 0) throw std::invalid_argument("AvgPool2d: zero kernel");
}

Tensor AvgPool2d::forward(const Tensor& input) {
    require_nchw(input, "AvgPool2d");
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    if (h < kernel_ || w < kernel_) {
        throw std::invalid_argument("AvgPool2d: input smaller than window");
    }
    const std::size_t oh = (h - kernel_) / stride_ + 1;
    const std::size_t ow = (w - kernel_) / stride_ + 1;
    input_shape_ = input.shape();
    Tensor output({n, c, oh, ow});
    const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float* plane = input.data() + (s * c + ch) * h * w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    double acc = 0.0;
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            acc += plane[(oy * stride_ + ky) * w +
                                         (ox * stride_ + kx)];
                        }
                    }
                    output(s, ch, oy, ox) = static_cast<float>(acc) * inv;
                }
            }
        }
    }
    return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
    const std::size_t n = input_shape_[0], c = input_shape_[1];
    const std::size_t h = input_shape_[2], w = input_shape_[3];
    const std::size_t oh = (h - kernel_) / stride_ + 1;
    const std::size_t ow = (w - kernel_) / stride_ + 1;
    if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
        grad_output.dim(1) != c || grad_output.dim(2) != oh ||
        grad_output.dim(3) != ow) {
        throw std::invalid_argument("AvgPool2d::backward: bad grad shape");
    }
    Tensor grad_input(input_shape_);
    const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            float* plane = grad_input.data() + (s * c + ch) * h * w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    const float g = grad_output(s, ch, oy, ox) * inv;
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            plane[(oy * stride_ + ky) * w +
                                  (ox * stride_ + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

std::unique_ptr<Module> AvgPool2d::clone() const {
    auto copy = std::make_unique<AvgPool2d>(kernel_, stride_);
    copy->training_ = training_;
    return copy;
}

std::string AvgPool2d::name() const {
    std::ostringstream os;
    os << "AvgPool2d(k" << kernel_ << ", s" << stride_ << ")";
    return os.str();
}

}  // namespace bayesft::nn
