#include "nn/activations.hpp"

#include <sstream>
#include <stdexcept>

namespace bayesft::nn {

Tensor Activation::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor out = input;
    simd::kernels().act_fwd(kind(), out.data(), out.data(), out.size(),
                            param());
    return out;
}

Tensor Activation::backward(const Tensor& grad_output) {
    if (grad_output.shape() != cached_input_.shape()) {
        throw std::invalid_argument("Activation::backward: shape mismatch");
    }
    Tensor grad = grad_output;
    simd::kernels().act_bwd(kind(), cached_input_.data(), grad.data(),
                            grad.size(), param());
    return grad;
}

LeakyReLU::LeakyReLU(float negative_slope) : slope_(negative_slope) {}
std::string LeakyReLU::name() const {
    std::ostringstream os;
    os << "LeakyReLU(" << slope_ << ")";
    return os.str();
}

ELU::ELU(float alpha) : alpha_(alpha) {}
std::string ELU::name() const {
    std::ostringstream os;
    os << "ELU(" << alpha_ << ")";
    return os.str();
}

std::unique_ptr<Module> make_activation(const std::string& kind) {
    if (kind == "relu") return std::make_unique<ReLU>();
    if (kind == "leaky_relu") return std::make_unique<LeakyReLU>();
    if (kind == "elu") return std::make_unique<ELU>();
    if (kind == "gelu") return std::make_unique<GELU>();
    if (kind == "sigmoid") return std::make_unique<Sigmoid>();
    if (kind == "tanh") return std::make_unique<Tanh>();
    throw std::invalid_argument("make_activation: unknown kind '" + kind + "'");
}

}  // namespace bayesft::nn
