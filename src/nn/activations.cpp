#include "nn/activations.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace bayesft::nn {

Tensor Activation::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor out = input;
    for (float& v : out.values()) v = apply(v);
    return out;
}

Tensor Activation::backward(const Tensor& grad_output) {
    if (grad_output.shape() != cached_input_.shape()) {
        throw std::invalid_argument("Activation::backward: shape mismatch");
    }
    Tensor grad = grad_output;
    const float* x = cached_input_.data();
    float* g = grad.data();
    for (std::size_t i = 0; i < grad.size(); ++i) g[i] *= derivative(x[i]);
    return grad;
}

float ReLU::apply(float x) const { return x > 0.0F ? x : 0.0F; }
float ReLU::derivative(float x) const { return x > 0.0F ? 1.0F : 0.0F; }

LeakyReLU::LeakyReLU(float negative_slope) : slope_(negative_slope) {}
float LeakyReLU::apply(float x) const { return x > 0.0F ? x : slope_ * x; }
float LeakyReLU::derivative(float x) const {
    return x > 0.0F ? 1.0F : slope_;
}
std::string LeakyReLU::name() const {
    std::ostringstream os;
    os << "LeakyReLU(" << slope_ << ")";
    return os.str();
}

ELU::ELU(float alpha) : alpha_(alpha) {}
float ELU::apply(float x) const {
    return x > 0.0F ? x : alpha_ * (std::exp(x) - 1.0F);
}
float ELU::derivative(float x) const {
    return x > 0.0F ? 1.0F : alpha_ * std::exp(x);
}
std::string ELU::name() const {
    std::ostringstream os;
    os << "ELU(" << alpha_ << ")";
    return os.str();
}

float GELU::apply(float x) const {
    const float cdf =
        0.5F * (1.0F + std::erf(x / std::numbers::sqrt2_v<float>));
    return x * cdf;
}
float GELU::derivative(float x) const {
    const float cdf =
        0.5F * (1.0F + std::erf(x / std::numbers::sqrt2_v<float>));
    const float pdf =
        std::exp(-0.5F * x * x) /
        std::sqrt(2.0F * std::numbers::pi_v<float>);
    return cdf + x * pdf;
}

float Sigmoid::apply(float x) const { return 1.0F / (1.0F + std::exp(-x)); }
float Sigmoid::derivative(float x) const {
    const float s = apply(x);
    return s * (1.0F - s);
}

float Tanh::apply(float x) const { return std::tanh(x); }
float Tanh::derivative(float x) const {
    const float t = std::tanh(x);
    return 1.0F - t * t;
}

std::unique_ptr<Module> make_activation(const std::string& kind) {
    if (kind == "relu") return std::make_unique<ReLU>();
    if (kind == "leaky_relu") return std::make_unique<LeakyReLU>();
    if (kind == "elu") return std::make_unique<ELU>();
    if (kind == "gelu") return std::make_unique<GELU>();
    if (kind == "sigmoid") return std::make_unique<Sigmoid>();
    if (kind == "tanh") return std::make_unique<Tanh>();
    throw std::invalid_argument("make_activation: unknown kind '" + kind + "'");
}

}  // namespace bayesft::nn
