#include "nn/module.hpp"

#include <sstream>
#include <stdexcept>

namespace bayesft::nn {

void Module::collect_parameters(std::vector<Parameter*>&) {}

void Module::collect_buffers(std::vector<Tensor*>&) {}

std::vector<Tensor*> Module::buffers() {
    std::vector<Tensor*> out;
    collect_buffers(out);
    return out;
}

std::vector<Parameter*> Module::parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
}

std::size_t Module::parameter_count() {
    std::size_t total = 0;
    for (const Parameter* p : parameters()) total += p->value.size();
    return total;
}

Tensor Sequential::forward(const Tensor& input) {
    Tensor current = input;
    for (auto& child : children_) current = child->forward(current);
    return current;
}

Tensor Sequential::backward(const Tensor& grad_output) {
    Tensor current = grad_output;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
        current = (*it)->backward(current);
    }
    return current;
}

void Sequential::collect_children(std::vector<Module*>& out) {
    for (auto& child : children_) out.push_back(child.get());
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
    for (auto& child : children_) child->collect_parameters(out);
}

void Sequential::collect_buffers(std::vector<Tensor*>& out) {
    for (auto& child : children_) child->collect_buffers(out);
}

void Sequential::set_training(bool training) {
    training_ = training;
    for (auto& child : children_) child->set_training(training);
}

std::unique_ptr<Module> Sequential::clone() const {
    auto copy = std::make_unique<Sequential>();
    for (const auto& child : children_) {
        std::unique_ptr<Module> child_copy = child->clone();
        if (!child_copy) return nullptr;  // unreplicable child poisons the copy
        copy->add(std::move(child_copy));
    }
    copy->training_ = training_;
    return copy;
}

std::string Sequential::name() const {
    std::ostringstream os;
    os << "Sequential(" << children_.size() << " layers)";
    return os.str();
}

Tensor Flatten::forward(const Tensor& input) {
    if (input.rank() < 2) {
        throw std::invalid_argument("Flatten: expected rank >= 2, got " +
                                    shape_to_string(input.shape()));
    }
    input_shape_ = input.shape();
    return input.reshaped({input.dim(0), 0});
}

Tensor Flatten::backward(const Tensor& grad_output) {
    return grad_output.reshaped(input_shape_);
}

}  // namespace bayesft::nn
