#pragma once
// Fully-connected layer.

#include "nn/module.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {

/// y = x W^T + b for x:[N, in], W:[out, in], b:[out].
class Linear : public Module {
public:
    /// Xavier-uniform initialized weights, zero bias.
    Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    std::size_t in_features() const { return in_features_; }
    std::size_t out_features() const { return out_features_; }
    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }

private:
    /// Clone path: copies parameters without running the (discarded) random
    /// weight initialization.
    struct CloneTag {};
    Linear(const Linear& other, CloneTag);

    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
};

}  // namespace bayesft::nn
