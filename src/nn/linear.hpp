#pragma once
// Fully-connected layer.

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "nn/quant.hpp"
#include "utils/rng.hpp"

namespace bayesft::nn {

/// y = x W^T + b for x:[N, in], W:[out, in], b:[out].
///
/// Fixed-point capable: under InferenceMode::kInt8 / kInt12 the forward
/// quantizes W and x per-tensor to signed codes and accumulates the
/// product in integers (simd qgemm_nt); see nn/quant.hpp for the exact
/// semantics.  Backward always differentiates the float path.
class Linear : public Module, public FixedPointCapable {
public:
    /// Xavier-uniform initialized weights, zero bias.
    Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    void collect_parameters(std::vector<Parameter*>& out) override;
    std::unique_ptr<Module> clone() const override;
    std::string name() const override;

    void set_inference_mode(InferenceMode mode) override { mode_ = mode; }
    InferenceMode inference_mode() const override { return mode_; }

    std::size_t in_features() const { return in_features_; }
    std::size_t out_features() const { return out_features_; }
    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }

private:
    /// Clone path: copies parameters without running the (discarded) random
    /// weight initialization.
    struct CloneTag {};
    Linear(const Linear& other, CloneTag);

    Tensor forward_fixed_point(const Tensor& input);

    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
    InferenceMode mode_ = InferenceMode::kFloat32;
    // Fixed-point scratch (codes of W and x), grown on demand and reused
    // across calls.
    std::vector<std::int16_t> weight_codes_;
    std::vector<std::int16_t> input_codes_;
};

}  // namespace bayesft::nn
