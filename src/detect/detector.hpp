#pragma once
// Single-class grid detector (YOLO-v1 style), the Mask-RCNN stand-in for the
// object-detection experiments (DESIGN.md section 2).
//
// A small convolutional backbone maps [N, 3, S, S] scenes to a [N, 5, G, G]
// grid; per cell the 5 channels are (confidence, cx, cy, w, h), all squashed
// to [0, 1] by a final sigmoid.  Dropout layers sit after every conv stage,
// giving BayesFT the same per-layer search space as the classifiers.

#include <memory>
#include <vector>

#include "detect/box.hpp"
#include "nn/dropout.hpp"
#include "nn/module.hpp"
#include "utils/rng.hpp"

namespace bayesft::detect {

/// Architecture and decoding configuration.
struct GridDetectorConfig {
    std::size_t image_size = 32;
    std::size_t grid = 4;  ///< G x G prediction cells
    std::size_t base_channels = 8;
    double confidence_threshold = 0.25;
    double nms_iou = 0.3;
    /// Loss weights (YOLO-style): coordinates of object cells vs the
    /// confidence of empty cells.
    double lambda_coord = 5.0;
    double lambda_noobj = 0.5;
};

/// Training configuration for the detector.
struct DetectorTrainConfig {
    std::size_t epochs = 30;
    std::size_t batch_size = 16;
    double learning_rate = 1e-3;  ///< Adam
};

/// Owns the network and implements target encoding, loss, decode and mAP.
class GridDetector {
public:
    GridDetector(const GridDetectorConfig& config, Rng& rng);

    nn::Module& network() { return *net_; }
    /// Per-stage dropout handles (the alpha search space for BayesFT).
    const std::vector<nn::Dropout*>& dropout_sites() const {
        return dropout_sites_;
    }
    const GridDetectorConfig& config() const { return config_; }

    /// Builds the [N, 5, G, G] regression target and weight tensors from
    /// ground-truth boxes.
    struct Targets {
        Tensor values;
        Tensor weights;
    };
    Targets encode_targets(
        const std::vector<std::vector<Box>>& boxes_per_image) const;

    /// Trains on (images, boxes) with weighted MSE; returns final mean loss.
    double train(const Tensor& images,
                 const std::vector<std::vector<Box>>& boxes_per_image,
                 const DetectorTrainConfig& train_config, Rng& rng);

    /// Runs the network and decodes scored, NMS-filtered detections.
    std::vector<std::vector<Detection>> detect(const Tensor& images);

    /// Decodes detections from an arbitrary network with this detector's
    /// configuration.  Lets drift-robustness metrics score the (replicated)
    /// module they are handed instead of aliasing the owned network, which
    /// makes them safe for parallel Monte-Carlo evaluation.
    std::vector<std::vector<Detection>> detect_with(nn::Module& net,
                                                    const Tensor& images) const;

    /// AP@0.5 on a labeled set (single class, so mAP == AP).
    double evaluate_map(const Tensor& images,
                        const std::vector<std::vector<Box>>& boxes_per_image);

    /// AP@0.5 of an arbitrary network decoded with this configuration.
    double evaluate_map_with(
        nn::Module& net, const Tensor& images,
        const std::vector<std::vector<Box>>& boxes_per_image) const;

private:
    GridDetectorConfig config_;
    std::unique_ptr<nn::Sequential> net_;
    std::vector<nn::Dropout*> dropout_sites_;
};

}  // namespace bayesft::detect
