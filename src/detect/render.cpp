#include "detect/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bayesft::detect {

namespace {

void require_chw(const Tensor& image) {
    if (image.rank() != 3 || image.dim(0) != 3) {
        throw std::invalid_argument("render: expected [3, H, W] image, got " +
                                    shape_to_string(image.shape()));
    }
}

bool on_box_edge(const Box& box, std::size_t x, std::size_t y) {
    const double fx = static_cast<double>(x);
    const double fy = static_cast<double>(y);
    const bool x_in = fx >= box.x1 - 0.5 && fx <= box.x2 + 0.5;
    const bool y_in = fy >= box.y1 - 0.5 && fy <= box.y2 + 0.5;
    const bool x_edge = std::abs(fx - box.x1) < 0.5 ||
                        std::abs(fx - box.x2) < 0.5;
    const bool y_edge = std::abs(fy - box.y1) < 0.5 ||
                        std::abs(fy - box.y2) < 0.5;
    return (x_edge && y_in) || (y_edge && x_in);
}

}  // namespace

std::string render_ascii(const Tensor& image,
                         const std::vector<Detection>& detections,
                         const std::vector<Box>& ground_truth) {
    require_chw(image);
    const std::size_t h = image.dim(1), w = image.dim(2);
    // Ramp avoids '#' and '+', which mark detection / truth boxes.
    static constexpr char kRamp[] = " .,:-~=oa@";
    constexpr std::size_t kRampLen = sizeof(kRamp) - 2;
    std::ostringstream os;
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            char ch = 0;
            for (const Detection& det : detections) {
                if (on_box_edge(det.box, x, y)) {
                    ch = '#';
                    break;
                }
            }
            if (ch == 0) {
                for (const Box& gt : ground_truth) {
                    if (on_box_edge(gt, x, y)) {
                        ch = '+';
                        break;
                    }
                }
            }
            if (ch == 0) {
                const float lum = (image(0, y, x) + image(1, y, x) +
                                   image(2, y, x)) /
                                  3.0F;
                const auto idx = static_cast<std::size_t>(
                    std::clamp(lum, 0.0F, 1.0F) *
                    static_cast<float>(kRampLen));
                ch = kRamp[idx];
            }
            os << ch;
        }
        os << '\n';
    }
    return os.str();
}

void write_ppm(const std::string& path, const Tensor& image,
               const std::vector<Detection>& detections,
               const std::vector<Box>& ground_truth) {
    require_chw(image);
    const std::size_t h = image.dim(1), w = image.dim(2);
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
    out << "P6\n" << w << " " << h << "\n255\n";
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            float r = image(0, y, x), g = image(1, y, x), b = image(2, y, x);
            for (const Box& gt : ground_truth) {
                if (on_box_edge(gt, x, y)) {
                    r = 0.0F;
                    g = 1.0F;
                    b = 0.0F;
                }
            }
            for (const Detection& det : detections) {
                if (on_box_edge(det.box, x, y)) {
                    r = 1.0F;
                    g = 0.0F;
                    b = 0.0F;
                }
            }
            auto quantize = [](float v) {
                return static_cast<unsigned char>(
                    std::clamp(v, 0.0F, 1.0F) * 255.0F);
            };
            const unsigned char pixel[3] = {quantize(r), quantize(g),
                                            quantize(b)};
            out.write(reinterpret_cast<const char*>(pixel), 3);
        }
    }
    if (!out) throw std::runtime_error("write_ppm: write failed " + path);
}

}  // namespace bayesft::detect
