#include "detect/detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace bayesft::detect {

GridDetector::GridDetector(const GridDetectorConfig& config, Rng& rng)
    : config_(config) {
    if (config.grid == 0 || config.image_size != config.grid * 8) {
        throw std::invalid_argument(
            "GridDetector: image_size must equal grid * 8 (three 2x pools)");
    }
    if (config.base_channels == 0) {
        throw std::invalid_argument("GridDetector: zero base_channels");
    }
    const std::size_t c = config.base_channels;
    net_ = std::make_unique<nn::Sequential>();
    net_->emplace<nn::Conv2d>(3, c, 3, 1, 1, rng);
    net_->emplace<nn::ReLU>();
    net_->emplace<nn::MaxPool2d>(2);
    dropout_sites_.push_back(
        net_->emplace<nn::Dropout>(0.0, rng.split()()));
    net_->emplace<nn::Conv2d>(c, 2 * c, 3, 1, 1, rng);
    net_->emplace<nn::ReLU>();
    net_->emplace<nn::MaxPool2d>(2);
    dropout_sites_.push_back(
        net_->emplace<nn::Dropout>(0.0, rng.split()()));
    net_->emplace<nn::Conv2d>(2 * c, 4 * c, 3, 1, 1, rng);
    net_->emplace<nn::ReLU>();
    net_->emplace<nn::MaxPool2d>(2);
    dropout_sites_.push_back(
        net_->emplace<nn::Dropout>(0.0, rng.split()()));
    net_->emplace<nn::Conv2d>(4 * c, 5, 1, 1, 0, rng);
    net_->emplace<nn::Sigmoid>();
}

GridDetector::Targets GridDetector::encode_targets(
    const std::vector<std::vector<Box>>& boxes_per_image) const {
    const std::size_t n = boxes_per_image.size();
    const std::size_t g = config_.grid;
    const double cell =
        static_cast<double>(config_.image_size) / static_cast<double>(g);
    Targets t{Tensor({n, 5, g, g}), Tensor({n, 5, g, g})};
    // Default: empty cells contribute only a down-weighted confidence term.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t gy = 0; gy < g; ++gy) {
            for (std::size_t gx = 0; gx < g; ++gx) {
                t.weights(i, 0, gy, gx) =
                    static_cast<float>(config_.lambda_noobj);
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (const Box& box : boxes_per_image[i]) {
            const double cx = (box.x1 + box.x2) / 2.0;
            const double cy = (box.y1 + box.y2) / 2.0;
            const auto gx = std::min<std::size_t>(
                g - 1, static_cast<std::size_t>(cx / cell));
            const auto gy = std::min<std::size_t>(
                g - 1, static_cast<std::size_t>(cy / cell));
            t.values(i, 0, gy, gx) = 1.0F;
            t.values(i, 1, gy, gx) =
                static_cast<float>(cx / cell - static_cast<double>(gx));
            t.values(i, 2, gy, gx) =
                static_cast<float>(cy / cell - static_cast<double>(gy));
            t.values(i, 3, gy, gx) = static_cast<float>(
                box.width() / static_cast<double>(config_.image_size));
            t.values(i, 4, gy, gx) = static_cast<float>(
                box.height() / static_cast<double>(config_.image_size));
            t.weights(i, 0, gy, gx) = 1.0F;
            for (std::size_t ch = 1; ch < 5; ++ch) {
                t.weights(i, ch, gy, gx) =
                    static_cast<float>(config_.lambda_coord);
            }
        }
    }
    return t;
}

double GridDetector::train(
    const Tensor& images, const std::vector<std::vector<Box>>& boxes_per_image,
    const DetectorTrainConfig& train_config, Rng& rng) {
    const std::size_t n = images.dim(0);
    if (n != boxes_per_image.size() || n == 0) {
        throw std::invalid_argument("GridDetector::train: size mismatch");
    }
    const Targets targets = encode_targets(boxes_per_image);
    nn::Adam opt(net_->parameters(), train_config.learning_rate);
    const std::size_t batch = std::min(train_config.batch_size, n);
    const std::size_t row = images.size() / n;
    const std::size_t target_row = targets.values.size() / n;

    net_->set_training(true);
    double final_loss = 0.0;
    for (std::size_t epoch = 0; epoch < train_config.epochs; ++epoch) {
        const auto order = rng.permutation(n);
        double loss_sum = 0.0;
        std::size_t batches = 0;
        for (std::size_t lo = 0; lo < n; lo += batch) {
            const std::size_t hi = std::min(lo + batch, n);
            const std::size_t bs = hi - lo;
            std::vector<std::size_t> shape = images.shape();
            shape[0] = bs;
            Tensor batch_images(shape);
            Tensor batch_targets({bs, 5, config_.grid, config_.grid});
            Tensor batch_weights({bs, 5, config_.grid, config_.grid});
            for (std::size_t i = lo; i < hi; ++i) {
                const std::size_t src = order[i];
                std::copy_n(images.data() + src * row, row,
                            batch_images.data() + (i - lo) * row);
                std::copy_n(targets.values.data() + src * target_row,
                            target_row,
                            batch_targets.data() + (i - lo) * target_row);
                std::copy_n(targets.weights.data() + src * target_row,
                            target_row,
                            batch_weights.data() + (i - lo) * target_row);
            }
            opt.zero_grad();
            const Tensor pred = net_->forward(batch_images);
            const nn::LossResult loss =
                nn::mse(pred, batch_targets, batch_weights);
            net_->backward(loss.grad);
            opt.step();
            loss_sum += loss.value;
            ++batches;
        }
        final_loss = loss_sum / static_cast<double>(batches);
    }
    return final_loss;
}

std::vector<std::vector<Detection>> GridDetector::detect(
    const Tensor& images) {
    return detect_with(*net_, images);
}

std::vector<std::vector<Detection>> GridDetector::detect_with(
    nn::Module& net, const Tensor& images) const {
    const bool was_training = net.training();
    net.set_training(false);
    const Tensor out = net.forward(images);
    net.set_training(was_training);

    const std::size_t n = images.dim(0);
    const std::size_t g = config_.grid;
    const double cell =
        static_cast<double>(config_.image_size) / static_cast<double>(g);
    std::vector<std::vector<Detection>> result(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<Detection> raw;
        for (std::size_t gy = 0; gy < g; ++gy) {
            for (std::size_t gx = 0; gx < g; ++gx) {
                const double conf = out(i, 0, gy, gx);
                if (conf < config_.confidence_threshold) continue;
                const double cx =
                    (static_cast<double>(gx) + out(i, 1, gy, gx)) * cell;
                const double cy =
                    (static_cast<double>(gy) + out(i, 2, gy, gx)) * cell;
                const double w = out(i, 3, gy, gx) *
                                 static_cast<double>(config_.image_size);
                const double h = out(i, 4, gy, gx) *
                                 static_cast<double>(config_.image_size);
                Detection det;
                det.score = conf;
                det.box = Box{cx - w / 2.0, cy - h / 2.0, cx + w / 2.0,
                              cy + h / 2.0};
                if (det.box.valid()) raw.push_back(det);
            }
        }
        result[i] = nms(std::move(raw), config_.nms_iou);
    }
    return result;
}

double GridDetector::evaluate_map(
    const Tensor& images,
    const std::vector<std::vector<Box>>& boxes_per_image) {
    return evaluate_map_with(*net_, images, boxes_per_image);
}

double GridDetector::evaluate_map_with(
    nn::Module& net, const Tensor& images,
    const std::vector<std::vector<Box>>& boxes_per_image) const {
    return average_precision(detect_with(net, images), boxes_per_image, 0.5);
}

}  // namespace bayesft::detect
