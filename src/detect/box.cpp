#include "detect/box.hpp"

#include <algorithm>
#include <stdexcept>

namespace bayesft::detect {

double Box::area() const {
    if (!valid()) return 0.0;
    return width() * height();
}

double iou(const Box& a, const Box& b) {
    if (!a.valid() || !b.valid()) return 0.0;
    const double ix1 = std::max(a.x1, b.x1);
    const double iy1 = std::max(a.y1, b.y1);
    const double ix2 = std::min(a.x2, b.x2);
    const double iy2 = std::min(a.y2, b.y2);
    if (ix2 <= ix1 || iy2 <= iy1) return 0.0;
    const double inter = (ix2 - ix1) * (iy2 - iy1);
    return inter / (a.area() + b.area() - inter);
}

std::vector<Detection> nms(std::vector<Detection> detections,
                           double iou_threshold) {
    if (iou_threshold < 0.0 || iou_threshold > 1.0) {
        throw std::invalid_argument("nms: threshold must be in [0, 1]");
    }
    std::sort(detections.begin(), detections.end(),
              [](const Detection& a, const Detection& b) {
                  return a.score > b.score;
              });
    std::vector<Detection> kept;
    for (const Detection& candidate : detections) {
        bool suppressed = false;
        for (const Detection& winner : kept) {
            if (iou(candidate.box, winner.box) > iou_threshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) kept.push_back(candidate);
    }
    return kept;
}

double average_precision(
    const std::vector<std::vector<Detection>>& detections_per_image,
    const std::vector<std::vector<Box>>& ground_truth_per_image,
    double iou_threshold) {
    if (detections_per_image.size() != ground_truth_per_image.size()) {
        throw std::invalid_argument("average_precision: image count mismatch");
    }
    std::size_t total_gt = 0;
    for (const auto& gts : ground_truth_per_image) total_gt += gts.size();
    if (total_gt == 0) return 0.0;

    // Flatten detections with their image index, sort by descending score.
    struct Flat {
        double score;
        std::size_t image;
        const Box* box;
    };
    std::vector<Flat> flat;
    for (std::size_t img = 0; img < detections_per_image.size(); ++img) {
        for (const Detection& det : detections_per_image[img]) {
            flat.push_back({det.score, img, &det.box});
        }
    }
    std::sort(flat.begin(), flat.end(),
              [](const Flat& a, const Flat& b) { return a.score > b.score; });

    // Greedy matching: each ground-truth box may be claimed once.
    std::vector<std::vector<bool>> claimed;
    claimed.reserve(ground_truth_per_image.size());
    for (const auto& gts : ground_truth_per_image) {
        claimed.emplace_back(gts.size(), false);
    }

    std::vector<double> precision;
    std::vector<double> recall;
    std::size_t tp = 0, fp = 0;
    for (const Flat& det : flat) {
        const auto& gts = ground_truth_per_image[det.image];
        double best_iou = 0.0;
        std::size_t best_idx = gts.size();
        for (std::size_t g = 0; g < gts.size(); ++g) {
            if (claimed[det.image][g]) continue;
            const double overlap = iou(*det.box, gts[g]);
            if (overlap > best_iou) {
                best_iou = overlap;
                best_idx = g;
            }
        }
        if (best_idx < gts.size() && best_iou >= iou_threshold) {
            claimed[det.image][best_idx] = true;
            ++tp;
        } else {
            ++fp;
        }
        precision.push_back(static_cast<double>(tp) /
                            static_cast<double>(tp + fp));
        recall.push_back(static_cast<double>(tp) /
                         static_cast<double>(total_gt));
    }
    if (precision.empty()) return 0.0;

    // Monotone-decreasing precision envelope, then exact area under PR.
    for (std::size_t i = precision.size() - 1; i-- > 0;) {
        precision[i] = std::max(precision[i], precision[i + 1]);
    }
    double ap = 0.0;
    double prev_recall = 0.0;
    for (std::size_t i = 0; i < precision.size(); ++i) {
        ap += (recall[i] - prev_recall) * precision[i];
        prev_recall = recall[i];
    }
    return ap;
}

}  // namespace bayesft::detect
