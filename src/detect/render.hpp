#pragma once
// Scene rendering for the Fig. 4 qualitative comparison: draws detection
// boxes over a scene as ASCII art (for terminal output) or PPM (for files).

#include <string>
#include <vector>

#include "detect/box.hpp"
#include "tensor/tensor.hpp"

namespace bayesft::detect {

/// ASCII rendering of one [3, S, S] scene: luminance ramp " .:-=+*#%@",
/// detection boxes drawn with '#' edges, ground truth with '+' edges.
std::string render_ascii(const Tensor& image,
                         const std::vector<Detection>& detections,
                         const std::vector<Box>& ground_truth);

/// Writes a [3, S, S] scene as a binary PPM with red detection boxes and
/// green ground-truth boxes.  Throws std::runtime_error on I/O failure.
void write_ppm(const std::string& path, const Tensor& image,
               const std::vector<Detection>& detections,
               const std::vector<Box>& ground_truth);

}  // namespace bayesft::detect
