#pragma once
// Axis-aligned bounding boxes, IoU, and non-maximum suppression — the
// geometric substrate of the object-detection experiments (paper Fig. 3(j),
// Fig. 4).

#include <vector>

namespace bayesft::detect {

/// Axis-aligned box in pixel coordinates, [x1, x2) x [y1, y2).
struct Box {
    double x1 = 0.0;
    double y1 = 0.0;
    double x2 = 0.0;
    double y2 = 0.0;

    double width() const { return x2 - x1; }
    double height() const { return y2 - y1; }
    double area() const;
    bool valid() const { return x2 > x1 && y2 > y1; }
};

/// A scored detection.
struct Detection {
    Box box;
    double score = 0.0;
};

/// Intersection-over-union of two boxes (0 for degenerate boxes).
double iou(const Box& a, const Box& b);

/// Greedy non-maximum suppression: keeps highest-scoring detections,
/// discarding any with IoU > `iou_threshold` against an already-kept one.
/// Input order does not matter; output is sorted by descending score.
std::vector<Detection> nms(std::vector<Detection> detections,
                           double iou_threshold);

/// Average precision at a single IoU threshold (Pascal-VOC style, exact
/// area under the interpolated precision-recall curve).
/// `detections_per_image[i]` are the scored predictions of image i;
/// `ground_truth_per_image[i]` the true boxes of image i.
double average_precision(
    const std::vector<std::vector<Detection>>& detections_per_image,
    const std::vector<std::vector<Box>>& ground_truth_per_image,
    double iou_threshold = 0.5);

}  // namespace bayesft::detect
