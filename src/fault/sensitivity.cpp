#include "fault/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/trainer.hpp"

namespace bayesft::fault {

std::vector<ParameterSensitivity> per_parameter_sensitivity(
    nn::Module& model, const Tensor& images, const std::vector<int>& labels,
    const FaultModel& fault, std::size_t num_samples, Rng& rng) {
    if (num_samples == 0) {
        throw std::invalid_argument("per_parameter_sensitivity: T == 0");
    }
    const double clean = nn::evaluate_accuracy(model, images, labels);
    const auto params = model.parameters();

    std::vector<ParameterSensitivity> records;
    for (std::size_t i = 0; i < params.size(); ++i) {
        nn::Parameter* p = params[i];
        if (!p->driftable) continue;
        ParameterSensitivity record;
        record.name = p->name;
        record.index = i;
        record.scalar_count = p->value.size();
        record.clean_accuracy = clean;

        double total = 0.0;
        for (std::size_t t = 0; t < num_samples; ++t) {
            const Tensor saved = p->value;
            fault.perturb(p->value.values(), rng);
            total += nn::evaluate_accuracy(model, images, labels);
            p->value = saved;
        }
        record.drifted_accuracy = total / static_cast<double>(num_samples);
        records.push_back(std::move(record));
    }
    return records;
}

std::vector<ParameterSensitivity> rank_by_drop(
    std::vector<ParameterSensitivity> records) {
    std::sort(records.begin(), records.end(),
              [](const ParameterSensitivity& a,
                 const ParameterSensitivity& b) {
                  return a.accuracy_drop() > b.accuracy_drop();
              });
    return records;
}

}  // namespace bayesft::fault
