#pragma once
// Memristance drift models (paper Sec. II-B).
//
// The paper's model (Eq. 1) multiplies every ReRAM-resident weight by a
// log-normal factor: theta' = theta * exp(lambda), lambda ~ N(0, sigma^2).
// The interface is deliberately distribution-agnostic — the paper remarks
// that the methodology "can be seamlessly extended to other possible weight
// drifting distributions", so alternative models are first-class here.

#include <memory>
#include <span>
#include <string>

#include "utils/rng.hpp"

namespace bayesft::fault {

/// A stochastic perturbation applied in place to a flat weight buffer.
class DriftModel {
public:
    virtual ~DriftModel() = default;
    DriftModel() = default;
    DriftModel(const DriftModel&) = delete;
    DriftModel& operator=(const DriftModel&) = delete;

    /// Perturbs `weights` in place using randomness from `rng`.
    virtual void apply(std::span<float> weights, Rng& rng) const = 0;

    /// Human-readable description, e.g. "LogNormal(sigma=0.3)".
    virtual std::string describe() const = 0;
};

/// Eq. 1: w <- w * exp(N(0, sigma^2)).  sigma = 0 is the identity.
class LogNormalDrift : public DriftModel {
public:
    explicit LogNormalDrift(double sigma);

    void apply(std::span<float> weights, Rng& rng) const override;
    std::string describe() const override;

    double sigma() const { return sigma_; }

private:
    double sigma_;
};

/// Additive Gaussian noise: w <- w + N(0, sigma^2) (process-variation style).
class GaussianAdditiveDrift : public DriftModel {
public:
    explicit GaussianAdditiveDrift(double sigma);

    void apply(std::span<float> weights, Rng& rng) const override;
    std::string describe() const override;

    double sigma() const { return sigma_; }

private:
    double sigma_;
};

/// Uniform multiplicative scaling: w <- w * U[1-delta, 1+delta].
class UniformScaleDrift : public DriftModel {
public:
    explicit UniformScaleDrift(double delta);

    void apply(std::span<float> weights, Rng& rng) const override;
    std::string describe() const override;

    double delta() const { return delta_; }

private:
    double delta_;
};

/// Hard faults: each cell independently sticks at zero with probability p
/// (models dead memristor cells / open circuits).
class StuckAtZeroDrift : public DriftModel {
public:
    explicit StuckAtZeroDrift(double probability);

    void apply(std::span<float> weights, Rng& rng) const override;
    std::string describe() const override;

    double probability() const { return probability_; }

private:
    double probability_;
};

/// Sign-flip faults: each cell flips sign with probability p (models
/// mis-programmed polarity).
class SignFlipDrift : public DriftModel {
public:
    explicit SignFlipDrift(double probability);

    void apply(std::span<float> weights, Rng& rng) const override;
    std::string describe() const override;

    double probability() const { return probability_; }

private:
    double probability_;
};

/// Composition: applies each child model in sequence.
class ComposedDrift : public DriftModel {
public:
    explicit ComposedDrift(std::vector<std::unique_ptr<DriftModel>> stages);

    void apply(std::span<float> weights, Rng& rng) const override;
    std::string describe() const override;

private:
    std::vector<std::unique_ptr<DriftModel>> stages_;
};

}  // namespace bayesft::fault
