#pragma once
// Memristance drift models (paper Sec. II-B) — the drift-flavored members
// of the fault-model zoo.
//
// The paper's model (Eq. 1) multiplies every ReRAM-resident weight by a
// log-normal factor: theta' = theta * exp(lambda), lambda ~ N(0, sigma^2).
// The interface is deliberately distribution-agnostic — the paper remarks
// that the methodology "can be seamlessly extended to other possible weight
// drifting distributions" — and lives in `fault/model.hpp` (FaultModel);
// the hard-fault / variation / quantization models live in `fault/zoo.hpp`.
//
// Thread safety: every model here is immutable after construction; perturb
// is safe to call concurrently with per-thread buffers and Rngs.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/model.hpp"
#include "utils/rng.hpp"

namespace bayesft::fault {

/// Eq. 1: w <- w * exp(N(0, sigma^2)).  sigma = 0 is the identity.
/// The multiplier's median is 1; its mean is exp(sigma^2 / 2).
class LogNormalDrift final : public FaultModel {
public:
    /// \param sigma  drift level, must be >= 0 (throws otherwise).
    explicit LogNormalDrift(double sigma);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {sigma}
    std::vector<double> params() const override;

    double sigma() const { return sigma_; }

private:
    double sigma_;
};

/// Additive Gaussian noise: w <- w + N(0, sigma^2) (process-variation
/// style, magnitude-independent).
class GaussianAdditiveDrift final : public FaultModel {
public:
    /// \param sigma  noise standard deviation, must be >= 0.
    explicit GaussianAdditiveDrift(double sigma);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {sigma}
    std::vector<double> params() const override;

    double sigma() const { return sigma_; }

private:
    double sigma_;
};

/// Uniform multiplicative scaling: w <- w * U[1-delta, 1+delta].
class UniformScaleDrift final : public FaultModel {
public:
    /// \param delta  half-width of the scaling band, must be >= 0.
    explicit UniformScaleDrift(double delta);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {delta}
    std::vector<double> params() const override;

    double delta() const { return delta_; }

private:
    double delta_;
};

/// Hard faults: each cell independently sticks at zero with probability p
/// (models dead memristor cells / open circuits).  For the two-polarity
/// SA0/SA1 model see StuckAtFault in `fault/zoo.hpp`.
class StuckAtZeroDrift final : public FaultModel {
public:
    /// \param probability  per-cell dead probability in [0, 1].
    explicit StuckAtZeroDrift(double probability);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {probability}
    std::vector<double> params() const override;

    double probability() const { return probability_; }

private:
    double probability_;
};

/// Sign-flip faults: each cell flips sign with probability p (models
/// mis-programmed polarity).
class SignFlipDrift final : public FaultModel {
public:
    /// \param probability  per-cell flip probability in [0, 1].
    explicit SignFlipDrift(double probability);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {probability}
    std::vector<double> params() const override;

    double probability() const { return probability_; }

private:
    double probability_;
};

}  // namespace bayesft::fault
