#pragma once
// The hard-fault / variation / quantization members of the fault-model zoo
// (see `fault/model.hpp` for the FaultModel contract and `fault/drift.hpp`
// for the drift-flavored models).
//
// These cover the non-drift failure modes of memristor / FPGA inference
// hardware surveyed in the fault-tolerance literature:
//   StuckAtFault          SA0/SA1 manufacturing & wear-out cell faults
//   BitFlipFault          SEU-style random bit flips on a quantized view
//   GaussianVariationFault  device-to-device programming variation
//   QuantizationFault     symmetric uniform b-bit weight quantization
// All four honor the FaultModel determinism contract: immutable after
// construction, all randomness from the Rng argument, clone() deep-copies.
// Math and parameter conventions are documented in docs/fault-models.md.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/model.hpp"

namespace bayesft::fault {

/// Hard stuck-at faults: each cell independently faults with probability
/// `fraction`; a faulted cell reads as stuck-at-0 (zero weight: open /
/// high-resistance cell) or stuck-at-1 (full-scale conductance, sign
/// preserved) according to `sa1_share`.
///
/// The SA1 full-scale magnitude is `sa1_magnitude` when positive;
/// `sa1_magnitude == 0` (the default) derives it per call as max|w| over
/// the perturbed span, mirroring a per-tensor conductance mapping.
/// fraction = 0 is the identity and draws nothing from the Rng.
class StuckAtFault final : public FaultModel {
public:
    /// \param fraction       per-cell fault probability in [0, 1].
    /// \param sa1_share      fraction of faulted cells stuck at 1 (rest
    ///                       stick at 0), in [0, 1].  Default 0.5.
    /// \param sa1_magnitude  fixed SA1 magnitude; 0 = per-span max|w|.
    explicit StuckAtFault(double fraction, double sa1_share = 0.5,
                          double sa1_magnitude = 0.0);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {fraction, sa1_share, sa1_magnitude}
    std::vector<double> params() const override;

    double fraction() const { return fraction_; }
    double sa1_share() const { return sa1_share_; }

private:
    double fraction_;
    double sa1_share_;
    double sa1_magnitude_;
};

/// SEU-style bit flips on a quantized view of the weights: each weight is
/// mapped to a signed two's-complement `bits`-bit integer (symmetric scale
/// derived per span from max|w|), every bit independently flips with
/// probability `flip_probability`, and the result is mapped back.
///
/// flip_probability = 0 is the exact identity (the weights are NOT
/// quantized in that case); compose with QuantizationFault when the clean
/// baseline should be the quantized network.  For flip_probability > 0
/// every weight draws exactly `bits` Bernoulli variates (the p = 0
/// identity draws nothing), so the RNG stream layout is a pure function of
/// the span length.
class BitFlipFault final : public FaultModel {
public:
    /// \param flip_probability  per-bit flip probability in [0, 1].
    /// \param bits              word width in [2, 16].  Default 8.
    explicit BitFlipFault(double flip_probability, int bits = 8);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {flip_probability, bits}
    std::vector<double> params() const override;

    double flip_probability() const { return flip_probability_; }
    int bits() const { return bits_; }

private:
    double flip_probability_;
    int bits_;
};

/// Device-to-device programming variation: w <- w * exp(N(-sigma^2/2,
/// sigma^2)).  Multiplicative lognormal like drift (Eq. 1), but with the
/// mean-one correction mu = -sigma^2/2, modeling unbiased time-zero
/// programming spread rather than the median-one temporal drift law.
/// sigma = 0 is the identity.
class GaussianVariationFault final : public FaultModel {
public:
    /// \param sigma  variation level, must be >= 0.
    explicit GaussianVariationFault(double sigma);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {sigma}
    std::vector<double> params() const override;

    double sigma() const { return sigma_; }

private:
    double sigma_;
};

/// Symmetric uniform quantization to `bits` bits: with the per-span scale
/// s = max|w| / (2^(bits-1) - 1), every weight becomes
/// round(w / s) * s, clamped to the symmetric integer range.  Fully
/// deterministic — draws nothing from the Rng — so the round-trip error is
/// bounded by s/2 per weight.
class QuantizationFault final : public FaultModel {
public:
    /// \param bits  word width in [2, 16].
    explicit QuantizationFault(int bits);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// {bits}
    std::vector<double> params() const override;

    int bits() const { return bits_; }

private:
    int bits_;
};

/// DAC'12-profile deployment preset: the composed chain
///   Quantization(12) -> GaussianVariation(variation_sigma)
///                    -> LogNormalDrift(drift_sigma)
/// modeling a memristor crossbar programmed through 12-bit DAC/ADC words
/// (the resolution the paper's hardware model assumes), then subject to
/// programming variation and memristance drift.  The 12-bit grid is the
/// same one nn::InferenceMode::kInt12 computes in, so a model evaluated
/// under this preset with the int12 forward sees a self-consistent
/// deployment: weights quantized exactly as the fixed-point engine reads
/// them.  See docs/performance.md and docs/fault-models.md.
std::unique_ptr<FaultModel> dac12_deploy(double drift_sigma,
                                         double variation_sigma = 0.2);

}  // namespace bayesft::fault
