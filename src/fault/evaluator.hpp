#pragma once
// Monte-Carlo robustness evaluation (paper Eq. 3-4).
//
// The drift-marginalized utility u(alpha, theta) = -E[loss] is intractable;
// it is estimated by T independent drift samples: perturb, evaluate on the
// held-out set, restore, average.

#include <functional>
#include <vector>

#include "fault/drift.hpp"
#include "fault/injector.hpp"
#include "nn/module.hpp"

namespace bayesft::fault {

/// Summary statistics of a Monte-Carlo robustness evaluation.
struct RobustnessReport {
    double mean_accuracy = 0.0;
    double std_accuracy = 0.0;
    double min_accuracy = 0.0;
    double max_accuracy = 0.0;
    std::vector<double> samples;  // per-drift-sample accuracy
};

/// Estimates classification accuracy of `model` on (images, labels) under
/// `drift`, averaged over `num_samples` independent drift realizations.
/// Weights are restored after every sample (strong exception safety via
/// WeightSnapshot).
///
/// Monte-Carlo samples are distributed over the global thread pool using
/// per-thread model replicas (Module::clone) and per-sample forked RNG
/// streams, so the report — including the per-sample vector — is
/// bit-identical for every `num_threads` value.  num_threads: 0 = pool
/// width, 1 = serial in-place evaluation, N = at most N threads.
RobustnessReport evaluate_under_drift(nn::Module& model, const Tensor& images,
                                      const std::vector<int>& labels,
                                      const DriftModel& drift,
                                      std::size_t num_samples, Rng& rng,
                                      std::size_t num_threads = 0);

/// Generic variant: `metric` maps the perturbed model to any scalar score
/// (e.g. mAP for detection).  Same perturb-score-restore discipline and the
/// same deterministic sample-parallel execution.
///
/// num_threads defaults to 1 (serial) because parallel execution evaluates
/// `metric` concurrently on per-thread *replicas* of `model`: pass
/// num_threads 0 (pool width) or > 1 only if `metric` scores the module it
/// is handed (never a captured alias of `model`) and is safe to call
/// concurrently.  Falls back to serial when the model has a layer without
/// clone() support.
RobustnessReport evaluate_metric_under_drift(
    nn::Module& model, const DriftModel& drift, std::size_t num_samples,
    Rng& rng, const std::function<double(nn::Module&)>& metric,
    std::size_t num_threads = 1);

/// Sweeps a sigma grid with LogNormalDrift, returning mean accuracy per
/// sigma.  This is the x-axis of every accuracy figure in the paper.
std::vector<double> sigma_sweep(nn::Module& model, const Tensor& images,
                                const std::vector<int>& labels,
                                const std::vector<double>& sigmas,
                                std::size_t num_samples, Rng& rng);

}  // namespace bayesft::fault
