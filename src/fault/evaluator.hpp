#pragma once
// Monte-Carlo robustness evaluation (paper Eq. 3-4), generalized over the
// pluggable FaultModel zoo.
//
// The fault-marginalized utility u(alpha, theta) = -E[loss] is intractable;
// it is estimated by T independent fault samples: perturb, evaluate on the
// held-out set, restore, average.  The sampling loop only sees the
// FaultModel interface, so drift, stuck-at, bit-flip, variation,
// quantization, and composed models all evaluate through the same
// deterministic parallel machinery.

#include <functional>
#include <vector>

#include "fault/drift.hpp"
#include "fault/injector.hpp"
#include "fault/model.hpp"
#include "nn/module.hpp"

namespace bayesft::fault {

/// Summary statistics of a Monte-Carlo robustness evaluation.
struct RobustnessReport {
    double mean_accuracy = 0.0;  ///< mean metric over fault samples
    double std_accuracy = 0.0;   ///< population standard deviation
    double min_accuracy = 0.0;   ///< worst sample
    double max_accuracy = 0.0;   ///< best sample
    std::vector<double> samples;  ///< per-fault-sample metric values
};

/// Estimates classification accuracy of `model` on (images, labels) under
/// `fault`, averaged over `num_samples` independent fault realizations.
/// Weights are restored after every sample (strong exception safety via
/// WeightSnapshot).
///
/// Monte-Carlo samples are distributed over the global thread pool using
/// per-thread model replicas (Module::clone) and per-sample forked RNG
/// streams, so the report — including the per-sample vector — is
/// bit-identical for every `num_threads` value and every FaultModel.
/// num_threads: 0 = pool width, 1 = serial in-place evaluation, N = at
/// most N threads.
///
/// Thread safety: safe to call concurrently on distinct models; `rng` is
/// advanced exactly once regardless of thread count.
RobustnessReport evaluate_under_faults(nn::Module& model,
                                       const Tensor& images,
                                       const std::vector<int>& labels,
                                       const FaultModel& fault,
                                       std::size_t num_samples, Rng& rng,
                                       std::size_t num_threads = 0);

/// Generic variant: `metric` maps the perturbed model to any scalar score
/// (e.g. mAP for detection).  Same perturb-score-restore discipline and the
/// same deterministic sample-parallel execution.
///
/// num_threads defaults to 1 (serial) because parallel execution evaluates
/// `metric` concurrently on per-thread *replicas* of `model`: pass
/// num_threads 0 (pool width) or > 1 only if `metric` scores the module it
/// is handed (never a captured alias of `model`) and is safe to call
/// concurrently.  Falls back to serial when the model has a layer without
/// clone() support.
///
/// Debug builds additionally assert `verify_stateless(fault)` — a fault
/// model with hidden mutable state would silently break the thread-count
/// invariance guarantee.
RobustnessReport evaluate_metric_under_faults(
    nn::Module& model, const FaultModel& fault, std::size_t num_samples,
    Rng& rng, const std::function<double(nn::Module&)>& metric,
    std::size_t num_threads = 1);

/// Sweeps a sigma grid with LogNormalDrift, returning mean accuracy per
/// sigma.  This is the x-axis of every accuracy figure in the paper.
std::vector<double> sigma_sweep(nn::Module& model, const Tensor& images,
                                const std::vector<int>& labels,
                                const std::vector<double>& sigmas,
                                std::size_t num_samples, Rng& rng);

// ------------------------------------------------------------------------
// Source-compat aliases from the drift-only era.  `evaluate_under_drift`
// IS `evaluate_under_faults`; the old names remain so pre-zoo call sites
// (and the paper-facing examples) keep compiling unchanged.

/// Thin alias: see evaluate_under_faults.
inline RobustnessReport evaluate_under_drift(
    nn::Module& model, const Tensor& images, const std::vector<int>& labels,
    const FaultModel& drift, std::size_t num_samples, Rng& rng,
    std::size_t num_threads = 0) {
    return evaluate_under_faults(model, images, labels, drift, num_samples,
                                 rng, num_threads);
}

/// Thin alias: see evaluate_metric_under_faults.
inline RobustnessReport evaluate_metric_under_drift(
    nn::Module& model, const FaultModel& drift, std::size_t num_samples,
    Rng& rng, const std::function<double(nn::Module&)>& metric,
    std::size_t num_threads = 1) {
    return evaluate_metric_under_faults(model, drift, num_samples, rng,
                                        metric, num_threads);
}

}  // namespace bayesft::fault
