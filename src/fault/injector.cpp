#include "fault/injector.hpp"

namespace bayesft::fault {

WeightSnapshot::WeightSnapshot(nn::Module& model) {
    for (nn::Parameter* p : model.parameters()) {
        if (!p->driftable) continue;
        params_.push_back(p);
        saved_.push_back(p->value);
    }
}

WeightSnapshot::~WeightSnapshot() { restore(); }

void WeightSnapshot::restore() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        params_[i]->value = saved_[i];
    }
}

std::size_t WeightSnapshot::scalar_count() const {
    std::size_t total = 0;
    for (const Tensor& t : saved_) total += t.size();
    return total;
}

void inject(nn::Module& model, const FaultModel& fault, Rng& rng) {
    for (nn::Parameter* p : model.parameters()) {
        if (!p->driftable) continue;
        fault.perturb(p->value.values(), rng);
    }
}

}  // namespace bayesft::fault
