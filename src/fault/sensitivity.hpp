#pragma once
// Per-parameter drift sensitivity analysis.
//
// The paper's Sec. III-A asks *which architectural components* make a
// network fragile under drift; this tool answers the runtime twin of that
// question: *which parameter tensors* hurt most when they drift.  Each
// parameter tensor is drifted alone (all others held clean) and the
// accuracy drop is recorded — the profile identifies the "Achilles' heel"
// layers (e.g. normalization affine parameters, output heads).

#include <string>
#include <vector>

#include "fault/model.hpp"
#include "nn/module.hpp"

namespace bayesft::fault {

/// Sensitivity record for one parameter tensor.
struct ParameterSensitivity {
    std::string name;          ///< Parameter::name (e.g. "weight")
    std::size_t index = 0;     ///< position in Module::parameters()
    std::size_t scalar_count = 0;
    double clean_accuracy = 0.0;
    double drifted_accuracy = 0.0;  ///< mean over MC samples

    double accuracy_drop() const {
        return clean_accuracy - drifted_accuracy;
    }
};

/// Perturbs each driftable parameter tensor of `model` in isolation with
/// `fault` — any FaultModel, not just drift — (num_samples Monte-Carlo
/// realizations each; weights restored after every sample) and measures
/// accuracy on (images, labels).  Results are returned in parameter order.
std::vector<ParameterSensitivity> per_parameter_sensitivity(
    nn::Module& model, const Tensor& images, const std::vector<int>& labels,
    const FaultModel& fault, std::size_t num_samples, Rng& rng);

/// Same records sorted by descending accuracy drop (worst first).
std::vector<ParameterSensitivity> rank_by_drop(
    std::vector<ParameterSensitivity> records);

}  // namespace bayesft::fault
