#include "fault/chaos.hpp"

#include <cstdlib>
#include <string>

namespace bayesft::fault {

namespace {

/// splitmix64 finalizer: a private stateless mixer (independent of the
/// engine's FNV digests, so chaos decisions can never collide with the
/// candidate-seed derivation they key on).
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from one hash draw (same 53-bit construction
/// as Rng::uniform).
double unit_double(std::uint64_t bits) {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double decision_draw(const ChaosSpec& spec, std::uint64_t candidate_seed,
                     std::uint64_t attempt, std::uint64_t stream) {
    std::uint64_t h = mix64(spec.seed ^ 0x6368616F73ULL);  // "chaos"
    h = mix64(h ^ candidate_seed);
    h = mix64(h ^ attempt);
    h = mix64(h ^ stream);
    return unit_double(h);
}

}  // namespace

ChaosSpec ChaosSpec::from_env() {
    ChaosSpec spec;
    const char* text = std::getenv("BAYESFT_CHAOS");
    if (text == nullptr || text[0] == '\0') return spec;
    std::string entry;
    const std::string all = std::string(text) + ",";
    for (char c : all) {
        if (c != ',') {
            entry.push_back(c);
            continue;
        }
        const std::size_t colon = entry.find(':');
        if (colon != std::string::npos) {
            const std::string key = entry.substr(0, colon);
            double p = 0.0;
            try {
                p = std::stod(entry.substr(colon + 1));
            } catch (const std::exception&) {
                p = 0.0;
            }
            if (p < 0.0) p = 0.0;
            if (p > 1.0) p = 1.0;
            if (key == "crash") spec.crash = p;
            else if (key == "hang") spec.hang = p;
            else if (key == "nan") spec.nan = p;
            else if (key == "spawn") spec.spawn = p;
            else if (key == "worker_crash") spec.worker_crash = p;
        }
        entry.clear();
    }
    if (const char* seed_text = std::getenv("BAYESFT_CHAOS_SEED")) {
        try {
            spec.seed = std::stoull(seed_text);
        } catch (const std::exception&) {
            spec.seed = 0;
        }
    }
    return spec;
}

ChaosAction chaos_decide(const ChaosSpec& spec, std::uint64_t candidate_seed,
                         std::uint64_t attempt) {
    if (spec.crash <= 0.0 && spec.hang <= 0.0 && spec.nan <= 0.0) {
        return ChaosAction::kNone;
    }
    const double u = decision_draw(spec, candidate_seed, attempt, 1);
    if (u < spec.crash) return ChaosAction::kCrash;
    if (u < spec.crash + spec.hang) return ChaosAction::kHang;
    if (u < spec.crash + spec.hang + spec.nan) return ChaosAction::kNaN;
    return ChaosAction::kNone;
}

bool chaos_spawn_failure(const ChaosSpec& spec, std::uint64_t candidate_seed,
                         std::uint64_t attempt) {
    if (spec.spawn <= 0.0) return false;
    return decision_draw(spec, candidate_seed, attempt, 2) < spec.spawn;
}

bool chaos_worker_crash(const ChaosSpec& spec, std::uint64_t candidate_seed,
                        std::uint64_t attempt) {
    if (spec.worker_crash <= 0.0) return false;
    return decision_draw(spec, candidate_seed, attempt, 3) <
           spec.worker_crash;
}

}  // namespace bayesft::fault
