#include "fault/model.hpp"

#include <sstream>
#include <stdexcept>

namespace bayesft::fault {

namespace detail {

void check_nonneg(double v, const char* who) {
    if (!(v >= 0.0)) {
        throw std::invalid_argument(std::string(who) +
                                    ": parameter must be >= 0, got " +
                                    std::to_string(v));
    }
}

void check_probability(double p, const char* who) {
    if (!(p >= 0.0) || p > 1.0) {
        throw std::invalid_argument(std::string(who) +
                                    ": probability must be in [0, 1], got " +
                                    std::to_string(p));
    }
}

}  // namespace detail

ComposedFault::ComposedFault(std::vector<std::unique_ptr<FaultModel>> stages)
    : stages_(std::move(stages)) {
    for (const auto& stage : stages_) {
        if (!stage) throw std::invalid_argument("ComposedFault: null stage");
    }
}

void ComposedFault::perturb(std::span<float> weights, Rng& rng) const {
    for (const auto& stage : stages_) stage->perturb(weights, rng);
}

std::unique_ptr<FaultModel> ComposedFault::clone() const {
    std::vector<std::unique_ptr<FaultModel>> copies;
    copies.reserve(stages_.size());
    for (const auto& stage : stages_) copies.push_back(stage->clone());
    return std::make_unique<ComposedFault>(std::move(copies));
}

std::string ComposedFault::describe() const {
    std::ostringstream os;
    os << "Composed(";
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (i != 0) os << " -> ";
        os << stages_[i]->describe();
    }
    os << ")";
    return os.str();
}

std::vector<double> ComposedFault::params() const {
    std::vector<double> all;
    for (const auto& stage : stages_) {
        const std::vector<double> p = stage->params();
        all.insert(all.end(), p.begin(), p.end());
    }
    return all;
}

bool verify_stateless(const FaultModel& model) {
    // A small but non-trivial buffer: mixed signs and magnitudes so
    // magnitude-dependent models (quantization, SA1) exercise their full
    // code path.
    constexpr std::size_t kProbe = 64;
    std::vector<float> a(kProbe);
    for (std::size_t i = 0; i < kProbe; ++i) {
        a[i] = 0.01F * static_cast<float>(i) *
               (i % 2 == 0 ? 1.0F : -1.0F);
    }
    std::vector<float> b = a;
    std::vector<float> c = a;

    const Rng base(0x5EEDFA171D0DEULL);
    const std::unique_ptr<FaultModel> replica = model.clone();
    if (!replica) return false;

    // Two sequential calls on the original catch mutable members and
    // statics (a hidden counter shifts the second call); the clone call
    // catches clone() failing to copy the parameters.
    Rng first = base.fork(0);
    model.perturb(a, first);
    Rng second = base.fork(0);
    model.perturb(b, second);
    Rng third = base.fork(0);
    replica->perturb(c, third);
    return a == b && a == c;
}

}  // namespace bayesft::fault
