#include "fault/evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "nn/trainer.hpp"
#include "utils/parallel.hpp"

namespace bayesft::fault {

namespace {

RobustnessReport summarize(std::vector<double> samples) {
    if (samples.empty()) {
        throw std::invalid_argument("RobustnessReport: no samples");
    }
    RobustnessReport report;
    double sum = 0.0;
    for (double s : samples) sum += s;
    report.mean_accuracy = sum / static_cast<double>(samples.size());
    double var = 0.0;
    for (double s : samples) {
        const double d = s - report.mean_accuracy;
        var += d * d;
    }
    report.std_accuracy =
        std::sqrt(var / static_cast<double>(samples.size()));
    report.min_accuracy = *std::min_element(samples.begin(), samples.end());
    report.max_accuracy = *std::max_element(samples.begin(), samples.end());
    report.samples = std::move(samples);
    return report;
}

}  // namespace

RobustnessReport evaluate_metric_under_faults(
    nn::Module& model, const FaultModel& fault, std::size_t num_samples,
    Rng& rng, const std::function<double(nn::Module&)>& metric,
    std::size_t num_threads) {
    if (num_samples == 0) {
        throw std::invalid_argument("evaluate_metric_under_faults: T == 0");
    }
    if (!metric) {
        throw std::invalid_argument(
            "evaluate_metric_under_faults: no metric");
    }
    // Catch hidden mutable state (statics, lazy caches) in fault models
    // before it can silently break the thread-count-invariance guarantee.
    assert(verify_stateless(fault) &&
           "FaultModel::perturb must not mutate shared state");
    // The parent generator advances exactly once regardless of thread count;
    // sample t then draws from the pure fork `base.fork(t)`, which makes the
    // per-sample vector invariant under any parallel schedule.
    const Rng base = rng.split();
    std::vector<double> samples(num_samples);

    std::size_t threads =
        num_threads == 0 ? parallel_thread_count() : num_threads;
    threads = std::min(threads, num_samples);
    std::unique_ptr<nn::Module> probe =
        threads > 1 ? model.clone() : nullptr;

    if (probe) {
        // The capability-probe clone doubles as the first chunk's replica.
        std::atomic<bool> probe_taken{false};
        const std::size_t grain = (num_samples + threads - 1) / threads;
        parallel_for(0, num_samples, grain,
                     [&](std::size_t lo, std::size_t hi) {
                         // One replica per chunk, perturbed and restored per
                         // sample exactly like the serial loop.
                         std::unique_ptr<nn::Module> replica =
                             probe_taken.exchange(true) ? model.clone()
                                                        : std::move(probe);
                         for (std::size_t t = lo; t < hi; ++t) {
                             Rng sample_rng = base.fork(t);
                             WeightSnapshot snapshot(*replica);
                             inject(*replica, fault, sample_rng);
                             samples[t] = metric(*replica);
                         }
                     });
    } else {
        for (std::size_t t = 0; t < num_samples; ++t) {
            Rng sample_rng = base.fork(t);
            WeightSnapshot snapshot(model);
            inject(model, fault, sample_rng);
            samples[t] = metric(model);
            // snapshot destructor restores the clean weights
        }
    }
    return summarize(std::move(samples));
}

RobustnessReport evaluate_under_faults(nn::Module& model,
                                       const Tensor& images,
                                       const std::vector<int>& labels,
                                       const FaultModel& fault,
                                       std::size_t num_samples, Rng& rng,
                                       std::size_t num_threads) {
    return evaluate_metric_under_faults(
        model, fault, num_samples, rng,
        [&](nn::Module& m) {
            return nn::evaluate_accuracy(m, images, labels);
        },
        num_threads);
}

std::vector<double> sigma_sweep(nn::Module& model, const Tensor& images,
                                const std::vector<int>& labels,
                                const std::vector<double>& sigmas,
                                std::size_t num_samples, Rng& rng) {
    std::vector<double> means;
    means.reserve(sigmas.size());
    for (double sigma : sigmas) {
        const LogNormalDrift drift(sigma);
        means.push_back(
            evaluate_under_faults(model, images, labels, drift, num_samples,
                                  rng)
                .mean_accuracy);
    }
    return means;
}

}  // namespace bayesft::fault
