#include "fault/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/trainer.hpp"

namespace bayesft::fault {

namespace {

RobustnessReport summarize(std::vector<double> samples) {
    if (samples.empty()) {
        throw std::invalid_argument("RobustnessReport: no samples");
    }
    RobustnessReport report;
    double sum = 0.0;
    for (double s : samples) sum += s;
    report.mean_accuracy = sum / static_cast<double>(samples.size());
    double var = 0.0;
    for (double s : samples) {
        const double d = s - report.mean_accuracy;
        var += d * d;
    }
    report.std_accuracy =
        std::sqrt(var / static_cast<double>(samples.size()));
    report.min_accuracy = *std::min_element(samples.begin(), samples.end());
    report.max_accuracy = *std::max_element(samples.begin(), samples.end());
    report.samples = std::move(samples);
    return report;
}

}  // namespace

RobustnessReport evaluate_metric_under_drift(
    nn::Module& model, const DriftModel& drift, std::size_t num_samples,
    Rng& rng, const std::function<double(nn::Module&)>& metric) {
    if (num_samples == 0) {
        throw std::invalid_argument("evaluate_metric_under_drift: T == 0");
    }
    if (!metric) {
        throw std::invalid_argument("evaluate_metric_under_drift: no metric");
    }
    std::vector<double> samples;
    samples.reserve(num_samples);
    for (std::size_t t = 0; t < num_samples; ++t) {
        WeightSnapshot snapshot(model);
        inject(model, drift, rng);
        samples.push_back(metric(model));
        // snapshot destructor restores the clean weights
    }
    return summarize(std::move(samples));
}

RobustnessReport evaluate_under_drift(nn::Module& model, const Tensor& images,
                                      const std::vector<int>& labels,
                                      const DriftModel& drift,
                                      std::size_t num_samples, Rng& rng) {
    return evaluate_metric_under_drift(
        model, drift, num_samples, rng, [&](nn::Module& m) {
            return nn::evaluate_accuracy(m, images, labels);
        });
}

std::vector<double> sigma_sweep(nn::Module& model, const Tensor& images,
                                const std::vector<int>& labels,
                                const std::vector<double>& sigmas,
                                std::size_t num_samples, Rng& rng) {
    std::vector<double> means;
    means.reserve(sigmas.size());
    for (double sigma : sigmas) {
        const LogNormalDrift drift(sigma);
        means.push_back(
            evaluate_under_drift(model, images, labels, drift, num_samples,
                                 rng)
                .mean_accuracy);
    }
    return means;
}

}  // namespace bayesft::fault
