#include "fault/drift.hpp"

#include <cmath>
#include <sstream>

#include "simd/kernels.hpp"

// All perturb() bodies route through the runtime-dispatched SIMD kernel
// layer (src/simd/kernels.hpp).  The kernels consume randomness through 16
// deterministic logical lanes derived from the caller's Rng (weight i
// draws from lane i % 16), advancing the caller's Rng exactly once per
// perturb — the layout is identical on every dispatch tier, so results
// are bit-identical whether the scalar, AVX2, AVX-512, or NEON tier runs.

namespace bayesft::fault {

using detail::check_nonneg;
using detail::check_probability;

LogNormalDrift::LogNormalDrift(double sigma) : sigma_(sigma) {
    check_nonneg(sigma, "LogNormalDrift");
}

void LogNormalDrift::perturb(std::span<float> weights, Rng& rng) const {
    if (sigma_ == 0.0) return;
    simd::kernels().lognormal_mul(weights.data(), weights.size(), rng, 0.0F,
                                  static_cast<float>(sigma_));
}

std::unique_ptr<FaultModel> LogNormalDrift::clone() const {
    return std::make_unique<LogNormalDrift>(sigma_);
}

std::string LogNormalDrift::describe() const {
    std::ostringstream os;
    os << "LogNormal(sigma=" << sigma_ << ")";
    return os.str();
}

std::vector<double> LogNormalDrift::params() const { return {sigma_}; }

GaussianAdditiveDrift::GaussianAdditiveDrift(double sigma) : sigma_(sigma) {
    check_nonneg(sigma, "GaussianAdditiveDrift");
}

void GaussianAdditiveDrift::perturb(std::span<float> weights,
                                    Rng& rng) const {
    if (sigma_ == 0.0) return;
    simd::kernels().gaussian_add(weights.data(), weights.size(), rng,
                                 static_cast<float>(sigma_));
}

std::unique_ptr<FaultModel> GaussianAdditiveDrift::clone() const {
    return std::make_unique<GaussianAdditiveDrift>(sigma_);
}

std::string GaussianAdditiveDrift::describe() const {
    std::ostringstream os;
    os << "GaussianAdditive(sigma=" << sigma_ << ")";
    return os.str();
}

std::vector<double> GaussianAdditiveDrift::params() const {
    return {sigma_};
}

UniformScaleDrift::UniformScaleDrift(double delta) : delta_(delta) {
    check_nonneg(delta, "UniformScaleDrift");
}

void UniformScaleDrift::perturb(std::span<float> weights, Rng& rng) const {
    if (delta_ == 0.0) return;
    simd::kernels().uniform_scale(weights.data(), weights.size(), rng,
                                  static_cast<float>(1.0 - delta_),
                                  static_cast<float>(1.0 + delta_));
}

std::unique_ptr<FaultModel> UniformScaleDrift::clone() const {
    return std::make_unique<UniformScaleDrift>(delta_);
}

std::string UniformScaleDrift::describe() const {
    std::ostringstream os;
    os << "UniformScale(delta=" << delta_ << ")";
    return os.str();
}

std::vector<double> UniformScaleDrift::params() const { return {delta_}; }

StuckAtZeroDrift::StuckAtZeroDrift(double probability)
    : probability_(probability) {
    check_probability(probability, "StuckAtZeroDrift");
}

void StuckAtZeroDrift::perturb(std::span<float> weights, Rng& rng) const {
    if (probability_ == 0.0) return;
    simd::kernels().stuck_zero(weights.data(), weights.size(), rng,
                               probability_);
}

std::unique_ptr<FaultModel> StuckAtZeroDrift::clone() const {
    return std::make_unique<StuckAtZeroDrift>(probability_);
}

std::string StuckAtZeroDrift::describe() const {
    std::ostringstream os;
    os << "StuckAtZero(p=" << probability_ << ")";
    return os.str();
}

std::vector<double> StuckAtZeroDrift::params() const {
    return {probability_};
}

SignFlipDrift::SignFlipDrift(double probability) : probability_(probability) {
    check_probability(probability, "SignFlipDrift");
}

void SignFlipDrift::perturb(std::span<float> weights, Rng& rng) const {
    if (probability_ == 0.0) return;
    simd::kernels().sign_flip(weights.data(), weights.size(), rng,
                              probability_);
}

std::unique_ptr<FaultModel> SignFlipDrift::clone() const {
    return std::make_unique<SignFlipDrift>(probability_);
}

std::string SignFlipDrift::describe() const {
    std::ostringstream os;
    os << "SignFlip(p=" << probability_ << ")";
    return os.str();
}

std::vector<double> SignFlipDrift::params() const { return {probability_}; }

}  // namespace bayesft::fault
