#include "fault/drift.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bayesft::fault {

namespace {

void check_nonneg(double v, const char* who) {
    if (!(v >= 0.0)) {
        throw std::invalid_argument(std::string(who) +
                                    ": parameter must be >= 0, got " +
                                    std::to_string(v));
    }
}

void check_probability(double p, const char* who) {
    if (!(p >= 0.0) || p > 1.0) {
        throw std::invalid_argument(std::string(who) +
                                    ": probability must be in [0, 1], got " +
                                    std::to_string(p));
    }
}

}  // namespace

LogNormalDrift::LogNormalDrift(double sigma) : sigma_(sigma) {
    check_nonneg(sigma, "LogNormalDrift");
}

void LogNormalDrift::apply(std::span<float> weights, Rng& rng) const {
    if (sigma_ == 0.0) return;
    for (float& w : weights) {
        w *= static_cast<float>(rng.log_normal(0.0, sigma_));
    }
}

std::string LogNormalDrift::describe() const {
    std::ostringstream os;
    os << "LogNormal(sigma=" << sigma_ << ")";
    return os.str();
}

GaussianAdditiveDrift::GaussianAdditiveDrift(double sigma) : sigma_(sigma) {
    check_nonneg(sigma, "GaussianAdditiveDrift");
}

void GaussianAdditiveDrift::apply(std::span<float> weights, Rng& rng) const {
    if (sigma_ == 0.0) return;
    for (float& w : weights) {
        w += static_cast<float>(rng.normal(0.0, sigma_));
    }
}

std::string GaussianAdditiveDrift::describe() const {
    std::ostringstream os;
    os << "GaussianAdditive(sigma=" << sigma_ << ")";
    return os.str();
}

UniformScaleDrift::UniformScaleDrift(double delta) : delta_(delta) {
    check_nonneg(delta, "UniformScaleDrift");
}

void UniformScaleDrift::apply(std::span<float> weights, Rng& rng) const {
    if (delta_ == 0.0) return;
    for (float& w : weights) {
        w *= static_cast<float>(rng.uniform(1.0 - delta_, 1.0 + delta_));
    }
}

std::string UniformScaleDrift::describe() const {
    std::ostringstream os;
    os << "UniformScale(delta=" << delta_ << ")";
    return os.str();
}

StuckAtZeroDrift::StuckAtZeroDrift(double probability)
    : probability_(probability) {
    check_probability(probability, "StuckAtZeroDrift");
}

void StuckAtZeroDrift::apply(std::span<float> weights, Rng& rng) const {
    if (probability_ == 0.0) return;
    for (float& w : weights) {
        if (rng.bernoulli(probability_)) w = 0.0F;
    }
}

std::string StuckAtZeroDrift::describe() const {
    std::ostringstream os;
    os << "StuckAtZero(p=" << probability_ << ")";
    return os.str();
}

SignFlipDrift::SignFlipDrift(double probability) : probability_(probability) {
    check_probability(probability, "SignFlipDrift");
}

void SignFlipDrift::apply(std::span<float> weights, Rng& rng) const {
    if (probability_ == 0.0) return;
    for (float& w : weights) {
        if (rng.bernoulli(probability_)) w = -w;
    }
}

std::string SignFlipDrift::describe() const {
    std::ostringstream os;
    os << "SignFlip(p=" << probability_ << ")";
    return os.str();
}

ComposedDrift::ComposedDrift(std::vector<std::unique_ptr<DriftModel>> stages)
    : stages_(std::move(stages)) {
    for (const auto& stage : stages_) {
        if (!stage) throw std::invalid_argument("ComposedDrift: null stage");
    }
}

void ComposedDrift::apply(std::span<float> weights, Rng& rng) const {
    for (const auto& stage : stages_) stage->apply(weights, rng);
}

std::string ComposedDrift::describe() const {
    std::ostringstream os;
    os << "Composed(";
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (i != 0) os << " -> ";
        os << stages_[i]->describe();
    }
    os << ")";
    return os.str();
}

}  // namespace bayesft::fault
