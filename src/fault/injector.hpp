#pragma once
// Fault injection into live models.
//
// `WeightSnapshot` is the RAII workhorse: it copies all driftable parameter
// values on construction and restores them on destruction (or on demand),
// so a Monte-Carlo evaluation loop can perturb-evaluate-restore safely even
// when an exception escapes the evaluation.

#include <vector>

#include "fault/model.hpp"
#include "nn/module.hpp"

namespace bayesft::fault {

/// RAII snapshot of a model's driftable parameters.
///
/// Thread safety: a snapshot is bound to one model instance; use one
/// snapshot per thread-local replica (never share a snapshot or its model
/// across threads while perturbed).
class WeightSnapshot {
public:
    /// Captures the current values of all driftable parameters of `model`.
    /// The model must outlive the snapshot.
    explicit WeightSnapshot(nn::Module& model);

    /// Restores captured values into the model.
    ~WeightSnapshot();

    WeightSnapshot(const WeightSnapshot&) = delete;
    WeightSnapshot& operator=(const WeightSnapshot&) = delete;

    /// Restores captured values now (also happens automatically at scope
    /// exit; calling repeatedly is harmless).
    void restore();

    /// Total number of scalars captured.
    std::size_t scalar_count() const;

private:
    std::vector<nn::Parameter*> params_;
    std::vector<Tensor> saved_;
};

/// Applies `fault` once to every driftable parameter tensor of `model`, in
/// place (one FaultModel::perturb call per parameter span, all drawing from
/// the same `rng` in parameter order).  Use together with WeightSnapshot to
/// make the perturbation reversible.
void inject(nn::Module& model, const FaultModel& fault, Rng& rng);

}  // namespace bayesft::fault
