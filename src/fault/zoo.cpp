#include "fault/zoo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "fault/drift.hpp"
#include "simd/kernels.hpp"

// All perturb() bodies route through the runtime-dispatched SIMD kernel
// layer (src/simd/kernels.hpp); see src/fault/drift.cpp for the lane
// layout that keeps results bit-identical across dispatch tiers.

namespace bayesft::fault {

using detail::check_nonneg;
using detail::check_probability;

namespace {

void check_bits(int bits, const char* who) {
    if (bits < 2 || bits > 16) {
        throw std::invalid_argument(std::string(who) +
                                    ": bits must be in [2, 16], got " +
                                    std::to_string(bits));
    }
}

float max_abs(std::span<const float> weights) {
    return simd::kernels().max_abs(weights.data(), weights.size());
}

/// Largest positive code of a signed `bits`-bit word.
std::int64_t quant_max(int bits) {
    return (std::int64_t{1} << (bits - 1)) - 1;
}

/// Symmetric per-span quantization step: max|w| maps to quant_max(bits).
/// 0 when the span is all-zero.  BitFlipFault and QuantizationFault share
/// this grid; they differ only in the code range they clamp to (full
/// two's-complement word vs symmetric).
float quant_scale(std::span<const float> weights, int bits) {
    return max_abs(weights) / static_cast<float>(quant_max(bits));
}

}  // namespace

// ------------------------------------------------------ StuckAtFault ----

StuckAtFault::StuckAtFault(double fraction, double sa1_share,
                           double sa1_magnitude)
    : fraction_(fraction),
      sa1_share_(sa1_share),
      sa1_magnitude_(sa1_magnitude) {
    check_probability(fraction, "StuckAtFault fraction");
    check_probability(sa1_share, "StuckAtFault sa1_share");
    check_nonneg(sa1_magnitude, "StuckAtFault sa1_magnitude");
}

void StuckAtFault::perturb(std::span<float> weights, Rng& rng) const {
    if (fraction_ == 0.0) return;
    float magnitude = static_cast<float>(sa1_magnitude_);
    if (magnitude == 0.0F) magnitude = max_abs(weights);
    // Faulted cell: SA1 keeps the sign at full-scale conductance, SA0
    // reads as an open (zero) cell.  Every weight consumes two draws
    // (faulted?, sa1?) so the stream layout is data-independent.
    simd::kernels().stuck_at(weights.data(), weights.size(), rng, fraction_,
                             sa1_share_, magnitude);
}

std::unique_ptr<FaultModel> StuckAtFault::clone() const {
    return std::make_unique<StuckAtFault>(fraction_, sa1_share_,
                                          sa1_magnitude_);
}

std::string StuckAtFault::describe() const {
    std::ostringstream os;
    os << "StuckAt(fraction=" << fraction_ << ", sa1=" << sa1_share_ << ")";
    return os.str();
}

std::vector<double> StuckAtFault::params() const {
    return {fraction_, sa1_share_, sa1_magnitude_};
}

// ------------------------------------------------------ BitFlipFault ----

BitFlipFault::BitFlipFault(double flip_probability, int bits)
    : flip_probability_(flip_probability), bits_(bits) {
    check_probability(flip_probability, "BitFlipFault");
    check_bits(bits, "BitFlipFault");
}

void BitFlipFault::perturb(std::span<float> weights, Rng& rng) const {
    if (flip_probability_ == 0.0) return;
    // Quantized two's-complement view; scale == 0 (all-zero span) keeps q
    // at 0 but still draws, so the stream layout stays span-shaped.
    const float scale = quant_scale(weights, bits_);
    simd::kernels().bit_flip(weights.data(), weights.size(), rng,
                             flip_probability_, bits_, scale);
}

std::unique_ptr<FaultModel> BitFlipFault::clone() const {
    return std::make_unique<BitFlipFault>(flip_probability_, bits_);
}

std::string BitFlipFault::describe() const {
    std::ostringstream os;
    os << "BitFlip(p=" << flip_probability_ << ", bits=" << bits_ << ")";
    return os.str();
}

std::vector<double> BitFlipFault::params() const {
    return {flip_probability_, static_cast<double>(bits_)};
}

// -------------------------------------------- GaussianVariationFault ----

GaussianVariationFault::GaussianVariationFault(double sigma) : sigma_(sigma) {
    check_nonneg(sigma, "GaussianVariationFault");
}

void GaussianVariationFault::perturb(std::span<float> weights,
                                     Rng& rng) const {
    if (sigma_ == 0.0) return;
    // mu = -sigma^2/2 makes E[exp(N(mu, sigma^2))] = 1: variation spreads
    // the devices without biasing the mean conductance.
    const double mu = -0.5 * sigma_ * sigma_;
    simd::kernels().lognormal_mul(weights.data(), weights.size(), rng,
                                  static_cast<float>(mu),
                                  static_cast<float>(sigma_));
}

std::unique_ptr<FaultModel> GaussianVariationFault::clone() const {
    return std::make_unique<GaussianVariationFault>(sigma_);
}

std::string GaussianVariationFault::describe() const {
    std::ostringstream os;
    os << "GaussianVariation(sigma=" << sigma_ << ")";
    return os.str();
}

std::vector<double> GaussianVariationFault::params() const {
    return {sigma_};
}

// ------------------------------------------------- QuantizationFault ----

QuantizationFault::QuantizationFault(int bits) : bits_(bits) {
    check_bits(bits, "QuantizationFault");
}

void QuantizationFault::perturb(std::span<float> weights, Rng&) const {
    const float scale = quant_scale(weights, bits_);
    if (scale == 0.0F) return;
    // The same rounding/saturation kernel backs the fixed-point forward
    // pass (nn/quant.hpp), which is what makes the int8/int12 inference
    // path bit-identical to this fault's quantized view.
    simd::kernels().quantize(weights.data(), weights.size(), bits_, scale);
}

std::unique_ptr<FaultModel> QuantizationFault::clone() const {
    return std::make_unique<QuantizationFault>(bits_);
}

std::string QuantizationFault::describe() const {
    std::ostringstream os;
    os << "Quantization(bits=" << bits_ << ")";
    return os.str();
}

std::vector<double> QuantizationFault::params() const {
    return {static_cast<double>(bits_)};
}

// ------------------------------------------------- deployment presets ----

std::unique_ptr<FaultModel> dac12_deploy(double drift_sigma,
                                         double variation_sigma) {
    std::vector<std::unique_ptr<FaultModel>> stages;
    stages.push_back(std::make_unique<QuantizationFault>(12));
    stages.push_back(
        std::make_unique<GaussianVariationFault>(variation_sigma));
    stages.push_back(std::make_unique<LogNormalDrift>(drift_sigma));
    return std::make_unique<ComposedFault>(std::move(stages));
}

}  // namespace bayesft::fault
