#include "fault/zoo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace bayesft::fault {

using detail::check_nonneg;
using detail::check_probability;

namespace {

void check_bits(int bits, const char* who) {
    if (bits < 2 || bits > 16) {
        throw std::invalid_argument(std::string(who) +
                                    ": bits must be in [2, 16], got " +
                                    std::to_string(bits));
    }
}

float max_abs(std::span<const float> weights) {
    float maxabs = 0.0F;
    for (float w : weights) maxabs = std::max(maxabs, std::fabs(w));
    return maxabs;
}

/// Largest positive code of a signed `bits`-bit word.
std::int64_t quant_max(int bits) {
    return (std::int64_t{1} << (bits - 1)) - 1;
}

/// Symmetric per-span quantization step: max|w| maps to quant_max(bits).
/// 0 when the span is all-zero.  BitFlipFault and QuantizationFault share
/// this grid; they differ only in the code range they clamp to (full
/// two's-complement word vs symmetric).
float quant_scale(std::span<const float> weights, int bits) {
    return max_abs(weights) / static_cast<float>(quant_max(bits));
}

}  // namespace

// ------------------------------------------------------ StuckAtFault ----

StuckAtFault::StuckAtFault(double fraction, double sa1_share,
                           double sa1_magnitude)
    : fraction_(fraction),
      sa1_share_(sa1_share),
      sa1_magnitude_(sa1_magnitude) {
    check_probability(fraction, "StuckAtFault fraction");
    check_probability(sa1_share, "StuckAtFault sa1_share");
    check_nonneg(sa1_magnitude, "StuckAtFault sa1_magnitude");
}

void StuckAtFault::perturb(std::span<float> weights, Rng& rng) const {
    if (fraction_ == 0.0) return;
    float magnitude = static_cast<float>(sa1_magnitude_);
    if (magnitude == 0.0F) magnitude = max_abs(weights);
    for (float& w : weights) {
        if (!rng.bernoulli(fraction_)) continue;
        // Faulted cell: SA1 keeps the sign at full-scale conductance, SA0
        // reads as an open (zero) cell.
        w = rng.bernoulli(sa1_share_) ? std::copysign(magnitude, w) : 0.0F;
    }
}

std::unique_ptr<FaultModel> StuckAtFault::clone() const {
    return std::make_unique<StuckAtFault>(fraction_, sa1_share_,
                                          sa1_magnitude_);
}

std::string StuckAtFault::describe() const {
    std::ostringstream os;
    os << "StuckAt(fraction=" << fraction_ << ", sa1=" << sa1_share_ << ")";
    return os.str();
}

std::vector<double> StuckAtFault::params() const {
    return {fraction_, sa1_share_, sa1_magnitude_};
}

// ------------------------------------------------------ BitFlipFault ----

BitFlipFault::BitFlipFault(double flip_probability, int bits)
    : flip_probability_(flip_probability), bits_(bits) {
    check_probability(flip_probability, "BitFlipFault");
    check_bits(bits, "BitFlipFault");
}

void BitFlipFault::perturb(std::span<float> weights, Rng& rng) const {
    if (flip_probability_ == 0.0) return;
    const std::int64_t qmax = quant_max(bits_);
    const std::int64_t qmin = -qmax - 1;
    const std::uint32_t mask = (std::uint32_t{1} << bits_) - 1;
    const float scale = quant_scale(weights, bits_);
    for (float& w : weights) {
        // Quantized two's-complement view; scale == 0 (all-zero span) keeps
        // q at 0 but still draws, so the stream layout stays span-shaped.
        std::int64_t q =
            scale > 0.0F ? std::llround(static_cast<double>(w) / scale) : 0;
        q = std::clamp(q, qmin, qmax);
        auto u = static_cast<std::uint32_t>(q) & mask;
        for (int b = 0; b < bits_; ++b) {
            if (rng.bernoulli(flip_probability_)) {
                u ^= std::uint32_t{1} << b;
            }
        }
        const std::int64_t flipped =
            (u >> (bits_ - 1)) != 0
                ? static_cast<std::int64_t>(u) - (std::int64_t{1} << bits_)
                : static_cast<std::int64_t>(u);
        w = scale * static_cast<float>(flipped);
    }
}

std::unique_ptr<FaultModel> BitFlipFault::clone() const {
    return std::make_unique<BitFlipFault>(flip_probability_, bits_);
}

std::string BitFlipFault::describe() const {
    std::ostringstream os;
    os << "BitFlip(p=" << flip_probability_ << ", bits=" << bits_ << ")";
    return os.str();
}

std::vector<double> BitFlipFault::params() const {
    return {flip_probability_, static_cast<double>(bits_)};
}

// -------------------------------------------- GaussianVariationFault ----

GaussianVariationFault::GaussianVariationFault(double sigma) : sigma_(sigma) {
    check_nonneg(sigma, "GaussianVariationFault");
}

void GaussianVariationFault::perturb(std::span<float> weights,
                                     Rng& rng) const {
    if (sigma_ == 0.0) return;
    // mu = -sigma^2/2 makes E[exp(N(mu, sigma^2))] = 1: variation spreads
    // the devices without biasing the mean conductance.
    const double mu = -0.5 * sigma_ * sigma_;
    for (float& w : weights) {
        w *= static_cast<float>(rng.log_normal(mu, sigma_));
    }
}

std::unique_ptr<FaultModel> GaussianVariationFault::clone() const {
    return std::make_unique<GaussianVariationFault>(sigma_);
}

std::string GaussianVariationFault::describe() const {
    std::ostringstream os;
    os << "GaussianVariation(sigma=" << sigma_ << ")";
    return os.str();
}

std::vector<double> GaussianVariationFault::params() const {
    return {sigma_};
}

// ------------------------------------------------- QuantizationFault ----

QuantizationFault::QuantizationFault(int bits) : bits_(bits) {
    check_bits(bits, "QuantizationFault");
}

void QuantizationFault::perturb(std::span<float> weights, Rng&) const {
    const float scale = quant_scale(weights, bits_);
    if (scale == 0.0F) return;
    const std::int64_t qmax = quant_max(bits_);
    for (float& w : weights) {
        const std::int64_t q = std::clamp(
            static_cast<std::int64_t>(
                std::llround(static_cast<double>(w) / scale)),
            -qmax, qmax);
        w = scale * static_cast<float>(q);
    }
}

std::unique_ptr<FaultModel> QuantizationFault::clone() const {
    return std::make_unique<QuantizationFault>(bits_);
}

std::string QuantizationFault::describe() const {
    std::ostringstream os;
    os << "Quantization(bits=" << bits_ << ")";
    return os.str();
}

std::vector<double> QuantizationFault::params() const {
    return {static_cast<double>(bits_)};
}

}  // namespace bayesft::fault
