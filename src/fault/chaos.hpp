#pragma once
// Chaos harness for the search runtime itself (docs/robustness.md): a
// seeded, purely deterministic hook that injects crashes, hangs, NaN
// objectives, and spawn failures into candidate evaluation, so the
// fault-tolerant trial execution paths (timeout, retry, quarantine,
// crash isolation, the spawn watchdog) can be torture-tested.
//
// Every injection decision is a pure function of (spec seed, candidate
// seed, attempt index) — never of the wall clock, thread schedule, or
// evaluation order — so a chaos run is exactly reproducible and the
// determinism-under-failure contract is checkable bit for bit: a run with
// injected failures and retries must produce the same best point and
// trial log as a failure-free run.

#include <cstdint>

namespace bayesft::fault {

/// What the chaos hook does to one evaluation attempt.
enum class ChaosAction {
    kNone = 0,   ///< evaluate normally
    kCrash = 1,  ///< die (isolated child: abort(); in-process: failed trial)
    kHang = 2,   ///< block past the trial deadline
    kNaN = 3     ///< evaluate, then replace the objective with NaN
};

/// Per-action injection probabilities, parsed from the environment.
struct ChaosSpec {
    double crash = 0.0;  ///< P(kCrash) per attempt
    double hang = 0.0;   ///< P(kHang) per attempt
    double nan = 0.0;    ///< P(kNaN) per attempt
    /// P(simulated spawn failure) per isolated attempt, exercising the
    /// watchdog that degrades isolation back to in-process evaluation.
    double spawn = 0.0;
    /// P(the whole worker process aborts) per distributed attempt
    /// (docs/distributed.md).  Unlike `crash` — which a persistent worker
    /// survives and reports as a failed attempt — this kills the worker
    /// itself, so the coordinator must detect the death, respawn the
    /// worker, and re-dispatch the candidate.
    double worker_crash = 0.0;
    /// Stream selector: two chaos runs with different seeds inject into
    /// different candidates.
    std::uint64_t seed = 0;

    bool any() const {
        return crash > 0.0 || hang > 0.0 || nan > 0.0 || spawn > 0.0 ||
               worker_crash > 0.0;
    }

    /// Parses `BAYESFT_CHAOS`
    /// ("crash:0.3,hang:0.1,nan:0.05,spawn:0.2,worker_crash:0.3";
    /// unknown/malformed entries are ignored) and `BAYESFT_CHAOS_SEED`.
    /// An unset variable yields an all-zero spec (chaos off).
    static ChaosSpec from_env();
};

/// The injection decision for one evaluation attempt.  Pure: identical
/// (spec, candidate_seed, attempt) always decide identically, and the
/// attempt index is folded in so a retried attempt rolls fresh dice — an
/// injected failure with p < 1 is recoverable, while p == 1 fails every
/// attempt and exercises quarantine.
ChaosAction chaos_decide(const ChaosSpec& spec, std::uint64_t candidate_seed,
                         std::uint64_t attempt);

/// Whether to simulate a child-spawn failure for this isolated attempt
/// (decided on an independent stream from chaos_decide, so spawn chaos
/// composes with the others).
bool chaos_spawn_failure(const ChaosSpec& spec, std::uint64_t candidate_seed,
                         std::uint64_t attempt);

/// Whether a distributed worker aborts while evaluating this attempt
/// (stream 3, independent of the other injections).  Pure in
/// (spec, candidate_seed, attempt): the same attempt kills its worker in
/// every run at every worker count, which is what makes the
/// bit-identical-under-chaos contract of docs/distributed.md checkable.
bool chaos_worker_crash(const ChaosSpec& spec, std::uint64_t candidate_seed,
                        std::uint64_t attempt);

}  // namespace bayesft::fault
