#pragma once
// The pluggable FaultModel interface — the root of the fault-model zoo.
//
// The paper evaluates robustness only under memristance drift (Eq. 1), but
// real memristor/FPGA deployments also suffer stuck-at cells, SEU bit
// flips, device-to-device programming variation, and quantization error.
// Every such hardware imperfection is modeled here as an in-place
// perturbation of a flat weight buffer; the Monte-Carlo evaluator, the
// drift-marginalized objective, and the batched candidate engine only ever
// see this interface, so new fault families plug in without touching the
// search pipeline.  `fault/drift.hpp` holds the drift-flavored models,
// `fault/zoo.hpp` the hard-fault / variation / quantization models.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "utils/rng.hpp"

namespace bayesft::fault {

/// A stochastic (or deterministic) perturbation applied in place to a flat
/// weight buffer.
///
/// Determinism contract (relied on by the parallel Monte-Carlo evaluator
/// and the batched EvaluationEngine):
///  - `perturb` must be a pure function of (input weights, RNG draws,
///    constructor parameters).  Implementations must not keep hidden
///    mutable state (statics, caches, counters): a `clone()` fed the same
///    weights and the same forked RNG stream must produce bit-identical
///    output.  `verify_stateless` checks exactly this and is asserted in
///    debug builds on every Monte-Carlo evaluation.
///  - All randomness comes from the `Rng&` argument; `perturb` is safe to
///    call concurrently as long as each thread owns its weights and Rng.
///  - Draw-stream layout: the stochastic models consume randomness through
///    the SIMD kernel layer's 16-lane scheme (simd::kLanes) — one split()
///    of the caller's Rng seeds 16 forked lane streams, and weight i draws
///    from lane i % 16.  The number of draws per weight is fixed by the
///    model's parameters, never by the data: 1 round per 16 weights for the
///    single-draw models, 2 for StuckAt (faulted?, sa1? — always both), 2
///    per 32 weights for the Box-Muller normal/lognormal models, `bits`
///    rounds per 16 weights for BitFlip.  This data-independence plus the
///    per-lane ordering is what keeps results bit-identical across SIMD
///    dispatch tiers (scalar/AVX2/AVX-512/NEON) and thread counts.  The
///    identity early-outs (p == 0, sigma == 0, empty span) consume no
///    draws on every tier.
/// Thread safety: const member functions are safe to call from multiple
/// threads simultaneously (the object carries only immutable parameters).
class FaultModel {
public:
    virtual ~FaultModel() = default;
    FaultModel() = default;
    FaultModel(const FaultModel&) = default;
    FaultModel& operator=(const FaultModel&) = delete;

    /// Perturbs `weights` in place using randomness from `rng` only.
    virtual void perturb(std::span<float> weights, Rng& rng) const = 0;

    /// Deep copy.  Required so per-thread / per-candidate replicas can
    /// carry their own handle; must copy every parameter.
    virtual std::unique_ptr<FaultModel> clone() const = 0;

    /// Human-readable description, e.g. "LogNormal(sigma=0.3)".
    virtual std::string describe() const = 0;

    /// The model's numeric parameters in a stable order (used to digest
    /// fault configurations into engine cache / RNG context keys).
    virtual std::vector<double> params() const = 0;

    /// Pre-zoo spelling of `perturb`, kept so existing call sites and the
    /// drift-era examples still read naturally.
    void apply(std::span<float> weights, Rng& rng) const {
        perturb(weights, rng);
    }
};

/// Source-compat alias: the drift-only era called the interface DriftModel.
using DriftModel = FaultModel;

/// Composition: applies each child model in sequence on the same buffer and
/// the same RNG stream (e.g. quantize -> variation -> drift, matching a
/// real memristor deployment pipeline).  Order matters; see
/// docs/fault-models.md.
class ComposedFault final : public FaultModel {
public:
    /// Takes ownership of `stages`; throws std::invalid_argument on a null
    /// stage.  An empty chain is the identity perturbation.
    explicit ComposedFault(std::vector<std::unique_ptr<FaultModel>> stages);

    void perturb(std::span<float> weights, Rng& rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;
    /// Concatenation of the stages' parameter vectors (stage order).
    std::vector<double> params() const override;

    std::size_t stage_count() const { return stages_.size(); }

private:
    std::vector<std::unique_ptr<FaultModel>> stages_;
};

/// Source-compat alias for the drift-era composition class.
using ComposedDrift = ComposedFault;

/// Checks the no-hidden-state contract: two sequential `perturb` calls — on
/// the original and on a fresh clone, each over an identical buffer with an
/// identically forked RNG — must produce bit-identical tensors.  A model
/// with a hidden static / mutable counter fails the second call.  Cheap
/// (one small synthetic buffer); asserted in debug builds by the
/// Monte-Carlo evaluator and directly testable in release builds.
bool verify_stateless(const FaultModel& model);

namespace detail {
/// Throws std::invalid_argument unless v >= 0.
void check_nonneg(double v, const char* who);
/// Throws std::invalid_argument unless p is in [0, 1].
void check_probability(double p, const char* who);
}  // namespace detail

}  // namespace bayesft::fault
