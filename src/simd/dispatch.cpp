// Runtime tier selection for the SIMD kernel layer: one dispatch point,
// consulted lazily on first use, overridable via BAYESFT_SIMD (see
// kernels.hpp and docs/performance.md).
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "simd/kernels.hpp"

namespace bayesft::simd {

// Per-tier table getters, defined in the per-ISA translation units.
// A getter returns nullptr when its tier was not compiled in.
const KernelTable* tier_table_scalar();
const KernelTable* tier_table_avx2();
const KernelTable* tier_table_avx512();
const KernelTable* tier_table_neon();

namespace {

bool cpu_supports(Tier tier) {
    switch (tier) {
        case Tier::kScalar:
            return true;
#if defined(__x86_64__) || defined(_M_X64)
        case Tier::kAvx2:
            return __builtin_cpu_supports("avx2") &&
                   __builtin_cpu_supports("fma");
        case Tier::kAvx512:
            return __builtin_cpu_supports("avx512f") &&
                   __builtin_cpu_supports("avx512bw") &&
                   __builtin_cpu_supports("avx512dq");
#endif
#if defined(__aarch64__)
        case Tier::kNeon:
            return true;  // aarch64 mandates Advanced SIMD
#endif
        default:
            return false;
    }
}

const KernelTable* table_if_available(Tier tier) {
    if (!cpu_supports(tier)) return nullptr;
    switch (tier) {
        case Tier::kScalar:
            return tier_table_scalar();
        case Tier::kAvx2:
            return tier_table_avx2();
        case Tier::kAvx512:
            return tier_table_avx512();
        case Tier::kNeon:
            return tier_table_neon();
    }
    return nullptr;
}

Tier best_tier() {
    if (table_if_available(Tier::kAvx512) != nullptr) return Tier::kAvx512;
    if (table_if_available(Tier::kAvx2) != nullptr) return Tier::kAvx2;
    if (table_if_available(Tier::kNeon) != nullptr) return Tier::kNeon;
    return Tier::kScalar;
}

Tier parse_env_tier(const std::string& value) {
    if (value == "native") return best_tier();
    if (value == "scalar") return Tier::kScalar;
    if (value == "avx2") return Tier::kAvx2;
    if (value == "avx512") return Tier::kAvx512;
    if (value == "neon") return Tier::kNeon;
    throw std::invalid_argument(
        "BAYESFT_SIMD: unknown tier '" + value +
        "' (expected scalar|avx2|avx512|neon|native)");
}

Tier select_initial_tier() {
    const char* env = std::getenv("BAYESFT_SIMD");
    if (env != nullptr && *env != '\0') {
        const Tier tier = parse_env_tier(env);
        if (table_if_available(tier) == nullptr) {
            throw std::runtime_error(
                std::string("BAYESFT_SIMD=") + env +
                ": tier unavailable on this build/CPU");
        }
        return tier;
    }
    return best_tier();
}

Tier& current_tier() {
    static Tier tier = select_initial_tier();
    return tier;
}

}  // namespace

const KernelTable& kernels() { return *table_if_available(current_tier()); }

const KernelTable* kernels_for(Tier tier) {
    return table_if_available(tier);
}

Tier active_tier() { return current_tier(); }

bool tier_available(Tier tier) {
    return table_if_available(tier) != nullptr;
}

const char* tier_name(Tier tier) {
    switch (tier) {
        case Tier::kScalar:
            return "scalar";
        case Tier::kAvx2:
            return "avx2";
        case Tier::kAvx512:
            return "avx512";
        case Tier::kNeon:
            return "neon";
    }
    return "?";
}

TierOverride::TierOverride(Tier tier) {
    if (table_if_available(tier) == nullptr) {
        throw std::runtime_error(std::string("TierOverride: tier '") +
                                 tier_name(tier) +
                                 "' unavailable on this build/CPU");
    }
    previous_ = current_tier();
    had_previous_ = true;
    current_tier() = tier;
}

TierOverride::~TierOverride() {
    if (had_previous_) current_tier() = previous_;
}

}  // namespace bayesft::simd
