#pragma once
// Runtime-dispatched SIMD kernel layer (docs/performance.md).
//
// Every hot elementwise / GEMM loop in the library routes through the
// function-pointer table returned by `kernels()`.  The table is selected
// once per process from the CPU's capabilities, overridable with
//   BAYESFT_SIMD = scalar | avx2 | avx512 | neon | native
// ("native" = best tier this build + CPU supports; unknown values and
// tiers the CPU cannot run raise std::invalid_argument / runtime_error).
//
// Bit-exactness contract: for identical inputs (including the Rng state),
// every kernel produces bit-identical results on every tier.  This holds
// by construction — all tiers instantiate the same generic kernel
// templates (simd/kernels_generic.inc) over a backend description
// (simd/vec_backends.inc) whose operations are all correctly-rounded IEEE
// ops (add/sub/mul/div/fma/sqrt), and every SIMD translation unit is
// compiled with -ffp-contract=off so the scalar tier fuses exactly where
// the vector tiers do (explicit std::fma) and nowhere else.
// tests/test_simd.cpp pins the contract for every fault model, every
// activation, and GEMM tail shapes.
//
// RNG stream layout: the fault kernels consume randomness through
// kLanes = 16 deterministic logical lanes derived from the caller's Rng
// (see LaneStates in vec_backends.inc); weight i draws from lane i % 16.
// The layout is part of each fault model's documented determinism
// contract (src/fault/model.hpp) and is identical on every tier — the
// scalar tier simulates the same 16 lanes round-robin.

#include <cstddef>
#include <cstdint>

#include "utils/rng.hpp"

namespace bayesft::simd {

/// Dispatch tiers, ordered by preference ("native" picks the highest
/// available).  kNeon only exists on aarch64 builds, kAvx2/kAvx512 only
/// on x86-64 builds; kScalar always exists.
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// Activation kinds understood by the elementwise activation kernels
/// (mirrors the nn:: activation classes; `param` carries the leaky slope
/// or the ELU alpha, 0 otherwise).
enum class Act { kRelu = 0, kLeakyRelu, kElu, kGelu, kSigmoid, kTanh };

/// Number of logical RNG lanes every fault kernel uses, on every tier.
/// Fixed so the draw layout (and therefore every perturbation) is
/// independent of the vector width actually executing.
inline constexpr std::size_t kLanes = 16;

/// The dispatch table.  All pointers are non-null in a constructed table.
struct KernelTable {
    const char* name;  ///< "scalar" | "avx2" | "avx512" | "neon"

    // -- fault / drift elementwise kernels (w[i] updated in place) -------
    /// w *= exp(mu + sigma * z), z ~ N(0,1) (lognormal factor).
    void (*lognormal_mul)(float* w, std::size_t n, Rng& rng, float mu,
                          float sigma);
    /// w += sigma * z, z ~ N(0,1).
    void (*gaussian_add)(float* w, std::size_t n, Rng& rng, float sigma);
    /// w *= lo + (hi - lo) * u, u ~ U[0,1).
    void (*uniform_scale)(float* w, std::size_t n, Rng& rng, float lo,
                          float hi);
    /// With prob `fraction`: stuck-at-one (prob `sa1_share`: w =
    /// copysign(magnitude, w)) else stuck-at-zero (w = 0).
    void (*stuck_at)(float* w, std::size_t n, Rng& rng, double fraction,
                     double sa1_share, float magnitude);
    /// Quantize to `bits` signed symmetric grid with step `scale`, flip
    /// each of the low `bits` code bits independently with prob `p`,
    /// sign-extend, dequantize.
    void (*bit_flip)(float* w, std::size_t n, Rng& rng, double p, int bits,
                     float scale);
    /// With prob p: w = 0.
    void (*stuck_zero)(float* w, std::size_t n, Rng& rng, double p);
    /// With prob p: w = -w.
    void (*sign_flip)(float* w, std::size_t n, Rng& rng, double p);

    // -- deterministic quantization kernels ------------------------------
    /// w = scale * clamp(round_half_away(w / scale), -qmax, qmax),
    /// qmax = 2^(bits-1) - 1.  scale > 0.
    void (*quantize)(float* w, std::size_t n, int bits, float scale);
    /// Same rounding/saturation, but emits the integer codes instead of
    /// dequantizing — the fixed-point forward pass input (nn/quant.hpp).
    void (*quantize_codes)(const float* w, std::int16_t* codes,
                           std::size_t n, int bits, float scale);
    /// max |w[i]| (0 for empty spans).
    float (*max_abs)(const float* w, std::size_t n);

    // -- elementwise activations ----------------------------------------
    /// y[i] = f(x[i]); in-place (y == x) allowed.
    void (*act_fwd)(Act kind, const float* x, float* y, std::size_t n,
                    float param);
    /// g[i] *= f'(x[i]).
    void (*act_bwd)(Act kind, const float* x, float* g, std::size_t n,
                    float param);

    // -- GEMM ------------------------------------------------------------
    /// C (+)= A · B on row-major blocks: A is m×k (leading dim lda), B is
    /// k×n (ldb), C is m×n (ldc).  `accumulate` false overwrites C (no
    /// pre-zero needed).  Per-element summation order is fixed (ascending
    /// k within kGemmKc panels) and identical across tiers.
    void (*gemm_f32)(const float* a, std::size_t lda, const float* b,
                     std::size_t ldb, float* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n,
                     bool accumulate);
    /// Fixed-point GEMM on quantized codes: c[i*n+j] =
    /// float(sum_k a[i*k..]·b[j*k..]) * scale (B is pre-transposed —
    /// rows of B are the n dot-product operands, matmul_nt layout).
    /// Integer accumulation is exact, so all tiers agree bit-exactly.
    void (*qgemm_nt)(const std::int16_t* a, const std::int16_t* b,
                     float* c, std::size_t m, std::size_t k, std::size_t n,
                     float scale);
};

/// The active table (env/CPU selected, cached after the first call).
/// Throws std::invalid_argument for an unparsable BAYESFT_SIMD value and
/// std::runtime_error when the requested tier is unavailable.
const KernelTable& kernels();

/// A specific tier's table, or nullptr when this build/CPU lacks it.
const KernelTable* kernels_for(Tier tier);

/// Tier backing `kernels()` right now.
Tier active_tier();

/// True when `kernels_for(tier)` would be non-null.
bool tier_available(Tier tier);

const char* tier_name(Tier tier);

/// Test hook: forces `kernels()` to the given tier until the override is
/// destroyed (throws std::runtime_error if unavailable).  Not thread-safe
/// against concurrent kernel lookups — tests only.
class TierOverride {
public:
    explicit TierOverride(Tier tier);
    ~TierOverride();
    TierOverride(const TierOverride&) = delete;
    TierOverride& operator=(const TierOverride&) = delete;

private:
    Tier previous_;
    bool had_previous_;
};

}  // namespace bayesft::simd
