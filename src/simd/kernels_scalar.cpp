// Scalar reference tier.  Always available; the bit-exactness baseline
// every vector tier is tested against.  Compiled with -ffp-contract=off
// (see CMakeLists.txt) so the only fused operations are the explicit
// std::fma calls the vector tiers also make.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace bayesft::simd {

namespace {
#include "simd/vec_backends.inc"
#include "simd/kernels_generic.inc"
}  // namespace

const KernelTable* tier_table_scalar() {
    static const KernelTable table = make_table<ScalarBackend>("scalar");
    return &table;
}

}  // namespace bayesft::simd
