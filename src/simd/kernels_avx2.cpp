// AVX2 + FMA tier.  This TU (and only this TU) is compiled with
// -mavx2 -mfma on x86-64 (see CMakeLists.txt); on other targets, or
// builds whose baseline lacks the flags, the getter returns nullptr and
// dispatch skips the tier.  -ffp-contract=off keeps fusion limited to the
// explicit fma ops shared with the scalar reference.
#define BAYESFT_SIMD_WANT_AVX2 1

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "simd/kernels.hpp"

namespace bayesft::simd {

namespace {
#include "simd/vec_backends.inc"
#if defined(__AVX2__) && defined(__FMA__)
#include "simd/kernels_generic.inc"
#endif
}  // namespace

const KernelTable* tier_table_avx2() {
#if defined(__AVX2__) && defined(__FMA__)
    static const KernelTable table = make_table<Avx2Backend>("avx2");
    return &table;
#else
    return nullptr;
#endif
}

}  // namespace bayesft::simd
