// AVX-512 tier (F+BW+DQ).  Compiled with -mavx512f -mavx512bw -mavx512dq
// -mavx512vl on x86-64 (see CMakeLists.txt); returns nullptr elsewhere.
// -ffp-contract=off keeps fusion limited to the explicit fma ops shared
// with the scalar reference.
#define BAYESFT_SIMD_WANT_AVX512 1

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__)
#include <immintrin.h>
#endif

#include "simd/kernels.hpp"

namespace bayesft::simd {

namespace {
#include "simd/vec_backends.inc"
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__)
#include "simd/kernels_generic.inc"
#endif
}  // namespace

const KernelTable* tier_table_avx512() {
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__)
    static const KernelTable table = make_table<Avx512Backend>("avx512");
    return &table;
#else
    return nullptr;
#endif
}

}  // namespace bayesft::simd
