// NEON (aarch64) tier.  aarch64 guarantees Advanced SIMD, so no extra
// compile flags are needed; on non-ARM targets the getter returns
// nullptr.  -ffp-contract=off keeps fusion limited to the explicit fma
// ops shared with the scalar reference.
#define BAYESFT_SIMD_WANT_NEON 1

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

#include "simd/kernels.hpp"

namespace bayesft::simd {

namespace {
#include "simd/vec_backends.inc"
#if defined(__ARM_NEON) && defined(__aarch64__)
#include "simd/kernels_generic.inc"
#endif
}  // namespace

const KernelTable* tier_table_neon() {
#if defined(__ARM_NEON) && defined(__aarch64__)
    static const KernelTable table = make_table<NeonBackend>("neon");
    return &table;
#else
    return nullptr;
#endif
}

}  // namespace bayesft::simd
