#pragma once
// Robustness-as-a-service evaluation server (docs/serving.md): a
// long-running process that lets many clients share one EvaluationEngine,
// one cross-client memo cache, and the fault-model zoo over the line
// protocol in serve/protocol.hpp.
//
// Architecture: one poll()-driven I/O thread owns every socket (accept,
// read, parse, respond) and one dispatch thread owns the engine.  Parsed
// eval jobs enter a bounded admission queue — a full queue answers `busy`
// immediately (explicit backpressure, never a silent drop) — and the
// dispatcher coalesces queued jobs of the same (target, fault, mode)
// bucket into one evaluate_points batch.  Successful utilities enter an
// LRU-bounded cross-client cache keyed on (bucket context key, point);
// hits are answered without touching the engine.  Every served
// evaluation is persisted through the run store, and the response IS the
// run-store JSONL trial line, byte-identical to a direct in-process
// evaluate_points call (targets.hpp, "determinism anchor").
//
// Responses are delivered in request order per connection: each request
// claims a response slot on arrival (error / busy slots are ready
// immediately, eval slots when their batch completes), and the I/O
// thread flushes a connection's slots strictly front-first.

#include <cstdint>
#include <string>
#include <vector>

#include "core/trial.hpp"
#include "fault/chaos.hpp"
#include "serve/targets.hpp"

namespace bayesft::serve {

/// Server knobs (bench/serve.cpp maps CLI flags onto these).
struct ServeConfig {
    /// Unix-domain socket path; empty disables the Unix endpoint.
    std::string socket_path;
    /// TCP port on 127.0.0.1; 0 disables the TCP endpoint.  At least one
    /// endpoint must be configured.
    int tcp_port = 0;
    /// Admission-queue bound: eval jobs waiting for the dispatcher beyond
    /// this count are answered `busy`.
    std::size_t queue_depth = 64;
    /// Largest evaluate_points batch one dispatch cycle coalesces.
    std::size_t max_batch = 8;
    /// LRU bound on the cross-client result cache (entries, not bytes).
    std::size_t cache_entries = 1024;
    /// Engine evaluation concurrency (0 = thread-pool width).
    std::size_t threads = 0;
    /// Fault-tolerant trial execution for served evaluations
    /// (docs/robustness.md): timeouts, retries, quarantine.
    ResilienceConfig resilience;
    /// Chaos injection, read from BAYESFT_CHAOS like every other driver.
    fault::ChaosSpec chaos = fault::ChaosSpec::from_env();
    /// Run-store root directory; empty disables persistence.
    std::string runs_dir;
};

/// Monotonic service counters (the `stats` verb serializes these).
struct ServeStats {
    std::uint64_t connections = 0;      ///< accepted connections
    std::uint64_t requests = 0;         ///< well-formed requests, any verb
    std::uint64_t protocol_errors = 0;  ///< `error` responses sent
    std::uint64_t accepted = 0;         ///< eval jobs admitted to the queue
    std::uint64_t busy = 0;             ///< eval jobs answered `busy`
    std::uint64_t completed = 0;        ///< eval responses sent, any status
    std::uint64_t failed = 0;           ///< completed with failed_* status
    std::uint64_t batches = 0;          ///< evaluate_points calls issued
    std::uint64_t cache_hits = 0;       ///< LRU hits + within-batch dedup
    std::uint64_t cache_evictions = 0;  ///< LRU entries displaced
    std::uint64_t cache_size = 0;       ///< current LRU entry count
};

class EvalServer {
public:
    /// Validates nothing yet; `start` owns the fail-fast probes.
    EvalServer(ServeConfig config, std::vector<ServeTarget> targets);
    ~EvalServer();

    EvalServer(const EvalServer&) = delete;
    EvalServer& operator=(const EvalServer&) = delete;

    /// Binds the endpoints and launches the I/O and dispatch threads.
    /// Fails fast with std::runtime_error before serving anything: the
    /// socket path must be bindable (not a directory, not a live socket,
    /// parent writable — validate_socket_path) and the run-store root
    /// must pass its write probe.
    void start();

    /// Stops both threads, closes every socket, unlinks the Unix socket.
    /// Idempotent; the destructor calls it.
    void stop();

    /// False before start(), after stop(), and after a client issued the
    /// `shutdown` verb (the I/O loop then drains and exits on its own;
    /// call stop() to join).
    bool running() const;

    /// Snapshot of the service counters.
    ServeStats stats() const;

    /// Actual bound TCP port (differs from the configured one when it was
    /// 0 = ephemeral); 0 when no TCP endpoint is listening.
    int tcp_port() const;

    const std::vector<ServeTarget>& targets() const { return targets_; }

    /// The fail-fast probe behind `--socket`: throws std::runtime_error
    /// with a clear message when `path` is empty, too long for sun_path,
    /// a directory, an existing non-socket file, a live socket another
    /// server still answers on, or in an unwritable directory.  A stale
    /// socket file (nothing listening) is unlinked; the writability probe
    /// never truncates existing data.
    static void validate_socket_path(const std::string& path);

private:
    struct Impl;
    Impl* impl_ = nullptr;

    ServeConfig config_;
    std::vector<ServeTarget> targets_;
};

/// One-line JSON rendering of the counters (the `stats` response body)
/// and its strict inverse, shared by the server, the load generator, and
/// the tests.
std::string stats_json(const ServeStats& stats);
bool parse_stats(const std::string& line, ServeStats& out);

}  // namespace bayesft::serve
