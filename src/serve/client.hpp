#pragma once
// Minimal blocking client for the evaluation server (docs/serving.md):
// connect, send newline-terminated request lines, read newline-terminated
// response lines — the whole protocol.  Used by the load generator
// (bench/serve_load.cpp) and the torture tests; a production client in
// any language is a dozen lines against the same grammar.

#include <string>

#include "serve/protocol.hpp"

namespace bayesft::serve {

class ServeClient {
public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(ServeClient&& other) noexcept;
    ServeClient& operator=(ServeClient&& other) noexcept;
    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /// Connects to a Unix-domain socket; throws std::runtime_error with
    /// the errno message on failure.
    static ServeClient connect_unix(const std::string& path);
    /// Connects to a TCP endpoint on 127.0.0.1.
    static ServeClient connect_tcp(int port);

    bool connected() const { return fd_ >= 0; }

    /// Sends `line` plus the newline terminator; throws on a broken
    /// connection.
    void send_line(const std::string& line);

    /// Blocks for the next response line (without its newline); throws
    /// std::runtime_error on EOF, error, or after `timeout_seconds`.
    std::string read_line(double timeout_seconds = 30.0);

    /// send_line + read_line: the one-request round trip.
    std::string request(const std::string& line,
                        double timeout_seconds = 30.0);

    /// Round trip of one eval request.
    std::string eval(const EvalRequest& request,
                     double timeout_seconds = 30.0);

    /// Sends raw bytes verbatim — no newline appended, no validation —
    /// for the fuzz suite's malformed-stream torture.
    void send_raw(const std::string& bytes);

    void close();

private:
    explicit ServeClient(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace bayesft::serve
