#include "serve/client.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define BAYESFT_HAS_SOCKETS 1
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace bayesft::serve {

#ifdef BAYESFT_HAS_SOCKETS

namespace {

void ignore_sigpipe_once() {
    static const bool done = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)done;
}

}  // namespace

ServeClient::~ServeClient() { close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

ServeClient ServeClient::connect_unix(const std::string& path) {
    ignore_sigpipe_once();
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("serve client: bad socket path '" + path +
                                 "'");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error("serve client: cannot create socket");
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("serve client: cannot connect to '" +
                                 path + "': " + reason);
    }
    return ServeClient(fd);
}

ServeClient ServeClient::connect_tcp(int port) {
    ignore_sigpipe_once();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error("serve client: cannot create socket");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("serve client: cannot connect to 127.0.0.1:" +
                                 std::to_string(port) + ": " + reason);
    }
    return ServeClient(fd);
}

void ServeClient::send_raw(const std::string& bytes) {
    if (fd_ < 0) {
        throw std::runtime_error("serve client: not connected");
    }
    const char* cursor = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        const ssize_t wrote = ::send(fd_, cursor, left, MSG_NOSIGNAL);
        if (wrote <= 0) {
            if (wrote < 0 && errno == EINTR) continue;
            throw std::runtime_error("serve client: connection broken");
        }
        cursor += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
}

void ServeClient::send_line(const std::string& line) {
    send_raw(line + '\n');
}

std::string ServeClient::read_line(double timeout_seconds) {
    if (fd_ < 0) {
        throw std::runtime_error("serve client: not connected");
    }
    while (true) {
        const std::size_t at = buffer_.find('\n');
        if (at != std::string::npos) {
            std::string line = buffer_.substr(0, at);
            buffer_.erase(0, at + 1);
            return line;
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int timeout_ms =
            timeout_seconds <= 0.0
                ? -1
                : static_cast<int>(timeout_seconds * 1000.0);
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready == 0) {
            throw std::runtime_error(
                "serve client: timed out waiting for a response");
        }
        if (ready < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("serve client: poll failed");
        }
        char chunk[4096];
        const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
        if (got > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(got));
        } else if (got == 0) {
            throw std::runtime_error(
                "serve client: server closed the connection");
        } else if (errno != EINTR && errno != EAGAIN) {
            throw std::runtime_error("serve client: read failed");
        }
    }
}

std::string ServeClient::request(const std::string& line,
                                 double timeout_seconds) {
    send_line(line);
    return read_line(timeout_seconds);
}

std::string ServeClient::eval(const EvalRequest& request_in,
                              double timeout_seconds) {
    return request(format_eval_request(request_in), timeout_seconds);
}

void ServeClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

#else  // !BAYESFT_HAS_SOCKETS

ServeClient::~ServeClient() = default;
ServeClient::ServeClient(ServeClient&&) noexcept {}
ServeClient& ServeClient::operator=(ServeClient&&) noexcept {
    return *this;
}
ServeClient ServeClient::connect_unix(const std::string&) {
    throw std::runtime_error(
        "serve client: POSIX sockets are unavailable on this platform");
}
ServeClient ServeClient::connect_tcp(int) {
    throw std::runtime_error(
        "serve client: POSIX sockets are unavailable on this platform");
}
void ServeClient::send_raw(const std::string&) {
    throw std::runtime_error("serve client: not connected");
}
void ServeClient::send_line(const std::string&) {
    throw std::runtime_error("serve client: not connected");
}
std::string ServeClient::read_line(double) {
    throw std::runtime_error("serve client: not connected");
}
std::string ServeClient::request(const std::string&, double) {
    throw std::runtime_error("serve client: not connected");
}
std::string ServeClient::eval(const EvalRequest&, double) {
    throw std::runtime_error("serve client: not connected");
}
void ServeClient::close() {}

#endif  // BAYESFT_HAS_SOCKETS

}  // namespace bayesft::serve
