#pragma once
// The evaluation server's target registry (docs/serving.md): what a
// client can ask the server to evaluate.  A ServeTarget is one
// self-contained point-evaluation problem — a search space plus a pure
// evaluator — and each of its FaultVariants is one fault-model
// configuration of the objective.  Clients address both by digest, so a
// request is fully self-describing and the server never trusts a name.
//
// The (target, variant, inference mode) triple determines the engine
// EvalContext, hence candidate_seed, hence every stochastic draw of the
// evaluation — which is why a served response is byte-identical to a
// direct in-process evaluate_points call (the determinism contract the
// tests enforce with plain string compares).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "core/engine.hpp"
#include "core/objective.hpp"
#include "core/runstore.hpp"
#include "core/trial.hpp"
#include "nn/quant.hpp"

namespace bayesft::serve {

/// One fault-model configuration of a target's objective.
struct FaultVariant {
    std::string name;          ///< e.g. "drift", "stuckat", "dac12"
    std::uint64_t digest = 0;  ///< wire identifier (fault_variant_digest)
    core::ObjectiveConfig objective;
};

/// One servable evaluation problem.  `evaluate` must be a pure function
/// of (objective, encoded point, rng) — called concurrently, touching no
/// shared mutable state — exactly the PointEvaluator contract.
struct ServeTarget {
    std::string name;          ///< run-store scenario id, e.g. "toy_mlp"
    std::uint64_t digest = 0;  ///< wire identifier (serve_target_digest)
    bayesopt::BoxBounds bounds;  ///< encoded view, for samplers/validation
    std::vector<FaultVariant> variants;
    std::function<double(const core::ObjectiveConfig& objective,
                         const core::Alpha& encoded, Rng& rng)>
        evaluate;
};

/// Digest of a target: a pure function of its name and encoded
/// dimensionality, so client and server agree on the wire id without
/// shipping the definition.
std::uint64_t serve_target_digest(const std::string& name,
                                  std::size_t dims);

/// Digest of one fault variant within a target: folds the full objective
/// configuration, so two variants differing in any fault parameter get
/// distinct wire ids.
std::uint64_t fault_variant_digest(std::uint64_t target_digest,
                                   const std::string& name,
                                   const core::ObjectiveConfig& objective);

/// The engine context of one (target, variant, mode) bucket — THE
/// determinism anchor: candidate_seed(bucket_context(...), point) decides
/// every stochastic draw of a served evaluation, so any process building
/// the same bucket reproduces the same bytes.
core::EvalContext bucket_context(const ServeTarget& target,
                                 const FaultVariant& variant,
                                 nn::InferenceMode mode);

/// nullptr when no target carries `digest`.
const ServeTarget* find_target(const std::vector<ServeTarget>& targets,
                               std::uint64_t digest);
/// nullptr when the target has no variant with `digest`.
const FaultVariant* find_variant(const ServeTarget& target,
                                 std::uint64_t digest);

/// The run-store trial record of one served evaluation — the response
/// line's content and the persisted form, shared so they cannot drift.
/// `trial` is the per-connection request index; `cseed` the candidate
/// seed; the point travels as space-separated format_bits coordinates.
core::RunRecord make_trial_record(const ServeTarget& target,
                                  const core::Alpha& point,
                                  std::uint64_t cseed, std::uint64_t trial,
                                  double utility, TrialStatus status);

/// Reference responses computed directly in-process (no server, no
/// cache, no chaos): the byte-exact expectation for served responses,
/// used by the determinism tests and `serve_load --verify`.
std::vector<std::string> reference_responses(
    const ServeTarget& target, const FaultVariant& variant,
    nn::InferenceMode mode, const std::vector<core::Alpha>& points,
    const std::vector<std::uint64_t>& trials);

/// The built-in target set the `serve` binary registers: "toy_mlp" (the
/// CI toy scenario — blobs data, 1-epoch MLP training, drift / stuck-at /
/// DAC12-deployment fault variants) and "quadratic" (a closed-form
/// analytic objective for protocol fuzzing and load generation, where an
/// evaluation must cost microseconds, not training runs).
std::vector<ServeTarget> builtin_targets(bool quick);

}  // namespace bayesft::serve
