#pragma once
// Wire protocol of the robustness-as-a-service evaluation server
// (docs/serving.md): newline-terminated ASCII request lines over a
// Unix-domain or TCP stream, one response line per request, in request
// order.  The grammar is deliberately tiny and strict — every violation
// yields a structured `error <reason>` response (never a crash, never a
// silent drop, never connection desync), which the fuzz suite in
// tests/test_serve.cpp tortures.
//
//   eval <target-hex16> <fault-hex16> <mode> <n> <coord-hex16>{n}
//   ping
//   stats
//   shutdown
//
// Identifiers and coordinates travel as 16-digit hex bit patterns
// (core/runstore.hpp format_hex / format_bits), the same codec as the
// distributed worker pipe, so a point reaches the server bit-exactly and
// the response — a run-store JSONL trial line — is byte-identical to a
// direct in-process evaluation.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "nn/quant.hpp"

namespace bayesft::serve {

/// Hard bound on one request line (newline excluded): a longer line is
/// answered with `error` and discarded up to the next newline, so a
/// hostile client cannot balloon the server's connection buffer.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

/// Hard bound on the coordinate count of one eval request — far above any
/// registered search space, low enough to reject absurd allocations.
inline constexpr std::size_t kMaxPointDims = 256;

/// The backpressure response: the admission queue was full, the request
/// was read, rejected, and answered — never silently dropped.  The client
/// owns the retry.
inline constexpr const char* kBusyResponse = "busy";

/// One parsed `eval` request.
struct EvalRequest {
    std::uint64_t target = 0;  ///< ServeTarget digest (targets.hpp)
    std::uint64_t fault = 0;   ///< fault-variant digest within the target
    nn::InferenceMode inference = nn::InferenceMode::kFloat32;
    core::Alpha point;         ///< encoded search-space coordinates
};

/// One parsed request line of any verb.
struct Request {
    enum class Kind { kEval, kPing, kStats, kShutdown };
    Kind kind = Kind::kPing;
    EvalRequest eval;  ///< meaningful for kEval only
};

/// Parses one request line (no trailing newline).  True on success; on
/// failure fills `error` with a short single-line reason safe to echo in
/// an `error` response.
bool parse_request(const std::string& line, Request& out,
                   std::string& error);

/// Serializes an eval request to its wire line (no trailing newline).
/// Non-finite coordinates are encoded faithfully — the server rejects
/// them, which the fuzz suite relies on.
std::string format_eval_request(const EvalRequest& request);

/// Builds the `error <reason>` response line (no trailing newline),
/// sanitizing the reason to one printable line.
std::string error_response(const std::string& reason);

}  // namespace bayesft::serve
