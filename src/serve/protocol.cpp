#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "core/runstore.hpp"

namespace bayesft::serve {

namespace {

/// Splits on single spaces, rejecting leading/trailing/double separators:
/// the wire grammar is exact, so "eval  1 ..." (two spaces) is malformed
/// rather than leniently accepted and silently re-serialized differently.
bool split_fields(const std::string& line,
                  std::vector<std::string>& fields) {
    fields.clear();
    if (line.empty()) return false;
    std::size_t start = 0;
    while (true) {
        const std::size_t space = line.find(' ', start);
        const std::size_t end =
            space == std::string::npos ? line.size() : space;
        if (end == start) return false;  // empty field
        fields.push_back(line.substr(start, end - start));
        if (space == std::string::npos) return true;
        start = space + 1;
        if (start >= line.size()) return false;  // trailing space
    }
}

bool parse_count(const std::string& text, std::size_t& out) {
    if (text.empty() || text.size() > 6) return false;
    std::size_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') return false;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    out = value;
    return true;
}

}  // namespace

bool parse_request(const std::string& line, Request& out,
                   std::string& error) {
    if (line.size() > kMaxRequestBytes) {
        error = "request line too long";
        return false;
    }
    // Control bytes (including embedded NUL and CR) never appear in a
    // well-formed request; rejecting them up front keeps the error
    // responses — which echo nothing from the line — clean.
    for (char c : line) {
        if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
            error = "control byte in request";
            return false;
        }
    }
    std::vector<std::string> fields;
    if (!split_fields(line, fields)) {
        error = "empty or malformed request";
        return false;
    }
    const std::string& verb = fields[0];
    if (verb == "ping" || verb == "stats" || verb == "shutdown") {
        if (fields.size() != 1) {
            error = "unexpected arguments to '" + verb + "'";
            return false;
        }
        out.kind = verb == "ping" ? Request::Kind::kPing
                   : verb == "stats" ? Request::Kind::kStats
                                     : Request::Kind::kShutdown;
        return true;
    }
    if (verb != "eval") {
        error = "unknown verb";
        return false;
    }
    // eval <target> <fault> <mode> <n> <coord>{n}
    if (fields.size() < 5) {
        error = "truncated eval request";
        return false;
    }
    EvalRequest eval;
    if (!core::parse_hex(fields[1], eval.target)) {
        error = "bad target digest";
        return false;
    }
    if (!core::parse_hex(fields[2], eval.fault)) {
        error = "bad fault digest";
        return false;
    }
    try {
        eval.inference = nn::parse_inference_mode(fields[3]);
    } catch (const std::exception&) {
        error = "bad inference mode";
        return false;
    }
    std::size_t count = 0;
    if (!parse_count(fields[4], count)) {
        error = "bad coordinate count";
        return false;
    }
    if (count == 0 || count > kMaxPointDims) {
        error = "coordinate count out of range";
        return false;
    }
    if (fields.size() != 5 + count) {
        error = "coordinate count mismatch";
        return false;
    }
    eval.point.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!core::parse_bits(fields[5 + i], eval.point[i])) {
            error = "bad coordinate encoding";
            return false;
        }
        if (!std::isfinite(eval.point[i])) {
            error = "non-finite coordinate";
            return false;
        }
    }
    out.kind = Request::Kind::kEval;
    out.eval = std::move(eval);
    return true;
}

std::string format_eval_request(const EvalRequest& request) {
    std::string line = "eval " + core::format_hex(request.target) + ' ' +
                       core::format_hex(request.fault) + ' ' +
                       nn::inference_mode_name(request.inference) + ' ' +
                       std::to_string(request.point.size());
    for (const double value : request.point) {
        line += ' ';
        line += core::format_bits(value);
    }
    return line;
}

std::string error_response(const std::string& reason) {
    std::string out = "error ";
    for (char c : reason) {
        const unsigned char byte = static_cast<unsigned char>(c);
        out.push_back(byte < 0x20 || byte >= 0x7f ? '?' : c);
    }
    return out;
}

}  // namespace bayesft::serve
