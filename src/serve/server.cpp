#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/engine.hpp"
#include "core/runstore.hpp"
#include "serve/protocol.hpp"
#include "utils/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define BAYESFT_HAS_SOCKETS 1
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace bayesft::serve {

namespace {

namespace fs = std::filesystem;

bool read_counter(const std::string& line, const char* key,
                  std::uint64_t& out) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return false;
    try {
        out = std::stoull(line.substr(at + needle.size()));
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

#ifdef BAYESFT_HAS_SOCKETS

/// A peer that vanishes mid-write must surface as an error return, not a
/// process-killing SIGPIPE (same policy as the worker pipes).
void ignore_sigpipe_once() {
    static const bool done = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)done;
}

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

#endif  // BAYESFT_HAS_SOCKETS

}  // namespace

std::string stats_json(const ServeStats& s) {
    std::string out = "{\"kind\":\"stats\"";
    out += ",\"connections\":" + std::to_string(s.connections);
    out += ",\"requests\":" + std::to_string(s.requests);
    out += ",\"protocol_errors\":" + std::to_string(s.protocol_errors);
    out += ",\"accepted\":" + std::to_string(s.accepted);
    out += ",\"busy\":" + std::to_string(s.busy);
    out += ",\"completed\":" + std::to_string(s.completed);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"batches\":" + std::to_string(s.batches);
    out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
    out += ",\"cache_evictions\":" + std::to_string(s.cache_evictions);
    out += ",\"cache_size\":" + std::to_string(s.cache_size);
    out += "}";
    return out;
}

bool parse_stats(const std::string& line, ServeStats& out) {
    if (line.find("\"kind\":\"stats\"") == std::string::npos) return false;
    return read_counter(line, "connections", out.connections) &&
           read_counter(line, "requests", out.requests) &&
           read_counter(line, "protocol_errors", out.protocol_errors) &&
           read_counter(line, "accepted", out.accepted) &&
           read_counter(line, "busy", out.busy) &&
           read_counter(line, "completed", out.completed) &&
           read_counter(line, "failed", out.failed) &&
           read_counter(line, "batches", out.batches) &&
           read_counter(line, "cache_hits", out.cache_hits) &&
           read_counter(line, "cache_evictions", out.cache_evictions) &&
           read_counter(line, "cache_size", out.cache_size);
}

#ifdef BAYESFT_HAS_SOCKETS

struct EvalServer::Impl {
    const ServeConfig config;
    const std::vector<ServeTarget>& targets;

    int unix_fd = -1;
    int tcp_fd = -1;
    int bound_tcp_port = 0;
    int wake_read = -1;
    int wake_write = -1;

    std::thread io_thread;
    std::thread dispatch_thread;

    mutable std::mutex mutex;
    std::condition_variable queue_cv;
    /// Service accepting work; cleared by the `shutdown` verb (I/O loop
    /// then drains pending responses and exits) and by stop().
    bool running = false;
    /// Hard stop: both loops exit as soon as they observe it.
    bool stop_requested = false;

    /// One response slot per request, claimed in request order.  `line`
    /// and `ready` are guarded by `mutex` (the dispatch thread fills
    /// them); the deque itself is touched only by the I/O thread.
    struct Slot {
        std::string line;
        bool ready = false;
    };
    struct Connection {
        int fd = -1;
        std::string in;
        std::string out;
        std::deque<std::shared_ptr<Slot>> slots;
        std::uint64_t evals = 0;  ///< well-formed eval requests seen
        bool overlong = false;    ///< discarding until the next newline
        bool closed = false;
    };
    std::map<int, Connection> connections;  // I/O thread only

    struct Job {
        std::shared_ptr<Slot> slot;
        const ServeTarget* target = nullptr;
        core::ObjectiveConfig objective;  ///< variant's, with mode applied
        core::Alpha point;
        core::EvalContext context;
        std::uint64_t cseed = 0;
        std::uint64_t trial = 0;
    };
    std::deque<Job> queue;

    /// Cross-client LRU result cache: (bucket context key, point) ->
    /// utility of a *successful* evaluation.  Failures are never cached —
    /// same policy as the engine memo cache.
    struct LruEntry {
        std::uint64_t context = 0;
        core::Alpha point;
        double utility = 0.0;
    };
    std::list<LruEntry> lru;  // front = most recently used
    std::map<std::pair<std::uint64_t, core::Alpha>,
             std::list<LruEntry>::iterator>
        lru_index;

    ServeStats counters;
    core::EvaluationEngine engine;
    std::unique_ptr<core::RunStore> store;

    Impl(const ServeConfig& config_in,
         const std::vector<ServeTarget>& targets_in)
        : config(config_in),
          targets(targets_in),
          engine([&] {
              core::EngineConfig engine_config;
              engine_config.threads = config_in.threads;
              // The server's LRU is the authoritative cross-client cache;
              // the engine's map would be dropped on every bucket switch
              // anyway (it keeps one active context).  Within-batch
              // duplicate coalescing still applies unconditionally.
              engine_config.cache = false;
              engine_config.resilience = config_in.resilience;
              engine_config.chaos = config_in.chaos;
              return engine_config;
          }()) {}

    // ----- lifecycle ---------------------------------------------------

    void start() {
        ignore_sigpipe_once();
        int pipe_fds[2] = {-1, -1};
        if (::pipe(pipe_fds) != 0) {
            throw std::runtime_error("serve: cannot create wake pipe");
        }
        wake_read = pipe_fds[0];
        wake_write = pipe_fds[1];
        set_nonblocking(wake_read);
        set_nonblocking(wake_write);
        try {
            if (!config.socket_path.empty()) bind_unix();
            if (config.tcp_port != 0) bind_tcp();
        } catch (...) {
            close_endpoints();
            throw;
        }
        running = true;
        dispatch_thread = std::thread([this] { dispatch_loop(); });
        io_thread = std::thread([this] { io_loop(); });
    }

    void stop() {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop_requested = true;
            running = false;
        }
        queue_cv.notify_all();
        wake_io();
        if (io_thread.joinable()) io_thread.join();
        if (dispatch_thread.joinable()) dispatch_thread.join();
        close_endpoints();
    }

    void close_endpoints() {
        if (unix_fd >= 0) ::close(unix_fd);
        if (tcp_fd >= 0) ::close(tcp_fd);
        if (wake_read >= 0) ::close(wake_read);
        if (wake_write >= 0) ::close(wake_write);
        unix_fd = tcp_fd = wake_read = wake_write = -1;
        if (!config.socket_path.empty()) {
            std::error_code error;
            fs::remove(config.socket_path, error);
        }
    }

    void bind_unix() {
        unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unix_fd < 0) {
            throw std::runtime_error("serve: cannot create Unix socket");
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, config.socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr) != 0 ||
            ::listen(unix_fd, 64) != 0) {
            throw std::runtime_error("serve: cannot bind Unix socket '" +
                                     config.socket_path + "': " +
                                     std::strerror(errno));
        }
        set_nonblocking(unix_fd);
    }

    void bind_tcp() {
        tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd < 0) {
            throw std::runtime_error("serve: cannot create TCP socket");
        }
        const int one = 1;
        ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(std::max(config.tcp_port, 0)));
        if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr) != 0 ||
            ::listen(tcp_fd, 64) != 0) {
            throw std::runtime_error(
                "serve: cannot bind 127.0.0.1:" +
                std::to_string(config.tcp_port) + ": " +
                std::strerror(errno));
        }
        socklen_t len = sizeof addr;
        if (::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0) {
            bound_tcp_port = static_cast<int>(ntohs(addr.sin_port));
        }
        set_nonblocking(tcp_fd);
    }

    void wake_io() {
        if (wake_write >= 0) {
            const char byte = 'w';
            (void)!::write(wake_write, &byte, 1);
        }
    }

    // ----- I/O thread --------------------------------------------------

    void io_loop() {
        using Clock = std::chrono::steady_clock;
        bool draining = false;
        Clock::time_point drain_deadline{};
        std::vector<pollfd> fds;
        std::vector<int> fd_of;  // poll index -> connection fd (or -1)
        while (true) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (stop_requested) break;
                if (!running && !draining) {
                    // `shutdown` verb: answer everything in flight, then
                    // exit — bounded so a never-reading client cannot
                    // wedge the shutdown.
                    draining = true;
                    drain_deadline = Clock::now() + std::chrono::seconds(5);
                }
            }
            flush_connections();
            reap_closed();
            if (draining) {
                bool pending = false;
                for (const auto& [fd, conn] : connections) {
                    (void)fd;
                    if (!conn.slots.empty() || !conn.out.empty()) {
                        pending = true;
                        break;
                    }
                }
                if (!pending || Clock::now() > drain_deadline) break;
            }

            fds.clear();
            fd_of.clear();
            const auto add = [&](int fd, short events, int conn_fd) {
                fds.push_back({fd, events, 0});
                fd_of.push_back(conn_fd);
            };
            if (wake_read >= 0) add(wake_read, POLLIN, -1);
            if (unix_fd >= 0 && !draining) add(unix_fd, POLLIN, -1);
            if (tcp_fd >= 0 && !draining) add(tcp_fd, POLLIN, -1);
            for (const auto& [fd, conn] : connections) {
                short events = POLLIN;
                if (!conn.out.empty()) events |= POLLOUT;
                add(fd, events, fd);
            }
            if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) {
                break;
            }
            for (std::size_t i = 0; i < fds.size(); ++i) {
                if (fds[i].revents == 0) continue;
                const int fd = fds[i].fd;
                if (fd == wake_read) {
                    char sink[64];
                    while (::read(wake_read, sink, sizeof sink) > 0) {
                    }
                } else if (fd == unix_fd || fd == tcp_fd) {
                    accept_clients(fd);
                } else {
                    auto it = connections.find(fd_of[i]);
                    if (it == connections.end()) continue;
                    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                        handle_readable(it->second);
                    }
                    if (fds[i].revents & POLLOUT) try_write(it->second);
                }
            }
        }
        for (auto& [fd, conn] : connections) {
            (void)conn;
            ::close(fd);
        }
        connections.clear();
    }

    void accept_clients(int listener) {
        while (true) {
            const int fd = ::accept(listener, nullptr, nullptr);
            if (fd < 0) return;
            set_nonblocking(fd);
            Connection conn;
            conn.fd = fd;
            connections.emplace(fd, std::move(conn));
            std::lock_guard<std::mutex> lock(mutex);
            ++counters.connections;
        }
    }

    void handle_readable(Connection& conn) {
        char buffer[4096];
        while (true) {
            const ssize_t got = ::recv(conn.fd, buffer, sizeof buffer, 0);
            if (got > 0) {
                conn.in.append(buffer, static_cast<std::size_t>(got));
                if (got < static_cast<ssize_t>(sizeof buffer)) break;
            } else if (got == 0) {
                conn.closed = true;
                break;
            } else if (errno == EINTR) {
                continue;
            } else {
                if (errno != EAGAIN && errno != EWOULDBLOCK) {
                    conn.closed = true;
                }
                break;
            }
        }
        process_input(conn);
    }

    void process_input(Connection& conn) {
        while (true) {
            const std::size_t at = conn.in.find('\n');
            if (at == std::string::npos) {
                if (conn.overlong) {
                    conn.in.clear();
                } else if (conn.in.size() > kMaxRequestBytes) {
                    // Un-terminated flood: answer once, then discard up
                    // to the next newline so the connection re-syncs on
                    // the client's next request.
                    conn.overlong = true;
                    push_error(conn, "request line too long");
                    conn.in.clear();
                }
                break;
            }
            std::string line = conn.in.substr(0, at);
            conn.in.erase(0, at + 1);
            if (conn.overlong) {
                conn.overlong = false;  // the flood's terminator
                continue;
            }
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.size() > kMaxRequestBytes) {
                push_error(conn, "request line too long");
                continue;
            }
            handle_line(conn, line);
        }
    }

    std::shared_ptr<Slot> push_slot(Connection& conn) {
        auto slot = std::make_shared<Slot>();
        conn.slots.push_back(slot);
        return slot;
    }

    void push_error(Connection& conn, const std::string& reason) {
        auto slot = push_slot(conn);
        std::lock_guard<std::mutex> lock(mutex);
        slot->line = error_response(reason);
        slot->ready = true;
        ++counters.protocol_errors;
    }

    void handle_line(Connection& conn, const std::string& line) {
        Request request;
        std::string reason;
        if (!parse_request(line, request, reason)) {
            push_error(conn, reason);
            return;
        }
        auto slot = push_slot(conn);
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.requests;
        switch (request.kind) {
            case Request::Kind::kPing:
                slot->line = "pong";
                slot->ready = true;
                break;
            case Request::Kind::kStats: {
                ServeStats snapshot = counters;
                snapshot.cache_size = lru.size();
                slot->line = stats_json(snapshot);
                slot->ready = true;
                break;
            }
            case Request::Kind::kShutdown:
                slot->line = "ok";
                slot->ready = true;
                running = false;
                queue_cv.notify_all();
                break;
            case Request::Kind::kEval:
                handle_eval(conn, request.eval, slot);
                break;
        }
    }

    /// mutex held.
    void handle_eval(Connection& conn, const EvalRequest& request,
                     const std::shared_ptr<Slot>& slot) {
        const ServeTarget* target = find_target(targets, request.target);
        if (target == nullptr) {
            slot->line = error_response("unknown target");
            slot->ready = true;
            ++counters.protocol_errors;
            return;
        }
        const FaultVariant* variant =
            find_variant(*target, request.fault);
        if (variant == nullptr) {
            slot->line = error_response("unknown fault variant");
            slot->ready = true;
            ++counters.protocol_errors;
            return;
        }
        if (request.point.size() != target->bounds.dims()) {
            slot->line = error_response("coordinate dimension mismatch");
            slot->ready = true;
            ++counters.protocol_errors;
            return;
        }
        // The per-connection trial index counts every VALID eval request
        // — served, busy-rejected, or failed — so the index (and hence
        // the response bytes) of an accepted job never depends on how
        // earlier requests were disposed of; the client can predict it.
        const std::uint64_t trial = conn.evals++;
        const core::EvalContext context =
            bucket_context(*target, *variant, request.inference);
        const std::uint64_t cseed =
            core::candidate_seed(context, request.point);
        if (const double* utility = lru_find(context.key, request.point)) {
            ++counters.cache_hits;
            ++counters.completed;
            slot->line = core::RunStore::to_json(make_trial_record(
                *target, request.point, cseed, trial, *utility,
                TrialStatus::kOk));
            slot->ready = true;
            return;
        }
        if (queue.size() >= config.queue_depth) {
            slot->line = kBusyResponse;
            slot->ready = true;
            ++counters.busy;
            return;
        }
        Job job;
        job.slot = slot;
        job.target = target;
        job.objective = variant->objective;
        job.objective.inference = request.inference;
        job.point = request.point;
        job.context = context;
        job.cseed = cseed;
        job.trial = trial;
        queue.push_back(std::move(job));
        ++counters.accepted;
        queue_cv.notify_one();
    }

    /// Moves ready front slots into the write buffers and pushes bytes.
    void flush_connections() {
        for (auto& [fd, conn] : connections) {
            (void)fd;
            {
                std::lock_guard<std::mutex> lock(mutex);
                while (!conn.slots.empty() && conn.slots.front()->ready) {
                    conn.out += conn.slots.front()->line;
                    conn.out += '\n';
                    conn.slots.pop_front();
                }
            }
            if (!conn.out.empty()) try_write(conn);
        }
    }

    void try_write(Connection& conn) {
        while (!conn.out.empty()) {
            const ssize_t wrote = ::send(conn.fd, conn.out.data(),
                                         conn.out.size(), MSG_NOSIGNAL);
            if (wrote > 0) {
                conn.out.erase(0, static_cast<std::size_t>(wrote));
            } else if (wrote < 0 && errno == EINTR) {
                continue;
            } else {
                if (wrote < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    return;  // POLLOUT resumes the flush
                }
                conn.closed = true;
                return;
            }
        }
    }

    void reap_closed() {
        for (auto it = connections.begin(); it != connections.end();) {
            if (it->second.closed) {
                ::close(it->second.fd);
                // In-flight jobs keep their slots alive via shared_ptr;
                // their results are simply discarded.
                it = connections.erase(it);
            } else {
                ++it;
            }
        }
    }

    // ----- dispatch thread ---------------------------------------------

    void dispatch_loop() {
        std::unique_lock<std::mutex> lock(mutex);
        while (true) {
            queue_cv.wait(lock, [this] {
                return !queue.empty() || stop_requested;
            });
            if (stop_requested) break;
            // Coalesce queued jobs of the front job's bucket (same
            // context key <=> same target, fault variant, and mode) into
            // one engine batch.
            std::vector<Job> batch;
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
            const std::size_t limit = std::max<std::size_t>(
                std::size_t{1}, config.max_batch);
            for (auto it = queue.begin();
                 it != queue.end() && batch.size() < limit;) {
                if (it->context.key == batch.front().context.key) {
                    batch.push_back(std::move(*it));
                    it = queue.erase(it);
                } else {
                    ++it;
                }
            }
            // A batch completed while these jobs queued may have cached
            // their points already.
            std::vector<Job> live;
            for (Job& job : batch) {
                if (const double* utility =
                        lru_find(job.context.key, job.point)) {
                    ++counters.cache_hits;
                    finalize(job, *utility, TrialStatus::kOk);
                } else {
                    live.push_back(std::move(job));
                }
            }
            if (live.empty()) {
                wake_io();
                continue;
            }
            std::vector<core::Alpha> points;
            points.reserve(live.size());
            for (const Job& job : live) points.push_back(job.point);
            const ServeTarget* target = live.front().target;
            const core::ObjectiveConfig objective = live.front().objective;
            const core::EvalContext context = live.front().context;
            lock.unlock();
            const auto evaluator = [&](const core::Alpha& encoded,
                                       Rng& rng) {
                return target->evaluate(objective, encoded, rng);
            };
            const core::BatchOutcome outcome =
                engine.evaluate_points(points, evaluator, context);
            std::vector<core::RunRecord> records;
            records.reserve(live.size());
            lock.lock();
            ++counters.batches;
            counters.cache_hits += outcome.cache_hits;  // in-batch dedup
            for (std::size_t i = 0; i < live.size(); ++i) {
                const TrialStatus status = outcome.statuses[i];
                const double utility = outcome.utilities[i];
                records.push_back(make_trial_record(
                    *target, live[i].point, live[i].cseed, live[i].trial,
                    utility, status));
                finalize(live[i], utility, status,
                         core::RunStore::to_json(records.back()));
                if (status == TrialStatus::kOk) {
                    lru_insert(context.key, live[i].point, utility);
                }
            }
            wake_io();
            if (store) {
                lock.unlock();
                try {
                    store->append(target->name, records);
                } catch (const std::exception& error) {
                    log_warn() << "serve: run-store append failed: "
                               << error.what();
                }
                lock.lock();
            }
        }
    }

    /// mutex held.  Builds the response line when not supplied.
    void finalize(Job& job, double utility, TrialStatus status,
                  std::string line = {}) {
        if (line.empty()) {
            line = core::RunStore::to_json(
                make_trial_record(*job.target, job.point, job.cseed,
                                  job.trial, utility, status));
        }
        job.slot->line = std::move(line);
        job.slot->ready = true;
        ++counters.completed;
        if (status != TrialStatus::kOk) ++counters.failed;
    }

    // ----- LRU (mutex held) --------------------------------------------

    const double* lru_find(std::uint64_t context, const core::Alpha& point) {
        const auto it = lru_index.find({context, point});
        if (it == lru_index.end()) return nullptr;
        lru.splice(lru.begin(), lru, it->second);
        return &it->second->utility;
    }

    void lru_insert(std::uint64_t context, const core::Alpha& point,
                    double utility) {
        if (config.cache_entries == 0) return;
        const auto key = std::make_pair(context, point);
        const auto it = lru_index.find(key);
        if (it != lru_index.end()) {
            it->second->utility = utility;
            lru.splice(lru.begin(), lru, it->second);
            return;
        }
        lru.push_front({context, point, utility});
        lru_index[key] = lru.begin();
        if (lru.size() > config.cache_entries) {
            const auto last = std::prev(lru.end());
            lru_index.erase({last->context, last->point});
            lru.pop_back();
            ++counters.cache_evictions;
        }
    }
};

#endif  // BAYESFT_HAS_SOCKETS

EvalServer::EvalServer(ServeConfig config, std::vector<ServeTarget> targets)
    : config_(std::move(config)), targets_(std::move(targets)) {}

EvalServer::~EvalServer() { stop(); }

#ifdef BAYESFT_HAS_SOCKETS

void EvalServer::start() {
    if (impl_ != nullptr) {
        throw std::runtime_error("serve: server already started");
    }
    if (config_.socket_path.empty() && config_.tcp_port == 0) {
        throw std::runtime_error(
            "serve: configure --socket and/or --tcp (no endpoint given)");
    }
    // Fail fast, before anything listens: a server that dies at the
    // first append would have accepted (and lost) work.
    if (!config_.runs_dir.empty()) {
        core::RunStore(config_.runs_dir).probe();
    }
    if (!config_.socket_path.empty()) {
        validate_socket_path(config_.socket_path);
    }
    auto impl = std::make_unique<Impl>(config_, targets_);
    if (!config_.runs_dir.empty()) {
        impl->store = std::make_unique<core::RunStore>(config_.runs_dir);
    }
    impl->start();
    impl_ = impl.release();
}

void EvalServer::stop() {
    if (impl_ == nullptr) return;
    impl_->stop();
    delete impl_;
    impl_ = nullptr;
}

bool EvalServer::running() const {
    if (impl_ == nullptr) return false;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running;
}

ServeStats EvalServer::stats() const {
    if (impl_ == nullptr) return {};
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ServeStats snapshot = impl_->counters;
    snapshot.cache_size = impl_->lru.size();
    return snapshot;
}

int EvalServer::tcp_port() const {
    return impl_ == nullptr ? 0 : impl_->bound_tcp_port;
}

void EvalServer::validate_socket_path(const std::string& path) {
    if (path.empty()) {
        throw std::runtime_error("serve: empty socket path");
    }
    sockaddr_un probe_addr{};
    if (path.size() >= sizeof(probe_addr.sun_path)) {
        throw std::runtime_error(
            "serve: socket path '" + path +
            "' is too long for a Unix socket (max " +
            std::to_string(sizeof(probe_addr.sun_path) - 1) + " bytes)");
    }
    std::error_code error;
    if (fs::is_directory(path, error)) {
        throw std::runtime_error("serve: socket path '" + path +
                                 "' is a directory, not a socket");
    }
    if (fs::exists(path, error)) {
        if (!fs::is_socket(path, error)) {
            throw std::runtime_error(
                "serve: socket path '" + path +
                "' exists and is not a socket; refusing to replace it");
        }
        // Live or stale?  Only a connect() can tell.
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0) {
            probe_addr.sun_family = AF_UNIX;
            std::strncpy(probe_addr.sun_path, path.c_str(),
                         sizeof(probe_addr.sun_path) - 1);
            const bool live =
                ::connect(fd, reinterpret_cast<sockaddr*>(&probe_addr),
                          sizeof probe_addr) == 0;
            ::close(fd);
            if (live) {
                throw std::runtime_error(
                    "serve: socket '" + path +
                    "' is live (another server is answering on it)");
            }
        }
        fs::remove(path, error);
        if (error) {
            throw std::runtime_error("serve: cannot remove stale socket '" +
                                     path + "': " + error.message());
        }
    }
    // Parent-directory writability, probed with the append-mode idiom
    // that never truncates (core/runstore.hpp validate_output_file); the
    // probe file is removed again, leaving a bindable path.
    core::validate_output_file(path);
}

#else  // !BAYESFT_HAS_SOCKETS

void EvalServer::start() {
    throw std::runtime_error(
        "serve: POSIX sockets are unavailable on this platform");
}
void EvalServer::stop() {}
bool EvalServer::running() const { return false; }
ServeStats EvalServer::stats() const { return {}; }
int EvalServer::tcp_port() const { return 0; }
void EvalServer::validate_socket_path(const std::string&) {
    throw std::runtime_error(
        "serve: POSIX sockets are unavailable on this platform");
}

#endif  // BAYESFT_HAS_SOCKETS

}  // namespace bayesft::serve
