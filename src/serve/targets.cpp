#include "serve/targets.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/persist.hpp"
#include "data/dataset.hpp"
#include "data/toy.hpp"
#include "fault/zoo.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"

namespace bayesft::serve {

std::uint64_t serve_target_digest(const std::string& name,
                                  std::size_t dims) {
    std::uint64_t key =
        core::mix_key(0, std::string_view("bayesft-serve-target"));
    key = core::mix_key(key, std::string_view(name));
    return core::mix_key(key, static_cast<std::uint64_t>(dims));
}

std::uint64_t fault_variant_digest(std::uint64_t target_digest,
                                   const std::string& name,
                                   const core::ObjectiveConfig& objective) {
    std::uint64_t key = core::mix_key(target_digest, std::string_view(name));
    return core::mix_key(key, core::objective_digest(objective));
}

core::EvalContext bucket_context(const ServeTarget& target,
                                 const FaultVariant& variant,
                                 nn::InferenceMode mode) {
    // The requested numeric mode overrides the variant's default; the
    // digest folds the result, so float32 / int8 / int12 evaluations of
    // one variant live in distinct buckets with distinct seed streams.
    core::ObjectiveConfig objective = variant.objective;
    objective.inference = mode;
    core::EvalContext context;
    context.key = core::mix_key(target.digest,
                                core::objective_digest(objective));
    context.key =
        core::mix_key(context.key, std::string_view("bayesft-serve"));
    context.stamp = 0;  // self-contained evaluations: no evolving weights
    return context;
}

const ServeTarget* find_target(const std::vector<ServeTarget>& targets,
                               std::uint64_t digest) {
    for (const ServeTarget& target : targets) {
        if (target.digest == digest) return &target;
    }
    return nullptr;
}

const FaultVariant* find_variant(const ServeTarget& target,
                                 std::uint64_t digest) {
    for (const FaultVariant& variant : target.variants) {
        if (variant.digest == digest) return &variant;
    }
    return nullptr;
}

core::RunRecord make_trial_record(const ServeTarget& target,
                                  const core::Alpha& point,
                                  std::uint64_t cseed, std::uint64_t trial,
                                  double utility,
                                  TrialStatus status) {
    core::RunRecord record;
    record.kind = "trial";
    record.scenario = target.name;
    record.family = "serve";
    // The candidate seed doubles as the record's seed: it digests the
    // whole (target, variant, mode, point) identity, so stored lines
    // aggregate per bucket and the response is self-describing.
    record.seed = cseed;
    record.trial = trial;
    std::string encoded;
    for (const double value : point) {
        if (!encoded.empty()) encoded += ' ';
        encoded += core::format_bits(value);
    }
    record.point = std::move(encoded);
    record.objective = utility;
    record.status = trial_status_name(status);
    record.build = core::build_stamp();
    return record;
}

std::vector<std::string> reference_responses(
    const ServeTarget& target, const FaultVariant& variant,
    nn::InferenceMode mode, const std::vector<core::Alpha>& points,
    const std::vector<std::uint64_t>& trials) {
    if (points.size() != trials.size()) {
        throw std::invalid_argument(
            "reference_responses: points/trials size mismatch");
    }
    if (points.empty()) return {};
    core::ObjectiveConfig objective = variant.objective;
    objective.inference = mode;
    core::EngineConfig config;
    config.cache = false;
    config.chaos = {};  // the reference is always the clean run
    core::EvaluationEngine engine(config);
    const core::EvalContext context = bucket_context(target, variant, mode);
    const auto evaluator = [&](const core::Alpha& encoded, Rng& rng) {
        return target.evaluate(objective, encoded, rng);
    };
    const core::BatchOutcome outcome =
        engine.evaluate_points(points, evaluator, context);
    std::vector<std::string> lines;
    lines.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::uint64_t cseed = core::candidate_seed(context, points[i]);
        lines.push_back(core::RunStore::to_json(
            make_trial_record(target, points[i], cseed, trials[i],
                              outcome.utilities[i], outcome.statuses[i])));
    }
    return lines;
}

std::vector<ServeTarget> builtin_targets(bool quick) {
    std::vector<ServeTarget> targets;

    // --- toy_mlp: the CI toy scenario as a served target.  Same scale as
    // the registry's toy_arch_blobs (blobs data, 12-wide MLP family,
    // 1-epoch training) but its own fixed data seeds: a serve bucket is a
    // standing address, not a per-run configuration.
    {
        Rng data_rng(221);
        const data::Dataset full =
            data::make_blobs(quick ? 180 : 300, 3, 4.0, 0.6, data_rng);
        Rng split_rng(223);
        auto data = std::make_shared<const data::TrainTestSplit>(
            data::split(full, 0.4, split_rng));

        models::MlpOptions base;
        base.input_features = 2;
        base.hidden = 12;
        base.classes = 3;
        auto family = std::make_shared<const models::ArchFamily>(
            models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                    /*max_dropout_rate=*/0.5));
        nn::TrainConfig train;
        train.epochs = 1;
        train.batch_size = 32;
        train.learning_rate = 0.05;

        ServeTarget target;
        target.name = "toy_mlp";
        target.bounds = family->space.encoded_bounds();
        target.digest =
            serve_target_digest(target.name, target.bounds.dims());
        target.evaluate = [data, family, train](
                              const core::ObjectiveConfig& objective,
                              const core::Alpha& encoded, Rng& rng) {
            const core::ParamPoint point = family->space.decode(encoded);
            models::ModelHandle model =
                family->build(family->space, point, rng);
            nn::train_classifier(*model.net, data->train.images,
                                 data->train.labels, train, rng);
            return core::fault_utility(*model.net, data->test.images,
                                       data->test.labels, objective, rng);
        };

        core::ObjectiveConfig drift;
        drift.sigmas = {0.5};
        drift.mc_samples = 1;
        target.variants.push_back(
            {"drift", fault_variant_digest(target.digest, "drift", drift),
             drift});

        core::ObjectiveConfig stuckat;
        stuckat.faults = {
            std::make_shared<const fault::StuckAtFault>(0.05)};
        stuckat.mc_samples = 1;
        target.variants.push_back(
            {"stuckat",
             fault_variant_digest(target.digest, "stuckat", stuckat),
             stuckat});

        core::ObjectiveConfig dac12;
        dac12.faults = {std::shared_ptr<const fault::FaultModel>(
            fault::dac12_deploy(0.3))};
        dac12.mc_samples = 1;
        target.variants.push_back(
            {"dac12", fault_variant_digest(target.digest, "dac12", dac12),
             dac12});

        targets.push_back(std::move(target));
    }

    // --- quadratic: closed-form analytic objective.  An evaluation costs
    // microseconds, so the fuzz suite and the load generator can push
    // thousands of jobs without training a single network.
    {
        ServeTarget target;
        target.name = "quadratic";
        target.bounds = bayesopt::BoxBounds::uniform(3, 0.0, 1.0);
        target.digest =
            serve_target_digest(target.name, target.bounds.dims());
        target.evaluate = [](const core::ObjectiveConfig& objective,
                             const core::Alpha& p, Rng& rng) {
            const double noise =
                objective.sigmas.empty() ? 0.0 : objective.sigmas.front();
            double value = std::sin(7.0 * p[0]) + 0.5 * p[1] -
                           0.25 * (p[2] - 0.3) * (p[2] - 0.3);
            return value + 0.01 * noise * rng.uniform();
        };

        core::ObjectiveConfig smooth;
        smooth.sigmas = {0.05};
        smooth.mc_samples = 1;
        target.variants.push_back(
            {"smooth", fault_variant_digest(target.digest, "smooth", smooth),
             smooth});

        core::ObjectiveConfig noisy;
        noisy.sigmas = {0.5};
        noisy.mc_samples = 1;
        target.variants.push_back(
            {"noisy", fault_variant_digest(target.digest, "noisy", noisy),
             noisy});

        targets.push_back(std::move(target));
    }

    return targets;
}

}  // namespace bayesft::serve
