#pragma once
// The model zoo: every architecture evaluated in the paper's Fig. 2 and
// Fig. 3, scaled for CPU training on 16x16 synthetic datasets (DESIGN.md
// section 2 documents the scaling).
//
// Every factory returns a ModelHandle whose `dropout_sites` are the
// BayesFT search space: one runtime-adjustable Dropout layer per DNN layer
// (except the output layer), inserted exactly as Sec. III-B prescribes.
// With all rates at 0 the dropout layers are identities, so the same
// handle serves as the ERM baseline.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/param_space.hpp"
#include "nn/dropout.hpp"
#include "nn/module.hpp"
#include "utils/rng.hpp"

namespace bayesft::models {

/// An instantiated network plus handles to its searchable dropout layers.
struct ModelHandle {
    std::unique_ptr<nn::Module> net;
    std::vector<nn::Dropout*> dropout_sites;
    std::string name;

    /// Installs a per-site dropout-rate vector alpha (size must match).
    void set_dropout_rates(const std::vector<double>& alpha);
    /// Current rates, in site order.
    std::vector<double> dropout_rates() const;

    /// Deep replica of the network (Module::clone) with `dropout_sites`
    /// re-located inside the copy by structural position, so a replica can
    /// receive its own candidate alpha.  Throws std::runtime_error if any
    /// layer lacks clone() support.
    ModelHandle clone() const;
};

/// Normalization choice for the Fig. 2(b) ablation.
enum class NormKind { kNone, kBatch, kLayer, kInstance, kGroup };

/// Dropout flavour for the Fig. 2(a) ablation.
enum class DropoutKind { kNone, kStandard, kAlpha };

/// Options for the MLP family (Fig. 2 ablations, Fig. 3(a), Fig. 3(i)).
struct MlpOptions {
    std::size_t input_features = 256;
    std::size_t hidden = 64;
    std::size_t hidden_layers = 2;  ///< 3-layer MLP == 2 hidden + output
    std::size_t classes = 10;
    std::string activation = "relu";
    NormKind norm = NormKind::kNone;
    DropoutKind dropout = DropoutKind::kStandard;
    double initial_dropout_rate = 0.0;
};

/// Multi-layer perceptron over flattened inputs [N, F] (a Flatten layer is
/// prepended, so NCHW images can be fed directly).
ModelHandle make_mlp(const MlpOptions& options, Rng& rng);

/// LeNet-5-style convnet for [N, 1, 16, 16] digits (Fig. 3(b)).
ModelHandle make_lenet5(std::size_t in_channels, std::size_t image_size,
                        std::size_t classes, Rng& rng);

/// AlexNet-S: scaled AlexNet for [N, 3, 16, 16] (Fig. 3(c)).
ModelHandle make_alexnet_s(std::size_t classes, Rng& rng);

/// VGG11-S: scaled VGG-11 for [N, 3, 16, 16] (Fig. 3(e)).
ModelHandle make_vgg11_s(std::size_t classes, Rng& rng);

/// ResNet18-S: scaled post-activation ResNet for [N, 3, 16, 16]
/// (Fig. 3(d)).  `norm` defaults to batch norm as in torchvision.
ModelHandle make_resnet18_s(std::size_t classes, Rng& rng,
                            NormKind norm = NormKind::kBatch);

/// PreAct-ResNet-S with `blocks_per_stage` pre-activation blocks in each of
/// three stages (16/32/64 channels).  Depth substitutes for Fig. 3(f)-(h):
/// 1 -> "PreAct-18", 2 -> "PreAct-50", 4 -> "PreAct-152" scaling.
ModelHandle make_preact_resnet_s(std::size_t blocks_per_stage,
                                 std::size_t classes, Rng& rng,
                                 NormKind norm = NormKind::kBatch);

/// Spatial-transformer classifier for [N, 3, 16, 16] traffic signs
/// (Fig. 3(i)): STN front-end + small convnet.
ModelHandle make_stn_classifier(std::size_t classes, Rng& rng);

// ---------------------------------------------------------------------------
// Parameterized architecture families: a typed search space plus a builder
// mapping each ParamPoint to a concrete model.  These make the axes the
// paper's Fig. 2 sweeps by hand-enumeration (normalization, depth,
// activation) first-class searchable dimensions next to the dropout rates,
// for the `archsearch` scenario family (core::arch_search).
// ---------------------------------------------------------------------------

/// A typed search space and the builder that realizes its points.  The
/// builder must be a pure function of (point, rng): identical inputs yield
/// bit-identical models, which arch_search relies on to re-materialize its
/// winner.
struct ArchFamily {
    std::string name;
    core::ParamSpace space;
    std::function<ModelHandle(const core::ParamSpace& space,
                              const core::ParamPoint& point, Rng& rng)>
        build;
};

/// MLP family over the joint Fig. 2(b)/(c)/(d) axes: categorical "norm"
/// (none/batch/layer/instance/group) and "activation"
/// (relu/elu/gelu/leaky_relu), integer "hidden_layers" in
/// [1, max_hidden_layers], and one continuous "dropout<i>" rate in
/// [0, max_dropout_rate] per potential hidden layer (rates beyond the
/// chosen depth are inert).  `base` supplies the fixed shape
/// (input_features, hidden width, classes); its norm/activation/depth/
/// dropout fields are overridden per point.
ArchFamily mlp_arch_family(const MlpOptions& base,
                           std::size_t max_hidden_layers,
                           double max_dropout_rate);

/// Pre-activation ResNet family (the residual path): integer
/// "blocks_per_stage" in [1, 3], categorical "norm" (batch/group/none), and
/// one shared continuous "dropout" rate installed at every site.
ArchFamily preact_arch_family(std::size_t classes, double max_dropout_rate);

/// Spatial-transformer family (the STN path): integer "head_width" in
/// [32, 96], categorical "pool" (max/avg) for the trunk downsampling, and
/// per-site continuous "dropout0..2" rates.
ArchFamily stn_arch_family(std::size_t classes, double max_dropout_rate);

}  // namespace bayesft::models
