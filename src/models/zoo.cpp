#include "models/zoo.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/residual.hpp"
#include "nn/stn.hpp"

namespace bayesft::models {

void ModelHandle::set_dropout_rates(const std::vector<double>& alpha) {
    if (alpha.size() != dropout_sites.size()) {
        throw std::invalid_argument(
            "ModelHandle::set_dropout_rates: expected " +
            std::to_string(dropout_sites.size()) + " rates, got " +
            std::to_string(alpha.size()));
    }
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        dropout_sites[i]->set_rate(alpha[i]);
    }
}

std::vector<double> ModelHandle::dropout_rates() const {
    std::vector<double> rates;
    rates.reserve(dropout_sites.size());
    for (const nn::Dropout* site : dropout_sites) {
        rates.push_back(site->rate());
    }
    return rates;
}

ModelHandle ModelHandle::clone() const {
    if (!net) {
        throw std::runtime_error("ModelHandle::clone: empty handle");
    }
    ModelHandle copy;
    copy.name = name;
    copy.net = net->clone();
    if (!copy.net) {
        throw std::runtime_error("ModelHandle::clone: model '" + name +
                                 "' has a layer without clone() support");
    }
    // clone() preserves structure, so dropout layers correspond by DFS
    // position; map each registered site through that correspondence.
    const std::vector<nn::Dropout*> original =
        nn::collect_dropout_layers(*net);
    const std::vector<nn::Dropout*> cloned =
        nn::collect_dropout_layers(*copy.net);
    if (original.size() != cloned.size()) {
        throw std::runtime_error(
            "ModelHandle::clone: dropout layer count mismatch in replica");
    }
    copy.dropout_sites.reserve(dropout_sites.size());
    for (nn::Dropout* site : dropout_sites) {
        const auto it = std::find(original.begin(), original.end(), site);
        if (it == original.end()) {
            throw std::runtime_error(
                "ModelHandle::clone: registered dropout site not reachable "
                "via collect_children traversal");
        }
        copy.dropout_sites.push_back(
            cloned[static_cast<std::size_t>(it - original.begin())]);
    }
    return copy;
}

namespace {

/// Norm layer for `channels`, or nullptr for NormKind::kNone.
std::unique_ptr<nn::Module> make_norm(NormKind kind, std::size_t channels) {
    switch (kind) {
        case NormKind::kNone:
            return nullptr;
        case NormKind::kBatch:
            return std::make_unique<nn::BatchNorm>(channels);
        case NormKind::kLayer:
            return std::make_unique<nn::LayerNorm>(channels);
        case NormKind::kInstance:
            return std::make_unique<nn::InstanceNorm>(channels);
        case NormKind::kGroup:
            return std::make_unique<nn::GroupNorm>(
                channels % 4 == 0 ? 4 : 1, channels);
    }
    throw std::invalid_argument("make_norm: bad kind");
}

/// Appends a searchable dropout site to `seq` and registers its handle.
void add_site(nn::Sequential& seq, ModelHandle& handle, Rng& rng,
              double rate = 0.0) {
    handle.dropout_sites.push_back(
        seq.emplace<nn::Dropout>(rate, rng.split()()));
}

/// Conv + optional norm + ReLU convenience used by the conv families.
void add_conv_relu(nn::Sequential& seq, std::size_t in, std::size_t out,
                   std::size_t kernel, std::size_t stride, std::size_t pad,
                   NormKind norm, Rng& rng) {
    seq.emplace<nn::Conv2d>(in, out, kernel, stride, pad, rng);
    if (auto n = make_norm(norm, out)) seq.add(std::move(n));
    seq.emplace<nn::ReLU>();
}

/// A post-activation basic residual block with a dropout site between the
/// two convolutions.  Output activation (ReLU) is appended by the caller.
std::unique_ptr<nn::Module> make_basic_block(std::size_t in, std::size_t out,
                                             std::size_t stride,
                                             NormKind norm, Rng& rng,
                                             ModelHandle& handle) {
    auto main = std::make_unique<nn::Sequential>();
    main->emplace<nn::Conv2d>(in, out, 3, stride, 1, rng);
    if (auto n = make_norm(norm, out)) main->add(std::move(n));
    main->emplace<nn::ReLU>();
    handle.dropout_sites.push_back(
        main->emplace<nn::Dropout>(0.0, rng.split()()));
    main->emplace<nn::Conv2d>(out, out, 3, 1, 1, rng);
    if (auto n = make_norm(norm, out)) main->add(std::move(n));

    std::unique_ptr<nn::Module> shortcut;
    if (in != out || stride != 1) {
        auto sc = std::make_unique<nn::Sequential>();
        sc->emplace<nn::Conv2d>(in, out, 1, stride, 0, rng);
        if (auto n = make_norm(norm, out)) sc->add(std::move(n));
        shortcut = std::move(sc);
    }
    return std::make_unique<nn::Residual>(std::move(main),
                                          std::move(shortcut));
}

/// A pre-activation residual block (He et al. 2016): norm/act precede each
/// conv; the shortcut is untouched identity (or a 1x1 conv on downsample).
std::unique_ptr<nn::Module> make_preact_block(std::size_t in, std::size_t out,
                                              std::size_t stride,
                                              NormKind norm, Rng& rng,
                                              ModelHandle& handle) {
    auto main = std::make_unique<nn::Sequential>();
    if (auto n = make_norm(norm, in)) main->add(std::move(n));
    main->emplace<nn::ReLU>();
    main->emplace<nn::Conv2d>(in, out, 3, stride, 1, rng);
    if (auto n = make_norm(norm, out)) main->add(std::move(n));
    main->emplace<nn::ReLU>();
    handle.dropout_sites.push_back(
        main->emplace<nn::Dropout>(0.0, rng.split()()));
    main->emplace<nn::Conv2d>(out, out, 3, 1, 1, rng);

    std::unique_ptr<nn::Module> shortcut;
    if (in != out || stride != 1) {
        auto sc = std::make_unique<nn::Sequential>();
        sc->emplace<nn::Conv2d>(in, out, 1, stride, 0, rng);
        shortcut = std::move(sc);
    }
    return std::make_unique<nn::Residual>(std::move(main),
                                          std::move(shortcut));
}

}  // namespace

ModelHandle make_mlp(const MlpOptions& options, Rng& rng) {
    if (options.hidden_layers == 0) {
        throw std::invalid_argument("make_mlp: need at least one hidden layer");
    }
    ModelHandle handle;
    handle.name = "MLP-" + std::to_string(options.hidden_layers + 1) + "layer";
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Flatten>();
    std::size_t width = options.input_features;
    for (std::size_t i = 0; i < options.hidden_layers; ++i) {
        seq->emplace<nn::Linear>(width, options.hidden, rng);
        if (auto n = make_norm(options.norm, options.hidden)) {
            seq->add(std::move(n));
        }
        seq->add(nn::make_activation(options.activation));
        switch (options.dropout) {
            case DropoutKind::kNone:
                break;
            case DropoutKind::kStandard:
                handle.dropout_sites.push_back(seq->emplace<nn::Dropout>(
                    options.initial_dropout_rate, rng.split()()));
                break;
            case DropoutKind::kAlpha:
                // Alpha dropout has a fixed rate (Fig. 2(a) ablation only) —
                // it is not registered as a searchable site.
                seq->emplace<nn::AlphaDropout>(options.initial_dropout_rate,
                                               rng.split()());
                break;
        }
        width = options.hidden;
    }
    seq->emplace<nn::Linear>(width, options.classes, rng);
    handle.net = std::move(seq);
    return handle;
}

ModelHandle make_lenet5(std::size_t in_channels, std::size_t image_size,
                        std::size_t classes, Rng& rng) {
    if (image_size % 4 != 0 || image_size < 8) {
        throw std::invalid_argument("make_lenet5: image_size must be 4k >= 8");
    }
    ModelHandle handle;
    handle.name = "LeNet5";
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2d>(in_channels, 6, 5, 1, 2, rng);
    seq->emplace<nn::ReLU>();
    seq->emplace<nn::AvgPool2d>(2);
    add_site(*seq, handle, rng);
    seq->emplace<nn::Conv2d>(6, 16, 3, 1, 1, rng);
    seq->emplace<nn::ReLU>();
    seq->emplace<nn::AvgPool2d>(2);
    add_site(*seq, handle, rng);
    seq->emplace<nn::Flatten>();
    const std::size_t flat = 16 * (image_size / 4) * (image_size / 4);
    seq->emplace<nn::Linear>(flat, 64, rng);
    seq->emplace<nn::ReLU>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(64, 32, rng);
    seq->emplace<nn::ReLU>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(32, classes, rng);
    handle.net = std::move(seq);
    return handle;
}

ModelHandle make_alexnet_s(std::size_t classes, Rng& rng) {
    ModelHandle handle;
    handle.name = "AlexNet-S";
    auto seq = std::make_unique<nn::Sequential>();
    add_conv_relu(*seq, 3, 16, 3, 1, 1, NormKind::kNone, rng);  // 16x16
    seq->emplace<nn::MaxPool2d>(2);                             // 8x8
    add_site(*seq, handle, rng);
    add_conv_relu(*seq, 16, 32, 3, 1, 1, NormKind::kNone, rng);
    seq->emplace<nn::MaxPool2d>(2);  // 4x4
    add_site(*seq, handle, rng);
    add_conv_relu(*seq, 32, 48, 3, 1, 1, NormKind::kNone, rng);
    add_site(*seq, handle, rng);
    add_conv_relu(*seq, 48, 32, 3, 1, 1, NormKind::kNone, rng);
    seq->emplace<nn::MaxPool2d>(2);  // 2x2
    add_site(*seq, handle, rng);
    seq->emplace<nn::Flatten>();
    seq->emplace<nn::Linear>(32 * 2 * 2, 64, rng);
    seq->emplace<nn::ReLU>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(64, classes, rng);
    handle.net = std::move(seq);
    return handle;
}

ModelHandle make_vgg11_s(std::size_t classes, Rng& rng) {
    ModelHandle handle;
    handle.name = "VGG11-S";
    auto seq = std::make_unique<nn::Sequential>();
    struct Stage {
        std::size_t in;
        std::size_t out;
        bool pool;
    };
    // Scaled VGG-11 plan: 6 convs, 4 pools (16x16 -> 1x1).
    const Stage stages[] = {{3, 8, true},    {8, 16, true},
                            {16, 32, false}, {32, 32, true},
                            {32, 64, false}, {64, 64, true}};
    for (const Stage& st : stages) {
        add_conv_relu(*seq, st.in, st.out, 3, 1, 1, NormKind::kNone, rng);
        if (st.pool) seq->emplace<nn::MaxPool2d>(2);
        add_site(*seq, handle, rng);
    }
    seq->emplace<nn::Flatten>();  // 64 * 1 * 1
    seq->emplace<nn::Linear>(64, 64, rng);
    seq->emplace<nn::ReLU>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(64, classes, rng);
    handle.net = std::move(seq);
    return handle;
}

ModelHandle make_resnet18_s(std::size_t classes, Rng& rng, NormKind norm) {
    ModelHandle handle;
    handle.name = "ResNet18-S";
    auto seq = std::make_unique<nn::Sequential>();
    add_conv_relu(*seq, 3, 16, 3, 1, 1, norm, rng);  // stem, 16x16
    add_site(*seq, handle, rng);
    const struct {
        std::size_t in, out, stride;
    } blocks[] = {{16, 16, 1}, {16, 16, 1}, {16, 32, 2},
                  {32, 32, 1}, {32, 64, 2}, {64, 64, 1}};
    for (const auto& b : blocks) {
        seq->add(make_basic_block(b.in, b.out, b.stride, norm, rng, handle));
        seq->emplace<nn::ReLU>();
    }
    seq->emplace<nn::GlobalAvgPool>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(64, classes, rng);
    handle.net = std::move(seq);
    return handle;
}

ModelHandle make_preact_resnet_s(std::size_t blocks_per_stage,
                                 std::size_t classes, Rng& rng,
                                 NormKind norm) {
    if (blocks_per_stage == 0) {
        throw std::invalid_argument("make_preact_resnet_s: zero blocks");
    }
    ModelHandle handle;
    handle.name = "PreActResNet-S" +
                  std::to_string(2 + 6 * blocks_per_stage);  // conv count
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2d>(3, 16, 3, 1, 1, rng);  // stem (no act: preact)
    add_site(*seq, handle, rng);
    const std::size_t widths[] = {16, 32, 64};
    std::size_t in = 16;
    for (std::size_t stage = 0; stage < 3; ++stage) {
        const std::size_t out = widths[stage];
        for (std::size_t b = 0; b < blocks_per_stage; ++b) {
            const std::size_t stride = (stage > 0 && b == 0) ? 2 : 1;
            seq->add(make_preact_block(in, out, stride, norm, rng, handle));
            in = out;
        }
    }
    if (auto n = make_norm(norm, in)) seq->add(std::move(n));
    seq->emplace<nn::ReLU>();
    seq->emplace<nn::GlobalAvgPool>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(in, classes, rng);
    handle.net = std::move(seq);
    return handle;
}

namespace {

/// The STN classifier with its architectural knobs exposed: classifier-head
/// width and trunk pooling flavour (parameterized for stn_arch_family;
/// make_stn_classifier pins the historical values).
ModelHandle make_stn_variant(std::size_t classes, std::size_t head_width,
                             bool max_pool, Rng& rng) {
    ModelHandle handle;
    handle.name = "STN-lite";

    // Localization net: [N, 3, 16, 16] -> [N, 6] affine parameters,
    // initialized to the identity transform (zero weights, identity bias).
    auto loc = std::make_unique<nn::Sequential>();
    loc->emplace<nn::Conv2d>(3, 8, 3, 2, 1, rng);  // 8x8
    loc->emplace<nn::ReLU>();
    loc->emplace<nn::Conv2d>(8, 8, 3, 2, 1, rng);  // 4x4
    loc->emplace<nn::ReLU>();
    loc->emplace<nn::Flatten>();
    loc->emplace<nn::Linear>(8 * 4 * 4, 32, rng);
    loc->emplace<nn::ReLU>();
    auto* head = loc->emplace<nn::Linear>(32, 6, rng);
    head->weight().value.fill(0.0F);
    head->bias().value = Tensor({6}, {1.0F, 0.0F, 0.0F, 0.0F, 1.0F, 0.0F});

    auto add_pool = [&](nn::Sequential& seq) {
        if (max_pool) {
            seq.emplace<nn::MaxPool2d>(2);
        } else {
            seq.emplace<nn::AvgPool2d>(2);
        }
    };
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::SpatialTransformer>(std::move(loc));
    add_conv_relu(*seq, 3, 16, 3, 1, 1, NormKind::kNone, rng);
    add_pool(*seq);  // 8x8
    add_site(*seq, handle, rng);
    add_conv_relu(*seq, 16, 32, 3, 1, 1, NormKind::kNone, rng);
    add_pool(*seq);  // 4x4
    add_site(*seq, handle, rng);
    seq->emplace<nn::Flatten>();
    seq->emplace<nn::Linear>(32 * 4 * 4, head_width, rng);
    seq->emplace<nn::ReLU>();
    add_site(*seq, handle, rng);
    seq->emplace<nn::Linear>(head_width, classes, rng);
    handle.net = std::move(seq);
    return handle;
}

}  // namespace

ModelHandle make_stn_classifier(std::size_t classes, Rng& rng) {
    return make_stn_variant(classes, 64, /*max_pool=*/true, rng);
}

// ------------------------------------------------------------------------
// Parameterized architecture families
// ------------------------------------------------------------------------

namespace {

NormKind norm_from_name(const std::string& name) {
    if (name == "none") return NormKind::kNone;
    if (name == "batch") return NormKind::kBatch;
    if (name == "layer") return NormKind::kLayer;
    if (name == "instance") return NormKind::kInstance;
    if (name == "group") return NormKind::kGroup;
    throw std::invalid_argument("norm_from_name: unknown norm '" + name +
                                "'");
}

}  // namespace

ArchFamily mlp_arch_family(const MlpOptions& base,
                           std::size_t max_hidden_layers,
                           double max_dropout_rate) {
    if (max_hidden_layers == 0) {
        throw std::invalid_argument("mlp_arch_family: zero max depth");
    }
    ArchFamily family;
    family.name = "mlp-arch";
    family.space.add_categorical(
        "norm", {"none", "batch", "layer", "instance", "group"});
    family.space.add_categorical("activation",
                                 {"relu", "elu", "gelu", "leaky_relu"});
    family.space.add_integer("hidden_layers", 1,
                             static_cast<std::int64_t>(max_hidden_layers));
    for (std::size_t i = 0; i < max_hidden_layers; ++i) {
        family.space.add_continuous("dropout" + std::to_string(i), 0.0,
                                    max_dropout_rate);
    }
    family.build = [base](const core::ParamSpace& space,
                          const core::ParamPoint& point, Rng& rng) {
        MlpOptions options = base;
        options.norm = norm_from_name(space.category(point, "norm"));
        options.activation = space.category(point, "activation");
        options.hidden_layers =
            static_cast<std::size_t>(space.integer(point, "hidden_layers"));
        options.dropout = DropoutKind::kStandard;
        options.initial_dropout_rate = 0.0;
        ModelHandle handle = make_mlp(options, rng);
        // Per-layer rates: the first hidden_layers dropout dims; dims beyond
        // the chosen depth are inert by construction.
        std::vector<double> rates;
        rates.reserve(handle.dropout_sites.size());
        for (std::size_t i = 0; i < handle.dropout_sites.size(); ++i) {
            rates.push_back(
                space.real(point, "dropout" + std::to_string(i)));
        }
        handle.set_dropout_rates(rates);
        return handle;
    };
    return family;
}

ArchFamily preact_arch_family(std::size_t classes, double max_dropout_rate) {
    ArchFamily family;
    family.name = "preact-arch";
    family.space.add_integer("blocks_per_stage", 1, 3);
    family.space.add_categorical("norm", {"batch", "group", "none"});
    family.space.add_continuous("dropout", 0.0, max_dropout_rate);
    family.build = [classes](const core::ParamSpace& space,
                             const core::ParamPoint& point, Rng& rng) {
        const auto blocks = static_cast<std::size_t>(
            space.integer(point, "blocks_per_stage"));
        const NormKind norm =
            norm_from_name(space.category(point, "norm"));
        ModelHandle handle =
            make_preact_resnet_s(blocks, classes, rng, norm);
        handle.set_dropout_rates(std::vector<double>(
            handle.dropout_sites.size(), space.real(point, "dropout")));
        return handle;
    };
    return family;
}

ArchFamily stn_arch_family(std::size_t classes, double max_dropout_rate) {
    ArchFamily family;
    family.name = "stn-arch";
    family.space.add_integer("head_width", 32, 96);
    family.space.add_categorical("pool", {"max", "avg"});
    for (std::size_t i = 0; i < 3; ++i) {
        family.space.add_continuous("dropout" + std::to_string(i), 0.0,
                                    max_dropout_rate);
    }
    family.build = [classes](const core::ParamSpace& space,
                             const core::ParamPoint& point, Rng& rng) {
        ModelHandle handle = make_stn_variant(
            classes,
            static_cast<std::size_t>(space.integer(point, "head_width")),
            space.category(point, "pool") == "max", rng);
        std::vector<double> rates;
        for (std::size_t i = 0; i < handle.dropout_sites.size(); ++i) {
            rates.push_back(
                space.real(point, "dropout" + std::to_string(i)));
        }
        handle.set_dropout_rates(rates);
        return handle;
    };
    return family;
}

}  // namespace bayesft::models
