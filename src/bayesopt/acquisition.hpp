#pragma once
// Acquisition functions: given the GP posterior at a candidate, score how
// promising the candidate is.  The paper's Algorithm 1 (line 9) selects
// the argmax of the posterior itself — i.e. pure exploitation of the
// surrogate mean; EI and UCB are standard alternatives used in the
// `ablation_bo_vs_random` bench.

#include <memory>
#include <string>

#include "bayesopt/gp.hpp"

namespace bayesft::bayesopt {

/// Scores a candidate from its posterior; higher is better.
class Acquisition {
public:
    virtual ~Acquisition() = default;
    Acquisition() = default;
    Acquisition(const Acquisition&) = delete;
    Acquisition& operator=(const Acquisition&) = delete;

    /// `best_observed` is the incumbent objective value (max over trials).
    virtual double score(const Posterior& posterior,
                         double best_observed) const = 0;
    virtual std::string describe() const = 0;
};

/// The paper's rule: maximize the surrogate posterior mean.
class PosteriorMean : public Acquisition {
public:
    double score(const Posterior& posterior, double) const override;
    std::string describe() const override { return "PosteriorMean"; }
};

/// Expected improvement over the incumbent (with exploration jitter xi).
class ExpectedImprovement : public Acquisition {
public:
    explicit ExpectedImprovement(double xi = 0.01);

    double score(const Posterior& posterior,
                 double best_observed) const override;
    std::string describe() const override;

private:
    double xi_;
};

/// Upper confidence bound: mean + beta * stddev.
class UpperConfidenceBound : public Acquisition {
public:
    explicit UpperConfidenceBound(double beta = 2.0);

    double score(const Posterior& posterior, double) const override;
    std::string describe() const override;

private:
    double beta_;
};

/// Factory from configuration strings: "posterior_mean", "ei", "ucb".
std::unique_ptr<Acquisition> make_acquisition(const std::string& kind);

}  // namespace bayesft::bayesopt
