#pragma once
// Experimental-design utilities for the BO loop:
//   - Latin hypercube sampling for the initial trials (space-filling
//     coverage of the alpha box, better than i.i.d. uniform at tiny
//     budgets), and
//   - kernel hyperparameter selection by log marginal likelihood (the
//     paper's Eq. 9 kernel has free parameters k_0..k_d; this picks the
//     isotropic inverse length scale from a candidate grid).

#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "bayesopt/kernel.hpp"
#include "utils/rng.hpp"

namespace bayesft::bayesopt {

/// `n` points covering `bounds` with one sample per axis stratum
/// (classic Latin hypercube: each dimension's strata are permuted
/// independently).
std::vector<Point> latin_hypercube(std::size_t n, const BoxBounds& bounds,
                                   Rng& rng);

/// Fits a GP with an isotropic ARD-SE kernel for every candidate inverse
/// length scale and returns the candidate with the highest log marginal
/// likelihood on (xs, ys).  Requires non-empty candidates and >= 2
/// observations; throws std::invalid_argument otherwise.
double select_inverse_scale(const std::vector<Point>& xs,
                            const std::vector<double>& ys,
                            const std::vector<double>& candidates,
                            double noise_variance = 1e-4);

}  // namespace bayesft::bayesopt
