#include "bayesopt/bayesopt.hpp"

#include "bayesopt/design.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "utils/logging.hpp"

namespace bayesft::bayesopt {

BoxBounds BoxBounds::uniform(std::size_t dims, double lo, double hi) {
    BoxBounds b;
    b.lower.assign(dims, lo);
    b.upper.assign(dims, hi);
    b.validate();
    return b;
}

void BoxBounds::validate() const {
    if (lower.empty() || lower.size() != upper.size()) {
        throw std::invalid_argument("BoxBounds: malformed bounds");
    }
    for (std::size_t i = 0; i < lower.size(); ++i) {
        if (!(lower[i] < upper[i])) {
            throw std::invalid_argument("BoxBounds: lower >= upper at dim " +
                                        std::to_string(i));
        }
    }
}

void BoxBounds::clamp(Point& p) const {
    if (p.size() != lower.size()) {
        throw std::invalid_argument("BoxBounds::clamp: dimension mismatch");
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = std::clamp(p[i], lower[i], upper[i]);
    }
}

Point BoxBounds::sample(Rng& rng) const {
    Point p(lower.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = rng.uniform(lower[i], upper[i]);
    }
    return p;
}

double BayesOpt::normalized_distance(const Point& a, const Point& b) const {
    // Span-normalized so every dimension contributes on the same [0, 1]
    // scale: wide integer/categorical encodings must not drown out narrow
    // dropout dims in the diversity guard or the duplicate merge.
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d =
            (a[i] - b[i]) / (bounds_.upper[i] - bounds_.lower[i]);
        sum += d * d;
    }
    return std::sqrt(sum);
}

void BayesOpt::make_feasible(Point& p) const {
    if (projection_) projection_(p);
}

BayesOpt::BayesOpt(BoxBounds bounds, std::shared_ptr<const Kernel> kernel,
                   std::unique_ptr<Acquisition> acquisition,
                   BayesOptConfig config, Rng rng, Projection projection)
    : bounds_(std::move(bounds)),
      kernel_(kernel),
      acquisition_(std::move(acquisition)),
      config_(config),
      rng_(rng),
      projection_(std::move(projection)),
      gp_(std::move(kernel), config.noise_variance) {
    bounds_.validate();
    if (!acquisition_) throw std::invalid_argument("BayesOpt: null acquisition");
    if (config_.candidates == 0) {
        throw std::invalid_argument("BayesOpt: need at least one candidate");
    }
    if (config_.trust_region.enabled &&
        (!(config_.trust_region.initial_length > 0.0) ||
         !(config_.trust_region.min_length > 0.0) ||
         config_.trust_region.initial_length <
             config_.trust_region.min_length ||
         config_.trust_region.max_length <
             config_.trust_region.initial_length ||
         config_.trust_region.success_tolerance == 0 ||
         config_.trust_region.failure_tolerance == 0)) {
        throw std::invalid_argument("BayesOpt: malformed trust-region config");
    }
    tr_.length = config_.trust_region.initial_length;
    if (config_.latin_hypercube_init && config_.initial_random_trials > 0) {
        initial_plan_ =
            latin_hypercube(config_.initial_random_trials, bounds_, rng_);
        // Mixed-space design of experiments: the space-filling plan is
        // snapped onto the feasible set (round integers, one-hot-ify
        // categorical blocks), preserving the per-dimension stratification
        // of the numeric dims.
        for (Point& p : initial_plan_) make_feasible(p);
    }
}

Point BayesOpt::suggest() { return propose({}, trials_.size()); }

Point BayesOpt::propose(const std::vector<Point>& pending,
                        std::size_t real_trial_count) {
    // `real_trial_count` excludes constant-liar fantasies, so a batch in
    // the initial phase keeps drawing from the space-filling design.  A
    // degraded surrogate (refit failed on the current history) proposes
    // from the random feasible pool until a refit succeeds again.
    if (real_trial_count < config_.initial_random_trials || !gp_.fitted() ||
        gp_degraded_) {
        if (initial_used_ < initial_plan_.size()) {
            return initial_plan_[initial_used_++];
        }
        Point p = bounds_.sample(rng_);
        make_feasible(p);
        return p;
    }
    return maximize_acquisition(pending,
                                trust_region_active(real_trial_count));
}

std::vector<Point> BayesOpt::suggest_batch(std::size_t q) {
    if (q == 0) {
        throw std::invalid_argument("BayesOpt::suggest_batch: q == 0");
    }
    std::vector<Point> batch;
    batch.reserve(q);
    if (q == 1) {
        // No fantasies: identical draws and GP state to the serial path.
        batch.push_back(suggest());
        return batch;
    }

    const std::size_t real_count = trials_.size();
    // During the initial space-filling design propose() never consults the
    // GP (or the pending set), so fantasies would only buy wasted refits.
    const bool use_fantasies =
        real_count >= config_.initial_random_trials && gp_.fitted();
    // Constant liar at the worst observed value: pessimistic enough that a
    // fantasized point never becomes the incumbent, yet pulls the posterior
    // mean down around already-picked candidates.
    double liar = 0.0;
    if (!trials_.empty()) {
        liar = trials_.front().y;
        for (const Trial& t : trials_) liar = std::min(liar, t.y);
    }
    // Fantasies go through the O(n^2) incremental GP ops (factor append /
    // running-average target update) with a rollback log, instead of a
    // full O(n^3) refit per pick plus one per rollback.  When a fantasy
    // cannot take the incremental path (jittered or degraded factor,
    // non-positive-definite append), the batch switches to the legacy
    // full-refit fantasies — which land on the exact factorization the
    // historical code produced, so both routes stay bit-identical to it.
    std::vector<FantasyRecord> fantasies;
    bool legacy = false;
    try {
        for (std::size_t j = 0; j < q; ++j) {
            Point x = propose(batch, real_count);
            batch.push_back(x);
            if (!use_fantasies || j + 1 >= q) continue;
            if (!legacy) {
                if (push_fantasy(x, liar, fantasies)) continue;
                // Switch over: materialize every pick so far as a legacy
                // liar trial and refit from scratch (discarding the
                // incrementally applied fantasies).
                legacy = true;
                fantasies.clear();
                for (std::size_t t = 0; t <= j; ++t) {
                    trials_.push_back(Trial{batch[t], liar});
                }
                refit_gp();
            } else {
                trials_.push_back(Trial{std::move(x), liar});
                refit_gp();
            }
        }
    } catch (...) {
        // Never leak fantasies into the real history, even when a refit
        // fails mid-batch.
        trials_.resize(real_count);
        try {
            refit_gp();
        } catch (...) {
            // The next observe refits; prefer surfacing the original error.
        }
        throw;
    }
    // Roll the fantasies back; the caller reports real outcomes.
    if (legacy) {
        trials_.resize(real_count);
        refit_gp();
    } else {
        pop_fantasies(fantasies);
    }
    return batch;
}

bool BayesOpt::push_fantasy(const Point& x, double y,
                            std::vector<FantasyRecord>& log) {
    // The incremental ops are only pinned bit-identical to the full refit
    // while the GP mirrors the merged rows exactly.
    if (gp_degraded_ || !gp_.fitted() ||
        gp_.observation_count() != merged_xs_.size()) {
        return false;
    }
    const std::size_t match = find_merged_row(x);
    if (match == merged_xs_.size()) {
        if (!gp_.observe(x, y)) return false;
        merged_xs_.push_back(x);
        merged_ys_.push_back(y);
        merged_counts_.push_back(1.0);
        log.push_back(FantasyRecord{/*appended=*/true, 0, 0.0, 0.0});
    } else {
        log.push_back(FantasyRecord{/*appended=*/false, match,
                                    merged_ys_[match],
                                    merged_counts_[match]});
        merged_counts_[match] += 1.0;
        merged_ys_[match] += (y - merged_ys_[match]) / merged_counts_[match];
        gp_.update_target(match, merged_ys_[match]);
    }
    return true;
}

void BayesOpt::pop_fantasies(std::vector<FantasyRecord>& log) {
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
        if (it->appended) {
            merged_xs_.pop_back();
            merged_ys_.pop_back();
            merged_counts_.pop_back();
            // Truncation restores the pre-append factor bit-for-bit
            // (appends only happen against a jitter-free factor).
            gp_.truncate(gp_.observation_count() - 1);
        } else {
            merged_ys_[it->index] = it->old_y;
            merged_counts_[it->index] = it->old_count;
            gp_.update_target(it->index, it->old_y);
        }
    }
    log.clear();
}

Point BayesOpt::maximize_acquisition(const std::vector<Point>& pending,
                                     bool use_trust_region) {
    const std::optional<Trial> incumbent = best();
    const double incumbent_y =
        incumbent ? incumbent->y : -std::numeric_limits<double>::infinity();

    // Sampling box: the whole space or, under the trust-region regime, the
    // box of edge tr_.length (as a span fraction) around the incumbent
    // intersected with the global bounds.  With lo/hi at the bounds this
    // draws the exact RNG stream the historical pool sampler drew.
    std::vector<double> lo = bounds_.lower;
    std::vector<double> hi = bounds_.upper;
    if (use_trust_region && incumbent) {
        for (std::size_t d = 0; d < lo.size(); ++d) {
            const double half =
                0.5 * tr_.length * (bounds_.upper[d] - bounds_.lower[d]);
            lo[d] = std::max(bounds_.lower[d], incumbent->x[d] - half);
            hi[d] = std::min(bounds_.upper[d], incumbent->x[d] + half);
        }
    }

    std::vector<Point> pool;
    pool.reserve(config_.candidates + config_.local_candidates);
    for (std::size_t i = 0; i < config_.candidates; ++i) {
        Point p(lo.size());
        for (std::size_t d = 0; d < p.size(); ++d) {
            p[d] = rng_.uniform(lo[d], hi[d]);
        }
        make_feasible(p);
        pool.push_back(std::move(p));
    }
    if (incumbent) {
        for (std::size_t i = 0; i < config_.local_candidates; ++i) {
            Point p = incumbent->x;
            for (std::size_t d = 0; d < p.size(); ++d) {
                const double edge = hi[d] - lo[d];
                p[d] += rng_.normal(0.0,
                                    config_.local_sigma_fraction * edge);
                p[d] = std::clamp(p[d], lo[d], hi[d]);
            }
            make_feasible(p);
            pool.push_back(std::move(p));
        }
    }

    // Trust-region scoring uses a local model: the newest in-region merged
    // rows, capped at max_local_trials, refit fresh — so the per-proposal
    // surrogate cost stays bounded however long the history grows.  An
    // empty region or a failed local fit falls back to the global
    // surrogate for this round.
    GaussianProcess local(kernel_, config_.noise_variance);
    const GaussianProcess* scorer = &gp_;
    if (use_trust_region && incumbent) {
        std::vector<Point> local_xs;
        std::vector<double> local_ys;
        for (std::size_t i = 0; i < merged_xs_.size(); ++i) {
            bool inside = true;
            for (std::size_t d = 0; d < lo.size() && inside; ++d) {
                inside = merged_xs_[i][d] >= lo[d] &&
                         merged_xs_[i][d] <= hi[d];
            }
            if (inside) {
                local_xs.push_back(merged_xs_[i]);
                local_ys.push_back(merged_ys_[i]);
            }
        }
        const std::size_t cap = std::max<std::size_t>(
            1, config_.trust_region.max_local_trials);
        if (local_xs.size() > cap) {
            const auto extra =
                static_cast<std::ptrdiff_t>(local_xs.size() - cap);
            local_xs.erase(local_xs.begin(), local_xs.begin() + extra);
            local_ys.erase(local_ys.begin(), local_ys.begin() + extra);
        }
        if (!local_xs.empty()) {
            try {
                local.fit(std::move(local_xs), std::move(local_ys));
                scorer = &local;
            } catch (const std::exception&) {
                // Ill-conditioned local Gram: global scoring this round.
            }
        }
    }

    // Span-normalized distances: the unit-box diagonal is sqrt(dims), so
    // the separation fraction means the same thing whatever the per-dim
    // spans are (raw Euclidean would let one wide integer dim dominate).
    const double min_separation =
        pending.empty() ? 0.0
                        : config_.batch_separation_fraction *
                              std::sqrt(static_cast<double>(bounds_.dims()));
    auto far_from_pending = [&](const Point& p) {
        for (const Point& other : pending) {
            if (normalized_distance(p, other) < min_separation) return false;
        }
        return true;
    };

    // One pooled posterior evaluation over the whole candidate set —
    // bit-identical to per-point posterior() calls (pinned in
    // tests/test_gp_scaling.cpp) at a fraction of the cost.
    const std::vector<Posterior> posteriors = scorer->posterior_batch(pool);

    double best_score = -std::numeric_limits<double>::infinity();
    const Point* best_point = &pool.front();
    double best_far_score = -std::numeric_limits<double>::infinity();
    const Point* best_far_point = nullptr;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const Point& p = pool[i];
        const double score = acquisition_->score(posteriors[i], incumbent_y);
        if (score > best_score) {
            best_score = score;
            best_point = &p;
        }
        if (score > best_far_score && far_from_pending(p)) {
            best_far_score = score;
            best_far_point = &p;
        }
    }
    // Prefer the diverse argmax; fall back to the raw argmax only when the
    // whole pool crowds the pending candidates.
    return best_far_point != nullptr ? *best_far_point : *best_point;
}

void BayesOpt::observe(Point x, double y, TrialStatus status) {
    if (x.size() != bounds_.dims()) {
        throw std::invalid_argument("BayesOpt::observe: dimension mismatch");
    }
    observe_one(std::move(x), y, status);
}

void BayesOpt::observe_batch(const std::vector<Point>& xs,
                             const std::vector<double>& ys,
                             const std::vector<TrialStatus>& statuses) {
    if (xs.empty() || xs.size() != ys.size() ||
        (!statuses.empty() && statuses.size() != xs.size())) {
        throw std::invalid_argument("BayesOpt::observe_batch: bad sizes");
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].size() != bounds_.dims()) {
            throw std::invalid_argument(
                "BayesOpt::observe_batch: dimension mismatch");
        }
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
        observe_one(xs[i], ys[i],
                    statuses.empty() ? TrialStatus::kOk : statuses[i]);
    }
}

void BayesOpt::observe_one(Point x, double y, TrialStatus status) {
    // A non-finite objective is a diverged trial, never an abort: the
    // point is quarantined at the finite fail penalty (so checkpoints and
    // run-store lines stay parseable) with its failure class recorded.
    if (!std::isfinite(y) && status == TrialStatus::kOk) {
        status = TrialStatus::kFailedNaN;
    }
    if (status != TrialStatus::kOk) y = config_.fail_penalty;
    // Trust-region bookkeeping gates on the history size *before* this
    // trial (the same count that decided how it was proposed) and compares
    // against the pre-trial incumbent — pure functions of the observation
    // order, so counters replay identically across threads and resume.
    const bool adapt = trust_region_active(trials_.size());
    bool improved = false;
    if (adapt && status == TrialStatus::kOk) {
        const std::optional<Trial> before = best();
        improved = !before || y > before->y;
    }
    trials_.push_back(Trial{std::move(x), y, status});
    absorb_trial(trials_.back());
    if (adapt) update_trust_region(improved);
}

std::size_t BayesOpt::find_merged_row(const Point& x) const {
    for (std::size_t i = 0; i < merged_xs_.size(); ++i) {
        if (normalized_distance(merged_xs_[i], x) <=
            config_.duplicate_tolerance) {
            return i;
        }
    }
    return merged_xs_.size();
}

void BayesOpt::absorb_trial(const Trial& t) {
    // Failed trials reach the surrogate only under kPenalize (at their
    // stored penalty value); kExclude keeps it blind to them — and a
    // skipped trial leaves the merged rows, hence the fit, untouched.
    if (t.status != TrialStatus::kOk &&
        config_.fail_policy == FailPolicy::kExclude) {
        return;
    }
    // The O(n^2) incremental ops only apply while the GP mirrors the
    // merged rows exactly; a degraded or out-of-sync surrogate takes the
    // full-refit path, which re-establishes the invariant on success.
    const bool fast = !gp_degraded_ && gp_.fitted() &&
                      gp_.observation_count() == merged_xs_.size();
    const std::size_t match = find_merged_row(t.x);
    if (match == merged_xs_.size()) {
        merged_xs_.push_back(t.x);
        merged_ys_.push_back(t.y);
        merged_counts_.push_back(1.0);
        if (fast && gp_.observe(t.x, t.y)) return;
        fit_merged();
    } else {
        // Merge (near-)duplicate trial points into one GP row each,
        // averaging their objective values, so repeated proposals cannot
        // make the Gram matrix singular.  Approximation: the merged row
        // keeps the single-observation noise variance (posterior
        // uncertainty does not shrink with the repeat count as exact
        // 1/k-noise weighting would).
        merged_counts_[match] += 1.0;
        merged_ys_[match] +=
            (t.y - merged_ys_[match]) / merged_counts_[match];
        if (fast) {
            gp_.update_target(match, merged_ys_[match]);
            return;
        }
        fit_merged();
    }
}

void BayesOpt::refit_gp() {
    // The canonical full path: rebuild the duplicate-merged rows from the
    // complete trial history (identical running-average updates in
    // identical trial order to the incremental maintenance) and refit from
    // scratch.  Used at import_state, on legacy fantasy rollback, and as
    // the incremental paths' fallback.
    merged_xs_.clear();
    merged_ys_.clear();
    merged_counts_.clear();
    merged_xs_.reserve(trials_.size());
    merged_ys_.reserve(trials_.size());
    merged_counts_.reserve(trials_.size());
    for (const Trial& t : trials_) {
        if (t.status != TrialStatus::kOk &&
            config_.fail_policy == FailPolicy::kExclude) {
            continue;
        }
        const std::size_t match = find_merged_row(t.x);
        if (match == merged_xs_.size()) {
            merged_xs_.push_back(t.x);
            merged_ys_.push_back(t.y);
            merged_counts_.push_back(1.0);
        } else {
            merged_counts_[match] += 1.0;
            merged_ys_[match] +=
                (t.y - merged_ys_[match]) / merged_counts_[match];
        }
    }
    fit_merged();
}

void BayesOpt::fit_merged() {
    if (merged_xs_.empty()) {
        gp_ = GaussianProcess(kernel_, config_.noise_variance);
        gp_degraded_ = false;
        return;
    }
    try {
        gp_.fit(merged_xs_, merged_ys_);
        gp_degraded_ = false;
    } catch (const std::exception& error) {
        // Ill-conditioned even after the Cholesky jitter retries: keep the
        // last-good posterior (fit is strongly exception-safe) and let
        // propose() fall back to the random pool until a refit succeeds —
        // one bad refit must not kill a multi-hour search.
        gp_degraded_ = true;
        log_warn() << "BayesOpt: GP refit failed (" << error.what()
                   << "); keeping the last-good fit and proposing from the "
                      "random pool";
    }
}

bool BayesOpt::trust_region_active(std::size_t real_trial_count) const {
    return config_.trust_region.enabled &&
           real_trial_count >= config_.trust_region.activate_after;
}

void BayesOpt::update_trust_region(bool success) {
    const TrustRegionConfig& tc = config_.trust_region;
    if (success) {
        ++tr_.successes;
        tr_.failures = 0;
    } else {
        ++tr_.failures;
        tr_.successes = 0;
    }
    if (tr_.successes >= tc.success_tolerance) {
        tr_.length = std::min(2.0 * tr_.length, tc.max_length);
        tr_.successes = 0;
    } else if (tr_.failures >= tc.failure_tolerance) {
        tr_.length *= 0.5;
        tr_.failures = 0;
    }
    if (tr_.length < tc.min_length) {
        // Restart: the region collapsed around a local optimum; reopen it
        // at the initial edge (still centered on the incumbent).
        tr_.length = tc.initial_length;
        tr_.successes = 0;
        tr_.failures = 0;
        ++tr_.restarts;
    }
}

BayesOptState BayesOpt::export_state() const {
    BayesOptState state;
    state.trials = trials_;
    state.initial_plan = initial_plan_;
    state.initial_used = initial_used_;
    state.rng = rng_.state();
    state.trust_region = tr_;
    return state;
}

void BayesOpt::import_state(const BayesOptState& state) {
    for (const Trial& t : state.trials) {
        if (t.x.size() != bounds_.dims()) {
            throw std::invalid_argument(
                "BayesOpt::import_state: trial dimension mismatch");
        }
    }
    for (const Point& p : state.initial_plan) {
        if (p.size() != bounds_.dims()) {
            throw std::invalid_argument(
                "BayesOpt::import_state: initial-plan dimension mismatch");
        }
    }
    if (state.initial_used > state.initial_plan.size()) {
        throw std::invalid_argument(
            "BayesOpt::import_state: initial_used exceeds the plan");
    }
    trials_ = state.trials;
    initial_plan_ = state.initial_plan;
    initial_used_ = state.initial_used;
    rng_.set_state(state.rng);
    tr_ = state.trust_region;
    // A checkpoint written before trust regions existed (format v2) carries
    // no state; a non-positive edge means "freshly initialized".
    if (!(tr_.length > 0.0)) tr_.length = config_.trust_region.initial_length;
    refit_gp();
}

std::optional<Trial> BayesOpt::best() const {
    if (trials_.empty()) return std::nullopt;
    // Prefer successful trials; only a fully quarantined history falls
    // back to the failed ones, so callers can always install *a* point.
    const Trial* best = nullptr;
    for (const Trial& t : trials_) {
        if (t.status != TrialStatus::kOk) continue;
        if (best == nullptr || t.y > best->y) best = &t;
    }
    if (best == nullptr) {
        for (const Trial& t : trials_) {
            if (best == nullptr || t.y > best->y) best = &t;
        }
    }
    return *best;
}

}  // namespace bayesft::bayesopt
