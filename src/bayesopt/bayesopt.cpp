#include "bayesopt/bayesopt.hpp"

#include "bayesopt/design.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "utils/logging.hpp"

namespace bayesft::bayesopt {

BoxBounds BoxBounds::uniform(std::size_t dims, double lo, double hi) {
    BoxBounds b;
    b.lower.assign(dims, lo);
    b.upper.assign(dims, hi);
    b.validate();
    return b;
}

void BoxBounds::validate() const {
    if (lower.empty() || lower.size() != upper.size()) {
        throw std::invalid_argument("BoxBounds: malformed bounds");
    }
    for (std::size_t i = 0; i < lower.size(); ++i) {
        if (!(lower[i] < upper[i])) {
            throw std::invalid_argument("BoxBounds: lower >= upper at dim " +
                                        std::to_string(i));
        }
    }
}

void BoxBounds::clamp(Point& p) const {
    if (p.size() != lower.size()) {
        throw std::invalid_argument("BoxBounds::clamp: dimension mismatch");
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = std::clamp(p[i], lower[i], upper[i]);
    }
}

Point BoxBounds::sample(Rng& rng) const {
    Point p(lower.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = rng.uniform(lower[i], upper[i]);
    }
    return p;
}

double BayesOpt::normalized_distance(const Point& a, const Point& b) const {
    // Span-normalized so every dimension contributes on the same [0, 1]
    // scale: wide integer/categorical encodings must not drown out narrow
    // dropout dims in the diversity guard or the duplicate merge.
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d =
            (a[i] - b[i]) / (bounds_.upper[i] - bounds_.lower[i]);
        sum += d * d;
    }
    return std::sqrt(sum);
}

void BayesOpt::make_feasible(Point& p) const {
    if (projection_) projection_(p);
}

BayesOpt::BayesOpt(BoxBounds bounds, std::shared_ptr<const Kernel> kernel,
                   std::unique_ptr<Acquisition> acquisition,
                   BayesOptConfig config, Rng rng, Projection projection)
    : bounds_(std::move(bounds)),
      kernel_(kernel),
      acquisition_(std::move(acquisition)),
      config_(config),
      rng_(rng),
      projection_(std::move(projection)),
      gp_(std::move(kernel), config.noise_variance) {
    bounds_.validate();
    if (!acquisition_) throw std::invalid_argument("BayesOpt: null acquisition");
    if (config_.candidates == 0) {
        throw std::invalid_argument("BayesOpt: need at least one candidate");
    }
    if (config_.latin_hypercube_init && config_.initial_random_trials > 0) {
        initial_plan_ =
            latin_hypercube(config_.initial_random_trials, bounds_, rng_);
        // Mixed-space design of experiments: the space-filling plan is
        // snapped onto the feasible set (round integers, one-hot-ify
        // categorical blocks), preserving the per-dimension stratification
        // of the numeric dims.
        for (Point& p : initial_plan_) make_feasible(p);
    }
}

Point BayesOpt::suggest() { return propose({}, trials_.size()); }

Point BayesOpt::propose(const std::vector<Point>& pending,
                        std::size_t real_trial_count) {
    // `real_trial_count` excludes constant-liar fantasies, so a batch in
    // the initial phase keeps drawing from the space-filling design.  A
    // degraded surrogate (refit failed on the current history) proposes
    // from the random feasible pool until a refit succeeds again.
    if (real_trial_count < config_.initial_random_trials || !gp_.fitted() ||
        gp_degraded_) {
        if (initial_used_ < initial_plan_.size()) {
            return initial_plan_[initial_used_++];
        }
        Point p = bounds_.sample(rng_);
        make_feasible(p);
        return p;
    }
    return maximize_acquisition(pending);
}

std::vector<Point> BayesOpt::suggest_batch(std::size_t q) {
    if (q == 0) {
        throw std::invalid_argument("BayesOpt::suggest_batch: q == 0");
    }
    std::vector<Point> batch;
    batch.reserve(q);
    if (q == 1) {
        // No fantasies: identical draws and GP state to the serial path.
        batch.push_back(suggest());
        return batch;
    }

    const std::vector<Trial> real_trials = trials_;
    // During the initial space-filling design propose() never consults the
    // GP (or the pending set), so fantasies would only buy wasted refits.
    const bool use_fantasies =
        real_trials.size() >= config_.initial_random_trials && gp_.fitted();
    // Constant liar at the worst observed value: pessimistic enough that a
    // fantasized point never becomes the incumbent, yet pulls the posterior
    // mean down around already-picked candidates.
    double liar = 0.0;
    if (!real_trials.empty()) {
        liar = real_trials.front().y;
        for (const Trial& t : real_trials) liar = std::min(liar, t.y);
    }
    try {
        for (std::size_t j = 0; j < q; ++j) {
            Point x = propose(batch, real_trials.size());
            batch.push_back(x);
            if (use_fantasies && j + 1 < q) {
                trials_.push_back(Trial{std::move(x), liar});
                refit_gp();
            }
        }
    } catch (...) {
        // Never leak fantasies into the real history, even when a refit
        // fails mid-batch.
        trials_ = real_trials;
        try {
            refit_gp();
        } catch (...) {
            // The next observe refits; prefer surfacing the original error.
        }
        throw;
    }
    // Roll the fantasies back; the caller reports real outcomes.
    if (trials_.size() != real_trials.size()) {
        trials_ = real_trials;
        refit_gp();
    }
    return batch;
}

Point BayesOpt::maximize_acquisition(const std::vector<Point>& pending) {
    const double incumbent = best() ? best()->y
                                    : -std::numeric_limits<double>::infinity();

    std::vector<Point> pool;
    pool.reserve(config_.candidates + config_.local_candidates);
    for (std::size_t i = 0; i < config_.candidates; ++i) {
        Point p = bounds_.sample(rng_);
        make_feasible(p);
        pool.push_back(std::move(p));
    }
    if (best()) {
        for (std::size_t i = 0; i < config_.local_candidates; ++i) {
            Point p = best()->x;
            for (std::size_t d = 0; d < p.size(); ++d) {
                const double edge = bounds_.upper[d] - bounds_.lower[d];
                p[d] += rng_.normal(0.0,
                                    config_.local_sigma_fraction * edge);
            }
            bounds_.clamp(p);
            make_feasible(p);
            pool.push_back(std::move(p));
        }
    }

    // Span-normalized distances: the unit-box diagonal is sqrt(dims), so
    // the separation fraction means the same thing whatever the per-dim
    // spans are (raw Euclidean would let one wide integer dim dominate).
    const double min_separation =
        pending.empty() ? 0.0
                        : config_.batch_separation_fraction *
                              std::sqrt(static_cast<double>(bounds_.dims()));
    auto far_from_pending = [&](const Point& p) {
        for (const Point& other : pending) {
            if (normalized_distance(p, other) < min_separation) return false;
        }
        return true;
    };

    double best_score = -std::numeric_limits<double>::infinity();
    const Point* best_point = &pool.front();
    double best_far_score = -std::numeric_limits<double>::infinity();
    const Point* best_far_point = nullptr;
    for (const Point& p : pool) {
        const double score = acquisition_->score(gp_.posterior(p), incumbent);
        if (score > best_score) {
            best_score = score;
            best_point = &p;
        }
        if (score > best_far_score && far_from_pending(p)) {
            best_far_score = score;
            best_far_point = &p;
        }
    }
    // Prefer the diverse argmax; fall back to the raw argmax only when the
    // whole pool crowds the pending candidates.
    return best_far_point != nullptr ? *best_far_point : *best_point;
}

void BayesOpt::observe(Point x, double y, TrialStatus status) {
    if (x.size() != bounds_.dims()) {
        throw std::invalid_argument("BayesOpt::observe: dimension mismatch");
    }
    // A non-finite objective is a diverged trial, never an abort: the
    // point is quarantined at the finite fail penalty (so checkpoints and
    // run-store lines stay parseable) with its failure class recorded.
    if (!std::isfinite(y) && status == TrialStatus::kOk) {
        status = TrialStatus::kFailedNaN;
    }
    if (status != TrialStatus::kOk) y = config_.fail_penalty;
    trials_.push_back(Trial{std::move(x), y, status});
    refit_gp();
}

void BayesOpt::observe_batch(const std::vector<Point>& xs,
                             const std::vector<double>& ys,
                             const std::vector<TrialStatus>& statuses) {
    if (xs.empty() || xs.size() != ys.size() ||
        (!statuses.empty() && statuses.size() != xs.size())) {
        throw std::invalid_argument("BayesOpt::observe_batch: bad sizes");
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].size() != bounds_.dims()) {
            throw std::invalid_argument(
                "BayesOpt::observe_batch: dimension mismatch");
        }
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
        TrialStatus status =
            statuses.empty() ? TrialStatus::kOk : statuses[i];
        double y = ys[i];
        if (!std::isfinite(y) && status == TrialStatus::kOk) {
            status = TrialStatus::kFailedNaN;
        }
        if (status != TrialStatus::kOk) y = config_.fail_penalty;
        trials_.push_back(Trial{xs[i], y, status});
    }
    refit_gp();
}

void BayesOpt::refit_gp() {
    // Merge (near-)duplicate trial points into one GP row each, averaging
    // their objective values, so repeated proposals cannot make the Gram
    // matrix singular.  Approximation: the merged row keeps the
    // single-observation noise variance (posterior uncertainty does not
    // shrink with the repeat count as exact 1/k-noise weighting would).
    // Failed trials reach the fit only under kPenalize (at their stored
    // penalty value); kExclude keeps the surrogate blind to them.
    std::vector<Point> xs;
    std::vector<double> ys;
    std::vector<double> counts;
    xs.reserve(trials_.size());
    ys.reserve(trials_.size());
    for (const Trial& t : trials_) {
        if (t.status != TrialStatus::kOk &&
            config_.fail_policy == FailPolicy::kExclude) {
            continue;
        }
        std::size_t match = xs.size();
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (normalized_distance(xs[i], t.x) <=
                config_.duplicate_tolerance) {
                match = i;
                break;
            }
        }
        if (match == xs.size()) {
            xs.push_back(t.x);
            ys.push_back(t.y);
            counts.push_back(1.0);
        } else {
            counts[match] += 1.0;
            ys[match] += (t.y - ys[match]) / counts[match];
        }
    }
    if (xs.empty()) {
        gp_ = GaussianProcess(kernel_, config_.noise_variance);
        gp_degraded_ = false;
        return;
    }
    try {
        gp_.fit(std::move(xs), std::move(ys));
        gp_degraded_ = false;
    } catch (const std::exception& error) {
        // Ill-conditioned even after the Cholesky jitter retries: keep the
        // last-good posterior (fit is strongly exception-safe) and let
        // propose() fall back to the random pool until a refit succeeds —
        // one bad refit must not kill a multi-hour search.
        gp_degraded_ = true;
        log_warn() << "BayesOpt: GP refit failed (" << error.what()
                   << "); keeping the last-good fit and proposing from the "
                      "random pool";
    }
}

BayesOptState BayesOpt::export_state() const {
    BayesOptState state;
    state.trials = trials_;
    state.initial_plan = initial_plan_;
    state.initial_used = initial_used_;
    state.rng = rng_.state();
    return state;
}

void BayesOpt::import_state(const BayesOptState& state) {
    for (const Trial& t : state.trials) {
        if (t.x.size() != bounds_.dims()) {
            throw std::invalid_argument(
                "BayesOpt::import_state: trial dimension mismatch");
        }
    }
    for (const Point& p : state.initial_plan) {
        if (p.size() != bounds_.dims()) {
            throw std::invalid_argument(
                "BayesOpt::import_state: initial-plan dimension mismatch");
        }
    }
    if (state.initial_used > state.initial_plan.size()) {
        throw std::invalid_argument(
            "BayesOpt::import_state: initial_used exceeds the plan");
    }
    trials_ = state.trials;
    initial_plan_ = state.initial_plan;
    initial_used_ = state.initial_used;
    rng_.set_state(state.rng);
    refit_gp();
}

std::optional<Trial> BayesOpt::best() const {
    if (trials_.empty()) return std::nullopt;
    // Prefer successful trials; only a fully quarantined history falls
    // back to the failed ones, so callers can always install *a* point.
    const Trial* best = nullptr;
    for (const Trial& t : trials_) {
        if (t.status != TrialStatus::kOk) continue;
        if (best == nullptr || t.y > best->y) best = &t;
    }
    if (best == nullptr) {
        for (const Trial& t : trials_) {
            if (best == nullptr || t.y > best->y) best = &t;
        }
    }
    return *best;
}

}  // namespace bayesft::bayesopt
