#include "bayesopt/bayesopt.hpp"

#include "bayesopt/design.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bayesft::bayesopt {

BoxBounds BoxBounds::uniform(std::size_t dims, double lo, double hi) {
    BoxBounds b;
    b.lower.assign(dims, lo);
    b.upper.assign(dims, hi);
    b.validate();
    return b;
}

void BoxBounds::validate() const {
    if (lower.empty() || lower.size() != upper.size()) {
        throw std::invalid_argument("BoxBounds: malformed bounds");
    }
    for (std::size_t i = 0; i < lower.size(); ++i) {
        if (!(lower[i] < upper[i])) {
            throw std::invalid_argument("BoxBounds: lower >= upper at dim " +
                                        std::to_string(i));
        }
    }
}

void BoxBounds::clamp(Point& p) const {
    if (p.size() != lower.size()) {
        throw std::invalid_argument("BoxBounds::clamp: dimension mismatch");
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = std::clamp(p[i], lower[i], upper[i]);
    }
}

Point BoxBounds::sample(Rng& rng) const {
    Point p(lower.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = rng.uniform(lower[i], upper[i]);
    }
    return p;
}

BayesOpt::BayesOpt(BoxBounds bounds, std::shared_ptr<const Kernel> kernel,
                   std::unique_ptr<Acquisition> acquisition,
                   BayesOptConfig config, Rng rng)
    : bounds_(std::move(bounds)),
      acquisition_(std::move(acquisition)),
      config_(config),
      rng_(rng),
      gp_(std::move(kernel), config.noise_variance) {
    bounds_.validate();
    if (!acquisition_) throw std::invalid_argument("BayesOpt: null acquisition");
    if (config_.candidates == 0) {
        throw std::invalid_argument("BayesOpt: need at least one candidate");
    }
    if (config_.latin_hypercube_init && config_.initial_random_trials > 0) {
        initial_plan_ =
            latin_hypercube(config_.initial_random_trials, bounds_, rng_);
    }
}

Point BayesOpt::suggest() {
    if (trials_.size() < config_.initial_random_trials || !gp_.fitted()) {
        if (initial_used_ < initial_plan_.size()) {
            return initial_plan_[initial_used_++];
        }
        return bounds_.sample(rng_);
    }
    return maximize_acquisition();
}

Point BayesOpt::maximize_acquisition() {
    const double incumbent = best() ? best()->y
                                    : -std::numeric_limits<double>::infinity();

    std::vector<Point> pool;
    pool.reserve(config_.candidates + config_.local_candidates);
    for (std::size_t i = 0; i < config_.candidates; ++i) {
        pool.push_back(bounds_.sample(rng_));
    }
    if (best()) {
        for (std::size_t i = 0; i < config_.local_candidates; ++i) {
            Point p = best()->x;
            for (std::size_t d = 0; d < p.size(); ++d) {
                const double edge = bounds_.upper[d] - bounds_.lower[d];
                p[d] += rng_.normal(0.0,
                                    config_.local_sigma_fraction * edge);
            }
            bounds_.clamp(p);
            pool.push_back(std::move(p));
        }
    }

    double best_score = -std::numeric_limits<double>::infinity();
    const Point* best_point = &pool.front();
    for (const Point& p : pool) {
        const double score = acquisition_->score(gp_.posterior(p), incumbent);
        if (score > best_score) {
            best_score = score;
            best_point = &p;
        }
    }
    return *best_point;
}

void BayesOpt::observe(Point x, double y) {
    if (x.size() != bounds_.dims()) {
        throw std::invalid_argument("BayesOpt::observe: dimension mismatch");
    }
    if (!std::isfinite(y)) {
        throw std::invalid_argument("BayesOpt::observe: non-finite objective");
    }
    trials_.push_back(Trial{std::move(x), y});
    std::vector<Point> xs;
    std::vector<double> ys;
    xs.reserve(trials_.size());
    ys.reserve(trials_.size());
    for (const Trial& t : trials_) {
        xs.push_back(t.x);
        ys.push_back(t.y);
    }
    gp_.fit(std::move(xs), std::move(ys));
}

std::optional<Trial> BayesOpt::best() const {
    if (trials_.empty()) return std::nullopt;
    const auto it = std::max_element(
        trials_.begin(), trials_.end(),
        [](const Trial& a, const Trial& b) { return a.y < b.y; });
    return *it;
}

}  // namespace bayesft::bayesopt
