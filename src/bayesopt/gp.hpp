#pragma once
// Gaussian-process regression surrogate (paper Eq. 5-8).
//
// Posterior for a zero-mean GP prior with kernel kappa and observation
// noise sigma_n^2:
//   mu(x)     = k(x, X) (K + sigma_n^2 I)^-1 y
//   sigma2(x) = k(x, x) - k(x, X) (K + sigma_n^2 I)^-1 k(X, x)
// computed via a Cholesky factorization held across queries.  Targets are
// internally centered on their mean so the zero-mean prior is reasonable.

#include <memory>
#include <vector>

#include "bayesopt/kernel.hpp"
#include "linalg/matrix.hpp"

namespace bayesft::bayesopt {

/// Posterior mean and variance at one query point.
struct Posterior {
    double mean = 0.0;
    double variance = 0.0;
};

/// Exact GP regression with a fixed kernel.
class GaussianProcess {
public:
    /// `noise_variance` is the observation noise sigma_n^2 (> 0 keeps the
    /// Gram matrix well conditioned; MC-estimated objectives are noisy
    /// anyway, see Eq. 4).
    GaussianProcess(std::shared_ptr<const Kernel> kernel,
                    double noise_variance = 1e-6);

    /// Fits (refactorizes) on the full trial history.
    /// Requires xs.size() == ys.size() > 0 and consistent dimensions.
    void fit(std::vector<Point> xs, std::vector<double> ys);

    /// True once fit() has been called with at least one observation.
    bool fitted() const { return !xs_.empty(); }
    std::size_t observation_count() const { return xs_.size(); }

    /// Posterior at `x`; throws std::logic_error if not fitted.
    Posterior posterior(const Point& x) const;

    /// Log marginal likelihood of the fitted data (for hyperparameter
    /// comparison): -1/2 y^T K^-1 y - 1/2 log|K| - n/2 log(2 pi).
    double log_marginal_likelihood() const;

    const std::vector<Point>& xs() const { return xs_; }
    const std::vector<double>& ys() const { return ys_; }

private:
    std::shared_ptr<const Kernel> kernel_;
    double noise_variance_;
    std::vector<Point> xs_;
    std::vector<double> ys_;
    double y_mean_ = 0.0;
    linalg::Matrix chol_;     // lower Cholesky factor of K + sigma_n^2 I
    linalg::Vector alpha_;    // (K + sigma_n^2 I)^-1 (y - mean)
};

}  // namespace bayesft::bayesopt
