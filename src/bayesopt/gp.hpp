#pragma once
// Gaussian-process regression surrogate (paper Eq. 5-8).
//
// Posterior for a zero-mean GP prior with kernel kappa and observation
// noise sigma_n^2:
//   mu(x)     = k(x, X) (K + sigma_n^2 I)^-1 y
//   sigma2(x) = k(x, x) - k(x, X) (K + sigma_n^2 I)^-1 k(X, x)
// computed via a Cholesky factorization held across queries.  Targets are
// internally centered on their mean so the zero-mean prior is reasonable.

#include <memory>
#include <vector>

#include "bayesopt/kernel.hpp"
#include "linalg/matrix.hpp"

namespace bayesft::bayesopt {

/// Posterior mean and variance at one query point.
struct Posterior {
    double mean = 0.0;
    double variance = 0.0;
};

/// Exact GP regression with a fixed kernel.
class GaussianProcess {
public:
    /// `noise_variance` is the observation noise sigma_n^2 (> 0 keeps the
    /// Gram matrix well conditioned; MC-estimated objectives are noisy
    /// anyway, see Eq. 4).
    GaussianProcess(std::shared_ptr<const Kernel> kernel,
                    double noise_variance = 1e-6);

    /// Fits (refactorizes) on the full trial history.
    /// Requires xs.size() == ys.size() > 0 and consistent dimensions.
    /// This is the canonical reference path: the incremental operations
    /// below are pinned bit-identical to it (docs/optimizer-scaling.md).
    void fit(std::vector<Point> xs, std::vector<double> ys);

    /// Incremental observation: grows the factorization by one row in
    /// O(n^2) (rank-1 Cholesky append + a full alpha recompute) instead of
    /// the O(n^3) refit.  The result is bit-identical to
    /// fit(xs + [x], ys + [y]) whenever it returns true.  Returns false —
    /// leaving the fit untouched — when the fast path does not apply: not
    /// fitted yet, the current factor carries Cholesky jitter, or the
    /// appended row is not positive definite at zero jitter.  Callers fall
    /// back to fit(), which lands on the same factorization a from-scratch
    /// fit would have produced.
    bool observe(const Point& x, double y);

    /// Replaces the stored target of observation `i` and recomputes the
    /// centered targets and alpha in O(n^2); the factorization (which only
    /// depends on the xs) is untouched.  Bit-identical to a full fit()
    /// with the updated targets.  Used by the duplicate-merge path, where
    /// a repeated point only moves its row's running-average y.
    void update_target(std::size_t i, double y);

    /// Drops the trailing observations so observation_count() == n, by
    /// truncating the Cholesky factor (rows are finalized top-down, so the
    /// leading block IS the smaller factor) and recomputing alpha.
    /// Bit-identical to a fit() on the first n observations when the
    /// current factor is jitter-free — the constant-liar fantasy rollback.
    /// Requires 0 < n <= observation_count() and a jitter-free factor
    /// (throws std::logic_error otherwise).
    void truncate(std::size_t n);

    /// True once fit() has been called with at least one observation.
    bool fitted() const { return !xs_.empty(); }
    std::size_t observation_count() const { return xs_.size(); }

    /// Diagonal jitter the last (re)factorization needed (0.0 normally).
    /// The incremental paths only apply to a jitter-free factor.
    double jitter() const { return jitter_; }

    /// Posterior at `x`; throws std::logic_error if not fitted.
    Posterior posterior(const Point& x) const;

    /// Posteriors at many query points in one pass: the m x n cross-kernel
    /// block is built once (rows over the thread pool), the variance term
    /// uses one multi-RHS triangular solve, and each row reproduces the
    /// exact per-point recurrence — so the result is bit-identical to m
    /// posterior() calls at every thread count, at a fraction of the
    /// dispatch and allocation cost (the batched acquisition path).
    std::vector<Posterior> posterior_batch(
        const std::vector<Point>& queries) const;

    /// Log marginal likelihood of the fitted data (for hyperparameter
    /// comparison): -1/2 y^T K^-1 y - 1/2 log|K| - n/2 log(2 pi).
    double log_marginal_likelihood() const;

    const std::vector<Point>& xs() const { return xs_; }
    const std::vector<double>& ys() const { return ys_; }

private:
    /// Recomputes y_mean_/centered_/alpha_ from ys_ and chol_ — the shared
    /// tail of fit/observe/update_target/truncate, so all four produce the
    /// identical alpha bits for identical (ys, chol).
    void refresh_targets();

    std::shared_ptr<const Kernel> kernel_;
    double noise_variance_;
    std::vector<Point> xs_;
    std::vector<double> ys_;
    double y_mean_ = 0.0;
    linalg::Matrix chol_;       // lower Cholesky factor of K + sigma_n^2 I
    linalg::Vector centered_;   // y - mean, cached at fit/observe time
    linalg::Vector alpha_;      // (K + sigma_n^2 I)^-1 (y - mean)
    double jitter_ = 0.0;       // diagonal jitter the last refit needed
};

}  // namespace bayesft::bayesopt
