#include "bayesopt/design.hpp"

#include <limits>
#include <memory>
#include <stdexcept>

#include "bayesopt/gp.hpp"

namespace bayesft::bayesopt {

std::vector<Point> latin_hypercube(std::size_t n, const BoxBounds& bounds,
                                   Rng& rng) {
    bounds.validate();
    if (n == 0) {
        throw std::invalid_argument("latin_hypercube: n must be > 0");
    }
    const std::size_t dims = bounds.dims();
    std::vector<Point> points(n, Point(dims));
    for (std::size_t d = 0; d < dims; ++d) {
        const auto strata = rng.permutation(n);
        const double edge = bounds.upper[d] - bounds.lower[d];
        for (std::size_t i = 0; i < n; ++i) {
            // Uniform jitter inside the assigned stratum.
            const double u =
                (static_cast<double>(strata[i]) + rng.uniform()) /
                static_cast<double>(n);
            points[i][d] = bounds.lower[d] + edge * u;
        }
    }
    return points;
}

double select_inverse_scale(const std::vector<Point>& xs,
                            const std::vector<double>& ys,
                            const std::vector<double>& candidates,
                            double noise_variance) {
    if (candidates.empty()) {
        throw std::invalid_argument("select_inverse_scale: no candidates");
    }
    if (xs.size() < 2 || xs.size() != ys.size()) {
        throw std::invalid_argument(
            "select_inverse_scale: need >= 2 observations");
    }
    const std::size_t dims = xs.front().size();
    double best_scale = candidates.front();
    double best_lml = -std::numeric_limits<double>::infinity();
    for (double scale : candidates) {
        GaussianProcess gp(
            std::make_shared<ArdSquaredExponential>(dims, scale),
            noise_variance);
        gp.fit(xs, ys);
        const double lml = gp.log_marginal_likelihood();
        if (lml > best_lml) {
            best_lml = lml;
            best_scale = scale;
        }
    }
    return best_scale;
}

}  // namespace bayesft::bayesopt
