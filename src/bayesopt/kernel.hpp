#pragma once
// Covariance kernels for the Gaussian-process surrogate.
//
// The paper (Eq. 9) uses kappa(a, b) = k0 * exp(-sum_i k_i (a_i - b_i)^2),
// i.e. a squared-exponential kernel with per-dimension inverse length
// scales (ARD).  Matern-5/2 is provided as an alternative for the ablation.

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bayesft::bayesopt {

using Point = std::vector<double>;

/// Positive-definite covariance function over R^d.
class Kernel {
public:
    virtual ~Kernel() = default;
    Kernel() = default;
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    virtual double operator()(const Point& a, const Point& b) const = 0;
    virtual std::string describe() const = 0;

    /// Gram matrix K[i][j] = k(xs[i], xs[j]).  Large matrices fill their
    /// lower triangle with the rows split over the global thread pool and
    /// mirror it afterwards; every element is the same single kernel
    /// evaluation either way, so the result is bit-identical at every
    /// thread count.
    linalg::Matrix gram(const std::vector<Point>& xs) const;

    /// Cross-covariance vector k(x, xs[i]).
    linalg::Vector cross(const Point& x, const std::vector<Point>& xs) const;

    /// Cross-covariance matrix C[r][i] = k(queries[r], xs[i]): one cross()
    /// row per query, rows split over the global thread pool (disjoint
    /// outputs, so bit-identical to per-query cross() calls at every
    /// thread count).  The batched-acquisition path builds the whole
    /// candidate pool's cross-kernel block in one pass through this.
    linalg::Matrix cross_matrix(const std::vector<Point>& queries,
                                const std::vector<Point>& xs) const;
};

/// Paper Eq. 9: k0 * exp(-sum_i k_i (a_i - b_i)^2).
class ArdSquaredExponential : public Kernel {
public:
    /// `inverse_length_scales` are the k_i (one per input dimension);
    /// `amplitude` is k0.  All must be positive.
    ArdSquaredExponential(std::vector<double> inverse_length_scales,
                          double amplitude = 1.0);

    /// Isotropic convenience: all k_i = inv_scale.
    ArdSquaredExponential(std::size_t dims, double inv_scale,
                          double amplitude = 1.0);

    double operator()(const Point& a, const Point& b) const override;
    std::string describe() const override;

    const std::vector<double>& inverse_length_scales() const {
        return inv_scales_;
    }
    double amplitude() const { return amplitude_; }

private:
    std::vector<double> inv_scales_;
    double amplitude_;
};

/// A run of one-hot coordinates inside an encoded mixed-space point:
/// coordinates [offset, offset + cardinality) encode one categorical
/// dimension with `cardinality` choices.
struct CategoricalBlock {
    std::size_t offset = 0;
    std::size_t cardinality = 0;
};

/// ARD squared-exponential kernel with a Hamming term for categorical
/// one-hot blocks (the mixed-space generalization of paper Eq. 9):
///
///   k(a, b) = k0 * exp(-sum_{i numeric} k_i (a_i - b_i)^2
///                      - lambda * sum_{c categorical} [cat_c(a) != cat_c(b)])
///
/// where cat_c(x) is the argmax of block c (points are expected to be
/// feasible one-hot encodings; argmax makes near-one-hot queries sane too).
/// With no categorical blocks this computes exactly what
/// ArdSquaredExponential computes, term for term — the bit-compatibility
/// contract the dropout-only ParamSpace path relies on.
class MixedArdSquaredExponential : public Kernel {
public:
    /// `inverse_length_scales` has one entry per encoded coordinate
    /// (entries under categorical blocks are ignored); `blocks` must be
    /// sorted, non-overlapping, in range, with cardinality >= 2;
    /// `hamming_weight` is lambda (> 0).
    MixedArdSquaredExponential(std::vector<double> inverse_length_scales,
                               std::vector<CategoricalBlock> blocks,
                               double hamming_weight, double amplitude = 1.0);

    double operator()(const Point& a, const Point& b) const override;
    std::string describe() const override;

    const std::vector<CategoricalBlock>& blocks() const { return blocks_; }
    double hamming_weight() const { return hamming_weight_; }

private:
    std::vector<double> inv_scales_;
    std::vector<CategoricalBlock> blocks_;
    std::vector<char> is_categorical_;  // per-coordinate membership mask
    double hamming_weight_;
    double amplitude_;
};

/// Matern-5/2 kernel with a single length scale (ablation alternative).
class Matern52 : public Kernel {
public:
    explicit Matern52(double length_scale, double amplitude = 1.0);

    double operator()(const Point& a, const Point& b) const override;
    std::string describe() const override;

private:
    double length_scale_;
    double amplitude_;
};

}  // namespace bayesft::bayesopt
