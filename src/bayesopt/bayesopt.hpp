#pragma once
// The Bayesian-optimization driver: maintains the trial history, refits the
// GP surrogate after each observation, and proposes the next candidate by
// maximizing the acquisition over a box-bounded search space using dense
// random candidates plus local refinement around the incumbent (the
// objective has no gradient in alpha, per paper Sec. III-B).

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/gp.hpp"
#include "core/trial.hpp"
#include "utils/rng.hpp"

namespace bayesft::bayesopt {

/// Axis-aligned box bounds for the search space.
struct BoxBounds {
    std::vector<double> lower;
    std::vector<double> upper;

    /// Uniform [lo, hi]^dims box.
    static BoxBounds uniform(std::size_t dims, double lo, double hi);

    std::size_t dims() const { return lower.size(); }
    /// Throws std::invalid_argument if malformed (empty, mismatched sizes,
    /// or lower >= upper anywhere).
    void validate() const;
    /// Clamps `p` into the box, in place.
    void clamp(Point& p) const;
    /// Uniform random point inside the box.
    Point sample(Rng& rng) const;
};

/// One completed trial.  A failed trial (status != kOk) is quarantined:
/// its stored y is the configured fail penalty (always finite, so
/// checkpoints and run-store lines stay parseable), and FailPolicy decides
/// whether it reaches the GP surrogate at all.
struct Trial {
    Point x;
    double y = 0.0;
    TrialStatus status = TrialStatus::kOk;
};

/// Feasibility projection for mixed (continuous + integer + categorical)
/// search spaces: snaps an in-box encoded point onto the feasible set
/// (e.g. rounding integer coordinates, one-hot-ifying categorical blocks).
/// Must be deterministic and idempotent.  An empty function means every
/// in-box point is feasible (the historical all-continuous behaviour).
using Projection = std::function<void(Point&)>;

/// TuRBO-style local trust region (docs/optimizer-scaling.md): once the
/// history passes `activate_after` trials, proposals come from a local GP
/// fit on the trials inside a box around the incumbent — intersected with
/// the global bounds and snapped feasible through the same Projection as
/// every other candidate — instead of the ever-growing global surrogate.
/// The box edge (as a fraction of each dimension's span) expands after
/// consecutive improvements and shrinks after consecutive failures;
/// collapsing below `min_length` resets it to `initial_length` (a
/// restart).  Off by default: enabling it changes the proposal stream, so
/// it is folded into the scenario digest only when enabled and existing
/// checkpoints stay valid.
struct TrustRegionConfig {
    bool enabled = false;
    /// Real trials observed before the local regime takes over proposals.
    std::size_t activate_after = 500;
    /// Box edge as a fraction of each dimension's span.
    double initial_length = 0.4;
    /// Edge below this triggers a restart back to `initial_length`.
    double min_length = 0.025;
    /// Expansion ceiling (1.0 = the whole box).
    double max_length = 1.0;
    /// Consecutive incumbent improvements before the edge doubles.
    std::size_t success_tolerance = 3;
    /// Consecutive non-improvements before the edge halves.
    std::size_t failure_tolerance = 8;
    /// Newest in-region GP rows kept in the local model: bounds the local
    /// fit at O(max_local_trials^3) however long the search runs.
    std::size_t max_local_trials = 256;
};

/// Mutable trust-region state: part of the optimizer's canonical form
/// (persisted in checkpoint v3), since the counters are a function of the
/// whole observation order and cannot be rebuilt from the trial list
/// without replaying it.
struct TrustRegionState {
    double length = 0.0;  ///< current edge; <= 0 means "use initial_length"
    std::size_t successes = 0;  ///< consecutive improvements
    std::size_t failures = 0;   ///< consecutive non-improvements
    std::size_t restarts = 0;   ///< times the edge collapsed and reset
};

/// Configuration of the proposal step.
struct BayesOptConfig {
    /// Trials drawn before the surrogate is trusted.
    std::size_t initial_random_trials = 4;
    /// Draw the initial trials from a Latin hypercube (space-filling)
    /// instead of i.i.d. uniform.
    bool latin_hypercube_init = true;
    /// Random candidates scored per suggest() call.
    std::size_t candidates = 512;
    /// Local Gaussian perturbations of the incumbent added to the pool.
    std::size_t local_candidates = 128;
    /// Stddev of local perturbations, relative to each box edge length.
    double local_sigma_fraction = 0.1;
    /// Observation noise variance handed to the GP.
    double noise_variance = 1e-4;
    /// Trial points closer than this in span-normalized distance (each
    /// coordinate difference divided by its box edge length, so wide
    /// integer/categorical encodings cannot drown out narrow dropout dims)
    /// are treated as repeated observations of one point: their objective
    /// values are averaged into a single GP row instead of producing a
    /// (near-)singular Gram matrix that only Cholesky jitter retries can
    /// absorb.
    double duplicate_tolerance = 1e-6;
    /// Minimum separation between the candidates of one suggest_batch call,
    /// as a fraction of the unit-box diagonal sqrt(dims) in the same
    /// span-normalized distance (diversity guard on top of the
    /// constant-liar fantasies).
    double batch_separation_fraction = 0.02;
    /// How quarantined (failed) trials reach the GP (docs/robustness.md).
    FailPolicy fail_policy = FailPolicy::kPenalize;
    /// Objective value a failed trial contributes under kPenalize (and the
    /// finite y stored in its Trial under either policy).  The default 0
    /// matches the floor of the accuracy-style utilities this repo
    /// maximizes; tune it below the plausible objective range for other
    /// objectives.
    double fail_penalty = 0.0;
    /// Opt-in local-BO regime for thousand-trial searches.
    TrustRegionConfig trust_region;
};

/// The Cholesky-free canonical state of a BayesOpt instance: the real trial
/// history, the space-filling initial design with its cursor, and the
/// proposal RNG.  Everything else (the GP posterior, its factorization) is
/// a deterministic function of these plus the construction-time
/// configuration, so import_state() reproduces the exact optimizer a
/// checkpoint was taken from (docs/checkpointing.md).
struct BayesOptState {
    std::vector<Trial> trials;
    std::vector<Point> initial_plan;
    std::size_t initial_used = 0;
    RngState rng;
    /// Trust-region counters (unused — all defaults — unless the regime is
    /// enabled; a default state asks the importer for the initial edge).
    TrustRegionState trust_region;
};

/// Maximizes an expensive black-box function over a box.
class BayesOpt {
public:
    /// `projection` (optional) snaps every generated candidate — initial
    /// design, random pool, local perturbations — onto a feasible subset of
    /// the box, so suggest()/suggest_batch() only ever propose feasible
    /// points (e.g. decoded ParamSpace points).  It never consumes RNG
    /// draws, so an empty and a no-op projection produce identical streams.
    BayesOpt(BoxBounds bounds, std::shared_ptr<const Kernel> kernel,
             std::unique_ptr<Acquisition> acquisition, BayesOptConfig config,
             Rng rng, Projection projection = {});

    /// Proposes the next point to evaluate.
    Point suggest();

    /// Proposes `q` diverse candidates from the current surrogate state:
    /// after each pick the point is fantasized at the worst observed value
    /// (constant liar) and the GP is refit, steering later picks away from
    /// it; a minimum-separation filter rejects near-duplicate picks.  The
    /// fantasies are rolled back before returning, so the caller owns the
    /// real observations via observe_batch.  q == 1 is exactly suggest().
    std::vector<Point> suggest_batch(std::size_t q);

    /// Records an observed objective value for `x` and refits the GP.
    ///
    /// Never throws on a bad observation: a non-finite `y` (or an explicit
    /// status != kOk) quarantines the trial — it is stored at the
    /// configured fail penalty with its failure status, and
    /// BayesOptConfig::fail_policy decides whether the GP sees it — so one
    /// diverging candidate can no longer abort a whole search.
    void observe(Point x, double y, TrialStatus status = TrialStatus::kOk);

    /// Records a batch of observations with a single GP refit.  Equivalent
    /// to observing each tuple in order.  `statuses` may be empty (all
    /// kOk) or aligned with `xs`.
    void observe_batch(const std::vector<Point>& xs,
                       const std::vector<double>& ys,
                       const std::vector<TrialStatus>& statuses = {});

    /// Incumbent (best observed) trial, preferring successful trials: a
    /// failed trial can only be returned when every trial failed (so
    /// callers always get a point, even from a fully quarantined run).
    /// nullopt before any observation.
    std::optional<Trial> best() const;

    /// True while the surrogate could not be refit on the current history
    /// (ill-conditioned Gram even after Cholesky jitter retries): the
    /// last-good posterior is retained for queries, and proposals fall
    /// back to random feasible pool samples until a refit succeeds.
    bool surrogate_degraded() const { return gp_degraded_; }

    const std::vector<Trial>& trials() const { return trials_; }
    const GaussianProcess& surrogate() const { return gp_; }
    const BoxBounds& bounds() const { return bounds_; }
    /// Live trust-region state (meaningful when the regime is enabled).
    const TrustRegionState& trust_region() const { return tr_; }

    /// Snapshot of the canonical state (see BayesOptState).  Safe to call
    /// at any trial boundary; never call mid-suggest_batch (fantasies would
    /// leak into the history).
    BayesOptState export_state() const;
    /// Restores a snapshot into this instance (which must have been
    /// constructed with the same bounds/kernel/config) and refits the GP
    /// from the restored history.  Throws std::invalid_argument on a
    /// dimension mismatch.
    void import_state(const BayesOptState& state);

private:
    /// Rollback record of one constant-liar fantasy applied incrementally:
    /// either a GP row was appended (undone by truncation) or an existing
    /// merged row's running-average target moved (undone by restoring it).
    struct FantasyRecord {
        bool appended = false;
        std::size_t index = 0;
        double old_y = 0.0;
        double old_count = 0.0;
    };

    /// Argmax of the acquisition over the candidate pool; points closer than
    /// the batch separation to any entry of `pending` are skipped (with a
    /// fallback to the unfiltered argmax when everything is too close).
    /// With `use_trust_region`, the pool is sampled from the trust-region
    /// box around the incumbent and scored by a local GP fit on the
    /// in-region rows (falling back to the global surrogate when the local
    /// fit is impossible).
    Point maximize_acquisition(const std::vector<Point>& pending,
                               bool use_trust_region);
    /// One proposal, honouring the initial design and `pending` exclusions.
    /// `real_trial_count` is the history size excluding fantasy trials.
    Point propose(const std::vector<Point>& pending,
                  std::size_t real_trial_count);
    /// The shared observe core: quarantine classification, trust-region
    /// bookkeeping, history append, and the incremental GP update.
    void observe_one(Point x, double y, TrialStatus status);
    /// Rebuilds the duplicate-merged GP rows from the full trial history
    /// and refits from scratch — the canonical reference the incremental
    /// path is pinned against, used at import and as the fallback.  A fit
    /// failure is absorbed (last-good posterior retained,
    /// surrogate_degraded() set) instead of propagating out of the observe
    /// path.
    void refit_gp();
    /// Full GP fit on the current merged rows (shared tail of refit_gp and
    /// the incremental fallbacks).
    void fit_merged();
    /// Folds one just-recorded trial into the merged rows and the GP —
    /// O(n^2) via GaussianProcess::observe / update_target when the fast
    /// path holds, full fit_merged() otherwise.  Bit-identical to a full
    /// re-merge + refit either way.
    void absorb_trial(const Trial& t);
    /// Index of the merged row within duplicate_tolerance of `x` (first
    /// match in row order, exactly refit_gp's merge scan), or
    /// merged_xs_.size() when none.
    std::size_t find_merged_row(const Point& x) const;
    /// Applies one constant-liar fantasy through the incremental GP ops,
    /// recording how to undo it.  Returns false (state untouched) when the
    /// incremental path cannot represent it — the caller replays the batch
    /// through the legacy full-refit route.
    bool push_fantasy(const Point& x, double y,
                      std::vector<FantasyRecord>& log);
    /// Rolls back push_fantasy records in reverse order, restoring the
    /// pre-batch GP state bit-for-bit.
    void pop_fantasies(std::vector<FantasyRecord>& log);

    /// True when the trust-region regime drives proposals/adaptation at a
    /// history of `real_trial_count` trials.
    bool trust_region_active(std::size_t real_trial_count) const;
    /// Success/failure-driven radius adaptation (one observed trial).
    void update_trust_region(bool success);

    /// Applies the feasibility projection (no-op when none was given).
    void make_feasible(Point& p) const;
    /// Distance with each coordinate difference normalized by the box edge
    /// length (used by the diversity guard and the duplicate merge).
    double normalized_distance(const Point& a, const Point& b) const;

    BoxBounds bounds_;
    std::shared_ptr<const Kernel> kernel_;
    std::unique_ptr<Acquisition> acquisition_;
    BayesOptConfig config_;
    Rng rng_;
    Projection projection_;
    GaussianProcess gp_;
    bool gp_degraded_ = false;
    std::vector<Trial> trials_;
    std::vector<Point> initial_plan_;  // Latin hypercube initial design
    std::size_t initial_used_ = 0;
    /// Duplicate-merged view of trials_ — the rows the GP is fit on —
    /// maintained incrementally with exactly the running-average updates
    /// (in trial order) that refit_gp's full re-merge applies, so both
    /// paths hold identical bits.
    std::vector<Point> merged_xs_;
    std::vector<double> merged_ys_;
    std::vector<double> merged_counts_;
    TrustRegionState tr_;
};

}  // namespace bayesft::bayesopt
