#pragma once
// The Bayesian-optimization driver: maintains the trial history, refits the
// GP surrogate after each observation, and proposes the next candidate by
// maximizing the acquisition over a box-bounded search space using dense
// random candidates plus local refinement around the incumbent (the
// objective has no gradient in alpha, per paper Sec. III-B).

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/gp.hpp"
#include "core/trial.hpp"
#include "utils/rng.hpp"

namespace bayesft::bayesopt {

/// Axis-aligned box bounds for the search space.
struct BoxBounds {
    std::vector<double> lower;
    std::vector<double> upper;

    /// Uniform [lo, hi]^dims box.
    static BoxBounds uniform(std::size_t dims, double lo, double hi);

    std::size_t dims() const { return lower.size(); }
    /// Throws std::invalid_argument if malformed (empty, mismatched sizes,
    /// or lower >= upper anywhere).
    void validate() const;
    /// Clamps `p` into the box, in place.
    void clamp(Point& p) const;
    /// Uniform random point inside the box.
    Point sample(Rng& rng) const;
};

/// One completed trial.  A failed trial (status != kOk) is quarantined:
/// its stored y is the configured fail penalty (always finite, so
/// checkpoints and run-store lines stay parseable), and FailPolicy decides
/// whether it reaches the GP surrogate at all.
struct Trial {
    Point x;
    double y = 0.0;
    TrialStatus status = TrialStatus::kOk;
};

/// Feasibility projection for mixed (continuous + integer + categorical)
/// search spaces: snaps an in-box encoded point onto the feasible set
/// (e.g. rounding integer coordinates, one-hot-ifying categorical blocks).
/// Must be deterministic and idempotent.  An empty function means every
/// in-box point is feasible (the historical all-continuous behaviour).
using Projection = std::function<void(Point&)>;

/// Configuration of the proposal step.
struct BayesOptConfig {
    /// Trials drawn before the surrogate is trusted.
    std::size_t initial_random_trials = 4;
    /// Draw the initial trials from a Latin hypercube (space-filling)
    /// instead of i.i.d. uniform.
    bool latin_hypercube_init = true;
    /// Random candidates scored per suggest() call.
    std::size_t candidates = 512;
    /// Local Gaussian perturbations of the incumbent added to the pool.
    std::size_t local_candidates = 128;
    /// Stddev of local perturbations, relative to each box edge length.
    double local_sigma_fraction = 0.1;
    /// Observation noise variance handed to the GP.
    double noise_variance = 1e-4;
    /// Trial points closer than this in span-normalized distance (each
    /// coordinate difference divided by its box edge length, so wide
    /// integer/categorical encodings cannot drown out narrow dropout dims)
    /// are treated as repeated observations of one point: their objective
    /// values are averaged into a single GP row instead of producing a
    /// (near-)singular Gram matrix that only Cholesky jitter retries can
    /// absorb.
    double duplicate_tolerance = 1e-6;
    /// Minimum separation between the candidates of one suggest_batch call,
    /// as a fraction of the unit-box diagonal sqrt(dims) in the same
    /// span-normalized distance (diversity guard on top of the
    /// constant-liar fantasies).
    double batch_separation_fraction = 0.02;
    /// How quarantined (failed) trials reach the GP (docs/robustness.md).
    FailPolicy fail_policy = FailPolicy::kPenalize;
    /// Objective value a failed trial contributes under kPenalize (and the
    /// finite y stored in its Trial under either policy).  The default 0
    /// matches the floor of the accuracy-style utilities this repo
    /// maximizes; tune it below the plausible objective range for other
    /// objectives.
    double fail_penalty = 0.0;
};

/// The Cholesky-free canonical state of a BayesOpt instance: the real trial
/// history, the space-filling initial design with its cursor, and the
/// proposal RNG.  Everything else (the GP posterior, its factorization) is
/// a deterministic function of these plus the construction-time
/// configuration, so import_state() reproduces the exact optimizer a
/// checkpoint was taken from (docs/checkpointing.md).
struct BayesOptState {
    std::vector<Trial> trials;
    std::vector<Point> initial_plan;
    std::size_t initial_used = 0;
    RngState rng;
};

/// Maximizes an expensive black-box function over a box.
class BayesOpt {
public:
    /// `projection` (optional) snaps every generated candidate — initial
    /// design, random pool, local perturbations — onto a feasible subset of
    /// the box, so suggest()/suggest_batch() only ever propose feasible
    /// points (e.g. decoded ParamSpace points).  It never consumes RNG
    /// draws, so an empty and a no-op projection produce identical streams.
    BayesOpt(BoxBounds bounds, std::shared_ptr<const Kernel> kernel,
             std::unique_ptr<Acquisition> acquisition, BayesOptConfig config,
             Rng rng, Projection projection = {});

    /// Proposes the next point to evaluate.
    Point suggest();

    /// Proposes `q` diverse candidates from the current surrogate state:
    /// after each pick the point is fantasized at the worst observed value
    /// (constant liar) and the GP is refit, steering later picks away from
    /// it; a minimum-separation filter rejects near-duplicate picks.  The
    /// fantasies are rolled back before returning, so the caller owns the
    /// real observations via observe_batch.  q == 1 is exactly suggest().
    std::vector<Point> suggest_batch(std::size_t q);

    /// Records an observed objective value for `x` and refits the GP.
    ///
    /// Never throws on a bad observation: a non-finite `y` (or an explicit
    /// status != kOk) quarantines the trial — it is stored at the
    /// configured fail penalty with its failure status, and
    /// BayesOptConfig::fail_policy decides whether the GP sees it — so one
    /// diverging candidate can no longer abort a whole search.
    void observe(Point x, double y, TrialStatus status = TrialStatus::kOk);

    /// Records a batch of observations with a single GP refit.  Equivalent
    /// to observing each tuple in order.  `statuses` may be empty (all
    /// kOk) or aligned with `xs`.
    void observe_batch(const std::vector<Point>& xs,
                       const std::vector<double>& ys,
                       const std::vector<TrialStatus>& statuses = {});

    /// Incumbent (best observed) trial, preferring successful trials: a
    /// failed trial can only be returned when every trial failed (so
    /// callers always get a point, even from a fully quarantined run).
    /// nullopt before any observation.
    std::optional<Trial> best() const;

    /// True while the surrogate could not be refit on the current history
    /// (ill-conditioned Gram even after Cholesky jitter retries): the
    /// last-good posterior is retained for queries, and proposals fall
    /// back to random feasible pool samples until a refit succeeds.
    bool surrogate_degraded() const { return gp_degraded_; }

    const std::vector<Trial>& trials() const { return trials_; }
    const GaussianProcess& surrogate() const { return gp_; }
    const BoxBounds& bounds() const { return bounds_; }

    /// Snapshot of the canonical state (see BayesOptState).  Safe to call
    /// at any trial boundary; never call mid-suggest_batch (fantasies would
    /// leak into the history).
    BayesOptState export_state() const;
    /// Restores a snapshot into this instance (which must have been
    /// constructed with the same bounds/kernel/config) and refits the GP
    /// from the restored history.  Throws std::invalid_argument on a
    /// dimension mismatch.
    void import_state(const BayesOptState& state);

private:
    /// Argmax of the acquisition over the candidate pool; points closer than
    /// the batch separation to any entry of `pending` are skipped (with a
    /// fallback to the unfiltered argmax when everything is too close).
    Point maximize_acquisition(const std::vector<Point>& pending);
    /// One proposal, honouring the initial design and `pending` exclusions.
    /// `real_trial_count` is the history size excluding fantasy trials.
    Point propose(const std::vector<Point>& pending,
                  std::size_t real_trial_count);
    /// Refits the GP on the trial history with near-duplicate points merged
    /// (objective values averaged) and failed trials fed per the fail
    /// policy; resets the GP when no trials qualify.  A fit failure is
    /// absorbed (last-good posterior retained, surrogate_degraded() set)
    /// instead of propagating out of the observe path.
    void refit_gp();

    /// Applies the feasibility projection (no-op when none was given).
    void make_feasible(Point& p) const;
    /// Distance with each coordinate difference normalized by the box edge
    /// length (used by the diversity guard and the duplicate merge).
    double normalized_distance(const Point& a, const Point& b) const;

    BoxBounds bounds_;
    std::shared_ptr<const Kernel> kernel_;
    std::unique_ptr<Acquisition> acquisition_;
    BayesOptConfig config_;
    Rng rng_;
    Projection projection_;
    GaussianProcess gp_;
    bool gp_degraded_ = false;
    std::vector<Trial> trials_;
    std::vector<Point> initial_plan_;  // Latin hypercube initial design
    std::size_t initial_used_ = 0;
};

}  // namespace bayesft::bayesopt
