#include "bayesopt/acquisition.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace bayesft::bayesopt {

namespace {

double standard_normal_pdf(double z) {
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double standard_normal_cdf(double z) {
    return 0.5 * (1.0 + std::erf(z / std::numbers::sqrt2));
}

}  // namespace

double PosteriorMean::score(const Posterior& posterior, double) const {
    return posterior.mean;
}

ExpectedImprovement::ExpectedImprovement(double xi) : xi_(xi) {
    if (!(xi >= 0.0)) {
        throw std::invalid_argument("ExpectedImprovement: xi must be >= 0");
    }
}

double ExpectedImprovement::score(const Posterior& posterior,
                                  double best_observed) const {
    const double stddev = std::sqrt(posterior.variance);
    const double improvement = posterior.mean - best_observed - xi_;
    if (stddev <= 1e-12) return std::max(0.0, improvement);
    const double z = improvement / stddev;
    return improvement * standard_normal_cdf(z) +
           stddev * standard_normal_pdf(z);
}

std::string ExpectedImprovement::describe() const {
    std::ostringstream os;
    os << "EI(xi=" << xi_ << ")";
    return os.str();
}

UpperConfidenceBound::UpperConfidenceBound(double beta) : beta_(beta) {
    if (!(beta >= 0.0)) {
        throw std::invalid_argument("UpperConfidenceBound: beta must be >= 0");
    }
}

double UpperConfidenceBound::score(const Posterior& posterior, double) const {
    return posterior.mean + beta_ * std::sqrt(posterior.variance);
}

std::string UpperConfidenceBound::describe() const {
    std::ostringstream os;
    os << "UCB(beta=" << beta_ << ")";
    return os.str();
}

std::unique_ptr<Acquisition> make_acquisition(const std::string& kind) {
    if (kind == "posterior_mean") return std::make_unique<PosteriorMean>();
    if (kind == "ei") return std::make_unique<ExpectedImprovement>();
    if (kind == "ucb") return std::make_unique<UpperConfidenceBound>();
    throw std::invalid_argument("make_acquisition: unknown kind '" + kind +
                                "'");
}

}  // namespace bayesft::bayesopt
